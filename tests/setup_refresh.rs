//! Cross-crate tests of the numeric-refresh setup path: a frozen setup
//! absorbing same-pattern operators must be indistinguishable — bitwise —
//! from rebuilding from scratch, across many random coefficient drifts,
//! and must refuse mismatched inputs without corrupting state.

use famg::core::{AmgConfig, AmgSolver, Hierarchy, InterpKind, RefreshError};
use famg::matgen::{rhs, varcoef3d_7pt};
use famg::sparse::Csr;

const NX: usize = 10;
const NY: usize = 10;
const NZ: usize = 6;

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 33) as f64) / ((1u64 << 31) as f64)
}

/// Smooth positive base coefficient field.
fn base_field() -> Vec<f64> {
    (0..NX * NY * NZ)
        .map(|i| {
            let x = (i % NX) as f64 / NX as f64;
            let t = (i / NX) as f64 / ((NY * NZ) as f64);
            1.0 + 0.5 * (5.0 * (x + t)).sin().powi(2)
        })
        .collect()
}

/// Applies a seeded multiplicative drift small enough (1e-5 relative)
/// that no frozen threshold decision — strength cut, PMIS tie-break,
/// truncation kept-set, sign filter — flips: the regime the refresh
/// contract guarantees bitwise agreement for.
fn drifted(base: &[f64], seed: u64) -> Vec<f64> {
    let mut st = seed.wrapping_mul(2654435761).wrapping_add(1);
    base.iter()
        .map(|&k| k * (1.0 + 1e-5 * (lcg(&mut st) - 0.5)))
        .collect()
}

fn assert_levels_bitwise(refreshed: &Hierarchy, scratch: &Hierarchy, tag: &str) {
    assert_eq!(refreshed.levels.len(), scratch.levels.len(), "{tag}");
    for (lvl, (r, f)) in refreshed.levels.iter().zip(&scratch.levels).enumerate() {
        assert_eq!(r.a, f.a, "{tag}: operator differs at level {lvl}");
    }
}

#[test]
fn fuzz_refresh_matches_rebuild_over_fifty_drifts() {
    let base = base_field();
    let a0 = varcoef3d_7pt(NX, NY, NZ, &base);
    let cfg = AmgConfig::single_node_paper();
    let mut solver = AmgSolver::setup_refreshable(&a0, &cfg);
    let b = rhs::ones(a0.nrows());
    for seed in 0..50u64 {
        let at = varcoef3d_7pt(NX, NY, NZ, &drifted(&base, seed));
        solver.refresh(&at).unwrap_or_else(|e| {
            panic!("seed {seed}: same-pattern drift must refresh: {e}");
        });
        let scratch = AmgSolver::setup(&at, &cfg);
        assert_levels_bitwise(
            solver.hierarchy(),
            scratch.hierarchy(),
            &format!("seed {seed}"),
        );
        // The solve itself must be bitwise reproducible too.
        let mut x1 = vec![0.0; a0.nrows()];
        let mut x2 = vec![0.0; a0.nrows()];
        let r1 = solver.solve(&b, &mut x1);
        let r2 = scratch.solve(&b, &mut x2);
        assert_eq!(r1.iterations, r2.iterations, "seed {seed}: iteration drift");
        assert_eq!(x1, x2, "seed {seed}: solve not bitwise identical");
    }
}

#[test]
fn fuzz_refresh_baseline_config_ten_drifts() {
    // The baseline (non-CF-reordered) path takes different refresh code;
    // spot-check it with a smaller budget.
    let base = base_field();
    let a0 = varcoef3d_7pt(NX, NY, NZ, &base);
    let cfg = AmgConfig::single_node_baseline();
    let mut solver = AmgSolver::setup_refreshable(&a0, &cfg);
    for seed in 100..110u64 {
        let at = varcoef3d_7pt(NX, NY, NZ, &drifted(&base, seed));
        solver.refresh(&at).unwrap();
        let scratch = AmgSolver::setup(&at, &cfg);
        assert_levels_bitwise(
            solver.hierarchy(),
            scratch.hierarchy(),
            &format!("seed {seed}"),
        );
    }
}

#[test]
fn refresh_without_frozen_setup_is_an_error() {
    let a = varcoef3d_7pt(NX, NY, NZ, &base_field());
    let mut solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
    assert_eq!(solver.refresh(&a).unwrap_err(), RefreshError::NoFrozenSetup);
}

#[test]
fn refresh_rejects_wrong_pattern_and_stays_usable() {
    let base = base_field();
    let a0 = varcoef3d_7pt(NX, NY, NZ, &base);
    let n = a0.nrows();
    let cfg = AmgConfig::single_node_paper();
    let mut solver = AmgSolver::setup_refreshable(&a0, &cfg);

    // Same size, different sparsity.
    let err = solver.refresh(&Csr::identity(n)).unwrap_err();
    assert!(matches!(
        err,
        RefreshError::PatternMismatch { level: 0, .. }
    ));
    // Different size.
    let smaller = varcoef3d_7pt(NX, NY, NZ - 1, &base[..NX * NY * (NZ - 1)]);
    assert!(solver.refresh(&smaller).is_err());

    // The failed refreshes must leave the solver fully usable.
    let b = rhs::ones(n);
    let mut x = vec![0.0; n];
    assert!(solver.solve(&b, &mut x).converged);
    // And a valid refresh still works afterwards.
    let at = varcoef3d_7pt(NX, NY, NZ, &drifted(&base, 7));
    solver.refresh(&at).unwrap();
    assert!(solver.solve(&b, &mut x).converged);
}

#[test]
fn refresh_covers_every_single_shot_interp_kind() {
    let base = base_field();
    let a0 = varcoef3d_7pt(NX, NY, NZ, &base);
    for ikind in [
        InterpKind::Direct,
        InterpKind::Classical,
        InterpKind::ExtendedI,
    ] {
        let cfg = AmgConfig {
            interp: ikind,
            ..AmgConfig::single_node_paper()
        };
        let mut solver = AmgSolver::setup_refreshable(&a0, &cfg);
        for seed in 200..205u64 {
            let at = varcoef3d_7pt(NX, NY, NZ, &drifted(&base, seed));
            solver.refresh(&at).unwrap();
            let scratch = AmgSolver::setup(&at, &cfg);
            assert_levels_bitwise(
                solver.hierarchy(),
                scratch.hierarchy(),
                &format!("{ikind:?} seed {seed}"),
            );
        }
    }
}

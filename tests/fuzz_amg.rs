//! Deterministic fuzz tests for the AMG components: coarsening
//! validity, interpolation invariants, and end-to-end convergence on
//! random diagonally dominant SPD systems.

mod common;

use common::{graph_laplacian, FuzzRng};
use famg::core::coarsen::{pmis, validate_cf};
use famg::core::interp::{extended_i, truncate_row, CfMap, TruncParams};
use famg::core::strength::strength;
use famg::core::{AmgConfig, AmgSolver};

const CASES: u64 = 32;

#[test]
fn pmis_always_valid() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(case);
        let n = rng.range(4, 60);
        let extra = rng.below(3 * n + 1);
        let a = graph_laplacian(&mut rng, n, extra, 0.0);
        let s = strength(&a, 0.25, 10.0);
        let c = pmis(&s, case);
        validate_cf(&s, &c, 1).unwrap_or_else(|e| panic!("case {case}: {e}"));
        // Non-trivial coarsening on non-trivial graphs.
        if s.nnz() > 0 {
            assert!(c.ncoarse > 0, "case {case}");
            assert!(c.ncoarse < a.nrows(), "case {case}");
        }
    }
}

#[test]
fn extended_i_rows_sum_to_one_on_zero_rowsum_operators() {
    // Pure graph Laplacian: every row sums to zero, so interpolation
    // must reproduce constants exactly.
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x100 + case);
        let n = rng.range(4, 40);
        let extra = rng.below(3 * n + 1);
        let a = graph_laplacian(&mut rng, n, extra, 0.0);
        let s = strength(&a, 0.25, 10.0);
        let c = pmis(&s, case);
        let cf = CfMap::new(c.is_coarse);
        let p = extended_i(&a, &s, &cf, None);
        for i in 0..p.nrows() {
            if p.row_nnz(i) > 0 {
                let w: f64 = p.row_vals(i).iter().sum();
                assert!((w - 1.0).abs() < 1e-9, "case {case}: row {i} sums to {w}");
            }
        }
    }
}

#[test]
fn truncation_preserves_row_sum_and_caps_length() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x200 + case);
        let len = rng.range(1, 20);
        let vals: Vec<f64> = (0..len).map(|_| rng.float(-3.0, 3.0)).collect();
        let factor = rng.float(0.0, 0.5);
        let max_el = rng.below(8);
        let mut cols: Vec<usize> = (0..vals.len()).collect();
        let mut v = vals.clone();
        let before: f64 = v.iter().sum();
        truncate_row(
            &mut cols,
            &mut v,
            &TruncParams {
                factor,
                max_elements: max_el,
            },
        );
        if max_el > 0 {
            assert!(v.len() <= max_el.max(1), "case {case}");
        }
        let after: f64 = v.iter().sum();
        if after != 0.0 && before != 0.0 && !v.is_empty() {
            assert!(
                (after - before).abs() < 1e-9 * before.abs().max(1.0),
                "case {case}: row sum {before} -> {after}"
            );
        }
    }
}

#[test]
fn amg_converges_on_random_dominant_systems() {
    for case in 0..20 {
        let mut rng = FuzzRng::new(0x300 + case);
        let n = rng.range(4, 50);
        let extra = rng.below(3 * n + 1);
        let a = graph_laplacian(&mut rng, n, extra, 0.5);
        let b = famg::matgen::rhs::random(a.nrows(), case);
        let cfg = AmgConfig {
            max_iterations: 300,
            coarse_solve_size: 16,
            ..AmgConfig::single_node_paper()
        };
        let solver = AmgSolver::setup(&a, &cfg);
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        assert!(
            res.converged,
            "case {case}: stalled at {:e}",
            res.final_relres
        );
    }
}

#[test]
fn hierarchy_levels_strictly_shrink() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x400 + case);
        let n = rng.range(4, 80);
        let extra = rng.below(3 * n + 1);
        let a = graph_laplacian(&mut rng, n, extra, 0.0);
        let h = famg::core::Hierarchy::build(&a, &AmgConfig::single_node_paper());
        for w in h.stats.level_rows.windows(2) {
            assert!(w[1] < w[0], "case {case}: {:?}", h.stats.level_rows);
        }
        assert!(
            h.stats.operator_complexity() < 6.0,
            "case {case}: complexity {}",
            h.stats.operator_complexity()
        );
    }
}

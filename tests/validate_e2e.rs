//! End-to-end solves with the `validate` feature enabled: the
//! `famg-check` validators run at every hierarchy level boundary and
//! panic on the first violated invariant, so a passing solve certifies
//! the whole setup pipeline (strength → PMIS → interpolation → Galerkin
//! RAP) on that problem.
//!
//! Gated on the workspace `validate` feature; run with
//! `cargo test --features validate`.
#![cfg(feature = "validate")]

use famg::core::rng::uniform01;
use famg::core::{AmgConfig, AmgSolver};
use famg::dist::comm::run_ranks;
use famg::dist::hierarchy::{DistHierarchy, DistOptFlags};
use famg::dist::parcsr::{default_partition, ParCsr};
use famg::matgen::{laplace2d, laplace3d_7pt, varcoef3d_7pt};
use famg::sparse::Csr;

fn solve_validated(a: &Csr, cfg: &AmgConfig) {
    let b = vec![1.0; a.nrows()];
    let solver = AmgSolver::setup(a, cfg);
    let mut x = vec![0.0; a.nrows()];
    let res = solver.solve(&b, &mut x);
    assert!(res.converged, "stalled at {:e}", res.final_relres);
}

#[test]
fn laplace2d_solves_under_validation() {
    let a = laplace2d(32, 32);
    solve_validated(&a, &AmgConfig::single_node_paper());
    solve_validated(&a, &AmgConfig::single_node_baseline());
}

#[test]
fn laplace3d_solves_under_validation() {
    let a = laplace3d_7pt(12, 12, 12);
    solve_validated(&a, &AmgConfig::single_node_paper());
}

#[test]
fn varcoef_solves_under_validation() {
    // Log-uniform coefficient jumps over four orders of magnitude.
    let (nx, ny, nz) = (10, 10, 10);
    let k: Vec<f64> = (0..nx * ny * nz)
        .map(|i| 10f64.powf(4.0 * uniform01(0xC0EF, i as u64) - 2.0))
        .collect();
    let a = varcoef3d_7pt(nx, ny, nz, &k);
    solve_validated(&a, &AmgConfig::single_node_paper());
}

#[test]
fn aggressive_schemes_solve_under_validation() {
    // Multipass and two-stage extended+i exercise the relaxed row-sum
    // branch of the validator (rowsum_exact = false).
    let a = laplace2d(24, 24);
    solve_validated(&a, &AmgConfig::multi_node_mp());
    solve_validated(&a, &AmgConfig::multi_node_2s_ei444());
}

#[test]
fn distributed_setup_validates_per_rank() {
    let a = laplace2d(20, 20);
    let starts = default_partition(400, 3);
    for cfg in [AmgConfig::single_node_paper(), AmgConfig::multi_node_mp()] {
        let (parts, _) = run_ranks(3, |c| {
            let pa = ParCsr::from_global_rows(
                &a,
                starts[c.rank()],
                starts[c.rank() + 1],
                starts.clone(),
                c.rank(),
            );
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
            h.num_levels()
        });
        for nl in parts {
            assert!(nl >= 2);
        }
    }
}

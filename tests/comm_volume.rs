//! Communication-volume regression suite for the neighbor-aware
//! distributed layer.
//!
//! Guards the §4.3/§4.4 message-count contracts end to end:
//!
//! 1. One halo exchange posts exactly one message per true neighbor
//!    pair — no empty envelopes to non-neighbors.
//! 2. The tree collectives stay within O(P log P) total messages
//!    (allreduce/allgather use `2(P-1)`, far below the old `P(P-1)`
//!    dense-alltoall budget).
//! 3. Solves are bitwise reproducible for a fixed rank count — the
//!    rank-ordered combine at the tree root keeps the reduction order
//!    independent of message arrival order.
//! 4. The per-level telemetry scopes account for every byte and message
//!    the runtime sends: setup + solve windows tile the run.

use famg::core::AmgConfig;
use famg::dist::comm::{run_ranks, CommPhase};
use famg::dist::halo::VectorExchange;
use famg::dist::hierarchy::{DistHierarchy, DistOptFlags};
use famg::dist::parcsr::{default_partition, ParCsr};
use famg::dist::solve::dist_fgmres_amg;
use famg::matgen::{laplace2d, laplace3d_7pt, rhs};

fn owner(starts: &[usize], g: usize) -> usize {
    starts.partition_point(|&s| s <= g) - 1
}

/// Per-rank messages for one persistent halo exchange equal the true
/// neighbor count derived from the matrix's off-process column owners.
#[test]
fn halo_exchange_messages_equal_neighbor_count() {
    // 5-point 2D Laplacian, slab partition: interior ranks touch
    // exactly 2 neighbors, boundary ranks 1.
    let a = laplace2d(12, 8);
    let n = a.nrows();
    for nranks in [2usize, 4] {
        let starts = default_partition(n, nranks);
        let (parts, _) = run_ranks(nranks, |c| {
            let r = c.rank();
            let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            // True neighbors: owners of the off-process columns.
            let mut nbrs: Vec<usize> = pa.colmap.iter().map(|&g| owner(&starts, g)).collect();
            nbrs.dedup();
            let plan = VectorExchange::plan(c, &pa.colmap, &starts);
            let xl = vec![1.0; starts[r + 1] - starts[r]];
            let before = c.messages_sent();
            let ext = plan.exchange(c, &xl);
            let sent = c.messages_sent() - before;
            assert_eq!(ext.len(), pa.colmap.len());
            (sent, nbrs.len(), plan.send_peer_ranks().len())
        });
        for (r, &(sent, true_nbrs, peers)) in parts.iter().enumerate() {
            // Symmetric pattern: the ranks that need my values are the
            // ranks whose values I need.
            assert_eq!(peers, true_nbrs, "rank {r} of {nranks}: plan peers");
            assert_eq!(sent as usize, true_nbrs, "rank {r} of {nranks}: messages");
            let expect = if r == 0 || r == nranks - 1 { 1 } else { 2 };
            assert_eq!(true_nbrs, expect, "rank {r} of {nranks}: slab neighbors");
        }
    }
}

/// Tree collectives: total messages per operation are `O(P log P)` —
/// concretely `2(P-1)` for allreduce/allgather/exscan — not the old
/// dense-alltoall `P(P-1)`.
#[test]
fn collectives_within_message_budget() {
    for nranks in [2usize, 5, 8] {
        let budget = 2 * (nranks as u64 - 1);
        let dense = (nranks * (nranks - 1)) as u64;
        let ops = 4u64; // allreduce_sum, allreduce_max, allgather, exscan_sum
        let (parts, report) = run_ranks(nranks, |c| {
            let r = c.rank();
            let s = c.allreduce_sum(r as f64 + 1.0, 1);
            let m = c.allreduce_max(r as f64, 2);
            let g = c.allgather(r, 3, 8);
            let (before, total) = c.exscan_sum(2, 4);
            (s, m, g, before, total)
        });
        for (r, (s, m, g, before, total)) in parts.into_iter().enumerate() {
            let p = nranks as f64;
            assert_eq!(s, p * (p + 1.0) / 2.0);
            assert_eq!(m, p - 1.0);
            assert_eq!(g, (0..nranks).collect::<Vec<_>>());
            assert_eq!(before, 2 * r);
            assert_eq!(total, 2 * nranks);
        }
        assert_eq!(
            report.total_messages(),
            ops * budget,
            "{nranks} ranks: each collective should cost 2(P-1) messages"
        );
        assert!(ops * budget < ops * dense || nranks < 3);
    }
}

/// Fixed rank count ⇒ bitwise-identical solutions run to run: the tree
/// reductions combine contributions in rank order at the root, so
/// floating-point results do not depend on scheduling.
#[test]
fn solve_bitwise_deterministic_for_fixed_ranks() {
    let a = laplace3d_7pt(8, 8, 8);
    let n = a.nrows();
    let b = rhs::ones(n);
    let nranks = 4usize;
    let starts = default_partition(n, nranks);
    let cfg = AmgConfig::multi_node_ei4();
    let solve = || {
        let (parts, _) = run_ranks(nranks, |c| {
            let r = c.rank();
            let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
            let bl = b[starts[r]..starts[r + 1]].to_vec();
            let mut xl = vec![0.0; bl.len()];
            let res = dist_fgmres_amg(c, &h, &bl, &mut xl, 1e-8, 100, 30);
            assert!(res.converged);
            (res.iterations, xl)
        });
        parts
    };
    let first = solve();
    let second = solve();
    for (r, (p1, p2)) in first.iter().zip(&second).enumerate() {
        assert_eq!(p1.0, p2.0, "rank {r}: iteration count");
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&p1.1), bits(&p2.1), "rank {r}: solution bits");
    }
}

/// The per-level telemetry tiles the run: scope totals sum to the
/// global counters, and the per-window `CommVolume` snapshots carried
/// by the hierarchy and solve results agree with the phase totals.
#[test]
fn telemetry_scopes_account_for_all_traffic() {
    let a = laplace3d_7pt(8, 8, 8);
    let n = a.nrows();
    let b = rhs::ones(n);
    let nranks = 4usize;
    let starts = default_partition(n, nranks);
    let cfg = AmgConfig::multi_node_ei4();
    let (parts, report) = run_ranks(nranks, |c| {
        let r = c.rank();
        let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
        let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
        let bl = b[starts[r]..starts[r + 1]].to_vec();
        let mut xl = vec![0.0; bl.len()];
        let res = dist_fgmres_amg(c, &h, &bl, &mut xl, 1e-8, 100, 30);
        assert!(res.converged);
        (h.setup_comm, res.solve_comm)
    });

    // Scope map covers the global counters exactly.
    let scoped_bytes: u64 = report.per_scope.values().map(|t| t.bytes).sum();
    let scoped_msgs: u64 = report.per_scope.values().map(|t| t.messages).sum();
    assert_eq!(scoped_bytes, report.total_bytes());
    assert_eq!(scoped_msgs, report.total_messages());

    // Phase totals match the per-window snapshots summed over ranks.
    let phase_sum = |phase: CommPhase| -> (u64, u64) {
        report
            .per_scope
            .iter()
            .filter(|((_, p), _)| *p == phase)
            .fold((0, 0), |(b, m), (_, t)| (b + t.bytes, m + t.messages))
    };
    let setup: (u64, u64) = parts
        .iter()
        .fold((0, 0), |(b, m), p| (b + p.0.bytes, m + p.0.messages));
    let solve: (u64, u64) = parts
        .iter()
        .fold((0, 0), |(b, m), p| (b + p.1.bytes, m + p.1.messages));
    assert_eq!(phase_sum(CommPhase::Setup), setup);
    assert_eq!(phase_sum(CommPhase::Solve), solve);
    assert_eq!(setup.0 + solve.0, report.total_bytes());

    // Both phases show up at the finest level, and nothing is unscoped.
    assert!(report.per_scope[&(0, CommPhase::Setup)].messages > 0);
    assert!(report.per_scope[&(0, CommPhase::Solve)].messages > 0);
    assert_eq!(phase_sum(CommPhase::Other), (0, 0));
}

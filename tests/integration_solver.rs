//! Cross-crate integration tests: the full pipeline from problem
//! generation through setup, solve, and distributed execution.

use famg::core::{AmgConfig, AmgSolver};
use famg::dist::comm::run_ranks;
use famg::dist::hierarchy::{DistHierarchy, DistOptFlags};
use famg::dist::parcsr::{default_partition, ParCsr};
use famg::dist::solve::dist_amg_solve;
use famg::krylov::{cg, fgmres, CgOptions, FgmresOptions, IdentityPrecond};
use famg::matgen::{mmio, rhs, suite};
use famg::sparse::spmv::residual_norm_sq;
use famg::sparse::vecops;

fn relres(a: &famg::sparse::Csr, b: &[f64], x: &[f64]) -> f64 {
    let mut r = vec![0.0; b.len()];
    residual_norm_sq(a, x, b, &mut r).sqrt() / vecops::norm2(b)
}

#[test]
fn whole_suite_solves_at_small_scale() {
    // Every matrix family of Table 2, scaled down, must be solved by the
    // paper-default AMG configuration to 1e-7.
    for m in suite() {
        let a = (m.gen)(0.05);
        let b = rhs::ones(a.nrows());
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        assert!(
            res.converged,
            "{}: stalled at {:.2e} after {} iters",
            m.name, res.final_relres, res.iterations
        );
        assert!(relres(&a, &b, &x) <= 1.05e-7, "{}", m.name);
    }
}

#[test]
fn baseline_suite_matches_optimized_convergence() {
    for m in suite().into_iter().take(4) {
        let a = (m.gen)(0.05);
        let b = rhs::ones(a.nrows());
        let so = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let sb = AmgSolver::setup(&a, &AmgConfig::single_node_baseline());
        let mut xo = vec![0.0; a.nrows()];
        let mut xb = vec![0.0; a.nrows()];
        let ro = so.solve(&b, &mut xo);
        let rb = sb.solve(&b, &mut xb);
        assert!(ro.converged && rb.converged, "{}", m.name);
        assert!(
            ro.iterations.abs_diff(rb.iterations) <= 2,
            "{}: {} vs {}",
            m.name,
            ro.iterations,
            rb.iterations
        );
    }
}

#[test]
fn amg_preconditioned_fgmres_beats_plain_fgmres() {
    let a = famg::matgen::reservoir_matrix(24, 24, 12, 3);
    let b = rhs::ones(a.nrows());
    let amg = AmgSolver::setup(
        &a,
        &AmgConfig {
            tolerance: 1e-5,
            ..AmgConfig::multi_node_ei4()
        },
    );
    let pre = |r: &[f64], z: &mut [f64]| amg.apply(r, z);
    let opts = FgmresOptions {
        tolerance: 1e-5,
        max_iterations: 300,
        restart: 40,
    };
    let mut x1 = vec![0.0; a.nrows()];
    let r1 = fgmres(&a, &b, &mut x1, &pre, &opts);
    assert!(r1.converged);
    let mut x2 = vec![0.0; a.nrows()];
    let r2 = fgmres(&a, &b, &mut x2, &IdentityPrecond, &opts);
    assert!(
        !r2.converged || r2.iterations > 3 * r1.iterations,
        "AMG gave no advantage: {} vs {}",
        r1.iterations,
        r2.iterations
    );
}

#[test]
fn amg_preconditioned_cg_solves_spd_problem() {
    let a = famg::matgen::laplace3d_7pt(12, 12, 12);
    let b = rhs::random(a.nrows(), 7);
    let amg = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
    let pre = |r: &[f64], z: &mut [f64]| amg.apply(r, z);
    let mut x = vec![0.0; a.nrows()];
    let res = cg(&a, &b, &mut x, &pre, &CgOptions::default());
    assert!(res.converged);
    assert!(
        res.iterations < 25,
        "PCG took {} iterations",
        res.iterations
    );
}

#[test]
fn distributed_solution_matches_serial() {
    let a = famg::matgen::laplace2d(20, 20);
    let n = a.nrows();
    let b = rhs::ones(n);
    // Serial.
    let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
    let mut xs = vec![0.0; n];
    let rs = solver.solve(&b, &mut xs);
    assert!(rs.converged);
    // Distributed (3 ranks).
    let starts = default_partition(n, 3);
    let cfg = AmgConfig::single_node_paper();
    let (parts, _) = run_ranks(3, |c| {
        let r = c.rank();
        let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
        let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
        let bl = b[starts[r]..starts[r + 1]].to_vec();
        let mut xl = vec![0.0; bl.len()];
        let res = dist_amg_solve(c, &h, &bl, &mut xl);
        assert!(res.converged);
        xl
    });
    let xd: Vec<f64> = parts.concat();
    // Both are approximate solutions of the same system to 1e-7; they
    // agree to solver accuracy.
    assert!(relres(&a, &b, &xd) <= 1.05e-7);
    let diff: f64 = xs
        .iter()
        .zip(&xd)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    assert!(
        diff / vecops::norm2(&xs) < 1e-4,
        "solutions diverged: {diff}"
    );
}

#[test]
fn matrix_market_roundtrip_then_solve() {
    let a = famg::matgen::laplace2d(16, 16);
    let path = std::env::temp_dir().join("famg_integration.mtx");
    mmio::save_matrix_market(&a, &path).unwrap();
    let loaded = mmio::load_matrix_market(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(a.to_dense(), loaded.to_dense());
    let b = rhs::ones(loaded.nrows());
    let solver = AmgSolver::setup(&loaded, &AmgConfig::single_node_paper());
    let mut x = vec![0.0; loaded.nrows()];
    assert!(solver.solve(&b, &mut x).converged);
}

#[test]
fn anisotropic_problem_semicoarsens_and_solves() {
    let a = famg::matgen::laplace2d_aniso(48, 48, 0.01);
    let b = rhs::ones(a.nrows());
    let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
    // Strength filtering should coarsen mostly along x: the coarse grid
    // keeps roughly half the points (1D coarsening), not a quarter.
    let ratio = solver.hierarchy().stats.level_rows[1] as f64
        / solver.hierarchy().stats.level_rows[0] as f64;
    assert!(ratio > 0.3, "expected semicoarsening, got ratio {ratio}");
    let mut x = vec![0.0; a.nrows()];
    let res = solver.solve(&b, &mut x);
    assert!(res.converged);
}

//! Thread-count independence suite: the rayon shim's determinism contract.
//!
//! The pool promises bitwise-identical results for every pool size. The
//! pool size is pinned at first use (`RAYON_NUM_THREADS`, read once), so a
//! single process cannot observe two sizes; instead the driver test
//! re-executes this test binary as subprocesses with `RAYON_NUM_THREADS`
//! set to 1, 2, and 4, runs [`fingerprint_worker`] in each, and compares
//! the printed fingerprints. Covered: SpGEMM, fused RAP, parallel
//! transpose, strength, PMIS, hybrid-GS and Jacobi sweeps (task counts
//! pinned — the task decomposition is part of the numerical method),
//! end-to-end AMG solves (`smoother_tasks` pinned), the parallel sort,
//! and the fused residual/dot reductions.

mod common;

use common::{graph_laplacian, random_csr, random_marker, FuzzRng};
use famg::core::coarsen::pmis;
use famg::core::reorder::cf_reorder;
use famg::core::smoother::{Smoother, Workspace};
use famg::core::strength::strength;
use famg::core::{AmgConfig, AmgSolver};
use famg::matgen::laplace2d;
use famg::sparse::spgemm::spgemm_one_pass;
use famg::sparse::transpose::{transpose, transpose_par};
use famg::sparse::triple::rap_row_fused;
use famg::sparse::Csr;

/// Task count pinned for the decomposition-dependent smoothers so only the
/// *pool size* varies across the subprocesses.
const PINNED_TASKS: usize = 4;

fn fnv1a(h: u64, w: u64) -> u64 {
    let mut h = h;
    for b in w.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

fn hash_u64s(h: u64, ws: impl IntoIterator<Item = u64>) -> u64 {
    ws.into_iter().fold(h, fnv1a)
}

fn hash_csr(h: u64, c: &Csr) -> u64 {
    let h = hash_u64s(h, [c.nrows() as u64, c.ncols() as u64]);
    let h = hash_u64s(h, c.rowptr().iter().map(|&p| p as u64));
    let h = hash_u64s(h, c.colidx().iter().map(|&j| j as u64));
    hash_u64s(h, c.values().iter().map(|v| v.to_bits()))
}

fn hash_f64s(h: u64, xs: &[f64]) -> u64 {
    hash_u64s(h, xs.iter().map(|v| v.to_bits()))
}

fn fp_spgemm_rap_transpose() -> u64 {
    let mut h = FNV_SEED;
    for case in 0..3u64 {
        let mut rng = FuzzRng::new(0xA11CE + case);
        let n = 1500 + 257 * case as usize;
        let a = graph_laplacian(&mut rng, n, 2 * n, 1.0);
        h = hash_csr(h, &spgemm_one_pass(&a, &a));
        let nc = n / 3;
        let p = random_csr(&mut rng, n, nc);
        let r = transpose(&p);
        h = hash_csr(h, &rap_row_fused(&r, &a, &p));
        h = hash_csr(h, &transpose_par(&a));
    }
    h
}

fn fp_setup_kernels() -> u64 {
    // Strength + PMIS over a matrix large enough for their parallel paths.
    let a = laplace2d(96, 96);
    let s = strength(&a, 0.25, 0.8);
    let coarse = pmis(&s, 1);
    let h = hash_csr(FNV_SEED, &s);
    hash_u64s(h, coarse.is_coarse.iter().map(|&c| u64::from(c)))
}

fn fp_smoother_sweeps() -> u64 {
    let mut h = FNV_SEED;
    let a0 = laplace2d(64, 64);
    let n = a0.nrows();
    let s = strength(&a0, 0.25, 0.8);
    let coarse = pmis(&s, 1);
    let (mut ap, ord) = cf_reorder(&a0, &coarse.is_coarse);
    let ap_base = ap.clone();
    let base = Smoother::hybrid_base(&ap_base, (0..n).map(|i| i < ord.nc).collect(), PINNED_TASKS);
    let opt = Smoother::hybrid_opt(&mut ap, ord.nc, PINNED_TASKS);
    let jac = Smoother::jacobi(&ap_base, 2.0 / 3.0);
    let b = vec![1.0; n];
    let mut ws = Workspace::new();
    for (sm, mat) in [(&base, &ap_base), (&opt, &ap), (&jac, &ap_base)] {
        let mut x = vec![0.0; n];
        for sweep in 0..3 {
            sm.pre_smooth(mat, &b, &mut x, &mut ws, sweep == 0);
        }
        h = hash_f64s(h, &x);
    }
    // Random marker + random graph, baseline hybrid only.
    let mut rng = FuzzRng::new(0x5EED);
    let g = graph_laplacian(&mut rng, 3000, 4000, 0.5);
    let marker = random_marker(&mut rng, g.nrows());
    let hb = Smoother::hybrid_base(&g, marker, PINNED_TASKS);
    let bg = vec![1.0; g.nrows()];
    let mut xg = vec![0.0; g.nrows()];
    for sweep in 0..3 {
        hb.pre_smooth(&g, &bg, &mut xg, &mut ws, sweep == 0);
    }
    hash_f64s(h, &xg)
}

fn fp_e2e_solve() -> u64 {
    let a = laplace2d(48, 48);
    let b = famg::matgen::rhs::random(a.nrows(), 7);
    let cfg = AmgConfig {
        smoother_tasks: Some(PINNED_TASKS),
        ..AmgConfig::single_node_paper()
    };
    let solver = AmgSolver::setup(&a, &cfg);
    let mut x = vec![0.0; a.nrows()];
    let res = solver.solve(&b, &mut x);
    let h = hash_f64s(FNV_SEED, &x);
    hash_u64s(
        h,
        [
            res.iterations as u64,
            res.final_relres.to_bits(),
            u64::from(res.converged),
        ],
    )
}

fn fp_sort_and_reductions() -> u64 {
    use famg::sparse::spmv::residual_norm_sq;
    use famg::sparse::vecops::dot;
    use rayon::prelude::*;

    let mut rng = FuzzRng::new(0xD0D0);
    let mut v: Vec<usize> = (0..200_000).map(|_| rng.below(5000)).collect();
    v.par_sort_unstable();
    let mut h = hash_u64s(FNV_SEED, v.iter().map(|&x| x as u64));

    let n = 50_000;
    let xs: Vec<f64> = (0..n).map(|_| rng.float(-1.0, 1.0)).collect();
    let ys: Vec<f64> = (0..n).map(|_| rng.float(-1.0, 1.0)).collect();
    h = fnv1a(h, dot(&xs, &ys).to_bits());

    let a = laplace2d(96, 96);
    let x0: Vec<f64> = (0..a.nrows()).map(|_| rng.float(-1.0, 1.0)).collect();
    let bb = vec![1.0; a.nrows()];
    let mut r = vec![0.0; a.nrows()];
    let nrm = residual_norm_sq(&a, &x0, &bb, &mut r);
    h = fnv1a(h, nrm.to_bits());
    hash_f64s(h, &r)
}

/// Computes and prints one `FP <name> <hex>` line per scenario. Run
/// directly it is a cheap smoke test; the real assertions happen in
/// [`bitwise_identical_across_pool_sizes`], which compares this output
/// across subprocesses with different `RAYON_NUM_THREADS`.
#[test]
fn fingerprint_worker() {
    println!("FP spgemm_rap_transpose {:016x}", fp_spgemm_rap_transpose());
    println!("FP setup_kernels {:016x}", fp_setup_kernels());
    println!("FP smoother_sweeps {:016x}", fp_smoother_sweeps());
    println!("FP e2e_solve {:016x}", fp_e2e_solve());
    println!("FP sort_reductions {:016x}", fp_sort_and_reductions());
}

fn collect_fingerprints(num_threads: usize) -> Vec<(String, String)> {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["--exact", "fingerprint_worker", "--nocapture"])
        .env("RAYON_NUM_THREADS", num_threads.to_string())
        .output()
        .expect("spawn fingerprint subprocess");
    assert!(
        out.status.success(),
        "fingerprint subprocess (RAYON_NUM_THREADS={num_threads}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let fps: Vec<(String, String)> = stdout
        .lines()
        .filter_map(|l| {
            // libtest prints its "test <name> ..." status on the same line
            // as the first (unbuffered) print, so search rather than match
            // from the line start.
            let tail = &l[l.find("FP ")?..];
            let mut it = tail.split_whitespace().skip(1);
            Some((it.next()?.to_string(), it.next()?.to_string()))
        })
        .collect();
    assert_eq!(
        fps.len(),
        5,
        "expected 5 fingerprint lines from subprocess, got:\n{stdout}"
    );
    fps
}

/// The determinism contract, end to end: identical fingerprints for pool
/// sizes 1, 2, and 4 (covering serial-inline, minimal, and oversubscribed
/// pools — 4 ≥ `available_parallelism` on small CI boxes).
#[test]
fn bitwise_identical_across_pool_sizes() {
    let reference = collect_fingerprints(1);
    for nt in [2usize, 4] {
        let got = collect_fingerprints(nt);
        for ((name_ref, fp_ref), (name_got, fp_got)) in reference.iter().zip(&got) {
            assert_eq!(name_ref, name_got, "fingerprint order diverged");
            assert_eq!(
                fp_ref, fp_got,
                "{name_ref}: pool size {nt} diverged from serial baseline"
            );
        }
    }
}

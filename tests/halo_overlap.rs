//! Overlapped-halo correctness suite.
//!
//! The overlap mode (`DistOptFlags::overlap_comm`) computes interior rows
//! while the halo is in flight; its contract is *bitwise* equality with
//! the synchronous mode. This suite enforces that contract for the SpMV,
//! residual, and full end-to-end solves at 1/2/4 ranks, exercises the
//! interior/boundary split's edge cases (all-interior, all-boundary, and
//! empty ranks), and pins the hardened panic paths of the distributed
//! kernels (out-of-partition `owner_of`, mismatched wire payloads,
//! mis-sized kernel vectors).

use famg::core::solver::SolveError;
use famg::core::AmgConfig;
use famg::dist::comm::run_ranks;
use famg::dist::halo::VectorExchange;
use famg::dist::hierarchy::{DistHierarchy, DistOptFlags};
use famg::dist::parcsr::{default_partition, owner_of, ParCsr};
use famg::dist::solve::{dist_amg_solve, dist_fgmres_amg};
use famg::dist::spmv::{try_dist_residual, try_dist_residual_norm_sq, try_dist_spmv};
use famg::matgen::{laplace2d, rhs};
use famg::sparse::Csr;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Exact bit patterns of a float vector (the determinism currency).
fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn flags(overlap: bool) -> DistOptFlags {
    DistOptFlags {
        overlap_comm: overlap,
        ..DistOptFlags::all()
    }
}

/// Runs `dist_spmv` in one halo mode and returns the concatenated result.
fn spmv_all_ranks(a: &Csr, starts: &[usize], x: &[f64], overlap: bool) -> Vec<f64> {
    let nranks = starts.len() - 1;
    let (parts, _) = run_ranks(nranks, |c| {
        let r = c.rank();
        let pa = ParCsr::from_global_rows(a, starts[r], starts[r + 1], starts.to_vec(), r);
        let plan = VectorExchange::plan(c, &pa.colmap, starts);
        let xl = x[starts[r]..starts[r + 1]].to_vec();
        let mut y = vec![0.0; pa.local_rows()];
        try_dist_spmv(c, &pa, &plan, &xl, &mut y, overlap).unwrap();
        y
    });
    parts.concat()
}

#[test]
fn spmv_overlap_bitwise_identical() {
    let a = laplace2d(12, 10);
    let x = rhs::random(a.nrows(), 7);
    for nranks in [1usize, 2, 4] {
        let starts = default_partition(a.nrows(), nranks);
        let sync = spmv_all_ranks(&a, &starts, &x, false);
        let over = spmv_all_ranks(&a, &starts, &x, true);
        assert_eq!(bits(&sync), bits(&over), "nranks {nranks}");
    }
}

#[test]
fn residual_and_norm_overlap_bitwise_identical() {
    let a = laplace2d(11, 9);
    let n = a.nrows();
    let x = rhs::random(n, 3);
    let b = rhs::random(n, 4);
    for nranks in [1usize, 2, 4] {
        let starts = default_partition(n, nranks);
        let run = |overlap: bool| {
            let (parts, _) = run_ranks(nranks, |c| {
                let rk = c.rank();
                let pa =
                    ParCsr::from_global_rows(&a, starts[rk], starts[rk + 1], starts.clone(), rk);
                let plan = VectorExchange::plan(c, &pa.colmap, &starts);
                let xl = x[starts[rk]..starts[rk + 1]].to_vec();
                let bl = b[starts[rk]..starts[rk + 1]].to_vec();
                let mut r = vec![0.0; pa.local_rows()];
                let local = try_dist_residual(c, &pa, &plan, &xl, &bl, &mut r, overlap).unwrap();
                let global =
                    try_dist_residual_norm_sq(c, &pa, &plan, &xl, &bl, &mut r, overlap).unwrap();
                (r, local, global)
            });
            let r: Vec<f64> = parts.iter().flat_map(|(r, _, _)| r.clone()).collect();
            let locals: Vec<f64> = parts.iter().map(|&(_, l, _)| l).collect();
            let globals: Vec<f64> = parts.iter().map(|&(_, _, g)| g).collect();
            (r, locals, globals)
        };
        let (rs, ls, gs) = run(false);
        let (ro, lo, go) = run(true);
        assert_eq!(bits(&rs), bits(&ro), "residual, nranks {nranks}");
        assert_eq!(bits(&ls), bits(&lo), "local norms, nranks {nranks}");
        assert_eq!(bits(&gs), bits(&go), "global norms, nranks {nranks}");
    }
}

/// End-to-end: the full AMG and FGMRES solves (setup identical, solve
/// phase toggling only the halo mode) converge to bitwise-identical
/// iterates in the same number of iterations.
#[test]
fn solve_overlap_bitwise_identical() {
    let a = laplace2d(16, 16);
    let n = a.nrows();
    let b = rhs::ones(n);
    let cfg = AmgConfig::single_node_paper();
    for nranks in [1usize, 2, 4] {
        let starts = default_partition(n, nranks);
        let run = |overlap: bool, fgmres: bool| {
            let (parts, _) = run_ranks(nranks, |c| {
                let r = c.rank();
                let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
                let h = DistHierarchy::build(c, pa, &cfg, flags(overlap));
                let bl = b[starts[r]..starts[r + 1]].to_vec();
                let mut xl = vec![0.0; bl.len()];
                let res = if fgmres {
                    dist_fgmres_amg(c, &h, &bl, &mut xl, cfg.tolerance, 100, 30)
                } else {
                    dist_amg_solve(c, &h, &bl, &mut xl)
                };
                assert!(res.converged);
                (xl, res.iterations, res.final_relres)
            });
            let x: Vec<f64> = parts.iter().flat_map(|(xl, _, _)| xl.clone()).collect();
            (x, parts[0].1, parts[0].2)
        };
        for fgmres in [false, true] {
            let (xs, is, rs) = run(false, fgmres);
            let (xo, io, ro) = run(true, fgmres);
            assert_eq!(is, io, "iterations, nranks {nranks}, fgmres {fgmres}");
            assert_eq!(
                rs.to_bits(),
                ro.to_bits(),
                "relres, nranks {nranks}, fgmres {fgmres}"
            );
            assert_eq!(bits(&xs), bits(&xo), "x, nranks {nranks}, fgmres {fgmres}");
        }
    }
}

/// Single rank: no halo at all — every row is interior and the overlap
/// path must degrade to the purely local product.
#[test]
fn split_all_interior_single_rank() {
    let a = laplace2d(6, 6);
    let p = ParCsr::from_global_rows(&a, 0, 36, vec![0, 36], 0);
    assert_eq!(p.interior_rows.len(), 36);
    assert!(p.boundary_rows.is_empty());
    let x = rhs::random(36, 1);
    let starts = vec![0usize, 36];
    let sync = spmv_all_ranks(&a, &starts, &x, false);
    let over = spmv_all_ranks(&a, &starts, &x, true);
    assert_eq!(bits(&sync), bits(&over));
}

/// Two decoupled blocks split at the block boundary: both ranks are
/// all-interior *with a peer present* — the plan has no traffic and the
/// overlap window covers the entire (local) computation.
#[test]
fn split_all_interior_two_ranks() {
    let block = laplace2d(4, 4);
    let nb = block.nrows();
    let mut trips = Vec::new();
    for bi in 0..2 {
        for i in 0..nb {
            for (c, v) in block.row_iter(i) {
                trips.push((bi * nb + i, bi * nb + c, v));
            }
        }
    }
    let a = Csr::from_triplets(2 * nb, 2 * nb, trips);
    let starts = vec![0, nb, 2 * nb];
    let x = rhs::random(2 * nb, 9);
    let (splits, _) = run_ranks(2, |c| {
        let r = c.rank();
        let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
        (pa.interior_rows.len(), pa.boundary_rows.len())
    });
    for (r, &(ni, nb_)) in splits.iter().enumerate() {
        assert_eq!(ni, nb, "rank {r} interior");
        assert_eq!(nb_, 0, "rank {r} boundary");
    }
    let sync = spmv_all_ranks(&a, &starts, &x, false);
    let over = spmv_all_ranks(&a, &starts, &x, true);
    assert_eq!(bits(&sync), bits(&over));
}

/// One grid row per rank: every local row couples to a neighbor slab, so
/// the interior set is empty and the overlap path does all its work after
/// `finish` — still bitwise identical.
#[test]
fn split_all_boundary_ranks() {
    let a = laplace2d(4, 4);
    let starts = default_partition(16, 4);
    let (splits, _) = run_ranks(4, |c| {
        let r = c.rank();
        let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
        (pa.interior_rows.len(), pa.boundary_rows.len())
    });
    for (r, &(ni, nb)) in splits.iter().enumerate() {
        assert_eq!(ni, 0, "rank {r} interior");
        assert_eq!(nb, 4, "rank {r} boundary");
    }
    let x = rhs::random(16, 2);
    let sync = spmv_all_ranks(&a, &starts, &x, false);
    let over = spmv_all_ranks(&a, &starts, &x, true);
    assert_eq!(bits(&sync), bits(&over));
}

/// A rank owning zero rows (duplicate partition boundary) participates in
/// both halo modes without deadlocking or panicking.
#[test]
fn split_empty_rank() {
    let a = laplace2d(4, 4);
    let starts = vec![0usize, 8, 8, 16];
    let x = rhs::random(16, 5);
    let mut y_ref = vec![0.0; 16];
    famg::sparse::spmv::spmv_seq(&a, &x, &mut y_ref);
    for overlap in [false, true] {
        let y = spmv_all_ranks(&a, &starts, &x, overlap);
        assert_eq!(y.len(), 16);
        for (u, v) in y.iter().zip(&y_ref) {
            assert!((u - v).abs() < 1e-12, "overlap {overlap}");
        }
    }
    let sync = spmv_all_ranks(&a, &starts, &x, false);
    let over = spmv_all_ranks(&a, &starts, &x, true);
    assert_eq!(bits(&sync), bits(&over));
}

/// Hardened `owner_of`: an index beyond the partition reports the index
/// and the partition extent instead of a raw slice panic (release mode
/// included).
#[test]
fn owner_of_out_of_partition_reports_diagnostic() {
    let err = catch_unwind(|| owner_of(&[0, 4, 8], 8)).unwrap_err();
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("outside the partition extent 8") && msg.contains("2 ranks"),
        "unexpected panic message: {msg}"
    );
    let err = catch_unwind(|| owner_of(&[], 0)).unwrap_err();
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("partition extent"), "empty starts: {msg}");
}

/// Hardened payload validation: ranks executing *different* plans for the
/// same tag abort with a diagnostic on both sides instead of corrupting
/// buffers (the old `debug_assert` let release builds copy mismatched
/// slices or die inside `copy_from_slice`).
#[test]
fn mismatched_plans_panic_on_both_ranks() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_ranks(2, |c| {
            let r = c.rank();
            let starts = vec![0usize, 4, 8];
            // Plan A requests two halo entries per rank, plan B one.
            let colmap_a: Vec<usize> = if r == 0 { vec![4, 5] } else { vec![0, 1] };
            let colmap_b: Vec<usize> = if r == 0 { vec![4] } else { vec![0] };
            let plan_a = VectorExchange::plan(c, &colmap_a, &starts);
            let plan_b = VectorExchange::plan(c, &colmap_b, &starts);
            let x = vec![1.0; 4];
            // Rank 0 executes plan A while rank 1 executes plan B: each
            // side receives a payload sized for the *other* plan.
            if r == 0 {
                plan_a.exchange(c, &x)
            } else {
                plan_b.exchange(c, &x)
            }
        });
    }));
    assert!(result.is_err(), "mismatched plans must not exchange");
}

/// Typed dimension errors from the kernel `try_` variants (PR 6
/// convention): mis-sized vectors surface as `SolveError` before any
/// message is posted, so all ranks fail symmetrically with no deadlock.
#[test]
fn kernel_try_variants_reject_bad_shapes() {
    let a = laplace2d(4, 4);
    let starts = default_partition(16, 2);
    run_ranks(2, |c| {
        let r = c.rank();
        let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
        let plan = VectorExchange::plan(c, &pa.colmap, &starts);
        let n = pa.local_rows();
        for overlap in [false, true] {
            let x = vec![0.0; n + 1];
            let mut y = vec![0.0; n];
            let err = try_dist_spmv(c, &pa, &plan, &x, &mut y, overlap).unwrap_err();
            assert!(matches!(
                err,
                SolveError::DimensionMismatch {
                    what: "local x (owned columns)",
                    ..
                }
            ));
            let x = vec![0.0; n];
            let mut y = vec![0.0; n + 3];
            let err = try_dist_spmv(c, &pa, &plan, &x, &mut y, overlap).unwrap_err();
            assert!(matches!(
                err,
                SolveError::DimensionMismatch {
                    what: "local y (owned rows)",
                    ..
                }
            ));
            let b = vec![0.0; n - 1];
            let mut res = vec![0.0; n];
            let err = try_dist_residual(c, &pa, &plan, &x, &b, &mut res, overlap).unwrap_err();
            assert!(matches!(
                err,
                SolveError::DimensionMismatch {
                    what: "local right-hand side",
                    ..
                }
            ));
        }
        // A plan that does not match the operator's offd width is caught
        // up front, too (both ranks plan the mismatch collectively).
        let empty_plan = VectorExchange::plan(c, &[], &starts);
        if !pa.colmap.is_empty() {
            let x = vec![0.0; n];
            let mut y = vec![0.0; n];
            let err = try_dist_spmv(c, &pa, &empty_plan, &x, &mut y, false).unwrap_err();
            assert!(matches!(
                err,
                SolveError::DimensionMismatch {
                    what: "halo plan external length",
                    ..
                }
            ));
        }
    });
}

/// The overlapped solve records exposed-wait telemetry: every `finish`
/// splits the would-be synchronous wait into `halo_exposed_ns` +
/// `halo_hidden_ns`. Individual values are timing-dependent, but across
/// a whole solve some rank is always late at some exchange, so the sum
/// over ranks and both counters must be positive (the comm_volume bench
/// gates the on-vs-off comparison).
#[test]
fn solve_profile_carries_exposed_wait_counter() {
    if !famg_prof::enabled() {
        return;
    }
    let a = laplace2d(12, 12);
    let starts = default_partition(a.nrows(), 2);
    let cfg = AmgConfig::single_node_paper();
    let b = rhs::ones(a.nrows());
    let (waits, _) = run_ranks(2, |c| {
        let r = c.rank();
        let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
        let h = DistHierarchy::build(c, pa, &cfg, flags(true));
        let bl = b[starts[r]..starts[r + 1]].to_vec();
        let mut xl = vec![0.0; bl.len()];
        let res = dist_amg_solve(c, &h, &bl, &mut xl);
        assert!(res.converged);
        res.profile.total_counter("halo_exposed_ns") + res.profile.total_counter("halo_hidden_ns")
    });
    assert!(
        waits.iter().sum::<u64>() > 0,
        "no halo wait recorded across an entire two-rank solve"
    );
}

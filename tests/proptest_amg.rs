//! Property-based tests for the AMG components: coarsening validity,
//! interpolation invariants, and end-to-end convergence on random
//! diagonally dominant SPD systems.

use famg::core::coarsen::{pmis, validate_cf};
use famg::core::interp::{extended_i, truncate_row, CfMap, TruncParams};
use famg::core::strength::strength;
use famg::core::{AmgConfig, AmgSolver};
use famg::sparse::Csr;
use proptest::prelude::*;

/// Strategy: a random connected-ish graph Laplacian with unit weights,
/// shifted to be strictly diagonally dominant (SPD).
fn graph_laplacian(max_n: usize, shift: f64) -> impl Strategy<Value = Csr> {
    (4..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), n..4 * n).prop_map(move |edges| {
            let mut trips = Vec::new();
            let mut degree = vec![0.0f64; n];
            // Chain backbone guarantees connectivity.
            let mut all_edges: Vec<(usize, usize)> =
                (1..n).map(|i| (i - 1, i)).collect();
            all_edges.extend(edges.into_iter().filter(|&(i, j)| i != j));
            all_edges.sort_unstable();
            all_edges.dedup();
            for (i, j) in all_edges {
                trips.push((i, j, -1.0));
                trips.push((j, i, -1.0));
                degree[i] += 1.0;
                degree[j] += 1.0;
            }
            for (i, d) in degree.iter().enumerate() {
                trips.push((i, i, d + shift));
            }
            Csr::from_triplets(n, n, trips)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pmis_always_valid(a in graph_laplacian(60, 0.0), seed in 0u64..100) {
        let s = strength(&a, 0.25, 10.0);
        let c = pmis(&s, seed);
        prop_assert!(validate_cf(&s, &c, 1).is_ok());
        // Non-trivial coarsening on non-trivial graphs.
        if s.nnz() > 0 {
            prop_assert!(c.ncoarse > 0);
            prop_assert!(c.ncoarse < a.nrows());
        }
    }

    #[test]
    fn extended_i_rows_sum_to_one_on_zero_rowsum_operators(
        a in graph_laplacian(40, 0.0),
        seed in 0u64..50,
    ) {
        // Pure graph Laplacian: every row sums to zero, so interpolation
        // must reproduce constants exactly.
        let s = strength(&a, 0.25, 10.0);
        let c = pmis(&s, seed);
        let cf = CfMap::new(c.is_coarse);
        let p = extended_i(&a, &s, &cf, None);
        for i in 0..p.nrows() {
            if p.row_nnz(i) > 0 {
                let w: f64 = p.row_vals(i).iter().sum();
                prop_assert!((w - 1.0).abs() < 1e-9, "row {} sums to {}", i, w);
            }
        }
    }

    #[test]
    fn truncation_preserves_row_sum_and_caps_length(
        vals in proptest::collection::vec(-3.0f64..3.0, 1..20),
        factor in 0.0f64..0.5,
        max_el in 0usize..8,
    ) {
        let mut cols: Vec<usize> = (0..vals.len()).collect();
        let mut v = vals.clone();
        let before: f64 = v.iter().sum();
        truncate_row(&mut cols, &mut v, &TruncParams { factor, max_elements: max_el });
        if max_el > 0 {
            prop_assert!(v.len() <= max_el.max(1));
        }
        let after: f64 = v.iter().sum();
        if after != 0.0 && before != 0.0 && !v.is_empty() {
            prop_assert!((after - before).abs() < 1e-9 * before.abs().max(1.0));
        }
    }

    #[test]
    fn amg_converges_on_random_dominant_systems(
        a in graph_laplacian(50, 0.5),
        seed in 0u64..20,
    ) {
        let b = famg::matgen::rhs::random(a.nrows(), seed);
        let cfg = AmgConfig {
            max_iterations: 300,
            coarse_solve_size: 16,
            ..AmgConfig::single_node_paper()
        };
        let solver = AmgSolver::setup(&a, &cfg);
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        prop_assert!(res.converged, "stalled at {:e}", res.final_relres);
    }

    #[test]
    fn hierarchy_levels_strictly_shrink(a in graph_laplacian(80, 0.0)) {
        let h = famg::core::Hierarchy::build(&a, &AmgConfig::single_node_paper());
        for w in h.stats.level_rows.windows(2) {
            prop_assert!(w[1] < w[0]);
        }
        prop_assert!(h.stats.operator_complexity() < 6.0);
    }
}

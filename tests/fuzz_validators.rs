//! Randomized negative tests for every `famg-check` validator: build a
//! well-formed object, corrupt it in a random spot, and require the
//! validator to flag it. Complements the crate's unit tests, which use
//! hand-built minimal counterexamples.

mod common;

use common::{graph_laplacian, random_csr, FuzzRng};
use famg::check;
use famg::core::coarsen::pmis;
use famg::core::interp::{extended_i, CfMap};
use famg::core::strength::strength;
use famg::sparse::spgemm::spgemm_one_pass;
use famg::sparse::transpose::transpose;
use famg::sparse::Csr;

const CASES: u64 = 24;

/// A random Laplacian plus a PMIS splitting and extended+i P — the
/// standard well-formed AMG triple the corruption tests start from.
fn amg_setup(rng: &mut FuzzRng, case: u64) -> (Csr, Csr, Vec<bool>, Csr) {
    let n = rng.range(8, 40);
    let extra = rng.below(2 * n);
    let a = graph_laplacian(rng, n, extra, 0.0);
    let s = strength(&a, 0.25, 10.0);
    let c = pmis(&s, case);
    let cf = CfMap::new(c.is_coarse.clone());
    let p = extended_i(&a, &s, &cf, None);
    (a, s, c.is_coarse, p)
}

#[test]
fn structure_checks_catch_random_corruption() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(case);
        let n = rng.range(2, 30);
        let extra = rng_extra(&mut rng, n);
        let a = graph_laplacian(&mut rng, n, extra, 0.0);
        assert!(check::check_csr(&a).is_ok(), "case {case}: clean input");
        assert!(check::check_sorted_unique(&a).is_ok(), "case {case}");
        assert!(check::check_no_duplicates(&a).is_ok(), "case {case}");
        assert!(check::check_symmetric_pattern(&a).is_ok(), "case {case}");
        let nnz = a.nnz();
        if nnz == 0 {
            continue;
        }
        // Non-finite value.
        let mut bad = a.clone();
        let k = rng.below(nnz);
        bad.values_mut()[k] = if rng.bool() { f64::NAN } else { f64::INFINITY };
        assert!(
            check::check_finite(&bad).is_err(),
            "case {case}: NaN slipped through"
        );
        assert!(check::check_csr(&bad).is_err(), "case {case}");
        // Out-of-bounds column index.
        let mut bad = a.clone();
        let k = rng.below(nnz);
        {
            let (cols, _) = bad.colidx_values_mut();
            cols[k] = n + rng.below(5);
        }
        assert!(check::check_csr(&bad).is_err(), "case {case}: oob column");
        // Duplicate column inside a multi-entry row.
        let mut bad = a.clone();
        if let Some(i) = (0..n).find(|&i| bad.row_nnz(i) >= 2) {
            let r = bad.row_range(i);
            let (cols, _) = bad.colidx_values_mut();
            cols[r.start + 1] = cols[r.start];
            assert!(
                check::check_no_duplicates(&bad).is_err(),
                "case {case}: duplicate"
            );
            assert!(check::check_sorted_unique(&bad).is_err(), "case {case}");
        }
        // Swap two entries of a multi-entry row: unsorted but duplicate-free.
        let mut bad = a.clone();
        if let Some(i) = (0..n).find(|&i| bad.row_nnz(i) >= 2) {
            let r = bad.row_range(i);
            let (cols, _) = bad.colidx_values_mut();
            cols.swap(r.start, r.start + 1);
            assert!(
                check::check_sorted_unique(&bad).is_err(),
                "case {case}: unsorted"
            );
            assert!(check::check_no_duplicates(&bad).is_ok(), "case {case}");
        }
    }
}

fn rng_extra(rng: &mut FuzzRng, n: usize) -> usize {
    rng.below(2 * n + 1)
}

#[test]
fn symmetry_check_catches_dropped_entries() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x100 + case);
        let n = rng.range(3, 25);
        let extra = rng_extra(&mut rng, n);
        let a = graph_laplacian(&mut rng, n, extra, 0.0);
        // Drop one strictly-off-diagonal entry: pattern loses symmetry.
        let off: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| a.row_iter(i).map(move |(c, v)| (i, c, v)))
            .collect();
        let Some(drop_at) = off.iter().position(|&(i, c, _)| i != c) else {
            continue;
        };
        let trips: Vec<(usize, usize, f64)> = off
            .into_iter()
            .enumerate()
            .filter(|&(k, _)| k != drop_at)
            .map(|(_, t)| t)
            .collect();
        let bad = Csr::from_triplets(n, n, trips);
        assert!(
            check::check_symmetric_pattern(&bad).is_err(),
            "case {case}: asymmetric pattern passed"
        );
    }
}

#[test]
fn cf_splitting_check_catches_promotions_and_demotions() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x200 + case);
        let (_, s, mut is_coarse, _) = amg_setup(&mut rng, case);
        assert!(
            check::check_cf_splitting(&s, &is_coarse, 1).is_ok(),
            "case {case}: valid splitting rejected"
        );
        // Promote a random F-point that neighbours a C-point:
        // independence must break.
        let n = s.nrows();
        let promoted =
            (0..n).find(|&i| !is_coarse[i] && s.row_cols(i).iter().any(|&j| is_coarse[j]));
        if let Some(i) = promoted {
            is_coarse[i] = true;
            assert!(
                check::check_cf_splitting(&s, &is_coarse, 1).is_err(),
                "case {case}: adjacent C-points passed"
            );
            is_coarse[i] = false;
        }
        // Demote every C-point: coverage must break (any strongly
        // connected F-point is left stranded).
        let all_f = vec![false; n];
        if (0..n).any(|i| s.row_nnz(i) > 0 && transpose(&s).row_nnz(i) > 0) {
            assert!(
                check::check_cf_splitting(&s, &all_f, 1).is_err(),
                "case {case}: coverage hole passed"
            );
        }
    }
}

#[test]
fn interp_checks_catch_corrupted_rows() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x300 + case);
        let (a, _, is_coarse, p) = amg_setup(&mut rng, case);
        assert!(
            check::check_interp_c_identity(&p, &is_coarse).is_ok(),
            "case {case}: valid P rejected"
        );
        assert!(
            check::check_interp_row_sums(&p, &a, 1e-9).is_ok(),
            "case {case}: valid row sums rejected"
        );
        if p.nnz() == 0 {
            continue;
        }
        // Scale one weight: some row sum (or a C-identity weight) drifts.
        let mut bad = p.clone();
        let k = rng.below(p.nnz());
        bad.values_mut()[k] += 0.37;
        let row_sums = check::check_interp_row_sums(&bad, &a, 1e-9);
        let c_ident = check::check_interp_c_identity(&bad, &is_coarse);
        assert!(
            row_sums.is_err() || c_ident.is_err(),
            "case {case}: perturbed weight passed both interp checks"
        );
        // Corrupt a C-row weight specifically.
        if let Some(ci) = (0..p.nrows()).find(|&i| is_coarse[i]) {
            let mut bad = p.clone();
            let r = bad.row_range(ci);
            bad.values_mut()[r.start] = 0.5;
            assert!(
                check::check_interp_c_identity(&bad, &is_coarse).is_err(),
                "case {case}: broken C-identity passed"
            );
        }
    }
}

#[test]
fn galerkin_check_catches_wrong_coarse_operator() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x400 + case);
        let (a, _, _, p) = amg_setup(&mut rng, case);
        let nc = p.ncols();
        if nc == 0 || p.nnz() == 0 {
            continue;
        }
        let r = transpose(&p);
        let ac = spgemm_one_pass(&spgemm_one_pass(&r, &a), &p);
        let samples = check::galerkin_sample_rows(nc, 16);
        assert!(
            check::check_galerkin(&ac, &a, &p, &samples, 1e-8).is_ok(),
            "case {case}: true RAP rejected"
        );
        // Perturb one coarse value in a sampled row.
        let mut bad = ac.clone();
        let Some(&row) = samples.iter().find(|&&i| bad.row_nnz(i) > 0) else {
            continue;
        };
        let rr = bad.row_range(row);
        bad.values_mut()[rr.start] += 1.0;
        assert!(
            check::check_galerkin(&bad, &a, &p, &samples, 1e-8).is_err(),
            "case {case}: corrupted RAP passed"
        );
    }
}

#[test]
fn raw_parts_check_catches_malformed_buffers() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x500 + case);
        let (nr, nc) = (rng.range(2, 20), rng.range(2, 20));
        let a = random_csr(&mut rng, nr, nc);
        let (rowptr, colidx, values) = (a.rowptr(), a.colidx(), a.values());
        assert!(
            check::check_raw_parts(nr, nc, rowptr, colidx, values).is_ok(),
            "case {case}"
        );
        // Truncated rowptr.
        assert!(
            check::check_raw_parts(nr, nc, &rowptr[..nr], colidx, values).is_err(),
            "case {case}: short rowptr passed"
        );
        // Non-monotone rowptr: spike an interior pointer above the end.
        if nr >= 2 {
            let mut bad = rowptr.to_vec();
            let i = rng.range(1, nr);
            bad[i] = bad[nr] + 1;
            assert!(
                check::check_raw_parts(nr, nc, &bad, colidx, values).is_err(),
                "case {case}: corrupt rowptr passed"
            );
        }
        // Mismatched value length.
        if !values.is_empty() {
            assert!(
                check::check_raw_parts(nr, nc, rowptr, colidx, &values[..values.len() - 1])
                    .is_err(),
                "case {case}: short values passed"
            );
        }
    }
}

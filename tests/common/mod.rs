//! Shared helpers for the deterministic fuzz suites.
//!
//! The suites replace the former proptest-based property tests with
//! explicit case loops driven by the workspace's own counter-based
//! generator ([`famg::core::rng`]), so failures reproduce exactly from
//! the printed case seed with no external dependencies.
#![allow(dead_code)]

use famg::core::rng::splitmix64;
use famg::sparse::permute::Permutation;
use famg::sparse::Csr;

/// Deterministic stream of pseudo-random draws: each call mixes a fresh
/// counter value with the seed through splitmix64.
pub struct FuzzRng {
    seed: u64,
    counter: u64,
}

impl FuzzRng {
    pub fn new(seed: u64) -> Self {
        FuzzRng {
            seed: splitmix64(seed ^ 0x9e37_79b9_7f4a_7c15),
            counter: 0,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.counter += 1;
        splitmix64(
            self.seed
                .wrapping_add(self.counter.wrapping_mul(0xbf58_476d_1ce4_e5b9)),
        )
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn float(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A random sparse matrix with up to `3 * nrows` nonzero triplets
/// (duplicates merge additively) and values in `(-4, 4)` with zeros
/// filtered, matching the old proptest strategy.
pub fn random_csr(rng: &mut FuzzRng, nrows: usize, ncols: usize) -> Csr {
    let ntrips = rng.below(3 * nrows + 1);
    let mut trips = Vec::with_capacity(ntrips);
    for _ in 0..ntrips {
        let v = rng.float(-4.0, 4.0);
        if v != 0.0 {
            trips.push((rng.below(nrows), rng.below(ncols), v));
        }
    }
    Csr::from_triplets(nrows, ncols, trips)
}

/// A connected random graph Laplacian: chain backbone plus `extra`
/// random undirected unit-weight edges, diagonal = degree + `shift`
/// (`shift > 0` makes it strictly diagonally dominant SPD).
pub fn graph_laplacian(rng: &mut FuzzRng, n: usize, extra: usize, shift: f64) -> Csr {
    let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    for _ in 0..extra {
        let i = rng.below(n);
        let j = rng.below(n);
        if i != j {
            edges.push((i.min(j), i.max(j)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let mut trips = Vec::new();
    let mut degree = vec![0.0f64; n];
    for (i, j) in edges {
        trips.push((i, j, -1.0));
        trips.push((j, i, -1.0));
        degree[i] += 1.0;
        degree[j] += 1.0;
    }
    for (i, d) in degree.iter().enumerate() {
        trips.push((i, i, d + shift));
    }
    Csr::from_triplets(n, n, trips)
}

/// A uniformly random permutation of `0..n` (Fisher–Yates).
pub fn random_permutation(rng: &mut FuzzRng, n: usize) -> Permutation {
    let mut fwd: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i + 1);
        fwd.swap(i, j);
    }
    Permutation::from_forward(fwd)
}

/// A random C/F marker vector.
pub fn random_marker(rng: &mut FuzzRng, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.bool()).collect()
}

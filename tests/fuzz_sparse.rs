//! Deterministic fuzz tests for the sparse-kernel substrate.
//!
//! Each test sweeps a fixed number of seeded random cases; the case
//! seed is part of every assertion message so a failure reproduces
//! exactly.

mod common;

use common::{random_csr, random_permutation, FuzzRng};
use famg::sparse::permute::{cf_permutation, permute_symmetric};
use famg::sparse::spgemm::{numeric_only, spgemm_one_pass, spgemm_two_pass};
use famg::sparse::transpose::{transpose, transpose_par};
use famg::sparse::triple::{csr_add, rap_row_fused, rap_scalar_fused, rap_unfused};
use famg::sparse::Csr;

const CASES: u64 = 64;

#[test]
fn transpose_is_involution() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(case);
        let (nr, nc) = (rng.range(1, 24), rng.range(1, 24));
        let a = random_csr(&mut rng, nr, nc);
        let tt = transpose(&transpose(&a));
        assert_eq!(a.to_dense(), tt.to_dense(), "case {case}");
    }
}

#[test]
fn parallel_transpose_matches_sequential() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x100 + case);
        let (nr, nc) = (rng.range(1, 24), rng.range(1, 24));
        let a = random_csr(&mut rng, nr, nc);
        assert_eq!(transpose(&a), transpose_par(&a), "case {case}");
    }
}

#[test]
fn transpose_reverses_products() {
    // (A·Aᵀ)ᵀ = A·Aᵀ and (A·B)ᵀ = Bᵀ·Aᵀ with B = Aᵀ, which always has
    // a compatible inner dimension.
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x200 + case);
        let (nr, nc) = (rng.range(1, 14), rng.range(1, 10));
        let a = random_csr(&mut rng, nr, nc);
        let b = transpose(&a);
        let ab = spgemm_one_pass(&a, &b);
        let btat = spgemm_one_pass(&transpose(&b), &transpose(&a));
        assert!(transpose(&ab).frob_diff(&btat) < 1e-9, "case {case}");
    }
}

#[test]
fn spgemm_variants_agree() {
    // Use A·Aᵀ so the shapes always match.
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x300 + case);
        let (nr, nc) = (rng.range(1, 16), rng.range(1, 16));
        let a = random_csr(&mut rng, nr, nc);
        let at = transpose(&a);
        let c1 = spgemm_two_pass(&a, &at);
        let c2 = spgemm_one_pass(&a, &at);
        assert_eq!(c1, c2, "case {case}");
    }
}

#[test]
fn numeric_only_reproduces_values() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x400 + case);
        let (nr, nc) = (rng.range(1, 14), rng.range(1, 14));
        let a = random_csr(&mut rng, nr, nc);
        let at = transpose(&a);
        let mut c = spgemm_one_pass(&a, &at);
        let expect = c.clone();
        for v in c.values_mut() {
            *v = -7.5;
        }
        numeric_only(&a, &at, &mut c);
        assert_eq!(c, expect, "case {case}");
    }
}

#[test]
fn rap_variants_agree() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x500 + case);
        let n = rng.range(2, 18);
        let a = random_csr(&mut rng, n, n);
        // Shift the diagonal so A is never all-zero, and pair points
        // into a piecewise-constant P.
        let sq = csr_add(0.5, &Csr::identity(n), 1.0, &a);
        let nc = n.div_ceil(2);
        let p = Csr::from_triplets(n, nc, (0..n).map(|i| (i, i / 2, 1.0)).collect::<Vec<_>>());
        let r = transpose(&p);
        let c0 = rap_unfused(&r, &sq, &p);
        let c1 = rap_row_fused(&r, &sq, &p);
        let c2 = rap_scalar_fused(&r, &sq, &p);
        assert!(c0.frob_diff(&c1) < 1e-9, "case {case} (row-fused)");
        assert!(c0.frob_diff(&c2) < 1e-9, "case {case} (scalar-fused)");
    }
}

#[test]
fn symmetric_permutation_preserves_spectrum_proxy() {
    // Permutation preserves the nnz count, the diagonal multiset, and
    // SpMV results up to reordering.
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x600 + case);
        let n = rng.range(2, 20);
        let a = random_csr(&mut rng, n, n);
        let p = random_permutation(&mut rng, n);
        let ap = permute_symmetric(&a, &p);
        assert_eq!(a.nnz(), ap.nnz(), "case {case}");
        let mut d1 = a.diagonal();
        let mut d2 = ap.diagonal();
        d1.sort_by(f64::total_cmp);
        d2.sort_by(f64::total_cmp);
        assert_eq!(d1, d2, "case {case}");
        let x: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut y = vec![0.0; n];
        famg::sparse::spmv::spmv_seq(&a, &x, &mut y);
        let mut yp = vec![0.0; n];
        famg::sparse::spmv::spmv_seq(&ap, &p.apply_vec(&x), &mut yp);
        let back = p.unapply_vec(&yp);
        for (u, v) in y.iter().zip(&back) {
            assert!((u - v).abs() < 1e-10, "case {case}");
        }
    }
}

#[test]
fn cf_permutation_is_stable_partition() {
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x700 + case);
        let n = rng.range(1, 60);
        let marker = common::random_marker(&mut rng, n);
        let (p, nc) = cf_permutation(&marker);
        // Coarse points map to [0, nc) preserving relative order.
        let mut last_c = None;
        let mut last_f = None;
        for (i, &c) in marker.iter().enumerate() {
            let img = p.forward[i];
            if c {
                assert!(img < nc, "case {case}");
                if let Some(prev) = last_c {
                    assert!(img > prev, "case {case}");
                }
                last_c = Some(img);
            } else {
                assert!(img >= nc, "case {case}");
                if let Some(prev) = last_f {
                    assert!(img > prev, "case {case}");
                }
                last_f = Some(img);
            }
        }
    }
}

#[test]
fn csr_add_linear() {
    // a + (-1)*a = 0 and 2a = a + a.
    for case in 0..CASES {
        let mut rng = FuzzRng::new(0x800 + case);
        let (nr, nc) = (rng.range(1, 12), rng.range(1, 12));
        let a = random_csr(&mut rng, nr, nc);
        let zero = csr_add(1.0, &a, -1.0, &a);
        assert!(
            zero.to_dense().iter().all(|&v| v.abs() < 1e-12),
            "case {case}"
        );
        let two = csr_add(1.0, &a, 1.0, &a);
        let scaled = {
            let mut s = a.clone();
            for v in s.values_mut() {
                *v *= 2.0;
            }
            s
        };
        assert!(two.frob_diff(&scaled) < 1e-12, "case {case}");
    }
}

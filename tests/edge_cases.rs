//! Edge cases and failure injection across the public API: degenerate
//! sizes, pathological matrices, and misuse that must fail loudly.

use famg::core::{AmgConfig, AmgSolver};
use famg::matgen::rhs;
use famg::sparse::Csr;

#[test]
fn one_by_one_system() {
    let a = Csr::from_triplets(1, 1, vec![(0, 0, 4.0)]);
    let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
    let mut x = vec![0.0];
    let res = solver.solve(&[8.0], &mut x);
    assert!(res.converged);
    assert!((x[0] - 2.0).abs() < 1e-12);
}

#[test]
fn diagonal_system_solves_in_one_cycle_or_less() {
    let n = 50;
    let a = Csr::from_triplets(
        n,
        n,
        (0..n).map(|i| (i, i, 2.0 + i as f64)).collect::<Vec<_>>(),
    );
    let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
    // No off-diagonals: strength is empty, everything is F, a single
    // level handles it via the direct coarse solve or smoothing.
    let b: Vec<f64> = (0..n).map(|i| (2.0 + i as f64) * 3.0).collect();
    let mut x = vec![0.0; n];
    let res = solver.solve(&b, &mut x);
    assert!(res.converged);
    for xi in &x {
        assert!((xi - 3.0).abs() < 1e-6);
    }
}

#[test]
fn already_converged_initial_guess() {
    let a = famg::matgen::laplace2d(10, 10);
    let x_true = rhs::random(100, 3);
    let b = rhs::rhs_for_solution(&a, &x_true);
    let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
    let mut x = x_true.clone();
    let res = solver.solve(&b, &mut x);
    assert!(res.converged);
    assert_eq!(res.iterations, 0, "no cycle needed for an exact guess");
    assert_eq!(x, x_true);
}

#[test]
fn zero_rhs_gives_zero_solution() {
    let a = famg::matgen::laplace2d(12, 12);
    let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
    let mut x = vec![0.0; a.nrows()];
    let res = solver.solve(&vec![0.0; a.nrows()], &mut x);
    assert!(res.converged);
    assert!(x.iter().all(|&v| v == 0.0));
}

#[test]
#[should_panic(expected = "zero diagonal")]
fn zero_diagonal_rejected_by_smoother_setup() {
    let a = Csr::from_triplets(
        2,
        2,
        vec![(0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0), (0, 0, 0.0)],
    );
    // Explicit structural zero on the diagonal of row 0.
    let _ = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
}

#[test]
#[should_panic(expected = "square")]
fn rectangular_operator_rejected() {
    let a = Csr::from_triplets(2, 3, vec![(0, 0, 1.0), (1, 1, 1.0)]);
    let _ = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
}

#[test]
fn wildly_scaled_rows_still_converge() {
    // Symmetric diagonal scaling over many orders of magnitude (D A D
    // stays SPD): strength thresholds are row-relative, so coarsening
    // must stay sensible.
    let base = famg::matgen::laplace2d(16, 16);
    let n = base.nrows();
    let scale: Vec<f64> = (0..n).map(|i| 10f64.powi((i % 7) as i32 - 3)).collect();
    let mut trips = Vec::new();
    for i in 0..n {
        for (j, v) in base.row_iter(i) {
            trips.push((i, j, scale[i] * v * scale[j]));
        }
    }
    let a = Csr::from_triplets(n, n, trips);
    let b = rhs::ones(n);
    let cfg = AmgConfig {
        max_iterations: 400,
        ..AmgConfig::single_node_paper()
    };
    let solver = AmgSolver::setup(&a, &cfg);
    let mut x = vec![0.0; n];
    let res = solver.solve(&b, &mut x);
    assert!(res.converged, "stalled at {:.2e}", res.final_relres);
}

#[test]
fn max_iterations_zero_reports_unconverged() {
    let a = famg::matgen::laplace2d(8, 8);
    let cfg = AmgConfig {
        max_iterations: 0,
        ..AmgConfig::single_node_paper()
    };
    let solver = AmgSolver::setup(&a, &cfg);
    let mut x = vec![0.0; a.nrows()];
    let res = solver.solve(&rhs::ones(a.nrows()), &mut x);
    assert!(!res.converged);
    assert_eq!(res.iterations, 0);
}

#[test]
fn disconnected_components_handled() {
    // Two independent 1D chains: coarsening must treat each component.
    let mut trips = Vec::new();
    for block in 0..2usize {
        let off = block * 10;
        for i in 0..10usize {
            trips.push((off + i, off + i, 2.0));
            if i > 0 {
                trips.push((off + i, off + i - 1, -1.0));
            }
            if i < 9 {
                trips.push((off + i, off + i + 1, -1.0));
            }
        }
    }
    let a = Csr::from_triplets(20, 20, trips);
    let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
    let b = rhs::ones(20);
    let mut x = vec![0.0; 20];
    let res = solver.solve(&b, &mut x);
    assert!(res.converged);
}

#[test]
fn extreme_truncation_still_converges() {
    // max_elmts = 1: each fine point interpolates from a single coarse
    // point (pure aggregation-like transfer) — convergence degrades but
    // the method must remain sound.
    let a = famg::matgen::laplace2d(20, 20);
    let cfg = AmgConfig {
        max_elements: 1,
        max_iterations: 500,
        ..AmgConfig::single_node_paper()
    };
    let solver = AmgSolver::setup(&a, &cfg);
    let b = rhs::ones(a.nrows());
    let mut x = vec![0.0; a.nrows()];
    let res = solver.solve(&b, &mut x);
    assert!(res.converged);
}

#[test]
fn single_level_cap_degrades_to_smoother_iteration() {
    let a = famg::matgen::laplace2d(10, 10);
    let cfg = AmgConfig {
        max_levels: 1,
        coarse_solve_size: 0,
        max_iterations: 4000,
        ..AmgConfig::single_node_paper()
    };
    let solver = AmgSolver::setup(&a, &cfg);
    assert_eq!(solver.hierarchy().num_levels(), 1);
    let b = rhs::ones(a.nrows());
    let mut x = vec![0.0; a.nrows()];
    let res = solver.solve(&b, &mut x);
    // Smoothing alone converges on this small SPD system, just slowly.
    assert!(res.converged);
    assert!(res.iterations > 10, "suspiciously fast for smoothing only");
}

//! Batched multi-RHS determinism suite.
//!
//! The batched solve path's contract is that column `j` of a `k`-wide
//! solve is **bitwise** identical to the scalar solve of `(b_j, x_j)` —
//! same iterate bits, same residual bits, same iteration counts — for
//! every batch width, pool size, rank count, and halo mode. This suite
//! enforces the contract end to end: serial `solve_batch` against solo
//! solves (re-executed under `RAYON_NUM_THREADS` 1/2/4 the way
//! `thread_independence` does), distributed `dist_amg_solve_multi`
//! against solo solves at 1/2/4 ranks in both halo modes, and the edge
//! shapes (`k = 0`, `k = 1`, columns that start converged or never
//! converge).

use famg::core::{AmgConfig, AmgSolver};
use famg::dist::comm::run_ranks;
use famg::dist::hierarchy::{DistHierarchy, DistOptFlags};
use famg::dist::parcsr::{default_partition, ParCsr};
use famg::dist::solve::{dist_amg_solve, dist_amg_solve_multi};
use famg::matgen::laplace2d;
use famg::sparse::MultiVec;

/// Deterministic, column-dependent right-hand sides.
fn rhs_columns(n: usize, k: usize) -> Vec<Vec<f64>> {
    (0..k)
        .map(|j| {
            (0..n)
                .map(|i| ((i * (2 * j + 3) + 7 * j) % 17) as f64 / 17.0 - 0.4)
                .collect()
        })
        .collect()
}

fn fnv1a(h: u64, w: u64) -> u64 {
    let mut h = h;
    for b in w.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a batched solve: iterate bits, residual bits,
/// iteration counts of every column.
fn fp_solve_batch() -> u64 {
    let a = laplace2d(40, 40);
    let n = a.nrows();
    let cfg = AmgConfig {
        smoother_tasks: Some(4),
        ..AmgConfig::single_node_paper()
    };
    let solver = AmgSolver::setup(&a, &cfg);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for k in [1usize, 4, 8] {
        let cols = rhs_columns(n, k);
        let b = MultiVec::from_columns(&cols);
        let mut x = MultiVec::new(n, k);
        let res = solver.solve_batch(&b, &mut x);
        for w in x.data().iter().map(|v| v.to_bits()) {
            h = fnv1a(h, w);
        }
        for j in 0..k {
            h = fnv1a(h, res.iterations[j] as u64);
            h = fnv1a(h, res.final_relres[j].to_bits());
        }
    }
    h
}

/// Prints the fingerprint; asserted across pool sizes by
/// [`batch_solve_bitwise_across_pool_sizes`].
#[test]
fn batch_fingerprint_worker() {
    println!("FPB solve_batch {:016x}", fp_solve_batch());
}

fn collect_fingerprint(num_threads: usize) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["--exact", "batch_fingerprint_worker", "--nocapture"])
        .env("RAYON_NUM_THREADS", num_threads.to_string())
        .output()
        .expect("spawn fingerprint subprocess");
    assert!(
        out.status.success(),
        "fingerprint subprocess (RAYON_NUM_THREADS={num_threads}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .lines()
        .find_map(|l| {
            let tail = &l[l.find("FPB ")?..];
            tail.split_whitespace().nth(2).map(str::to_string)
        })
        .unwrap_or_else(|| panic!("no fingerprint line in:\n{stdout}"))
}

/// The batched path inherits the pool-size determinism contract: one
/// fingerprint for pool sizes 1, 2, and 4.
#[test]
fn batch_solve_bitwise_across_pool_sizes() {
    let reference = collect_fingerprint(1);
    for nt in [2usize, 4] {
        assert_eq!(
            reference,
            collect_fingerprint(nt),
            "solve_batch diverged at pool size {nt}"
        );
    }
}

/// Serial batch-vs-solo bitwise identity at several widths, including
/// the degenerate `k = 1` and the `k = 0` no-op.
#[test]
fn serial_batch_columns_match_solo_bitwise() {
    let a = laplace2d(32, 32);
    let n = a.nrows();
    let cfg = AmgConfig::single_node_paper();
    let solver = AmgSolver::setup(&a, &cfg);
    for k in [0usize, 1, 4, 8] {
        let cols = rhs_columns(n, k);
        let b = if k == 0 {
            MultiVec::new(n, 0) // from_columns(&[]) has no row count
        } else {
            MultiVec::from_columns(&cols)
        };
        let mut x = MultiVec::new(n, k);
        let res = solver.solve_batch(&b, &mut x);
        assert_eq!(res.k(), k);
        for (j, bj) in cols.iter().enumerate() {
            let mut xj = vec![0.0; n];
            let solo = solver.solve(bj, &mut xj);
            assert_eq!(res.iterations[j], solo.iterations, "k {k} col {j}");
            assert_eq!(
                res.final_relres[j].to_bits(),
                solo.final_relres.to_bits(),
                "k {k} col {j}"
            );
            assert_eq!(x.col(j), xj, "k {k} col {j}: iterate bits differ");
        }
    }
}

/// A column whose RHS is zero starts converged and must stay pinned at
/// its snapshot while a live column runs out its iteration budget.
#[test]
fn serial_batch_masks_converged_and_stalled_columns() {
    let a = laplace2d(24, 24);
    let n = a.nrows();
    let cfg = AmgConfig {
        max_iterations: 2,
        ..AmgConfig::single_node_paper()
    };
    let solver = AmgSolver::setup(&a, &cfg);
    let live: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
    let b = MultiVec::from_columns(&[vec![0.0; n], live.clone()]);
    let mut x = MultiVec::new(n, 2);
    let res = solver.solve_batch(&b, &mut x);
    assert!(res.converged[0]);
    assert_eq!(res.iterations[0], 0);
    assert!(x.col(0).iter().all(|&v| v == 0.0));
    assert!(!res.converged[1]);
    assert_eq!(res.iterations[1], 2);
    let mut xs = vec![0.0; n];
    let solo = solver.solve(&live, &mut xs);
    assert_eq!(res.final_relres[1].to_bits(), solo.final_relres.to_bits());
    assert_eq!(x.col(1), xs);
}

/// Distributed batch-vs-solo bitwise identity at 1/2/4 ranks in both
/// halo modes (`FAMG_OVERLAP_COMM` is exercised by sweeping the flag
/// directly — both modes run in every configuration).
#[test]
fn dist_batch_columns_match_solo_bitwise_across_ranks() {
    let a = laplace2d(20, 20);
    let n = a.nrows();
    let k = 4usize;
    let cfg = AmgConfig::single_node_paper();
    let cols = rhs_columns(n, k);
    for nranks in [1usize, 2, 4] {
        for overlap in [false, true] {
            let dopt = DistOptFlags {
                overlap_comm: overlap,
                ..DistOptFlags::all()
            };
            let starts = default_partition(n, nranks);
            run_ranks(nranks, |c| {
                let r = c.rank();
                let (s, e) = (starts[r], starts[r + 1]);
                let pa = ParCsr::from_global_rows(&a, s, e, starts.clone(), r);
                let h = DistHierarchy::build(c, pa, &cfg, dopt);
                let local: Vec<Vec<f64>> = cols.iter().map(|col| col[s..e].to_vec()).collect();
                let bb = MultiVec::from_columns(&local);
                let mut xb = MultiVec::new(e - s, k);
                let res = dist_amg_solve_multi(c, &h, &bb, &mut xb);
                assert!(res.all_converged(), "ranks {nranks} overlap {overlap}");
                for (j, bl) in local.iter().enumerate() {
                    let mut xl = vec![0.0; e - s];
                    let solo = dist_amg_solve(c, &h, bl, &mut xl);
                    assert_eq!(
                        res.iterations[j], solo.iterations,
                        "ranks {nranks} overlap {overlap} col {j}"
                    );
                    assert_eq!(
                        res.final_relres[j].to_bits(),
                        solo.final_relres.to_bits(),
                        "ranks {nranks} overlap {overlap} col {j}"
                    );
                    assert_eq!(
                        xb.col(j),
                        xl,
                        "ranks {nranks} overlap {overlap} col {j}: iterate bits"
                    );
                }
            });
        }
    }
}

/// The headline property: halo message count per V-cycle-driven solve is
/// independent of the batch width — k RHS cost one scalar solve's
/// messages (for the same iteration count).
#[test]
fn dist_batch_message_count_is_k_independent() {
    let a = laplace2d(16, 16);
    let n = a.nrows();
    let cfg = AmgConfig {
        max_iterations: 4,
        tolerance: 0.0, // run out the full budget in both runs
        ..AmgConfig::single_node_paper()
    };
    let starts = default_partition(n, 4);
    let msgs = |k: usize| {
        let (counts, _) = run_ranks(4, |c| {
            let r = c.rank();
            let (s, e) = (starts[r], starts[r + 1]);
            let pa = ParCsr::from_global_rows(&a, s, e, starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
            let cols = rhs_columns(n, k)
                .iter()
                .map(|col| col[s..e].to_vec())
                .collect::<Vec<_>>();
            let bb = MultiVec::from_columns(&cols);
            let mut xb = MultiVec::new(e - s, k);
            c.barrier();
            let m0 = c.messages_sent();
            let res = dist_amg_solve_multi(c, &h, &bb, &mut xb);
            assert!(res.iterations.iter().all(|&it| it == 4));
            c.barrier();
            c.messages_sent() - m0
        });
        counts.iter().sum::<u64>()
    };
    let m1 = msgs(1);
    let m8 = msgs(8);
    assert_eq!(m1, m8, "k=8 solve must send exactly k=1's message count");
}

//! Property-based tests for the sparse-kernel substrate.

use famg::sparse::permute::{cf_permutation, permute_symmetric, Permutation};
use famg::sparse::spgemm::{numeric_only, spgemm_one_pass, spgemm_two_pass};
use famg::sparse::transpose::{transpose, transpose_par};
use famg::sparse::triple::{csr_add, rap_row_fused, rap_scalar_fused, rap_unfused};
use famg::sparse::Csr;
use proptest::prelude::*;

/// Strategy: a random sparse matrix with the given shape bounds.
fn csr_strategy(
    max_rows: usize,
    max_cols: usize,
) -> impl Strategy<Value = Csr> {
    (1..max_rows, 1..max_cols).prop_flat_map(|(nr, nc)| {
        let entry = (0..nr, 0..nc, -4.0f64..4.0);
        proptest::collection::vec(entry, 0..nr * 3).prop_map(move |trips| {
            Csr::from_triplets(
                nr,
                nc,
                trips.into_iter().filter(|&(_, _, v)| v != 0.0),
            )
        })
    })
}

/// Strategy: a square matrix paired with a random permutation of its size.
fn square_with_perm() -> impl Strategy<Value = (Csr, Permutation)> {
    (2usize..20).prop_flat_map(|n| {
        let mat = proptest::collection::vec((0..n, 0..n, -4.0f64..4.0), 0..n * 3)
            .prop_map(move |t| {
                Csr::from_triplets(n, n, t.into_iter().filter(|&(_, _, v)| v != 0.0))
            });
        let perm = Just(()).prop_perturb(move |_, mut rng| {
            let mut fwd: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                fwd.swap(i, j);
            }
            Permutation::from_forward(fwd)
        });
        (mat, perm)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(a in csr_strategy(24, 24)) {
        let tt = transpose(&transpose(&a));
        prop_assert_eq!(a.to_dense(), tt.to_dense());
    }

    #[test]
    fn parallel_transpose_matches_sequential(a in csr_strategy(24, 24)) {
        prop_assert_eq!(transpose(&a), transpose_par(&a));
    }

    #[test]
    fn transpose_reverses_products(a in csr_strategy(14, 10)) {
        // (A·Aᵀ)ᵀ = A·Aᵀ and (Aᵀ·A)ᵀ = Aᵀ·A; also (A·B)ᵀ = Bᵀ·Aᵀ with
        // B = Aᵀ, which always has a compatible inner dimension.
        let b = transpose(&a);
        let ab = spgemm_one_pass(&a, &b);
        let btat = spgemm_one_pass(&transpose(&b), &transpose(&a));
        prop_assert!(transpose(&ab).frob_diff(&btat) < 1e-9);
    }

    #[test]
    fn spgemm_variants_agree(a in csr_strategy(16, 16)) {
        // Use A·Aᵀ so the shapes always match.
        let at = transpose(&a);
        let c1 = spgemm_two_pass(&a, &at);
        let c2 = spgemm_one_pass(&a, &at);
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn numeric_only_reproduces_values(a in csr_strategy(14, 14)) {
        let at = transpose(&a);
        let mut c = spgemm_one_pass(&a, &at);
        let expect = c.clone();
        for v in c.values_mut() {
            *v = -7.5;
        }
        numeric_only(&a, &at, &mut c);
        prop_assert_eq!(c, expect);
    }

    #[test]
    fn rap_variants_agree(a in csr_strategy(18, 18)) {
        let n = a.nrows().min(a.ncols());
        if n < 2 {
            return Ok(());
        }
        // Square it up and build a fake P by pairing points.
        let sq = csr_add(0.5, &Csr::identity(a.nrows()), 1.0, &{
            // zero-pad A to square via triplets
            let mut t = Vec::new();
            for i in 0..a.nrows() {
                for (c, v) in a.row_iter(i) {
                    if c < a.nrows() {
                        t.push((i, c, v));
                    }
                }
            }
            Csr::from_triplets(a.nrows(), a.nrows(), t)
        });
        let nc = a.nrows().div_ceil(2);
        let p = Csr::from_triplets(
            a.nrows(),
            nc,
            (0..a.nrows()).map(|i| (i, i / 2, 1.0)).collect::<Vec<_>>(),
        );
        let r = transpose(&p);
        let c0 = rap_unfused(&r, &sq, &p);
        let c1 = rap_row_fused(&r, &sq, &p);
        let c2 = rap_scalar_fused(&r, &sq, &p);
        prop_assert!(c0.frob_diff(&c1) < 1e-9);
        prop_assert!(c0.frob_diff(&c2) < 1e-9);
    }

    #[test]
    fn symmetric_permutation_preserves_spectrum_proxy(
        (a, p) in square_with_perm()
    ) {
        // Permutation preserves the multiset of matrix entries, the
        // diagonal multiset, and SpMV results up to reordering.
        let ap = permute_symmetric(&a, &p);
        prop_assert_eq!(a.nnz(), ap.nnz());
        let mut d1 = a.diagonal();
        let mut d2 = ap.diagonal();
        d1.sort_by(f64::total_cmp);
        d2.sort_by(f64::total_cmp);
        prop_assert_eq!(d1, d2);
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut y = vec![0.0; a.nrows()];
        famg::sparse::spmv::spmv_seq(&a, &x, &mut y);
        let mut yp = vec![0.0; a.nrows()];
        famg::sparse::spmv::spmv_seq(&ap, &p.apply_vec(&x), &mut yp);
        let back = p.unapply_vec(&yp);
        for (u, v) in y.iter().zip(&back) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn cf_permutation_is_stable_partition(marker in proptest::collection::vec(any::<bool>(), 1..60)) {
        let (p, nc) = cf_permutation(&marker);
        // Coarse points map to [0, nc) preserving relative order.
        let mut last_c = None;
        let mut last_f = None;
        for (i, &c) in marker.iter().enumerate() {
            let img = p.forward[i];
            if c {
                prop_assert!(img < nc);
                if let Some(prev) = last_c {
                    prop_assert!(img > prev);
                }
                last_c = Some(img);
            } else {
                prop_assert!(img >= nc);
                if let Some(prev) = last_f {
                    prop_assert!(img > prev);
                }
                last_f = Some(img);
            }
        }
    }

    #[test]
    fn csr_add_linear(a in csr_strategy(12, 12)) {
        // a + (-1)*a = 0 and 2a = a + a.
        let zero = csr_add(1.0, &a, -1.0, &a);
        prop_assert!(zero.to_dense().iter().all(|&v| v.abs() < 1e-12));
        let two = csr_add(1.0, &a, 1.0, &a);
        let scaled = {
            let mut s = a.clone();
            for v in s.values_mut() {
                *v *= 2.0;
            }
            s
        };
        prop_assert!(two.frob_diff(&scaled) < 1e-12);
    }
}

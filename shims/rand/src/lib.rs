//! Drop-in stand-in for the subset of the `rand` API that famg's
//! matrix generators use (`StdRng::seed_from_u64` + `gen_range`), for
//! building in hermetic environments with no registry access.
//!
//! [`rngs::StdRng`] here is splitmix64 followed by xorshift64*, not
//! ChaCha12, so the *streams* differ from upstream `rand` — but all
//! famg consumers only require per-seed determinism and reasonable
//! equidistribution, which this provides.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range`; panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        // 53 high bits -> uniform in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty usize range");
        let span = (self.end - self.start) as u64;
        // Modulo bias is < 2^-40 for the span sizes famg draws (< 2^24).
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive range");
        let span = (hi - lo) as u64 + 1;
        lo + (rng.next_u64() % span) as usize
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64-seeded xorshift64*).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 scrambles low-entropy seeds (0, 1, 2, ...)
            // into well-separated internal states.
            let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            StdRng { state: z | 1 }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*; state is never zero (seeded with | 1).
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(-1.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(-1.0..1.0)).collect();
        let zs: Vec<f64> = (0..8).map(|_| c.gen_range(-1.0..1.0)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.gen_range(-2.5..3.5);
            assert!((-2.5..3.5).contains(&f));
            let u = r.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let v = r.gen_range(0usize..=4);
            assert!(v <= 4);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b} out of range");
        }
    }
}

//! Drop-in stand-in for the subset of the `crossbeam` API that famg
//! uses (`channel::unbounded` in the simulated-MPI transport), for
//! building in hermetic environments with no registry access.
//!
//! Backed by [`std::sync::mpsc`]: since Rust 1.72 the std channel is a
//! port of crossbeam's implementation, so `Sender` is `Clone + Send +
//! Sync` and `recv_timeout` is available — the only behavioural
//! difference is the missing multi-consumer support, which famg does
//! not use (one `Receiver` per rank).

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender};

    /// Creates an unbounded channel, mirroring
    /// `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn unbounded_send_recv_round_trip() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        drop(tx);
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
    }
}

//! Drop-in stand-in for the subset of the `criterion` API that famg's
//! benches use, for building in hermetic environments with no registry
//! access.
//!
//! No statistics engine: each benchmark is warmed up, then timed for a
//! fixed number of batches, and the median ns/iter is printed. Good
//! enough for before/after comparisons on one machine; swap the
//! `criterion` rename in the root `Cargo.toml` back to the registry
//! crate for publication-grade numbers.

use std::time::{Duration, Instant};

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the untimed warm-up duration per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total timed duration budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, warm_up, measure) =
            (self.sample_size, self.warm_up_time, self.measurement_time);
        run_benchmark(id, sample_size, warm_up, measure, f);
        self
    }
}

/// Named benchmark group, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.criterion.sample_size,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back to back.
    // The name mirrors criterion's API; it is not an Iterator source.
    #[allow(clippy::iter_not_returning_iterator)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, warm_up: Duration, measure: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm up while estimating the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_nanos() / u128::from(warm_iters);

    // Split the measurement budget across `sample_size` samples.
    let budget_per_sample = measure.as_nanos() / sample_size.max(1) as u128;
    let iters_per_sample = (budget_per_sample / per_iter.max(1)).clamp(1, 1_000_000) as u64;

    let mut samples_ns: Vec<u128> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() / u128::from(iters_per_sample));
    }
    samples_ns.sort_unstable();
    let median = samples_ns[samples_ns.len() / 2];
    let lo = samples_ns[0];
    let hi = samples_ns[samples_ns.len() - 1];
    println!("{id:<44} median {median:>12} ns/iter  (min {lo}, max {hi}, {sample_size} samples x {iters_per_sample} iters)");
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`. Supports both the plain and the
/// `name = ...; config = ...; targets = ...` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn driver_runs_to_completion() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        tiny(&mut c);
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}

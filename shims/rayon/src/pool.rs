//! The persistent worker pool backing every parallel entry point.
//!
//! One global pool is created on first use (any `par_*` call, [`crate::scope`],
//! or [`crate::current_num_threads`]). Its size is read **once** from
//! `RAYON_NUM_THREADS` (falling back to the hardware parallelism) and never
//! changes afterwards, matching real rayon's fixed-at-init semantics — env
//! changes mid-process have no effect.
//!
//! Design: a pool of `n - 1` parked OS workers plus the calling thread. Work
//! arrives as boxed jobs on a single injector queue guarded by one mutex; a
//! single condvar signals both "job available" and "latch completed" events,
//! so a thread blocked in [`Pool::wait_latch`] *helps* — it executes queued
//! jobs while waiting, which is what makes nested [`crate::scope`] calls
//! deadlock-free even when every worker is itself blocked on an inner latch.
//! With `n == 1` there are no workers at all and every entry point degrades
//! to plain inline execution (a true serial baseline for ablations).

use crate::sync::{spawn_worker, AtomicUsize, Condvar, Mutex, Ordering, WorkerHandle};
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

/// A unit of pooled work. Lifetimes are erased at the [`crate::Scope::spawn`]
/// boundary; the scope latch guarantees the job finishes before anything it
/// borrows goes out of scope.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled on every state change a waiter could be blocked on: new
    /// job pushed, shutdown requested, or a latch reaching zero.
    cv: Condvar,
}

/// A fixed-size worker pool. The process-wide instance lives in a
/// [`OnceLock`]; unit tests construct private pools to exercise startup and
/// shutdown in isolation.
pub(crate) struct Pool {
    shared: Arc<Shared>,
    workers: Vec<WorkerHandle>,
    n_threads: usize,
}

impl Pool {
    /// Creates a pool with `n_threads` total compute threads: `n_threads - 1`
    /// parked workers plus the thread that submits work (the caller always
    /// participates while waiting).
    pub(crate) fn new(n_threads: usize) -> Pool {
        let n_threads = n_threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let workers = (1..n_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                spawn_worker(format!("famg-rayon-{i}"), move || worker_loop(&shared))
            })
            .collect();
        Pool {
            shared,
            workers,
            n_threads,
        }
    }

    /// The process-wide pool, created on first use with a size fixed for the
    /// lifetime of the process (`RAYON_NUM_THREADS`, else hardware threads).
    pub(crate) fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool::new(env_num_threads()))
    }

    /// Total compute threads (workers + participating caller).
    pub(crate) fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Enqueues a job for the workers (or a helping waiter) to pick up.
    pub(crate) fn push_job(&self, job: Job) {
        let mut st = self.shared.state.lock().unwrap();
        st.jobs.push_back(job);
        drop(st);
        self.shared.cv.notify_all();
    }

    /// Blocks until `latch` reaches zero, executing queued jobs while
    /// waiting. Helping (rather than parking outright) keeps nested scopes
    /// live-locked-free: the thread that owns an outer scope makes progress
    /// on whatever inner work is queued.
    pub(crate) fn wait_latch(&self, latch: &Latch) {
        loop {
            if latch.done() {
                return;
            }
            let job = {
                let mut st = self.shared.state.lock().unwrap();
                loop {
                    // Re-check under the lock: `Latch::complete` notifies
                    // while holding this mutex, so a completion between the
                    // check and the wait cannot be missed.
                    if latch.done() {
                        return;
                    }
                    if let Some(j) = st.jobs.pop_front() {
                        break j;
                    }
                    st = self.shared.cv.wait(st).unwrap();
                }
            };
            job();
        }
    }

    /// Notifies all waiters; used by [`Latch::complete`] so that the empty
    /// critical section orders the completion with any waiter's check.
    fn notify_waiters(&self) {
        drop(self.shared.state.lock().unwrap());
        self.shared.cv.notify_all();
    }
}

impl Drop for Pool {
    /// Orderly shutdown: workers drain the queue, observe the shutdown flag,
    /// and exit; `drop` joins every one of them. (The global pool is never
    /// dropped; this path serves tests and any future scoped-pool API.)
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(j) = st.jobs.pop_front() {
                    break Some(j);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.cv.wait(st).unwrap();
            }
        };
        match job {
            // Jobs wrap user code in `catch_unwind` at the spawn boundary,
            // so a panic here would indicate a shim bug, not user code.
            Some(j) => j(),
            None => return,
        }
    }
}

/// Reads the pool size from the environment — called exactly once, by the
/// global-pool initializer.
fn env_num_threads() -> usize {
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Countdown latch tracking outstanding jobs of one scope (or one
/// parallel-for). Also carries the first panic payload observed by any job,
/// re-thrown on the scope owner's thread after the join.
pub(crate) struct Latch {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    pub(crate) fn new() -> Latch {
        Latch {
            remaining: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }
    }

    /// Registers one more outstanding job. Must happen before the job is
    /// pushed so the count can never transiently read zero while work is in
    /// flight (a job's own decrement runs after its body, so any children it
    /// spawns are registered first).
    pub(crate) fn increment(&self) {
        // ORDERING: Relaxed — the increment publishes nothing; it only has
        // to be part of the counter's modification order before the job is
        // pushed (program order on this thread suffices for that). As a
        // relaxed RMW it also continues, not breaks, the release sequence
        // headed by any concurrent `complete`.
        self.remaining.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one job finished; wakes waiters when the count hits zero.
    pub(crate) fn complete(&self, pool: &Pool) {
        // ORDERING: Release — pairs with the Acquire load in `done`. The
        // decrement that takes the count to zero must publish the job
        // body's writes to the scope owner, which is about to return from
        // `wait_latch` and read results the job produced. Verified by the
        // famg-model scenarios in crate::model_tests.
        if self.remaining.fetch_sub(1, Ordering::Release) == 1 {
            pool.notify_waiters();
        }
    }

    pub(crate) fn done(&self) -> bool {
        // ORDERING: Acquire — pairs with the Release decrement in
        // `complete`; observing zero here synchronizes-with every job's
        // final decrement, making all job writes visible to the waiter.
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Records a panic payload from a pooled job (first one wins).
    pub(crate) fn store_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Takes the recorded panic payload, if any job panicked.
    pub(crate) fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}

/// Runs `block(0..n_blocks)` across the pool with dynamic (work-stealing
/// style) block claiming: `min(n_threads, n_blocks)` runners each grab the
/// next unclaimed block index until none remain. The caller participates,
/// so with a 1-thread pool this is a plain inline loop.
///
/// Which thread runs which block is nondeterministic; callers that combine
/// per-block results must do so **by block index** to stay deterministic
/// (every iterator terminal in [`crate::iter`] does exactly that).
pub(crate) fn run_blocks(n_blocks: usize, block: &(dyn Fn(usize) + Sync)) {
    if n_blocks == 0 {
        return;
    }
    let pool = Pool::global();
    let runners = pool.n_threads().min(n_blocks);
    if runners <= 1 {
        for b in 0..n_blocks {
            block(b);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let work = || loop {
        // ORDERING: Relaxed — block indices are claimed, not published: the
        // RMW's atomicity alone guarantees each index is handed out once.
        // Block results are published by the scope join, not this counter.
        let b = next.fetch_add(1, Ordering::Relaxed);
        if b >= n_blocks {
            break;
        }
        block(b);
    };
    crate::scope(|s| {
        for _ in 1..runners {
            let w = &work;
            s.spawn(move |_| w());
        }
        work();
    });
}

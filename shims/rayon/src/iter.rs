//! Parallel iterators over the index-splittable sources famg uses.
//!
//! Every source (slice, mutable slice, `Range<usize>`, chunked slices) knows
//! its item count and can hand out a *sequential* iterator over any
//! contiguous sub-range of items; adapters (`map`, `filter`, `enumerate`,
//! `zip`, `with_min_len`) compose on top of that. A terminal operation
//! splits the index domain into contiguous blocks, executes the blocks on
//! the pool ([`crate::pool::run_blocks`]), and combines per-block results
//! **in block order**, so:
//!
//! * `collect` preserves sequential order exactly;
//! * `sum` adds items in sequential order (it gathers the ordered item
//!   values first, then folds them on one thread), so floating-point
//!   reductions are bitwise identical for every pool size — the shim's
//!   determinism contract;
//! * `for_each` imposes no order; famg kernels using it write disjoint
//!   locations, which is schedule-independent by construction.
//!
//! The number of blocks adapts to the pool size and the
//! [`IndexedParallelIterator::with_min_len`] hint, but because combination
//! is ordered, block geometry never affects results.

use crate::pool::{run_blocks, Pool};
use std::marker::PhantomData;
use std::ops::Range;

/// Oversubscription factor: blocks per pool thread, so uneven per-item cost
/// (e.g. nnz-skewed rows) load-balances via dynamic block claiming.
const BLOCKS_PER_THREAD: usize = 4;

/// Computes the number of parallel blocks for a domain of `len` items with
/// a minimum block length hint.
fn block_count(len: usize, min_len: usize) -> usize {
    let pool_blocks = Pool::global().n_threads() * BLOCKS_PER_THREAD;
    (len / min_len.max(1)).clamp(1, pool_blocks).min(len).max(1)
}

/// Bounds of block `b` out of `nblocks` over `0..len` (contiguous,
/// near-equal, exhaustive).
fn block_bounds(len: usize, nblocks: usize, b: usize) -> (usize, usize) {
    (len * b / nblocks, len * (b + 1) / nblocks)
}

/// A parallel iterator: a splittable index domain producing `Item`s.
///
/// The `splits`/`seq_range` pair is plumbing — kernel code only uses the
/// provided adapters and terminals, which mirror the rayon API.
pub trait ParallelIterator: Sized + Send + Sync {
    /// Item type produced.
    type Item: Send;
    /// Sequential iterator over one contiguous block of the domain.
    type SeqIter<'a>: Iterator<Item = Self::Item>
    where
        Self: 'a;

    /// Number of splittable units in the domain. For indexed iterators this
    /// equals the item count; `filter` keeps its base's domain and yields
    /// fewer items.
    #[doc(hidden)]
    fn splits(&self) -> usize;

    /// Minimum block length hint (see
    /// [`IndexedParallelIterator::with_min_len`]).
    #[doc(hidden)]
    fn min_len_hint(&self) -> usize {
        1
    }

    /// Returns a sequential iterator over domain units `start..end`.
    ///
    /// # Safety
    ///
    /// Concurrent calls on the same iterator must use disjoint in-bounds
    /// ranges (`0 <= start <= end <= splits()`), and each unit must be
    /// consumed by at most one returned iterator: sources yielding exclusive
    /// references ([`IterMut`], [`ChunksMut`]) hand out `&mut` items that
    /// would alias otherwise. The terminal operations below uphold this by
    /// construction (disjoint block decomposition, each block visited once).
    #[doc(hidden)]
    unsafe fn seq_range(&self, start: usize, end: usize) -> Self::SeqIter<'_>;

    /// Maps each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Keeps only items for which `p` returns `true`. The result is no
    /// longer indexed (it cannot be zipped or enumerated), matching rayon.
    fn filter<P>(self, p: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, p }
    }

    /// Runs `op` on every item, in parallel. No ordering is guaranteed.
    fn for_each<OP>(self, op: OP)
    where
        OP: Fn(Self::Item) + Sync + Send,
    {
        let len = self.splits();
        if len == 0 {
            return;
        }
        let nblocks = block_count(len, self.min_len_hint());
        run_blocks(nblocks, &|b| {
            let (s, e) = block_bounds(len, nblocks, b);
            // SAFETY: blocks partition 0..len disjointly; each is claimed
            // and consumed exactly once by `run_blocks`.
            for item in unsafe { self.seq_range(s, e) } {
                op(item);
            }
        });
    }

    /// Collects into `C` preserving sequential order: block results are
    /// concatenated by block index, so the output is identical to the
    /// sequential collect for every pool size.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let parts = self.collect_blocks();
        parts
            .into_iter()
            .flat_map(|m| m.into_inner().unwrap())
            .collect()
    }

    /// Sums the items **in sequential order**: the ordered item values are
    /// gathered first, then folded on the calling thread. This makes
    /// floating-point sums bitwise independent of the pool size, at the cost
    /// of buffering one value per item — famg only sums per-chunk partials,
    /// so the buffer stays tiny.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        let parts = self.collect_blocks();
        parts
            .into_iter()
            .flat_map(|m| m.into_inner().unwrap())
            .sum()
    }

    /// Counts the items (after any `filter`).
    fn count(self) -> usize {
        let len = self.splits();
        if len == 0 {
            return 0;
        }
        let nblocks = block_count(len, self.min_len_hint());
        let totals: Vec<crate::sync::Mutex<usize>> =
            (0..nblocks).map(|_| crate::sync::Mutex::new(0)).collect();
        let totals_ref = &totals;
        run_blocks(nblocks, &|b| {
            let (s, e) = block_bounds(len, nblocks, b);
            // SAFETY: blocks partition 0..len disjointly; each is claimed
            // and consumed exactly once by `run_blocks`.
            let c = unsafe { self.seq_range(s, e) }.count();
            *totals_ref[b].lock().unwrap() = c;
        });
        totals.into_iter().map(|m| m.into_inner().unwrap()).sum()
    }

    /// Gathers every block's items into per-block vectors (block index →
    /// items in sequential order). Each slot's mutex is locked exactly once,
    /// by whichever pool thread claims that block.
    #[doc(hidden)]
    fn collect_blocks(&self) -> Vec<crate::sync::Mutex<Vec<Self::Item>>> {
        let len = self.splits();
        let nblocks = if len == 0 {
            0
        } else {
            block_count(len, self.min_len_hint())
        };
        let parts: Vec<crate::sync::Mutex<Vec<Self::Item>>> = (0..nblocks)
            .map(|_| crate::sync::Mutex::new(Vec::new()))
            .collect();
        let parts_ref = &parts;
        run_blocks(nblocks, &|b| {
            let (s, e) = block_bounds(len, nblocks, b);
            // SAFETY: blocks partition 0..len disjointly; each is claimed
            // and consumed exactly once by `run_blocks`.
            let items: Vec<Self::Item> = unsafe { self.seq_range(s, e) }.collect();
            *parts_ref[b].lock().unwrap() = items;
        });
        parts
    }
}

/// Marker + adapters for iterators whose domain units correspond 1:1 to
/// items at stable indices (everything except `filter`): only these can be
/// zipped, enumerated, or given split hints — mirroring rayon's
/// `IndexedParallelIterator`.
pub trait IndexedParallelIterator: ParallelIterator {
    /// Pairs items at equal indices; the result is as long as the shorter
    /// input.
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: IndexedParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Attaches each item's sequential index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Hints that parallel blocks should hold at least `min` items — use
    /// where per-item work is tiny and the default split would be
    /// pathological (block bookkeeping rivaling the work itself).
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Shared-slice parallel iterator (`par_iter` on `[T]` / `Vec<T>`).
pub struct Iter<'data, T> {
    pub(crate) slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for Iter<'data, T> {
    type Item = &'data T;
    type SeqIter<'a>
        = std::slice::Iter<'data, T>
    where
        Self: 'a;

    fn splits(&self) -> usize {
        self.slice.len()
    }

    unsafe fn seq_range(&self, start: usize, end: usize) -> Self::SeqIter<'_> {
        self.slice[start..end].iter()
    }
}
impl<T: Sync> IndexedParallelIterator for Iter<'_, T> {}

/// Exclusive-slice parallel iterator (`par_iter_mut` on `[T]` / `Vec<T>`).
///
/// Holds the slice as a raw pointer so disjoint blocks can be handed to
/// different pool threads through a shared reference.
pub struct IterMut<'data, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'data mut [T]>,
}

impl<'data, T: Send> IterMut<'data, T> {
    pub(crate) fn new(slice: &'data mut [T]) -> Self {
        IterMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }
}

// SAFETY: the pointer originates from an exclusive borrow held for 'data,
// and `seq_range`'s contract guarantees no two threads receive overlapping
// element ranges, so sending/sharing the handle cannot create aliased `&mut`.
unsafe impl<T: Send> Send for IterMut<'_, T> {}
// SAFETY: as above — concurrent `seq_range` calls are disjoint by contract.
unsafe impl<T: Send> Sync for IterMut<'_, T> {}

impl<'data, T: Send> ParallelIterator for IterMut<'data, T> {
    type Item = &'data mut T;
    type SeqIter<'a>
        = std::slice::IterMut<'data, T>
    where
        Self: 'a;

    fn splits(&self) -> usize {
        self.len
    }

    unsafe fn seq_range(&self, start: usize, end: usize) -> Self::SeqIter<'_> {
        debug_assert!(start <= end && end <= self.len);
        // SAFETY: `start..end` is in bounds of the original slice, and the
        // caller guarantees concurrent ranges are disjoint, so this `&mut`
        // sub-slice aliases nothing.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }.iter_mut()
    }
}
impl<T: Send> IndexedParallelIterator for IterMut<'_, T> {}

/// Parallel iterator over `Range<usize>` (`(0..n).into_par_iter()`).
pub struct RangeIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    type SeqIter<'a>
        = Range<usize>
    where
        Self: 'a;

    fn splits(&self) -> usize {
        self.end - self.start
    }

    unsafe fn seq_range(&self, start: usize, end: usize) -> Self::SeqIter<'_> {
        self.start + start..self.start + end
    }
}
impl IndexedParallelIterator for RangeIter {}

/// Chunked shared-slice iterator (`par_chunks`).
pub struct Chunks<'data, T> {
    pub(crate) slice: &'data [T],
    pub(crate) size: usize,
}

impl<'data, T: Sync> ParallelIterator for Chunks<'data, T> {
    type Item = &'data [T];
    type SeqIter<'a>
        = std::slice::Chunks<'data, T>
    where
        Self: 'a;

    fn splits(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    unsafe fn seq_range(&self, start: usize, end: usize) -> Self::SeqIter<'_> {
        let lo = start * self.size;
        let hi = (end * self.size).min(self.slice.len());
        self.slice[lo..hi].chunks(self.size)
    }
}
impl<T: Sync> IndexedParallelIterator for Chunks<'_, T> {}

/// Chunked exclusive-slice iterator (`par_chunks_mut`).
pub struct ChunksMut<'data, T> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'data mut [T]>,
}

impl<'data, T: Send> ChunksMut<'data, T> {
    pub(crate) fn new(slice: &'data mut [T], size: usize) -> Self {
        ChunksMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            size,
            _marker: PhantomData,
        }
    }
}

// SAFETY: same argument as [`IterMut`] — chunk ranges handed to concurrent
// `seq_range` calls are disjoint by the trait contract.
unsafe impl<T: Send> Send for ChunksMut<'_, T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for ChunksMut<'_, T> {}

impl<'data, T: Send> ParallelIterator for ChunksMut<'data, T> {
    type Item = &'data mut [T];
    type SeqIter<'a>
        = std::slice::ChunksMut<'data, T>
    where
        Self: 'a;

    fn splits(&self) -> usize {
        self.len.div_ceil(self.size)
    }

    unsafe fn seq_range(&self, start: usize, end: usize) -> Self::SeqIter<'_> {
        let lo = start * self.size;
        let hi = (end * self.size).min(self.len);
        debug_assert!(lo <= hi);
        // SAFETY: chunk index ranges map to disjoint in-bounds element
        // ranges (chunks are aligned multiples of `size`), and the caller
        // guarantees concurrent chunk ranges are disjoint.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) }.chunks_mut(self.size)
    }
}
impl<T: Send> IndexedParallelIterator for ChunksMut<'_, T> {}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Mapping adapter; see [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;
    type SeqIter<'a>
        = std::iter::Map<I::SeqIter<'a>, &'a F>
    where
        Self: 'a;

    fn splits(&self) -> usize {
        self.base.splits()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    unsafe fn seq_range(&self, start: usize, end: usize) -> Self::SeqIter<'_> {
        // SAFETY: same domain and range as the caller's request, forwarded.
        unsafe { self.base.seq_range(start, end) }.map(&self.f)
    }
}
impl<I, F, R> IndexedParallelIterator for Map<I, F>
where
    I: IndexedParallelIterator,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
}

/// Filtering adapter; see [`ParallelIterator::filter`]. Not indexed: items
/// no longer sit at stable domain indices.
pub struct Filter<I, P> {
    base: I,
    p: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Sync + Send,
{
    type Item = I::Item;
    type SeqIter<'a>
        = std::iter::Filter<I::SeqIter<'a>, &'a P>
    where
        Self: 'a;

    fn splits(&self) -> usize {
        self.base.splits()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    unsafe fn seq_range(&self, start: usize, end: usize) -> Self::SeqIter<'_> {
        // SAFETY: same domain and range as the caller's request, forwarded.
        unsafe { self.base.seq_range(start, end) }.filter(&self.p)
    }
}

/// Enumerating adapter; see [`IndexedParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

impl<I> ParallelIterator for Enumerate<I>
where
    I: IndexedParallelIterator,
{
    type Item = (usize, I::Item);
    type SeqIter<'a>
        = std::iter::Zip<Range<usize>, I::SeqIter<'a>>
    where
        Self: 'a;

    fn splits(&self) -> usize {
        self.base.splits()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    unsafe fn seq_range(&self, start: usize, end: usize) -> Self::SeqIter<'_> {
        // SAFETY: same domain and range as the caller's request, forwarded.
        (start..end).zip(unsafe { self.base.seq_range(start, end) })
    }
}
impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {}

/// Index-aligned pairing adapter; see [`IndexedParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);
    type SeqIter<'a>
        = std::iter::Zip<A::SeqIter<'a>, B::SeqIter<'a>>
    where
        Self: 'a;

    fn splits(&self) -> usize {
        self.a.splits().min(self.b.splits())
    }

    fn min_len_hint(&self) -> usize {
        self.a.min_len_hint().max(self.b.min_len_hint())
    }

    unsafe fn seq_range(&self, start: usize, end: usize) -> Self::SeqIter<'_> {
        // SAFETY: `end <= min(a, b) splits`, so the range is in bounds for
        // both sides; disjointness is forwarded to both.
        unsafe {
            self.a
                .seq_range(start, end)
                .zip(self.b.seq_range(start, end))
        }
    }
}
impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
}

/// Split-hint adapter; see [`IndexedParallelIterator::with_min_len`].
pub struct MinLen<I> {
    base: I,
    min: usize,
}

impl<I> ParallelIterator for MinLen<I>
where
    I: IndexedParallelIterator,
{
    type Item = I::Item;
    type SeqIter<'a>
        = I::SeqIter<'a>
    where
        Self: 'a;

    fn splits(&self) -> usize {
        self.base.splits()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint().max(self.min)
    }

    unsafe fn seq_range(&self, start: usize, end: usize) -> Self::SeqIter<'_> {
        // SAFETY: same domain and range as the caller's request, forwarded.
        unsafe { self.base.seq_range(start, end) }
    }
}
impl<I: IndexedParallelIterator> IndexedParallelIterator for MinLen<I> {}

// ---------------------------------------------------------------------------
// Entry traits (the `prelude` surface)
// ---------------------------------------------------------------------------

/// `into_par_iter()` on owned/index domains. Restricted to the ranges famg
/// actually iterates so that non-rayon-compatible code cannot accidentally
/// compile against the shim (swap-compat with the registry crate).
pub trait IntoParallelIterator {
    /// Parallel iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type produced.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            end: self.end,
        }
    }
}

/// `par_iter()` — shared-reference parallel iteration over slices and
/// vectors (the rayon surface famg uses; deliberately not a blanket impl).
pub trait IntoParallelRefIterator<'data> {
    /// Parallel iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type produced (a shared reference).
    type Item: Send + 'data;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = Iter<'data, T>;
    type Item = &'data T;
    fn par_iter(&'data self) -> Iter<'data, T> {
        Iter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = Iter<'data, T>;
    type Item = &'data T;
    fn par_iter(&'data self) -> Iter<'data, T> {
        Iter { slice: self }
    }
}

/// `par_iter_mut()` — exclusive-reference parallel iteration over slices
/// and vectors.
pub trait IntoParallelRefMutIterator<'data> {
    /// Parallel iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type produced (an exclusive reference).
    type Item: Send + 'data;
    /// Exclusively borrows `self` as a parallel iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = IterMut<'data, T>;
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> IterMut<'data, T> {
        IterMut::new(self)
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = IterMut<'data, T>;
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> IterMut<'data, T> {
        IterMut::new(self)
    }
}

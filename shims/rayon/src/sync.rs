//! Facade over the synchronization primitives the pool is built from.
//!
//! A normal build re-exports `std::sync` types unchanged — the facade
//! compiles away completely. Under `RUSTFLAGS="--cfg famg_model"` the same
//! names resolve to [`famg_model`]'s modeled types instead, so the pool's
//! real locking/parking/atomic code (not a copy of it) runs under the
//! bounded interleaving checker. Everything in [`crate::pool`] and the
//! scope machinery must route its mutexes, condvars, atomics, and worker
//! spawns through this module; `std::sync` imports elsewhere in those
//! files are a bug (and `famg-lint` has no say here — the model build
//! itself stops compiling if a type leaks, because modeled and std guards
//! don't mix).

#[cfg(not(famg_model))]
pub(crate) use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(famg_model))]
pub(crate) use std::sync::{Condvar, Mutex};

#[cfg(famg_model)]
pub(crate) use famg_model::sync::atomic::{AtomicUsize, Ordering};
#[cfg(famg_model)]
pub(crate) use famg_model::sync::{Condvar, Mutex};

/// Handle to a spawned worker thread.
#[cfg(not(famg_model))]
pub(crate) type WorkerHandle = std::thread::JoinHandle<()>;
/// Handle to a spawned (modeled) worker thread.
#[cfg(famg_model)]
pub(crate) type WorkerHandle = famg_model::thread::JoinHandle<()>;

/// Spawns a worker thread. The name is used for real OS threads; the model
/// names threads by tid itself.
pub(crate) fn spawn_worker(name: String, f: impl FnOnce() + Send + 'static) -> WorkerHandle {
    #[cfg(not(famg_model))]
    {
        std::thread::Builder::new()
            .name(name)
            .spawn(f)
            .expect("failed to spawn famg-rayon worker thread")
    }
    #[cfg(famg_model)]
    {
        let _ = name;
        famg_model::thread::spawn(f)
    }
}

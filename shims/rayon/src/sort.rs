//! Parallel unstable sort backing [`crate::ParallelSliceMut::par_sort_unstable`].
//!
//! Strategy: split the slice into a number of near-equal runs derived **from
//! the length only** (never from the pool size — the merge tree must be
//! identical for every pool size so that sorts of types with
//! distinguishable-but-equal elements stay bitwise deterministic), sort the
//! runs in parallel with `sort_unstable`, then merge pairs of adjacent runs
//! in parallel rounds, ping-ponging between the slice and a scratch buffer.

use crate::pool::{run_blocks, Pool};
use std::mem::MaybeUninit;

/// Below this length a sequential `sort_unstable` wins outright.
const SEQ_SORT_LEN: usize = 8 * 1024;

/// Pointer that may be shared across pool threads. Safety rests on the
/// *user* of the wrapped pointer writing disjoint ranges per thread.
struct SharedPtr<T>(*mut T);
// SAFETY: all concurrent accesses through the pointer are to disjoint
// element ranges (per-run sorts and per-pair merges below).
unsafe impl<T: Send> Send for SharedPtr<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for SharedPtr<T> {}

impl<T> SharedPtr<T> {
    /// Accessor (rather than field access) so closures capture the `Sync`
    /// wrapper itself, not the raw pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Aborts the process if dropped while armed. Armed across the merge
/// rounds: a panicking `Ord::cmp` would leave elements duplicated between
/// the slice and the scratch buffer (double drop on unwind), so the only
/// sound response is to abort — mirroring the std/rayon merge-sort bombs.
struct AbortOnUnwind;
impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        std::process::abort();
    }
}

/// Run boundary `i` of `runs` over a slice of `len` elements.
fn run_bound(len: usize, runs: usize, i: usize) -> usize {
    len * i / runs
}

/// Sorts `v` with parallel run sorts + parallel pairwise merges. The result
/// (for any `Ord` type) is identical to `v.sort_unstable()` up to the order
/// of equal elements, and bitwise identical across pool sizes because the
/// run decomposition depends only on `v.len()`.
pub(crate) fn par_sort_unstable<T: Ord + Send>(v: &mut [T]) {
    let len = v.len();
    if len <= SEQ_SORT_LEN || Pool::global().n_threads() == 1 {
        v.sort_unstable();
        return;
    }
    // Power-of-two run count, sized so runs are roughly SEQ_SORT_LEN long:
    // a full binary merge tree with no odd lonely runs.
    let runs = (len / SEQ_SORT_LEN).max(2).next_power_of_two();

    // Phase 1: sort each run in place, in parallel. `sort_unstable` is
    // panic-safe on its own sub-slice, so no bomb is needed yet.
    let base = SharedPtr(v.as_mut_ptr());
    run_blocks(runs, &|i| {
        let (s, e) = (run_bound(len, runs, i), run_bound(len, runs, i + 1));
        // SAFETY: run index ranges are disjoint and in bounds; `run_blocks`
        // executes each index exactly once.
        unsafe { std::slice::from_raw_parts_mut(base.get().add(s), e - s) }.sort_unstable();
    });

    // Phase 2: merge adjacent run pairs, doubling run width each round.
    // Elements relocate between `v` and `scratch`; an unwinding comparator
    // would leave both holding live copies, so abort instead.
    let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit<T> needs no initialisation; capacity == len.
    unsafe { scratch.set_len(len) };
    let scratch_ptr = SharedPtr(scratch.as_mut_ptr().cast::<T>());
    let bomb = AbortOnUnwind;

    let mut width = 1usize; // current sorted-run width, in runs
    let mut in_v = true; // does `v` currently hold the data?
    while width < runs {
        let (src, dst) = if in_v {
            (base.get().cast_const(), scratch_ptr.get())
        } else {
            (scratch_ptr.get().cast_const(), base.get())
        };
        let (src, dst) = (SharedPtr(src.cast_mut()), SharedPtr(dst));
        let pairs = runs / (2 * width);
        run_blocks(pairs, &|m| {
            let lo = run_bound(len, runs, 2 * m * width);
            let mid = run_bound(len, runs, (2 * m + 1) * width);
            let hi = run_bound(len, runs, (2 * m + 2) * width);
            // SAFETY: pair index ranges [lo, hi) are disjoint and in bounds
            // in both buffers; each pair is merged exactly once.
            unsafe {
                merge_move(
                    src.get().cast_const().add(lo),
                    mid - lo,
                    hi - mid,
                    dst.get().add(lo),
                );
            }
        });
        width *= 2;
        in_v = !in_v;
    }
    if !in_v {
        // Odd number of merge rounds: move the result back into `v`.
        // SAFETY: scratch holds all `len` initialised elements; the copy
        // relocates them back, leaving scratch logically uninitialised
        // again (it is only ever dropped as MaybeUninit — no double drop).
        unsafe { std::ptr::copy_nonoverlapping(scratch_ptr.get().cast_const(), base.get(), len) };
    }
    std::mem::forget(bomb);
}

/// Merges two adjacent sorted runs `src[0..la]` and `src[la..la+lb]` into
/// `dst[0..la+lb]`, *moving* the elements (the source range is logically
/// uninitialised afterwards).
///
/// # Safety
///
/// `src[0..la + lb]` must hold initialised elements, `dst` must have room
/// for `la + lb` elements, and the two ranges must not overlap. On return
/// all elements live in `dst` exactly once — unless `T::cmp` unwinds, which
/// the caller must convert into an abort.
unsafe fn merge_move<T: Ord>(src: *const T, la: usize, lb: usize, dst: *mut T) {
    let mut a = src;
    // SAFETY: offsets stay within the contiguous src range per the contract.
    let a_end = unsafe { src.add(la) };
    let mut b = a_end;
    // SAFETY: `la + lb` stays within the contiguous src range per the
    // contract, so advancing past the first run is still in bounds.
    let b_end = unsafe { a_end.add(lb) };
    let mut d = dst;
    while a < a_end && b < b_end {
        // Take from `a` on ties (stability is not required, but this keeps
        // the merge order canonical).
        // SAFETY: a and b are in bounds and initialised; d has room.
        unsafe {
            if *b < *a {
                std::ptr::copy_nonoverlapping(b, d, 1);
                b = b.add(1);
            } else {
                std::ptr::copy_nonoverlapping(a, d, 1);
                a = a.add(1);
            }
            d = d.add(1);
        }
    }
    // SAFETY: exactly the unconsumed remainder of each side is relocated;
    // d has room for it (total written == la + lb).
    unsafe {
        let ra = a_end.offset_from(a).unsigned_abs();
        std::ptr::copy_nonoverlapping(a, d, ra);
        d = d.add(ra);
        let rb = b_end.offset_from(b).unsigned_abs();
        std::ptr::copy_nonoverlapping(b, d, rb);
    }
}

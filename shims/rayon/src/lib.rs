//! Drop-in stand-in for the subset of the `rayon` API that famg uses,
//! for building in hermetic environments with no registry access.
//!
//! The workspace depends on this crate under the name `rayon` (a
//! `package =` rename in the root `Cargo.toml`), so kernel code is
//! written against the real rayon API and picks the real crate back up
//! by deleting the rename.
//!
//! Semantics:
//!
//! * The "parallel" iterator entry points (`par_iter`, `par_iter_mut`,
//!   `par_chunks`, `par_chunks_mut`, `into_par_iter`,
//!   `par_sort_unstable`) delegate to the equivalent sequential std
//!   iterators. Every famg kernel is schedule-independent (snapshot
//!   reads, disjoint writes), so results are bitwise identical to a
//!   parallel execution — only wall-clock time differs.
//! * [`scope`] runs on real OS threads via [`std::thread::scope`], so
//!   the hybrid smoother and scatter kernels still exercise true
//!   multi-thread execution and their `Sync` wrapper types stay
//!   load-bearing.
//! * [`current_num_threads`] honours `RAYON_NUM_THREADS` and falls back
//!   to [`std::thread::available_parallelism`].

use std::ops::Range;

/// Extension traits that mirror `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Number of worker threads kernels should block for.
///
/// Honours `RAYON_NUM_THREADS` (like real rayon); otherwise uses the
/// hardware parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Scoped-spawn handle mirroring `rayon::Scope`.
///
/// Wraps [`std::thread::Scope`]: every `spawn` is a real OS thread, and
/// all spawned work is joined before [`scope`] returns.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `body` on its own thread within the enclosing scope.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || body(&Scope { inner }));
    }
}

/// Creates a scope in which closures can be spawned and are guaranteed
/// to have completed before the call returns. Mirrors `rayon::scope`.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// `into_par_iter()` — yields a std iterator over the same items.
pub trait IntoParallelIterator {
    /// Iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type produced.
    type Item;
    /// Converts `self` into a (sequentially driven) iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T> IntoParallelIterator for Range<T>
where
    Range<T>: Iterator,
{
    type Iter = Range<T>;
    type Item = <Range<T> as Iterator>::Item;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter()` — shared-reference iteration.
pub trait IntoParallelRefIterator<'data> {
    /// Iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type produced (a shared reference).
    type Item: 'data;
    /// Iterates `&self` sequentially.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoIterator,
{
    type Iter = <&'data I as IntoIterator>::IntoIter;
    type Item = <&'data I as IntoIterator>::Item;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter_mut()` — exclusive-reference iteration.
pub trait IntoParallelRefMutIterator<'data> {
    /// Iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type produced (an exclusive reference).
    type Item: 'data;
    /// Iterates `&mut self` sequentially.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoIterator,
{
    type Iter = <&'data mut I as IntoIterator>::IntoIter;
    type Item = <&'data mut I as IntoIterator>::Item;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_chunks()` on slices.
pub trait ParallelSlice<T> {
    /// Chunked shared iteration, mirroring `[T]::chunks`.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `par_chunks_mut()` / `par_sort_unstable()` on slices.
pub trait ParallelSliceMut<T> {
    /// Chunked exclusive iteration, mirroring `[T]::chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    /// Unstable sort, mirroring `[T]::sort_unstable`.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_behaves_like_range() {
        let s: usize = (0..10usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(s, 285);
    }

    #[test]
    fn slice_adapters_delegate() {
        let v = vec![3usize, 1, 2];
        let doubled: Vec<usize> = v.par_iter().map(|&x| 2 * x).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let mut w = v.clone();
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![4, 2, 3]);
        w.par_sort_unstable();
        assert_eq!(w, vec![2, 3, 4]);
        assert_eq!(w.par_chunks(2).count(), 2);
    }

    #[test]
    fn scope_joins_all_spawns() {
        let mut out = vec![0usize; 4];
        let chunks: Vec<&mut usize> = out.iter_mut().collect();
        crate::scope(|s| {
            for (i, slot) in chunks.into_iter().enumerate() {
                s.spawn(move |_| *slot = i + 1);
            }
        });
        assert_eq!(out, vec![1, 2, 3, 4]);
    }
}

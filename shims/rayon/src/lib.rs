//! Drop-in stand-in for the subset of the `rayon` API that famg uses,
//! for building in hermetic environments with no registry access.
//!
//! The workspace depends on this crate under the name `rayon` (a
//! `package =` rename in the root `Cargo.toml`), so kernel code is
//! written against the real rayon API and picks the real crate back up
//! by deleting the rename. The implemented surface is deliberately
//! restricted to what famg calls (slices, `Vec`, `Range<usize>`,
//! `par_chunks(_mut)`, `par_sort_unstable`, `scope`/`spawn`,
//! [`current_num_threads`]) so anything that compiles against the shim
//! also compiles against the registry crate.
//!
//! Execution model — a real pool, not sequential delegation:
//!
//! * A **persistent worker pool** ([`pool`]) is created on first use and
//!   lives for the process. Its size is read **once** from
//!   `RAYON_NUM_THREADS` (falling back to the hardware parallelism) and
//!   pinned — later env changes have no effect, matching real rayon's
//!   fixed-at-init semantics. With 1 thread, every entry point runs
//!   inline with zero pool traffic (a true serial baseline).
//! * Parallel iterators ([`iter`]) split their index domain into
//!   contiguous blocks (respecting [`IndexedParallelIterator::with_min_len`]
//!   hints) that pool threads claim dynamically; [`scope`] routes
//!   `spawn`s onto the pooled workers instead of fresh OS threads.
//!
//! Determinism contract: results are **bitwise identical across pool
//! sizes**. Ordered terminals (`collect`, `sum`) combine per-block
//! results by block index — floating-point reductions are folded in
//! sequential order — and [`ParallelSliceMut::par_sort_unstable`] derives
//! its merge tree from the input length only. Unordered `for_each` is
//! used by famg kernels exclusively for disjoint writes (snapshot reads,
//! per-row/per-chunk output slices), which no schedule can perturb.

mod iter;
#[cfg(all(test, famg_model))]
mod model_tests;
mod pool;
mod sort;
mod sync;

pub use iter::{
    Chunks, ChunksMut, Enumerate, Filter, IndexedParallelIterator, IntoParallelIterator,
    IntoParallelRefIterator, IntoParallelRefMutIterator, Iter, IterMut, Map, MinLen,
    ParallelIterator, RangeIter, Zip,
};

use pool::{Job, Latch, Pool};

/// Extension traits that mirror `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// Number of pool threads (workers plus the participating caller).
///
/// Fixed at first use from `RAYON_NUM_THREADS` (else the hardware
/// parallelism) and cached for the process lifetime — repeated calls are
/// a cheap `OnceLock` read, safe for kernel hot paths.
pub fn current_num_threads() -> usize {
    Pool::global().n_threads()
}

/// Scoped-spawn handle mirroring `rayon::Scope`.
///
/// `spawn`ed closures run on the persistent pool (not fresh OS threads)
/// and are all joined before [`scope`] returns; the owning thread helps
/// execute queued work while it waits, so nested scopes cannot deadlock.
pub struct Scope<'scope> {
    pool: &'scope Pool,
    latch: &'scope Latch,
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` onto the pool within the enclosing scope.
    ///
    /// With a 1-thread pool the body runs inline immediately (famg's
    /// spawned tasks are mutually independent, so eager execution is
    /// indistinguishable from rayon's deferred one). A panic in `body` is
    /// captured and re-thrown from [`scope`] on the owner's thread.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        if self.pool.n_threads() == 1 {
            body(self);
            return;
        }
        let pool = self.pool;
        let latch = self.latch;
        // Registered before the push so the latch can never transiently
        // read zero while this job is in flight.
        latch.increment();
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let inner = Scope { pool, latch };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&inner)));
            if let Err(payload) = result {
                latch.store_panic(payload);
            }
            latch.complete(pool);
        });
        // SAFETY: lifetime erasure of the boxed closure ('scope → 'static,
        // identical fat-pointer layout). Sound because `scope` blocks on
        // the latch before returning, so everything the closure borrows
        // outlives its execution.
        let job: Job = unsafe { std::mem::transmute(job) };
        pool.push_job(job);
    }
}

/// Creates a scope in which closures can be spawned onto the worker pool
/// and are guaranteed to have completed before the call returns. Mirrors
/// `rayon::scope`, including panic propagation: a panic in `op` or in any
/// spawned closure is re-thrown here after all spawned work is joined.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    scope_with(Pool::global(), op)
}

/// [`scope`] on an explicit pool instead of the process-wide one. Unit and
/// model tests use this to drive private pools (the model checker needs a
/// fresh pool per explored execution; the global `OnceLock` would smuggle
/// state across them).
pub(crate) fn scope_with<'scope, OP, R>(pool: &'scope Pool, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let latch = Latch::new();
    // SAFETY: extending the latch borrow to the caller-chosen 'scope is
    // sound because every job registered on it is joined by `wait_latch`
    // below, strictly before `latch` leaves this frame.
    let latch_ref: &'scope Latch = unsafe { &*std::ptr::addr_of!(latch) };
    let s = Scope {
        pool,
        latch: latch_ref,
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| op(&s)));
    pool.wait_latch(&latch);
    if let Some(payload) = latch.take_panic() {
        std::panic::resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// `par_chunks()` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel chunked shared iteration, mirroring `[T]::chunks`.
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
        assert!(chunk_size != 0, "chunk size must be non-zero");
        Chunks {
            slice: self,
            size: chunk_size,
        }
    }
}

/// `par_chunks_mut()` / `par_sort_unstable()` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel chunked exclusive iteration, mirroring `[T]::chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
    /// Parallel unstable sort (run sorts + pairwise merges on the pool).
    /// The merge tree depends only on the length, so the result is
    /// bitwise identical for every pool size.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size != 0, "chunk size must be non-zero");
        ChunksMut::new(self, chunk_size)
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        sort::par_sort_unstable(self);
    }
}

// Not under famg_model: these tests drive real OS threads and the global
// pool, which must not exist inside a model execution.
#[cfg(all(test, not(famg_model)))]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_into_par_iter_behaves_like_range() {
        let s: usize = (0..10usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(s, 285);
    }

    #[test]
    fn slice_adapters_match_sequential() {
        let v = vec![3usize, 1, 2];
        let doubled: Vec<usize> = v.par_iter().map(|&x| 2 * x).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let mut w = v.clone();
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![4, 2, 3]);
        w.par_sort_unstable();
        assert_eq!(w, vec![2, 3, 4]);
        assert_eq!(w.par_chunks(2).count(), 2);
    }

    #[test]
    fn scope_joins_all_spawns() {
        let mut out = vec![0usize; 4];
        let chunks: Vec<&mut usize> = out.iter_mut().collect();
        crate::scope(|s| {
            for (i, slot) in chunks.into_iter().enumerate() {
                s.spawn(move |_| *slot = i + 1);
            }
        });
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_scope_completes() {
        let hits = AtomicUsize::new(0);
        let hits_ref = &hits;
        crate::scope(|outer| {
            for _ in 0..4 {
                outer.spawn(move |_| {
                    crate::scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move |_| {
                                hits_ref.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scope_propagates_spawn_panic() {
        let caught = std::panic::catch_unwind(|| {
            crate::scope(|s| {
                s.spawn(|_| panic!("boom from pooled job"));
            });
        });
        let payload = caught.expect_err("scope should re-throw the spawned panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("boom"));
    }

    #[test]
    fn panic_payload_is_rethrown_on_the_owner_and_siblings_complete() {
        // The panic must surface on the thread that called `scope` (after
        // the join), and every sibling job must still have run.
        let owner = std::thread::current().id();
        let slots: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        let slots_ref = &slots;
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::scope(|s| {
                // The panicking job is spawned last: with a 1-thread pool
                // spawns run inline, so an earlier panic would (correctly)
                // cut the spawn loop short and the siblings wouldn't exist.
                for (i, slot) in slots_ref.iter().enumerate() {
                    s.spawn(move |_| slot.store(i + 1, Ordering::Relaxed));
                }
                s.spawn(|_| panic!("last job failed"));
            });
        }));
        assert_eq!(std::thread::current().id(), owner);
        let payload = caught.expect_err("spawned panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("last job failed"), "wrong payload: {msg}");
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), i + 1, "sibling {i} lost");
        }
    }

    #[test]
    fn first_panic_wins_among_multiple_panics() {
        // With several panicking jobs the recorded payload is the first to
        // reach `store_panic`; which one that is depends on scheduling, but
        // it must be exactly one of ours and the scope must still join.
        let caught = std::panic::catch_unwind(|| {
            crate::scope(|s| {
                for i in 0..4 {
                    s.spawn(move |_| panic!("panic #{i}"));
                }
            });
        });
        let payload = caught.expect_err("at least one panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.starts_with("panic #"), "unexpected payload: {msg}");
    }

    #[test]
    fn owner_panic_joins_spawned_work_before_rethrow() {
        // A panic in the scope closure itself must not strand spawned jobs:
        // `scope` waits on the latch first, then rethrows the owner panic.
        let hits = AtomicUsize::new(0);
        let hits_ref = &hits;
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::scope(|s| {
                for _ in 0..8 {
                    s.spawn(move |_| {
                        hits_ref.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("owner failed after spawning");
            });
        }));
        let payload = caught.expect_err("owner panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("owner failed"), "wrong payload: {msg}");
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn deeply_nested_scopes_help_while_waiting() {
        // Three levels of nesting: every blocked owner must execute queued
        // inner work while waiting, or this deadlocks on small pools.
        let hits = AtomicUsize::new(0);
        let hits_ref = &hits;
        crate::scope(|a| {
            for _ in 0..2 {
                a.spawn(move |_| {
                    crate::scope(|b| {
                        for _ in 0..2 {
                            b.spawn(move |_| {
                                crate::scope(|c| {
                                    for _ in 0..2 {
                                        c.spawn(move |_| {
                                            hits_ref.fetch_add(1, Ordering::Relaxed);
                                        });
                                    }
                                });
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn empty_and_single_element_domains() {
        let empty: Vec<usize> = Vec::new();
        let collected: Vec<usize> = empty.par_iter().map(|&x| x).collect();
        assert!(collected.is_empty());
        assert_eq!((0..0usize).into_par_iter().count(), 0);
        let one = [7usize];
        let c: Vec<usize> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(c, vec![8]);
        let mut nothing: Vec<usize> = Vec::new();
        nothing.par_sort_unstable();
        let mut single = vec![42usize];
        single.par_sort_unstable();
        assert_eq!(single, vec![42]);
        let no_elems: [usize; 0] = [];
        assert_eq!(no_elems.par_chunks(3).count(), 0);
    }

    #[test]
    fn collect_preserves_sequential_order() {
        let n = 100_000usize;
        let out: Vec<usize> = (0..n).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out.len(), n);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * 3);
        }
    }

    #[test]
    fn filter_matches_sequential() {
        let n = 50_000usize;
        let par: Vec<usize> = (0..n).into_par_iter().filter(|&i| i % 7 == 0).collect();
        let seq: Vec<usize> = (0..n).filter(|&i| i % 7 == 0).collect();
        assert_eq!(par, seq);
        assert_eq!(
            (0..n).into_par_iter().filter(|&i| i % 7 == 0).count(),
            seq.len()
        );
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let a: Vec<usize> = (0..1000).collect();
        let b: Vec<usize> = (0..700).collect();
        let pairs: Vec<usize> = a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect();
        assert_eq!(pairs.len(), 700);
        assert_eq!(pairs[699], 2 * 699);
    }

    #[test]
    fn float_sum_is_bitwise_sequential() {
        let n = 100_000usize;
        let xs: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let seq: f64 = xs.iter().copied().sum();
        let par: f64 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn par_sort_matches_sequential_sort() {
        // Deterministic pseudo-random input, long enough to trigger the
        // parallel merge path.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut v: Vec<u64> = (0..100_000).map(|_| next() % 1000).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, expect);
    }

    #[test]
    fn with_min_len_does_not_change_results() {
        let n = 10_000usize;
        let a: Vec<usize> = (0..n).into_par_iter().map(|i| i + 1).collect();
        let b: Vec<usize> = (0..n)
            .into_par_iter()
            .with_min_len(4096)
            .map(|i| i + 1)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn num_threads_is_pinned_after_first_use() {
        let before = crate::current_num_threads();
        // Changing the env after pool creation must have no effect — the
        // size is read exactly once, at first use.
        std::env::set_var("RAYON_NUM_THREADS", "97");
        assert_eq!(crate::current_num_threads(), before);
        std::env::remove_var("RAYON_NUM_THREADS");
    }

    #[test]
    fn private_pool_drains_queue_on_shutdown() {
        use crate::pool::Pool;
        let pool = Pool::new(3);
        assert_eq!(pool.n_threads(), 3);
        let hits = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let hits = std::sync::Arc::clone(&hits);
            pool.push_job(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        // Shutdown contract: workers drain every queued job, observe the
        // flag, and exit; drop joins them. A hang or a lost job fails here.
        drop(pool);
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }
}

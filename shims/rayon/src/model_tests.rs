//! Interleaving-model tests for the pool (compiled only under
//! `RUSTFLAGS="--cfg famg_model"`, run by the `==> famg-model` stage of
//! `scripts/check.sh`). Each test drives the *real* pool code — `Pool`,
//! `Latch`, `scope_with` — with famg-model's modeled primitives swapped in
//! through [`crate::sync`], and explores every interleaving within the
//! stated bounds.
//!
//! Bounds used throughout (documented per the verification contract):
//! at most **3 modeled threads** (the scope owner plus the workers of a
//! 2-thread pool is 2; one scenario adds a third), `max_steps = 5_000`,
//! `preemption_bound = 2` (exhaustive below the bound — the CHESS result),
//! and a `max_schedules` ceiling that fails loudly if the space outgrows
//! the budget rather than silently truncating.

#[cfg(test)]
mod cases {
    use crate::pool::{Job, Latch, Pool};
    use crate::scope_with;
    use famg_model::{model_with, Bounds, RaceCell};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn bounds() -> Bounds {
        Bounds {
            max_threads: 3,
            max_steps: 5_000,
            max_schedules: 500_000,
            preemption_bound: 2,
        }
    }

    /// Restores the previous panic hook on drop, so a failing model run
    /// cannot leave the process-wide hook silenced.
    struct HookGuard;
    impl HookGuard {
        fn silence() -> HookGuard {
            std::panic::set_hook(Box::new(|_| {}));
            HookGuard
        }
    }
    impl Drop for HookGuard {
        fn drop(&mut self) {
            let _ = std::panic::take_hook();
        }
    }

    /// Risk scenario 1: latch increment-before-push vs. a concurrent
    /// `done()`. The scope owner's `wait_latch` polls `done()` while the
    /// worker claims and runs the job; if the count could transiently read
    /// zero with work in flight, some interleaving would let the scope
    /// return before the job's write — which the `RaceCell` would report
    /// as a data race (the Release `complete` / Acquire `done` pair is
    /// what publishes the write).
    #[test]
    fn latch_count_never_transiently_zero() {
        let report = model_with(bounds(), || {
            let pool = Pool::new(2);
            let cell = RaceCell::new(0);
            scope_with(&pool, |s| {
                let c = &cell;
                s.spawn(move |_| c.write(42));
            });
            assert_eq!(cell.read(), 42);
        });
        assert!(report.schedules >= 2, "schedules = {}", report.schedules);
        eprintln!(
            "latch_count_never_transiently_zero: {} schedules, {} max steps",
            report.schedules, report.max_steps_seen
        );
    }

    /// Risk scenario 2: help-while-waiting under nested scopes. With a
    /// single worker, the outer job occupies it while spawning an inner
    /// scope — somebody blocked on a latch (the owner in the outer
    /// `wait_latch`, or the worker in the inner one) must pop and run the
    /// inner job, or the execution deadlocks (which the model reports).
    #[test]
    fn nested_scope_helping_is_deadlock_free() {
        let report = model_with(bounds(), || {
            let pool = Pool::new(2);
            let outer = RaceCell::new(0);
            let inner = RaceCell::new(0);
            let pr = &pool;
            scope_with(pr, |s| {
                let (oc, ic) = (&outer, &inner);
                s.spawn(move |_| {
                    oc.write(1);
                    scope_with(pr, |si| {
                        si.spawn(move |_| ic.write(2));
                    });
                });
            });
            assert_eq!(outer.read(), 1);
            assert_eq!(inner.read(), 2);
        });
        eprintln!(
            "nested_scope_helping_is_deadlock_free: {} schedules, {} max steps",
            report.schedules, report.max_steps_seen
        );
    }

    /// Risk scenario 3: the notify/park lost-wakeup window. The waiter
    /// checks `done()`, finds it false, and goes to park; if `complete`'s
    /// notification could land between the check and the park, the waiter
    /// would sleep forever — a deadlock the model reports. The pool closes
    /// the window by re-checking under the queue mutex and notifying from
    /// inside an (empty) critical section on that same mutex.
    #[test]
    fn latch_wait_has_no_lost_wakeup() {
        let report = model_with(bounds(), || {
            let pool = Pool::new(2);
            let latch = Latch::new();
            latch.increment();
            let job: Box<dyn FnOnce() + Send + '_> = {
                let (l, p) = (&latch, &pool);
                Box::new(move || l.complete(p))
            };
            // SAFETY: lifetime erasure as in `Scope::spawn` — `wait_latch`
            // below joins the job before `latch`/`pool` leave this frame.
            let job: Job = unsafe { std::mem::transmute(job) };
            pool.push_job(job);
            pool.wait_latch(&latch);
            assert!(latch.done());
        });
        assert!(report.schedules >= 2, "schedules = {}", report.schedules);
        eprintln!(
            "latch_wait_has_no_lost_wakeup: {} schedules, {} max steps",
            report.schedules, report.max_steps_seen
        );
    }

    /// Risk scenario 4: first-panic-wins propagation. A panicking job must
    /// not abort the process or get lost: its payload is stored (first one
    /// wins), every sibling job still runs to completion, and the scope
    /// owner re-throws the payload after the join.
    #[test]
    fn panic_in_spawn_propagates_after_join() {
        let _quiet = HookGuard::silence();
        let report = model_with(bounds(), || {
            let pool = Pool::new(2);
            let cell = RaceCell::new(0);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                scope_with(&pool, |s| {
                    let c = &cell;
                    s.spawn(move |_| c.write(7));
                    s.spawn(move |_| panic!("boom from modeled job"));
                });
            }));
            let payload = caught.expect_err("scope must re-throw the job panic");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
            assert!(msg.contains("boom"), "wrong payload: {msg}");
            // The sibling job completed before the rethrow.
            assert_eq!(cell.read(), 7);
        });
        eprintln!(
            "panic_in_spawn_propagates_after_join: {} schedules, {} max steps",
            report.schedules, report.max_steps_seen
        );
    }
}

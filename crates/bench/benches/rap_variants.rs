//! Galerkin triple-product variants (§3.1.1): unfused, scalar-fused
//! (Fig. 1b, the HYPRE baseline), row-fused (Fig. 1a, the paper's
//! kernel), and the CF-block decomposition that multiplies only the
//! fine-fine block.

use criterion::{criterion_group, criterion_main, Criterion};
use famg_bench::rap_fixture_2d;
use famg_core::coarsen::pmis;
use famg_core::interp::{extended_i, CfMap, TruncParams};
use famg_core::reorder::cf_reorder;
use famg_core::strength::strength;
use famg_matgen::laplace2d;
use famg_sparse::triple::{rap_cf_from_parts, rap_row_fused, rap_scalar_fused, rap_unfused};
use std::hint::black_box;

fn bench_rap(c: &mut Criterion) {
    let f = rap_fixture_2d(160, 5);
    let mut g = c.benchmark_group("rap");
    g.bench_function("unfused", |bch| {
        bch.iter(|| black_box(rap_unfused(&f.r, &f.a, &f.p)));
    });
    g.bench_function("scalar_fused_fig1b", |bch| {
        bch.iter(|| black_box(rap_scalar_fused(&f.r, &f.a, &f.p)));
    });
    g.bench_function("row_fused_fig1a", |bch| {
        bch.iter(|| black_box(rap_row_fused(&f.r, &f.a, &f.p)));
    });
    // CF-block variant needs the permuted operator and the fine block.
    let a = laplace2d(160, 160);
    let s = strength(&a, 0.25, 0.8);
    let coarse = pmis(&s, 5);
    let (ap, ord) = cf_reorder(&a, &coarse.is_coarse);
    let sp = famg_sparse::permute::permute_symmetric(&s, &ord.perm);
    let cf = CfMap::new((0..a.nrows()).map(|i| i < ord.nc).collect());
    let pfull = extended_i(&ap, &sp, &cf, Some(&TruncParams::paper()));
    let pf = {
        let lo = pfull.rowptr()[ord.nc];
        let rp: Vec<usize> = pfull.rowptr()[ord.nc..].iter().map(|&x| x - lo).collect();
        famg_sparse::Csr::from_parts_unchecked(
            pfull.nrows() - ord.nc,
            pfull.ncols(),
            rp,
            pfull.colidx()[lo..].to_vec(),
            pfull.values()[lo..].to_vec(),
        )
    };
    g.bench_function("cf_block", |bch| {
        bch.iter(|| black_box(rap_cf_from_parts(&ap, ord.nc, &pf)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_rap
}
criterion_main!(benches);

//! Smoother microbenchmarks (§3.2): baseline hybrid GS (Fig. 2a) vs the
//! reordered kernel (Fig. 2b), plus Jacobi, level-scheduled
//! lexicographic GS, and multicolor GS.

use criterion::{criterion_group, criterion_main, Criterion};
use famg_core::coarsen::pmis;
use famg_core::reorder::cf_reorder;
use famg_core::smoother::{Smoother, Workspace};
use famg_core::strength::strength;
use famg_matgen::laplace2d;
use std::hint::black_box;

fn bench_smoothers(c: &mut Criterion) {
    let a0 = laplace2d(192, 192);
    let n = a0.nrows();
    let s = strength(&a0, 0.25, 0.8);
    let coarse = pmis(&s, 1);
    let (mut ap, ord) = cf_reorder(&a0, &coarse.is_coarse);
    let ap_for_base = ap.clone();
    let nthreads = rayon::current_num_threads();
    // Thread count is part of the measurement: hybrid GS decomposes by
    // task, and the pool size decides how many sweeps run concurrently.
    eprintln!("smoother bench: rayon pool = {nthreads} thread(s)");

    let base = Smoother::hybrid_base(&ap_for_base, (0..n).map(|i| i < ord.nc).collect(), nthreads);
    let opt = Smoother::hybrid_opt(&mut ap, ord.nc, nthreads);
    let jac = Smoother::jacobi(&ap_for_base, 2.0 / 3.0);
    let lex = Smoother::lexicographic(&ap_for_base);
    let mc = Smoother::multicolor(&ap_for_base);

    let b = vec![1.0; n];
    let mut x = vec![0.0; n];
    let mut ws = Workspace::new();
    let mut g = c.benchmark_group("smoother_cf_sweep");
    g.bench_function("hybrid_base_fig2a", |bch| {
        bch.iter(|| base.pre_smooth(&ap_for_base, &b, black_box(&mut x), &mut ws, false));
    });
    g.bench_function("hybrid_opt_fig2b", |bch| {
        bch.iter(|| opt.pre_smooth(&ap, &b, black_box(&mut x), &mut ws, false));
    });
    g.bench_function("jacobi", |bch| {
        bch.iter(|| jac.pre_smooth(&ap_for_base, &b, black_box(&mut x), &mut ws, false));
    });
    g.bench_function("lexicographic_level_scheduled", |bch| {
        bch.iter(|| lex.pre_smooth(&ap_for_base, &b, black_box(&mut x), &mut ws, false));
    });
    g.bench_function("multicolor", |bch| {
        bch.iter(|| mc.pre_smooth(&ap_for_base, &b, black_box(&mut x), &mut ws, false));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_smoothers
}
criterion_main!(benches);

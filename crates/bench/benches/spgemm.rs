//! SpGEMM microbenchmarks (§3.1.1): the two-pass baseline, the one-pass
//! per-thread-chunk kernel, and the numeric-only re-run over a frozen
//! pattern (the paper's branch-overhead bound, measured at 2.1×).

use criterion::{criterion_group, criterion_main, Criterion};
use famg_bench::rap_fixture_2d;
use famg_sparse::spgemm::{numeric_only, spgemm_one_pass, spgemm_two_pass};
use std::hint::black_box;

fn bench_spgemm(c: &mut Criterion) {
    let f = rap_fixture_2d(192, 3);
    let mut g = c.benchmark_group("spgemm_RA");
    g.bench_function("two_pass", |bch| {
        bch.iter(|| black_box(spgemm_two_pass(&f.r, &f.a)));
    });
    g.bench_function("one_pass_chunked", |bch| {
        bch.iter(|| black_box(spgemm_one_pass(&f.r, &f.a)));
    });
    let mut cmat = spgemm_one_pass(&f.r, &f.a);
    g.bench_function("numeric_only_frozen_pattern", |bch| {
        bch.iter(|| numeric_only(&f.r, &f.a, black_box(&mut cmat)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_spgemm
}
criterion_main!(benches);

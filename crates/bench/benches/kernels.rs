//! Solve-phase kernel microbenchmarks: SpMV (sequential, parallel,
//! fused with the residual norm — §3.3), transpose (sequential vs the
//! §3.3 parallel counting sort).

use criterion::{criterion_group, criterion_main, Criterion};
use famg_bench::rap_fixture_2d;
use famg_matgen::laplace2d;
use famg_sparse::spmv::{
    residual_norm_sq, residual_norm_sq_unfused, spmv, spmv_seq, spmv_unrolled,
};
use famg_sparse::transpose::{transpose, transpose_par};
use std::hint::black_box;

fn bench_spmv(c: &mut Criterion) {
    let a = laplace2d(256, 256);
    let n = a.nrows();
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 * 0.1).collect();
    let b: Vec<f64> = vec![1.0; n];
    let mut y = vec![0.0; n];
    let mut g = c.benchmark_group("spmv");
    g.bench_function("sequential", |bch| {
        bch.iter(|| spmv_seq(black_box(&a), black_box(&x), &mut y));
    });
    g.bench_function("parallel", |bch| {
        bch.iter(|| spmv(black_box(&a), black_box(&x), &mut y));
    });
    g.bench_function("unrolled_8wide", |bch| {
        bch.iter(|| spmv_unrolled(black_box(&a), black_box(&x), &mut y));
    });
    g.bench_function("residual_norm_unfused", |bch| {
        bch.iter(|| black_box(residual_norm_sq_unfused(&a, &x, &b, &mut y)));
    });
    g.bench_function("residual_norm_fused", |bch| {
        bch.iter(|| black_box(residual_norm_sq(&a, &x, &b, &mut y)));
    });
    g.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let f = rap_fixture_2d(192, 7);
    let mut g = c.benchmark_group("transpose");
    g.bench_function("sequential", |bch| bch.iter(|| black_box(transpose(&f.p))));
    g.bench_function("parallel_counting_sort", |bch| {
        bch.iter(|| black_box(transpose_par(&f.p)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_spmv, bench_transpose
}
criterion_main!(benches);

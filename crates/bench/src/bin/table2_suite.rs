//! Table 2 analogue: the single-node matrix suite.
//!
//! Prints each matrix of the paper's Table 2 with the paper's size, the
//! proxy famg generates in its place (see DESIGN.md §2), and the size at
//! the requested `--scale` (default 0.25 of paper scale per dimension).

use famg_bench::arg_scale;
use famg_matgen::suite;

fn main() {
    let scale = arg_scale(0.25);
    println!("== Table 2: matrix suite (scale = {scale}) ==\n");
    println!(
        "{:<16} {:>11} {:>8} | {:>11} {:>8}  proxy",
        "matrix", "paper rows", "nnz/row", "gen rows", "nnz/row"
    );
    for m in suite() {
        let a = (m.gen)(scale);
        println!(
            "{:<16} {:>11} {:>8} | {:>11} {:>8.1}  {}",
            m.name,
            m.paper_rows,
            m.paper_nnz_per_row,
            a.nrows(),
            a.nnz() as f64 / a.nrows() as f64,
            m.proxy_note
        );
    }
    println!("\nAt --scale 1.0 generated row counts match the paper's Table 2.");
}

//! Numeric-refresh setup benchmark: full setup vs frozen-pattern refresh
//! across a same-pattern operator sequence (reservoir-style coefficient
//! drift, the time-stepping workload of §2).
//!
//! A full AMG setup redoes strength, PMIS, interpolation-pattern
//! selection, and symbolic SpGEMM on every time step even though the
//! sparsity pattern never changes. The refresh path freezes everything
//! pattern-derived once (`AmgSolver::setup_refreshable`) and then absorbs
//! each step's new values with branch-free numeric passes only
//! (`AmgSolver::refresh`). Each step also cross-checks that the refreshed
//! hierarchy solves bitwise identically to a from-scratch build.
//!
//! Usage: `cargo run --release -p famg-bench --bin setup_refresh
//!         [--smoke] [--out <dir>]`
//!
//! `--smoke` shrinks the grid, and asserts the recorded speedup gate
//! (refresh ≥ 2× faster than full setup) for CI. `--out` writes
//! `BENCH_setup_refresh.json` (schema in DESIGN.md §8); the record's
//! setup buckets are the full-setup totals, with the refresh totals and
//! speedup under `"extra"`. `FAMG_CHROME_TRACE=<dir>` dumps the final
//! step's refresh span tree in chrome://tracing format.

use famg_bench::fmt_secs;
use famg_bench::telemetry::{maybe_write_chrome_trace, BenchReport};
use famg_core::params::AmgConfig;
use famg_core::solver::AmgSolver;
use famg_core::stats::PhaseTimes;
use famg_matgen::{reservoir_field, rhs, varcoef3d_7pt};
use famg_prof::json::Json;
use std::time::{Duration, Instant};

/// Permeability field at time step `t`: the frozen reservoir geology with
/// a small smooth multiplicative drift, the regime the refresh contract
/// covers (values change everywhere, no frozen threshold decision flips).
fn step_field(base: &[f64], nx: usize, ny: usize, nz: usize, t: usize) -> Vec<f64> {
    base.iter()
        .enumerate()
        .map(|(i, &k)| {
            let x = (i % nx) as f64 / nx as f64;
            let d = (i / nx) as f64 / ((ny * nz) as f64);
            k * (1.0 + 1e-5 * (t as f64) * (7.0 * (x - d)).cos())
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (nx, ny, nz, steps) = if smoke {
        (24, 24, 12, 3)
    } else {
        (48, 48, 24, 5)
    };
    let n = nx * ny * nz;
    let cfg = AmgConfig::single_node_paper();
    let base = reservoir_field(nx, ny, nz, 6, 2.0, 2, 42);

    println!("setup_refresh: reservoir {nx}x{ny}x{nz} (n = {n}), {steps} time steps");
    println!("config: single_node_paper (PMIS + extended+i, CF-block RAP)\n");

    let a0 = varcoef3d_7pt(nx, ny, nz, &step_field(&base, nx, ny, nz, 0));
    let t0 = Instant::now();
    let mut refreshed = AmgSolver::setup_refreshable(&a0, &cfg);
    let freeze = t0.elapsed();
    println!("initial frozen setup: {}", fmt_secs(freeze));

    let b = rhs::ones(n);
    let mut full_total = Duration::ZERO;
    let mut refresh_total = Duration::ZERO;
    let mut full_times = PhaseTimes::default();
    let mut refresh_times = PhaseTimes::default();
    let mut report = BenchReport::new("setup_refresh", smoke);
    report.problem(n, a0.nnz());
    println!(
        "\n{:>4} {:>12} {:>12} {:>8}",
        "step", "full setup", "refresh", "ratio"
    );
    for t in 1..=steps {
        let at = varcoef3d_7pt(nx, ny, nz, &step_field(&base, nx, ny, nz, t));

        let tf = Instant::now();
        let full = AmgSolver::setup(&at, &cfg);
        let full_t = tf.elapsed();

        let tr = Instant::now();
        refreshed
            .refresh(&at)
            .expect("same-pattern drift must refresh");
        let refresh_t = tr.elapsed();

        // The refreshed hierarchy must solve bitwise identically to the
        // from-scratch build.
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        let r1 = full.solve(&b, &mut x1);
        let r2 = refreshed.solve(&b, &mut x2);
        assert!(r1.converged && r2.converged, "step {t} did not converge");
        assert_eq!(r1.iterations, r2.iterations, "step {t}: iteration drift");
        assert_eq!(x1, x2, "step {t}: refreshed solve is not bitwise identical");

        full_total += full_t;
        refresh_total += refresh_t;
        full_times.accumulate(&full.hierarchy().times);
        refresh_times.accumulate(&refreshed.hierarchy().times);
        // Per-step flops along the refresh path (numeric refresh + solve).
        report.counters_from(&refreshed.hierarchy().profile);
        report.counters_from(&r2.profile);
        if t == steps {
            report
                .solve_times(&r2.times)
                .outcome(r2.iterations, r2.final_relres, r2.converged)
                .complexity(&refreshed.hierarchy().stats);
            maybe_write_chrome_trace("setup_refresh_refresh", &refreshed.hierarchy().profile);
            maybe_write_chrome_trace("setup_refresh_solve", &r2.profile);
        }
        println!(
            "{t:>4} {:>12} {:>12} {:>7.2}x",
            fmt_secs(full_t),
            fmt_secs(refresh_t),
            full_t.as_secs_f64() / refresh_t.as_secs_f64()
        );
    }

    let speedup = full_total.as_secs_f64() / refresh_total.as_secs_f64();
    println!("\nsetup-phase breakdown (sum over steps):");
    println!("{:>18} {:>12} {:>12}", "component", "full", "refresh");
    let rows = [
        (
            "strength+coarsen",
            full_times.strength_coarsen,
            refresh_times.strength_coarsen,
        ),
        ("interp", full_times.interp, refresh_times.interp),
        ("rap", full_times.rap, refresh_times.rap),
        ("setup_etc", full_times.setup_etc, refresh_times.setup_etc),
    ];
    for (name, f, r) in rows {
        println!("{name:>18} {:>12} {:>12}", fmt_secs(f), fmt_secs(r));
    }
    println!(
        "\ntotal: full {} vs refresh {} -> {speedup:.2}x",
        fmt_secs(full_total),
        fmt_secs(refresh_total)
    );
    assert!(
        speedup >= 2.0,
        "refresh speedup gate failed: {speedup:.2}x < 2.0x"
    );
    println!("gate: refresh >= 2x faster than full setup -- ok");

    let bucket_pair = |f: Duration, r: Duration| {
        Json::Obj(vec![
            ("full".into(), Json::Num(f.as_secs_f64())),
            ("refresh".into(), Json::Num(r.as_secs_f64())),
        ])
    };
    report
        .setup_times(&full_times)
        .extra_num("refresh_speedup", speedup)
        .extra_num("steps", steps as f64)
        .extra_num("full_setup_seconds", full_total.as_secs_f64())
        .extra_num("refresh_setup_seconds", refresh_total.as_secs_f64())
        .extra_json(
            "setup_breakdown",
            Json::Obj(vec![
                (
                    "strength_coarsen".into(),
                    bucket_pair(full_times.strength_coarsen, refresh_times.strength_coarsen),
                ),
                (
                    "interp".into(),
                    bucket_pair(full_times.interp, refresh_times.interp),
                ),
                ("rap".into(), bucket_pair(full_times.rap, refresh_times.rap)),
                (
                    "setup_etc".into(),
                    bucket_pair(full_times.setup_etc, refresh_times.setup_etc),
                ),
            ]),
        );
    report.write_if_requested().expect("telemetry write failed");
}

//! §4.3/§5.4 communication-volume audit: per-level, per-phase bytes and
//! messages for a distributed AMG setup + FGMRES solve, compared against
//! the dense-alltoall baseline recorded before the neighbor-aware rewrite.
//!
//! Usage: `cargo run --release -p famg-bench --bin comm_volume
//!         [--ranks 2,4,8] [--per-rank 12] [--smoke] [--out <dir>]`
//!
//! `--smoke` shrinks the problem and rank list for a CI-speed run that
//! still checks the message-count regression gate. `--out` writes
//! `BENCH_comm_volume.json` (schema in DESIGN.md §8) recording the
//! largest rank count of the sweep; `FAMG_CHROME_TRACE=<dir>` dumps rank
//! 0's setup/solve span trees in chrome://tracing format.

use famg_bench::arg_ranks;
use famg_bench::telemetry::{maybe_write_chrome_trace, BenchReport};
use famg_core::stats::{PhaseTimes, SetupStats};
use famg_core::AmgConfig;
use famg_dist::comm::run_ranks;
use famg_dist::hierarchy::{DistHierarchy, DistOptFlags};
use famg_dist::parcsr::{default_partition, ParCsr};
use famg_dist::solve::dist_fgmres_amg;
use famg_matgen::{laplace3d_7pt, rhs};
use famg_prof::json::Json;

/// Totals recorded at the same shape (12^3 rows/rank, `multi_node_ei4`,
/// FGMRES to 1e-7) with the pre-rewrite dense-alltoall runtime, where
/// every collective and halo exchange posted P-1 envelopes per rank.
const BASELINE: &[(usize, u64, u64)] = &[
    // (ranks, messages, bytes)
    (2, 826, 697_746),
    (4, 6_624, 2_207_684),
    (8, 31_360, 5_250_984),
];

/// What each rank reports back to the driver for the telemetry record.
struct RankOut {
    iterations: usize,
    final_relres: f64,
    converged: bool,
    setup_times: PhaseTimes,
    solve_times: PhaseTimes,
    stats: SetupStats,
    flops: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let per_rank: usize = famg_bench::arg_value("--per-rank")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 8 } else { 12 });
    let ranks = if smoke {
        vec![2usize, 4]
    } else {
        arg_ranks(&[2, 4, 8])
    };
    println!("== comm volume: 7-pt 3D Laplacian, {per_rank}^3 rows/rank, FGMRES+AMG ==\n");

    let mut report_out = BenchReport::new("comm_volume", smoke);
    let mut sweep = Vec::new();
    for &nranks in &ranks {
        let a = laplace3d_7pt(per_rank, per_rank, per_rank * nranks);
        let n = a.nrows();
        let b = rhs::ones(n);
        let starts = default_partition(n, nranks);
        let cfg = AmgConfig::multi_node_ei4();
        let (parts, report) = run_ranks(nranks, |c| {
            let r = c.rank();
            let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
            let bl = b[starts[r]..starts[r + 1]].to_vec();
            let mut xl = vec![0.0; bl.len()];
            let res = dist_fgmres_amg(c, &h, &bl, &mut xl, 1e-7, 200, 50);
            assert!(res.converged, "rank {r}: solve did not converge");
            if r == 0 {
                maybe_write_chrome_trace("comm_volume_setup", &h.profile);
                maybe_write_chrome_trace("comm_volume_solve", &res.profile);
            }
            RankOut {
                iterations: res.iterations,
                final_relres: res.final_relres,
                converged: res.converged,
                setup_times: h.times.clone(),
                solve_times: res.times.clone(),
                stats: h.stats.clone(),
                flops: h.profile.total_counter("flops") + res.profile.total_counter("flops"),
            }
        });
        let msgs = report.total_messages();
        let bytes = report.total_bytes();
        println!(
            "-- {nranks} ranks, {n} rows, {} iterations --",
            parts[0].iterations
        );
        print!("{}", report.scope_table());
        // The recorded baseline is specific to the 12^3 rows/rank shape.
        let baseline = (per_rank == 12)
            .then(|| BASELINE.iter().find(|&&(p, _, _)| p == nranks))
            .flatten();
        if let Some(&(_, base_msgs, base_bytes)) = baseline {
            println!(
                "vs dense-alltoall baseline: messages {msgs} / {base_msgs} ({:.2}x fewer), \
                 bytes {bytes} / {base_bytes} ({:.2}x fewer)",
                base_msgs as f64 / msgs as f64,
                base_bytes as f64 / bytes as f64,
            );
            // Regression gate: the neighbor-aware runtime must never
            // send more traffic than the recorded dense baseline.
            assert!(
                msgs < base_msgs && bytes < base_bytes,
                "{nranks} ranks: comm volume regressed past the recorded baseline"
            );
        }
        println!();

        sweep.push(Json::Obj(vec![
            ("ranks".into(), Json::int(nranks as u64)),
            ("messages".into(), Json::int(msgs)),
            ("bytes".into(), Json::int(bytes)),
        ]));
        // The telemetry record captures the largest rank count of the
        // sweep; the full sweep rides along under "extra".
        if nranks == *ranks.last().unwrap() {
            let r0 = &parts[0];
            let flops: u64 = parts.iter().map(|p| p.flops).sum();
            report_out
                .ranks(nranks)
                .problem(n, a.nnz())
                .setup_times(&r0.setup_times)
                .solve_times(&r0.solve_times)
                .outcome(r0.iterations, r0.final_relres, r0.converged)
                .complexity(&r0.stats)
                .counters(flops, bytes, msgs);
        }
    }
    report_out
        .extra_num("per_rank_side", per_rank as f64)
        .extra_json("sweep", Json::Arr(sweep));
    report_out
        .write_if_requested()
        .expect("telemetry write failed");
    println!("Baseline totals were recorded before the neighbor-aware rewrite;");
    println!("see DESIGN.md §2 for the exchange-plan and tree-collective design.");
}

//! §4.3/§5.4 communication-volume audit: per-level, per-phase bytes and
//! messages for a distributed AMG setup + FGMRES solve, compared against
//! the dense-alltoall baseline recorded before the neighbor-aware rewrite.
//! Each rank count also re-runs the solve with `overlap_comm` off and
//! compares the exposed halo wait against the fully synchronous path —
//! overlap must leave a strictly smaller fraction of the halo wait
//! exposed (uncovered by interior computation) than synchronous
//! exchanges do.
//!
//! Usage: `cargo run --release -p famg-bench --bin comm_volume
//!         [--ranks 2,4,8] [--per-rank 12] [--smoke] [--out <dir>]`
//!
//! `--smoke` shrinks the problem and rank list for a CI-speed run that
//! still checks the message-count regression gate. `--out` writes
//! `BENCH_comm_volume.json` (schema in DESIGN.md §8) recording the
//! largest rank count of the sweep; `FAMG_CHROME_TRACE=<dir>` dumps rank
//! 0's setup/solve span trees in chrome://tracing format.

use famg_bench::arg_ranks;
use famg_bench::telemetry::{maybe_write_chrome_trace, BenchReport};
use famg_core::stats::{PhaseTimes, SetupStats};
use famg_core::AmgConfig;
use famg_dist::comm::run_ranks;
use famg_dist::hierarchy::{DistHierarchy, DistOptFlags};
use famg_dist::parcsr::{default_partition, ParCsr};
use famg_dist::solve::dist_fgmres_amg;
use famg_matgen::{laplace3d_7pt, rhs};
use famg_prof::json::Json;

/// Totals recorded at the same shape (12^3 rows/rank, `multi_node_ei4`,
/// FGMRES to 1e-7) with the pre-rewrite dense-alltoall runtime, where
/// every collective and halo exchange posted P-1 envelopes per rank.
const BASELINE: &[(usize, u64, u64)] = &[
    // (ranks, messages, bytes)
    (2, 826, 697_746),
    (4, 6_624, 2_207_684),
    (8, 31_360, 5_250_984),
];

/// What each rank reports back to the driver for the telemetry record.
struct RankOut {
    iterations: usize,
    final_relres: f64,
    converged: bool,
    setup_times: PhaseTimes,
    solve_times: PhaseTimes,
    stats: SetupStats,
    flops: u64,
    /// Halo wait left exposed during the solve (data still late when
    /// `InFlightHalo::finish` was entered), and the wait hidden behind
    /// the in-flight window. Exposed + hidden = the wait a fully
    /// synchronous exchange would have cost.
    exposed_ns: u64,
    hidden_ns: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let per_rank: usize = famg_bench::arg_value("--per-rank")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 8 } else { 12 });
    let ranks = if smoke {
        vec![2usize, 4]
    } else {
        arg_ranks(&[2, 4, 8])
    };
    println!("== comm volume: 7-pt 3D Laplacian, {per_rank}^3 rows/rank, FGMRES+AMG ==\n");

    let mut report_out = BenchReport::new("comm_volume", smoke);
    let mut sweep = Vec::new();
    // (exposed, hidden) halo-wait nanoseconds summed over the sweep, per
    // halo mode. Exposed + hidden = what a synchronous exchange would
    // block for, so exposed / (exposed + hidden) is the fraction of the
    // halo wait each mode leaves uncovered — comparing fractions makes
    // the overlap gate robust to run-to-run scheduler noise.
    let mut overlap_ns: (u64, u64) = (0, 0);
    let mut sync_ns: (u64, u64) = (0, 0);
    for &nranks in &ranks {
        let a = laplace3d_7pt(per_rank, per_rank, per_rank * nranks);
        let n = a.nrows();
        let b = rhs::ones(n);
        let starts = default_partition(n, nranks);
        let cfg = AmgConfig::multi_node_ei4();
        let (parts, report) = run_ranks(nranks, |c| {
            let r = c.rank();
            let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
            let bl = b[starts[r]..starts[r + 1]].to_vec();
            let mut xl = vec![0.0; bl.len()];
            let res = dist_fgmres_amg(c, &h, &bl, &mut xl, 1e-7, 200, 50);
            assert!(res.converged, "rank {r}: solve did not converge");
            if r == 0 {
                maybe_write_chrome_trace("comm_volume_setup", &h.profile);
                maybe_write_chrome_trace("comm_volume_solve", &res.profile);
            }
            RankOut {
                iterations: res.iterations,
                final_relres: res.final_relres,
                converged: res.converged,
                setup_times: h.times.clone(),
                solve_times: res.times.clone(),
                stats: h.stats.clone(),
                flops: h.profile.total_counter("flops") + res.profile.total_counter("flops"),
                exposed_ns: res.profile.total_counter("halo_exposed_ns"),
                hidden_ns: res.profile.total_counter("halo_hidden_ns"),
            }
        });
        // Same solve with `overlap_comm` off: every halo wait is exposed.
        // The results are bitwise identical (asserted below on iteration
        // count; the full contract is tested in tests/halo_overlap.rs),
        // only the exposed-wait telemetry differs.
        let sync_flags = DistOptFlags {
            overlap_comm: false,
            ..DistOptFlags::all()
        };
        let (sync_parts, _) = run_ranks(nranks, |c| {
            let r = c.rank();
            let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &cfg, sync_flags);
            let bl = b[starts[r]..starts[r + 1]].to_vec();
            let mut xl = vec![0.0; bl.len()];
            let res = dist_fgmres_amg(c, &h, &bl, &mut xl, 1e-7, 200, 50);
            assert!(res.converged, "rank {r}: sync solve did not converge");
            (
                res.iterations,
                res.profile.total_counter("halo_exposed_ns"),
                res.profile.total_counter("halo_hidden_ns"),
            )
        });
        assert_eq!(
            parts[0].iterations, sync_parts[0].0,
            "{nranks} ranks: overlap and sync solves diverged"
        );
        let ov_exposed: u64 = parts.iter().map(|p| p.exposed_ns).sum();
        let ov_hidden: u64 = parts.iter().map(|p| p.hidden_ns).sum();
        let sy_exposed: u64 = sync_parts.iter().map(|p| p.1).sum();
        let sy_hidden: u64 = sync_parts.iter().map(|p| p.2).sum();
        overlap_ns.0 += ov_exposed;
        overlap_ns.1 += ov_hidden;
        sync_ns.0 += sy_exposed;
        sync_ns.1 += sy_hidden;
        let msgs = report.total_messages();
        let bytes = report.total_bytes();
        println!(
            "-- {nranks} ranks, {n} rows, {} iterations --",
            parts[0].iterations
        );
        print!("{}", report.scope_table());
        // The recorded baseline is specific to the 12^3 rows/rank shape.
        let baseline = (per_rank == 12)
            .then(|| BASELINE.iter().find(|&&(p, _, _)| p == nranks))
            .flatten();
        if let Some(&(_, base_msgs, base_bytes)) = baseline {
            println!(
                "vs dense-alltoall baseline: messages {msgs} / {base_msgs} ({:.2}x fewer), \
                 bytes {bytes} / {base_bytes} ({:.2}x fewer)",
                base_msgs as f64 / msgs as f64,
                base_bytes as f64 / bytes as f64,
            );
            // Regression gate: the neighbor-aware runtime must never
            // send more traffic than the recorded dense baseline.
            assert!(
                msgs < base_msgs && bytes < base_bytes,
                "{nranks} ranks: comm volume regressed past the recorded baseline"
            );
        }
        println!(
            "halo wait (solve, summed over ranks): \
             overlap {:.3} ms exposed / {:.3} ms hidden; \
             sync {:.3} ms exposed / {:.3} ms hidden",
            ov_exposed as f64 * 1e-6,
            ov_hidden as f64 * 1e-6,
            sy_exposed as f64 * 1e-6,
            sy_hidden as f64 * 1e-6,
        );
        println!();

        sweep.push(Json::Obj(vec![
            ("ranks".into(), Json::int(nranks as u64)),
            ("messages".into(), Json::int(msgs)),
            ("bytes".into(), Json::int(bytes)),
            ("exposed_wait_overlap_ns".into(), Json::int(ov_exposed)),
            ("hidden_wait_overlap_ns".into(), Json::int(ov_hidden)),
            ("exposed_wait_sync_ns".into(), Json::int(sy_exposed)),
            ("hidden_wait_sync_ns".into(), Json::int(sy_hidden)),
        ]));
        // The telemetry record captures the largest rank count of the
        // sweep; the full sweep rides along under "extra".
        if nranks == *ranks.last().unwrap() {
            let r0 = &parts[0];
            let flops: u64 = parts.iter().map(|p| p.flops).sum();
            report_out
                .ranks(nranks)
                .problem(n, a.nnz())
                .setup_times(&r0.setup_times)
                .solve_times(&r0.solve_times)
                .outcome(r0.iterations, r0.final_relres, r0.converged)
                .complexity(&r0.stats)
                .counters(flops, bytes, msgs);
        }
    }
    // The overlap gate: of the halo wait each mode would suffer
    // synchronously (exposed + hidden), `overlap_comm` must leave a
    // strictly smaller *fraction* exposed than the synchronous path,
    // summed over the whole sweep. Fractions — not absolute wall times —
    // because the two legs are separate runs with separate scheduler
    // noise, while each fraction is a same-run ratio. Only meaningful
    // when the profiler is compiled in (prof-off builds report 0/0 → 0).
    let frac = |(exposed, hidden): (u64, u64)| {
        let total = exposed + hidden;
        if total == 0 {
            0.0
        } else {
            exposed as f64 / total as f64
        }
    };
    let (ov_frac, sy_frac) = (frac(overlap_ns), frac(sync_ns));
    println!("exposed fraction of halo wait: overlap {ov_frac:.3} vs sync {sy_frac:.3}");
    if famg_prof::enabled() {
        assert!(
            ov_frac < sy_frac,
            "overlap_comm left {ov_frac:.3} of the halo wait exposed, \
             not below the synchronous {sy_frac:.3}"
        );
    }
    report_out
        .extra_num("per_rank_side", per_rank as f64)
        .extra_num("exposed_wait_overlap_seconds", overlap_ns.0 as f64 * 1e-9)
        .extra_num("hidden_wait_overlap_seconds", overlap_ns.1 as f64 * 1e-9)
        .extra_num("exposed_wait_sync_seconds", sync_ns.0 as f64 * 1e-9)
        .extra_num("hidden_wait_sync_seconds", sync_ns.1 as f64 * 1e-9)
        .extra_num("exposed_wait_overlap_fraction", ov_frac)
        .extra_num("exposed_wait_sync_fraction", sy_frac)
        .extra_json("sweep", Json::Arr(sweep));
    report_out
        .write_if_requested()
        .expect("telemetry write failed");
    println!("Baseline totals were recorded before the neighbor-aware rewrite;");
    println!("see DESIGN.md §2 for the exchange-plan and tree-collective design.");
}

//! §5.1 bandwidth-bound analysis: the paper uses STREAM triad bandwidth
//! as the first-order performance bound for AMG and reports how
//! efficiently each implementation uses it. This harness measures the
//! *effective* bandwidth (compulsory traffic / wall time) of the main
//! solve-phase kernels, alongside a STREAM-triad-like measurement of the
//! host so the two are comparable (the Table 1 bottom-row analogue).
//!
//! Usage: `cargo run --release -p famg-bench --bin text_bandwidth
//!         [--scale 0.3]`

use famg_bench::{arg_scale, best_of};
use famg_core::coarsen::pmis;
use famg_core::reorder::cf_reorder;
use famg_core::smoother::{Smoother, Workspace};
use famg_core::strength::strength;
use famg_matgen::laplace2d;
use famg_sparse::spmv::{residual_norm_sq, spmv, spmv_unrolled};
use famg_sparse::traffic;
use std::hint::black_box;

/// STREAM-triad-like measurement: `a = b + s*c` over large buffers.
fn stream_triad_gbs() -> f64 {
    let n = 8_000_000usize;
    let b = vec![1.0f64; n];
    let c = vec![2.0f64; n];
    let mut a = vec![0.0f64; n];
    let ((), dt) = best_of(5, || {
        for i in 0..n {
            a[i] = b[i] + 3.0 * c[i];
        }
        black_box(a[n / 2]);
    });
    // 3 vectors * 8 bytes each.
    traffic::effective_bandwidth_gbs(3 * 8 * n, dt.as_secs_f64())
}

fn main() {
    let scale = arg_scale(0.3);
    let n = (2000.0 * scale) as usize;
    let a = laplace2d(n, n);
    println!(
        "== §5.1 bandwidth analysis: {}x{} Laplacian ({} rows) ==\n",
        n,
        n,
        a.nrows()
    );
    let stream = stream_triad_gbs();
    println!("host STREAM-triad-like bandwidth: {stream:.2} GB/s\n");
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "kernel", "time", "GB moved", "eff GB/s"
    );

    let x: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64).collect();
    let b: Vec<f64> = vec![1.0; a.nrows()];
    let mut y = vec![0.0; a.nrows()];
    let spmv_traffic = traffic::spmv_bytes(&a);

    let ((), t) = best_of(5, || spmv(&a, &x, &mut y));
    report("SpMV", t, spmv_traffic, stream);
    let ((), t) = best_of(5, || spmv_unrolled(&a, &x, &mut y));
    report("SpMV (8-wide unrolled)", t, spmv_traffic, stream);
    let (_, t) = best_of(5, || black_box(residual_norm_sq(&a, &x, &b, &mut y)));
    report(
        "fused residual+norm",
        t,
        spmv_traffic + a.nrows() * 8,
        stream,
    );

    // Hybrid GS sweep (optimized kernel).
    let s = strength(&a, 0.25, 0.8);
    let coarse = pmis(&s, 1);
    let (mut ap, ord) = cf_reorder(&a, &coarse.is_coarse);
    let sm = Smoother::hybrid_opt(&mut ap, ord.nc, rayon::current_num_threads());
    let mut ws = Workspace::new();
    let mut xs = vec![0.0; a.nrows()];
    let ((), t) = best_of(5, || sm.pre_smooth(&ap, &b, &mut xs, &mut ws, false));
    report(
        "hybrid GS C+F sweep",
        t,
        traffic::gs_sweep_bytes(&ap),
        stream,
    );

    println!("\nThe paper's premise: these kernels should run near the STREAM");
    println!("bound; the ratio column is the bandwidth efficiency it optimizes.");
}

fn report(name: &str, t: std::time::Duration, bytes: usize, stream: f64) {
    let gbs = traffic::effective_bandwidth_gbs(bytes, t.as_secs_f64());
    println!(
        "{:<28} {:>10} {:>12.3} {:>7.2} ({:.0}% of STREAM)",
        name,
        famg_bench::fmt_secs(t),
        bytes as f64 / 1e9,
        gbs,
        100.0 * gbs / stream.max(1e-9)
    );
}

//! Table 1 analogue: the evaluation environment.
//!
//! The paper's Table 1 lists the Xeon E5-2697 v3 / K40c test beds; this
//! harness prints the machine famg actually runs on next to the paper's
//! values, plus the solver settings of Tables 3 and 4.

use famg_core::params::AmgConfig;

fn read_cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .map(|l| l.split_once(':').map_or("?", |x| x.1).trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

fn main() {
    println!("== Table 1: evaluation settings (paper vs. this run) ==\n");
    println!("{:<18} {:<38} this run", "", "paper (HYPRE column)");
    println!(
        "{:<18} {:<38} famg (this repository)",
        "Version", "HYPRE 2.10.0b (2015.1.22)"
    );
    let compiler = format!("rustc (cargo {})", env!("CARGO_PKG_VERSION"));
    println!(
        "{:<18} {:<38} {}",
        "Compiler", "Intel compiler 15.0.2", compiler
    );
    println!(
        "{:<18} {:<38} {}",
        "Processor",
        "Xeon E5-2697 v3 (HSW), 14C @ 2.6 GHz",
        read_cpu_model()
    );
    println!(
        "{:<18} {:<38} {}",
        "Parallelism",
        "1 socket x 14 cores x 4-wide SIMD",
        format_args!(
            "{} hw threads (rayon uses {})",
            std::thread::available_parallelism().map_or(0, std::num::NonZero::get),
            rayon::current_num_threads()
        )
    );
    println!(
        "{:<18} {:<38} shared memory; simulated ranks for multi-node",
        "Memory model", "54 GB/s STREAM triad"
    );

    let t3 = AmgConfig::single_node_paper();
    println!("\n== Table 3: single-node AMG parameters ==");
    println!("solver        standalone AMG (not a preconditioner)");
    println!("cycle         V, max_levels={}", t3.max_levels);
    println!(
        "coarsening    classical PMIS, str_thr={}, max_row_sum={}",
        t3.strength_threshold, t3.max_row_sum
    );
    println!(
        "interpolation extended+i, trunc_fact={}, max_elmts={}",
        t3.trunc_factor, t3.max_elements
    );
    println!("smoother      hybrid Gauss-Seidel (C-F relaxation)");
    println!("tolerance     {:.0e}", t3.tolerance);

    println!("\n== Table 4: multi-node AMG parameters ==");
    for (name, cfg) in [
        ("ei(4)", AmgConfig::multi_node_ei4()),
        ("mp", AmgConfig::multi_node_mp()),
        ("2s-ei(444)", AmgConfig::multi_node_2s_ei444()),
    ] {
        println!(
            "{:<12} coarsen={:?} aggressive_levels={} interp={:?} max_levels={}",
            name, cfg.coarsen, cfg.aggressive_levels, cfg.interp, cfg.max_levels
        );
    }
    println!("solver        flexible GMRES + AMG V-cycle preconditioner");
    println!("tolerance     1e-7 (weak scaling), 1e-5 (strong scaling)");
}

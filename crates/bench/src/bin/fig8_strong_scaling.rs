//! Fig. 8: strong scaling on the reservoir problem.
//!
//! A fixed-size ill-conditioned pressure system (highly discontinuous
//! permeability; see `famg_matgen::reservoir`) is solved with
//! FGMRES + AMG at tolerance 1e-5 across growing rank counts. Series, as
//! in the paper: the baseline with multipass interpolation (`base-mp`,
//! all §4 optimizations off) and the optimized build with `mp`, `ei(4)`,
//! and `2s-ei(444)`.
//!
//! Usage: `cargo run --release -p famg-bench --bin fig8_strong_scaling --
//!         [--ranks 1,2,4,8] [--size 32]` (grid is size×size×size/2)

use famg_bench::{arg_ranks, arg_value, fmt_secs};
use famg_core::params::AmgConfig;
use famg_dist::comm::run_ranks;
use famg_dist::hierarchy::{DistHierarchy, DistOptFlags};
use famg_dist::parcsr::{default_partition, ParCsr};
use famg_dist::solve::dist_fgmres_amg;
use famg_matgen::{reservoir_matrix, rhs};

fn main() {
    let ranks_list = arg_ranks(&[1, 2, 4, 8]);
    let size: usize = arg_value("--size")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let a = reservoir_matrix(size, size, (size / 2).max(4), 7);
    let n = a.nrows();
    println!("== Fig. 8 strong scaling: reservoir problem, {n} rows, tol 1e-5 ==\n");
    println!(
        "{:<6} {:<12} {:>10} {:>10} {:>10} {:>6}",
        "ranks", "series", "setup", "solve", "total", "iters"
    );

    let series: Vec<(&str, AmgConfig, DistOptFlags)> = vec![
        ("base-mp", AmgConfig::multi_node_mp(), DistOptFlags::none()),
        ("opt-mp", AmgConfig::multi_node_mp(), DistOptFlags::all()),
        (
            "opt-ei(4)",
            AmgConfig::multi_node_ei4(),
            DistOptFlags::all(),
        ),
        (
            "opt-2s-ei(444)",
            AmgConfig::multi_node_2s_ei444(),
            DistOptFlags::all(),
        ),
    ];

    for &nranks in &ranks_list {
        let starts = default_partition(n, nranks);
        for (name, cfg, dopt) in &series {
            let b = rhs::ones(n);
            let (parts, _) = run_ranks(nranks, |c| {
                let r = c.rank();
                let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
                let h = DistHierarchy::build(c, pa, cfg, *dopt);
                let bl = b[starts[r]..starts[r + 1]].to_vec();
                let mut xl = vec![0.0; bl.len()];
                let res = dist_fgmres_amg(c, &h, &bl, &mut xl, 1e-5, 400, 50);
                assert!(res.converged, "{name} at {nranks} ranks stalled");
                (
                    h.times.setup_total() + h.setup_comm_time,
                    res.times.solve_total() + res.solve_comm_time,
                    res.iterations,
                )
            });
            let setup = parts.iter().map(|p| p.0).max().unwrap();
            let solve = parts.iter().map(|p| p.1).max().unwrap();
            println!(
                "{:<6} {:<12} {:>10} {:>10} {:>10} {:>6}",
                nranks,
                name,
                fmt_secs(setup),
                fmt_secs(solve),
                fmt_secs(setup + solve),
                parts[0].2
            );
        }
        println!();
    }
    println!("Paper shape: iteration counts stay constant per scheme (8/10/14 for");
    println!("ei(4)/2s-ei(444)/mp); the optimized build beats base-mp everywhere;");
    println!("setup scales worse than solve.");
}

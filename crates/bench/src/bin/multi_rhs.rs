//! Batched multi-RHS solve benchmark: per-RHS throughput of `solve_batch`
//! at widths 1/2/4/8 against solo solves, plus the distributed
//! message-amortization audit.
//!
//! Time-stepping workloads (§2's reservoir setting) solve many
//! right-hand sides against one frozen operator. The batched path runs
//! one V-cycle across all `k` columns — every matrix traversal (SpMM,
//! k-wide hybrid GS) and every halo envelope is shared by the whole
//! batch — while keeping column `j` bitwise identical to the scalar
//! solve. This bench measures both halves of that bargain:
//!
//! * serial throughput: wall time of `k` solo solves vs one `k`-wide
//!   `solve_batch`, reported as per-RHS speedup (gated at >= 1.3x for
//!   k = 8, and recorded as `extra.per_rhs_speedup_k8`);
//! * distributed amortization: total messages of a 4-rank solve driven
//!   to a fixed cycle count at k = 1 (scalar path) vs k = 8 (batched
//!   path) — the counts must be *exactly* equal
//!   (`extra.halo_messages_k1` == `extra.halo_messages_k8`).
//!
//! Usage: `cargo run --release -p famg-bench --bin multi_rhs
//!         [--smoke] [--out <dir>]`
//!
//! `--out` writes `BENCH_multi_rhs.json` (schema in DESIGN.md §8);
//! `FAMG_CHROME_TRACE=<dir>` dumps the k=8 batch solve's span tree.

use famg_bench::fmt_secs;
use famg_bench::telemetry::{maybe_write_chrome_trace, BenchReport};
use famg_core::params::AmgConfig;
use famg_core::solver::AmgSolver;
use famg_dist::comm::run_ranks;
use famg_dist::hierarchy::{DistHierarchy, DistOptFlags};
use famg_dist::parcsr::{default_partition, ParCsr};
use famg_dist::solve::{dist_amg_solve, dist_amg_solve_multi};
use famg_matgen::laplace3d_7pt;
use famg_prof::json::Json;
use famg_sparse::MultiVec;
use std::time::Instant;

/// Deterministic, column-dependent right-hand sides (distinct per
/// column so no lane degenerates into another).
fn rhs_columns(n: usize, k: usize) -> Vec<Vec<f64>> {
    (0..k)
        .map(|j| {
            (0..n)
                .map(|i| ((i * (2 * j + 3) + 11 * j) % 23) as f64 / 23.0 - 0.4)
                .collect()
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dim = if smoke { 20 } else { 40 };
    let a = laplace3d_7pt(dim, dim, dim);
    let n = a.nrows();
    let cfg = AmgConfig::single_node_paper();
    println!("multi_rhs: 7-pt 3D Laplacian {dim}^3 (n = {n}), single_node_paper\n");

    let solver = AmgSolver::setup(&a, &cfg);
    let mut report = BenchReport::new("multi_rhs", smoke);
    report.problem(n, a.nnz());
    report.setup_times(&solver.hierarchy().times);
    report.counters_from(&solver.hierarchy().profile);

    // -- serial throughput: k solo solves vs one k-wide batch ----------
    let cols = rhs_columns(n, 8);
    let t0 = Instant::now();
    let mut solo_cols: Vec<Vec<f64>> = Vec::new();
    for bj in &cols {
        let mut xj = vec![0.0; n];
        let res = solver.solve(bj, &mut xj);
        assert!(res.converged, "solo solve did not converge");
        solo_cols.push(xj);
    }
    let solo8 = t0.elapsed();
    let solo_per_rhs = solo8 / 8;

    println!(
        "{:>4} {:>12} {:>12} {:>10}",
        "k", "batch", "per RHS", "vs solo"
    );
    let mut sweep = Vec::new();
    let mut speedup_k8 = 0.0;
    for k in [1usize, 2, 4, 8] {
        let b = MultiVec::from_columns(&cols[..k]);
        let mut x = MultiVec::new(n, k);
        let tb = Instant::now();
        let res = solver.solve_batch(&b, &mut x);
        let batch_t = tb.elapsed();
        assert!(res.all_converged(), "k = {k}: batch did not converge");
        // The contract the speedup is not allowed to buy its way out of:
        // every column is bitwise identical to its solo solve.
        for (j, solo) in solo_cols.iter().take(k).enumerate() {
            assert_eq!(&x.col(j), solo, "k = {k} col {j}: batch != solo bits");
        }
        let per_rhs = batch_t / k as u32;
        let speedup = solo_per_rhs.as_secs_f64() / per_rhs.as_secs_f64();
        println!(
            "{k:>4} {:>12} {:>12} {:>9.2}x",
            fmt_secs(batch_t),
            fmt_secs(per_rhs),
            speedup
        );
        sweep.push(Json::Obj(vec![
            ("k".into(), Json::Num(k as f64)),
            ("batch_seconds".into(), Json::Num(batch_t.as_secs_f64())),
            ("per_rhs_speedup".into(), Json::Num(speedup)),
        ]));
        if k == 8 {
            speedup_k8 = speedup;
            report
                .solve_times(&res.times)
                .outcome(res.iterations[0], res.final_relres[0], res.converged[0])
                .complexity(&solver.hierarchy().stats)
                .counters_from(&res.profile);
            maybe_write_chrome_trace("multi_rhs_solve_k8", &res.profile);
        }
    }
    println!(
        "\nsolo baseline: 8 solves in {} ({} per RHS)",
        fmt_secs(solo8),
        fmt_secs(solo_per_rhs)
    );

    // -- distributed amortization: messages at fixed cycle count -------
    // Tolerance 0 runs the full iteration budget in both configurations,
    // so the message counts compare like for like.
    let cycles = 3usize;
    let dist_cfg = AmgConfig {
        tolerance: 0.0,
        max_iterations: cycles,
        ..AmgConfig::single_node_paper()
    };
    let ddim = if smoke { 12 } else { 20 };
    let da = laplace3d_7pt(ddim, ddim, ddim);
    let dn = da.nrows();
    let nranks = 4usize;
    let starts = default_partition(dn, nranks);
    let dcols = rhs_columns(dn, 8);
    let messages_k1 = {
        let (counts, _) = run_ranks(nranks, |c| {
            let r = c.rank();
            let (s, e) = (starts[r], starts[r + 1]);
            let pa = ParCsr::from_global_rows(&da, s, e, starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &dist_cfg, DistOptFlags::all());
            let bl = dcols[0][s..e].to_vec();
            let mut xl = vec![0.0; e - s];
            let res = dist_amg_solve(c, &h, &bl, &mut xl);
            assert_eq!(res.iterations, cycles);
            res.solve_comm.messages
        });
        counts.iter().sum::<u64>()
    };
    let messages_k8 = {
        let (counts, _) = run_ranks(nranks, |c| {
            let r = c.rank();
            let (s, e) = (starts[r], starts[r + 1]);
            let pa = ParCsr::from_global_rows(&da, s, e, starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &dist_cfg, DistOptFlags::all());
            let local: Vec<Vec<f64>> = dcols.iter().map(|col| col[s..e].to_vec()).collect();
            let bb = MultiVec::from_columns(&local);
            let mut xb = MultiVec::new(e - s, 8);
            let res = dist_amg_solve_multi(c, &h, &bb, &mut xb);
            assert!(res.iterations.iter().all(|&it| it == cycles));
            res.solve_comm.messages
        });
        counts.iter().sum::<u64>()
    };
    println!(
        "\ndistributed ({nranks} ranks, {ddim}^3, {cycles} cycles): \
         {messages_k1} messages at k=1 vs {messages_k8} at k=8"
    );
    assert_eq!(
        messages_k1, messages_k8,
        "batched solve must send exactly the scalar solve's message count"
    );
    println!("gate: message count is k-independent -- ok");

    assert!(
        speedup_k8 >= 1.3,
        "per-RHS speedup gate failed: k=8 batch {speedup_k8:.2}x < 1.3x vs solo"
    );
    println!("gate: k=8 per-RHS >= 1.3x solo -- ok");

    report
        .extra_num("per_rhs_speedup_k8", speedup_k8)
        .extra_num("halo_messages_k1", messages_k1 as f64)
        .extra_num("halo_messages_k8", messages_k8 as f64)
        .extra_num("solo8_seconds", solo8.as_secs_f64())
        .extra_json("batch_sweep", Json::Arr(sweep));
    report.write_if_requested().expect("telemetry write failed");
}

//! Ablation study: each single-node optimization of §3 toggled off
//! individually against the fully optimized build, on one mid-size
//! problem. Reports the slowdown each missing optimization causes in its
//! targeted component — the per-knob version of Fig. 5.
//!
//! Usage: `cargo run --release -p famg-bench --bin ablation_flags
//!         [--scale 0.25]`

use famg_bench::{arg_scale, fmt_secs};
use famg_core::params::{AmgConfig, OptFlags};
use famg_core::solver::AmgSolver;
use famg_matgen::{laplace2d, rhs};
use std::time::Duration;

struct Outcome {
    setup: Duration,
    solve: Duration,
    total: Duration,
    iters: usize,
}

fn run_once(a: &famg_sparse::Csr, opt: OptFlags) -> Outcome {
    let cfg = AmgConfig {
        opt,
        ..AmgConfig::single_node_paper()
    };
    let solver = AmgSolver::setup(a, &cfg);
    let b = rhs::ones(a.nrows());
    let mut x = vec![0.0; a.nrows()];
    let res = solver.solve(&b, &mut x);
    assert!(res.converged);
    let setup = solver.hierarchy().times.setup_total();
    let solve = res.times.solve_total();
    Outcome {
        setup,
        solve,
        total: setup + solve,
        iters: res.iterations,
    }
}

/// Best of two runs (per-component minimum) to shed warm-up noise.
fn run(a: &famg_sparse::Csr, opt: OptFlags) -> Outcome {
    let r1 = run_once(a, opt);
    let r2 = run_once(a, opt);
    Outcome {
        setup: r1.setup.min(r2.setup),
        solve: r1.solve.min(r2.solve),
        total: r1.total.min(r2.total),
        iters: r1.iters.min(r2.iters),
    }
}

fn main() {
    let scale = arg_scale(0.25);
    let n = (2000.0 * scale) as usize;
    let a = laplace2d(n, n);
    println!(
        "== §3 optimization ablations on lap2d {n}x{n} ({} rows) ==\n",
        a.nrows()
    );
    let _warmup = run_once(&a, OptFlags::all());
    let full = run(&a, OptFlags::all());
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>6} {:>9}",
        "configuration", "setup", "solve", "total", "iters", "vs full"
    );
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>6} {:>9}",
        "all optimizations",
        fmt_secs(full.setup),
        fmt_secs(full.solve),
        fmt_secs(full.total),
        full.iters,
        "1.00x"
    );

    type Knob = (&'static str, Box<dyn Fn(&mut OptFlags)>);
    let knobs: Vec<Knob> = vec![
        ("- one_pass_spgemm", Box::new(|f| f.one_pass_spgemm = false)),
        ("- row_fused_rap", Box::new(|f| f.row_fused_rap = false)),
        ("- cf_reorder", Box::new(|f| f.cf_reorder = false)),
        ("- keep_transpose", Box::new(|f| f.keep_transpose = false)),
        (
            "- reordered_smoother",
            Box::new(|f| f.reordered_smoother = false),
        ),
        (
            "- fused_residual_norm",
            Box::new(|f| f.fused_residual_norm = false),
        ),
        (
            "- fused_truncation",
            Box::new(|f| f.fused_truncation = false),
        ),
        ("none (HYPRE_base)", Box::new(|f| *f = OptFlags::none())),
    ];
    for (name, apply) in knobs {
        let mut flags = OptFlags::all();
        apply(&mut flags);
        let o = run(&a, flags);
        println!(
            "{:<26} {:>10} {:>10} {:>10} {:>6} {:>8.2}x",
            name,
            fmt_secs(o.setup),
            fmt_secs(o.solve),
            fmt_secs(o.total),
            o.iters,
            o.total.as_secs_f64() / full.total.as_secs_f64()
        );
    }
    println!("\n`vs full` > 1 means removing the optimization costs time; the");
    println!("dominant knobs should be keep_transpose and the smoother/CF pair,");
    println!("matching the paper's SpMV (3.7x) and GS (1.2x) attributions.");
}

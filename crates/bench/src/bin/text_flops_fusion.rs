//! §3.1.1 in-text claims:
//!
//! 1. Row-fused RAP (Fig. 1a) performs fewer floating-point operations
//!    than HYPRE's scalar fusion (Fig. 1b) — the paper measures 1.73×
//!    fewer on the finest-level triple product, averaged over the suite.
//! 2. Re-running the numeric phase over a frozen symbolic pattern (no
//!    sparse-accumulator branches) bounds the branching overhead — the
//!    paper measures a 2.1× speedup.
//!
//! Usage: `cargo run --release -p famg-bench --bin text_flops_fusion
//!         [--scale 0.15]`

use famg_bench::{arg_scale, best_of, rap_fixture};
use famg_matgen::suite;
use famg_sparse::spgemm::{numeric_only, spgemm_one_pass};
use famg_sparse::triple::{rap_row_fused_flops, rap_scalar_fused_flops};

fn main() {
    let scale = arg_scale(0.15);
    println!("== §3.1.1: RAP flop ratio and branch-overhead bound (scale {scale}) ==\n");
    println!(
        "{:<16} {:>14} {:>14} {:>7} | {:>10} {:>10} {:>7}",
        "matrix", "rowfused flops", "scalar flops", "ratio", "full mult", "numeric", "speedup"
    );
    let mut ratio_sum = 0.0;
    let mut branch_sum = 0.0;
    let mut count = 0usize;
    for m in suite() {
        let a = (m.gen)(scale);
        let f = rap_fixture(a, 42);
        let fr = rap_row_fused_flops(&f.r, &f.a, &f.p);
        let fs = rap_scalar_fused_flops(&f.r, &f.a, &f.p);
        let ratio = fs.total() as f64 / fr.total() as f64;
        // Branch-overhead bound on the building-block SpGEMM (R·A).
        let (mut c, t_full) = best_of(3, || spgemm_one_pass(&f.r, &f.a));
        let ((), t_numeric) = best_of(3, || numeric_only(&f.r, &f.a, &mut c));
        let branch = t_full.as_secs_f64() / t_numeric.as_secs_f64();
        ratio_sum += ratio;
        branch_sum += branch;
        count += 1;
        println!(
            "{:<16} {:>14} {:>14} {:>6.2}x | {:>10} {:>10} {:>6.2}x",
            m.name,
            fr.total(),
            fs.total(),
            ratio,
            famg_bench::fmt_secs(t_full),
            famg_bench::fmt_secs(t_numeric),
            branch
        );
    }
    println!(
        "\nmean flop ratio (scalar/rowfused): {:.2}x   (paper: 1.73x)",
        ratio_sum / count as f64
    );
    println!(
        "mean branch-overhead bound:        {:.2}x   (paper: 2.1x)",
        branch_sum / count as f64
    );
}

//! Fig. 7: breakdown of total (setup + solve) time at the largest rank
//! count, per interpolation scheme, including the communication share
//! (the paper's `Solve_MPI` bar).
//!
//! Usage: `cargo run --release -p famg-bench --bin fig7_breakdown --
//!         [--ranks 8] [--per-rank 24] [laplace27|amg2013]`

use famg_bench::{arg_value, fmt_secs};
use famg_core::params::AmgConfig;
use famg_dist::comm::run_ranks;
use famg_dist::hierarchy::{DistHierarchy, DistOptFlags};
use famg_dist::parcsr::{default_partition, ParCsr};
use famg_dist::solve::dist_fgmres_amg;
use famg_matgen::{amg2013_like, laplace3d_27pt, rhs};

fn main() {
    let input = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "laplace27".into());
    let nranks: usize = arg_value("--ranks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let per_rank: usize = arg_value("--per-rank")
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let a = match input.as_str() {
        "laplace27" => laplace3d_27pt(per_rank, per_rank, per_rank * nranks),
        "amg2013" => amg2013_like(per_rank, per_rank, per_rank * nranks, 2, 2.0, 17),
        other => panic!("unknown input {other}"),
    };
    let n = a.nrows();
    let starts = default_partition(n, nranks);
    println!("== Fig. 7: total-time breakdown on {nranks} ranks, input `{input}` ({n} rows) ==\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "S+Coarsen", "Interp", "RAP", "Setup*", "Smooth", "SpMV+B1", "Comm"
    );

    for (scheme, cfg) in [
        ("mp", AmgConfig::multi_node_mp()),
        ("ei(4)", AmgConfig::multi_node_ei4()),
        ("2s-ei(444)", AmgConfig::multi_node_2s_ei444()),
    ] {
        let b = rhs::ones(n);
        let (parts, _) = run_ranks(nranks, |c| {
            let r = c.rank();
            let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
            let bl = b[starts[r]..starts[r + 1]].to_vec();
            let mut xl = vec![0.0; bl.len()];
            let res = dist_fgmres_amg(c, &h, &bl, &mut xl, 1e-7, 300, 50);
            assert!(res.converged);
            (
                h.times.clone(),
                h.setup_comm_time,
                res.times.clone(),
                res.solve_comm_time,
            )
        });
        // Rank 0's breakdown is representative (slab partition is even).
        let (setup, setup_comm, solve, solve_comm) = &parts[0];
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            scheme,
            fmt_secs(setup.strength_coarsen),
            fmt_secs(setup.interp),
            fmt_secs(setup.rap),
            fmt_secs(setup.setup_etc),
            fmt_secs(solve.gs),
            fmt_secs(solve.spmv + solve.blas1),
            fmt_secs(*setup_comm + *solve_comm),
        );
    }
    println!("\nPaper shape: 2-stage aggressive coarsening trades longer Interp for");
    println!("shorter RAP and solve; communication (Solve_MPI) dominates at scale.");
}

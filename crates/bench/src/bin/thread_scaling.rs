//! Serial-vs-parallel ablation for the pooled rayon shim: wall-clock of
//! the two kernels the paper's Fig. 5 is most sensitive to — SpGEMM
//! (setup) and the hybrid GS sweep (solve) — at the fig5 proxy sizes,
//! plus the fused residual norm, the parallel transpose, and a full
//! AMG setup + solve whose span profile feeds the telemetry record.
//!
//! The pool size is pinned at first use, so one process measures one
//! size; run the binary once per setting and compare:
//!
//! ```text
//! RAYON_NUM_THREADS=1 cargo run --release -p famg-bench --bin thread_scaling
//! RAYON_NUM_THREADS=4 cargo run --release -p famg-bench --bin thread_scaling
//! ```
//!
//! Flags: `--smoke` (small problem, few reps), `--scale <f>` (footprint
//! multiplier), `--out <dir>` (write `BENCH_thread_scaling.json`).
//! `FAMG_CHROME_TRACE=<dir>` additionally dumps the setup/solve span
//! trees in chrome://tracing format.
//!
//! The acceptance target (on a ≥4-core machine) is ≥2× at 4 threads vs 1
//! on `spgemm_one_pass` and the hybrid sweep. Outputs are bitwise
//! identical across settings (see `tests/thread_independence.rs`); this
//! binary prints a fingerprint of each kernel's result so a scaling run
//! doubles as a determinism check.

use famg_bench::arg_scale;
use famg_bench::telemetry::{maybe_write_chrome_trace, BenchReport};
use famg_core::coarsen::pmis;
use famg_core::reorder::cf_reorder;
use famg_core::smoother::{Smoother, Workspace};
use famg_core::solver::AmgSolver;
use famg_core::strength::strength;
use famg_core::AmgConfig;
use famg_matgen::laplace2d;
use famg_prof::json::Json;
use famg_sparse::spgemm::spgemm_one_pass;
use famg_sparse::spmv::residual_norm_sq;
use famg_sparse::transpose::transpose_par;
use std::time::Instant;

fn fingerprint(values: &[f64]) -> u64 {
    values
        .iter()
        .map(|v| v.to_bits())
        .fold(0xcbf2_9ce4_8422_2325u64, |h, w| {
            w.to_le_bytes().iter().fold(h, |h, &b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
            })
        })
}

fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.unwrap())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = arg_scale(if smoke { 0.1 } else { 1.0 });
    let reps = if smoke { 2 } else { 5 };
    // fig5 proxy: 2-D Laplacian at the bench suite's default footprint.
    let side = ((400.0 * scale.sqrt()) as usize).max(64);
    let a = laplace2d(side, side);
    let n = a.nrows();
    println!(
        "thread_scaling: pool = {} threads, laplace2d({side},{side}), n = {n}, nnz = {}",
        rayon::current_num_threads(),
        a.nnz()
    );
    let mut report = BenchReport::new("thread_scaling", smoke);
    report.problem(n, a.nnz());

    // SpGEMM: A*A (the RAP building block).
    let (t_spgemm, c) = time(reps, || spgemm_one_pass(&a, &a));
    println!(
        "spgemm_one_pass      {:>9.3} ms   fp {:016x}",
        t_spgemm * 1e3,
        fingerprint(c.values())
    );

    // Parallel transpose.
    let (t_tr, at) = time(reps, || transpose_par(&a));
    println!(
        "transpose_par        {:>9.3} ms   fp {:016x}",
        t_tr * 1e3,
        fingerprint(at.values())
    );

    // Hybrid GS sweep (reordered kernel). The task decomposition is part
    // of the numerical method (Jacobi across tasks), so it is pinned to 4
    // here — identical arithmetic in every run, only the pool size varies,
    // and the fingerprint must match across settings.
    let s = strength(&a, 0.25, 0.8);
    let coarse = pmis(&s, 1);
    let (mut ap, ord) = cf_reorder(&a, &coarse.is_coarse);
    let sm = Smoother::hybrid_opt(&mut ap, ord.nc, 4);
    let b = vec![1.0; n];
    let mut ws = Workspace::new();
    let mut x = vec![0.0; n];
    let (t_gs, ()) = time(2 * reps, || {
        sm.pre_smooth(&ap, &b, &mut x, &mut ws, false);
    });
    println!(
        "hybrid_gs_sweep      {:>9.3} ms   fp {:016x}",
        t_gs * 1e3,
        fingerprint(&x)
    );

    // Fused residual norm (BLAS1/SpMV fusion path).
    let mut r = vec![0.0; n];
    let (t_res, nrm) = time(2 * reps, || residual_norm_sq(&ap, &x, &b, &mut r));
    println!(
        "residual_norm_sq     {:>9.3} ms   fp {:016x}",
        t_res * 1e3,
        fingerprint(&[nrm])
    );

    // Full AMG setup + solve; the span profiles provide the telemetry
    // record's phase buckets and flop counters.
    let cfg = AmgConfig::single_node_paper();
    let solver = AmgSolver::setup(&a, &cfg);
    let mut xs = vec![0.0; n];
    let res = solver.solve(&b, &mut xs);
    let h = solver.hierarchy();
    println!(
        "amg setup {} / solve {} ({} its, relres {:.2e}, converged {})",
        famg_bench::fmt_secs(h.times.setup_total()),
        famg_bench::fmt_secs(res.times.solve_total()),
        res.iterations,
        res.final_relres,
        res.converged
    );
    maybe_write_chrome_trace("thread_scaling_setup", &h.profile);
    maybe_write_chrome_trace("thread_scaling_solve", &res.profile);

    report
        .setup_times(&h.times)
        .solve_times(&res.times)
        .outcome(res.iterations, res.final_relres, res.converged)
        .complexity(&h.stats)
        .counters_from(&h.profile)
        .counters_from(&res.profile)
        .extra_json(
            "kernel_seconds",
            Json::Obj(vec![
                ("spgemm_one_pass".into(), Json::Num(t_spgemm)),
                ("transpose_par".into(), Json::Num(t_tr)),
                ("hybrid_gs_sweep".into(), Json::Num(t_gs)),
                ("residual_norm_sq".into(), Json::Num(t_res)),
            ]),
        );
    report.write_if_requested().expect("telemetry write failed");
}

//! Fig. 5: single-node time to solution, HYPRE_base vs HYPRE_opt, with
//! the paper's 8-component breakdown, plus the §5.2 per-component speedup
//! summary (paper: strength+coarsen 6.1×/3.1×, RAP 1.4×, SpMV 3.7×,
//! GS 1.2×, overall 2.0×).
//!
//! Usage: `cargo run --release -p famg-bench --bin fig5_single_node
//!         [--scale 0.2] [--only lap2d_2000] [--select-thr]`
//!
//! `--select-thr` reproduces Table 3's per-matrix choice between
//! `str_thr = 0.25` and `0.6` ("selected the one for faster time to
//! solution for each matrix"): both are run and the faster kept.
//!
//! Times are normalized to HYPRE_base's time to solution per matrix, as
//! in the paper's figure. Absolute numbers depend on the host; the shape
//! (who wins, which components shrink) is the reproduction target.

use famg_bench::{arg_scale, arg_value, fmt_secs};
use famg_core::params::AmgConfig;
use famg_core::solver::AmgSolver;
use famg_core::stats::PhaseTimes;
use famg_matgen::{rhs, suite};

struct Run {
    setup: PhaseTimes,
    solve: PhaseTimes,
    iterations: usize,
    opcx: f64,
}

fn run_with(a: &famg_sparse::Csr, cfg: &AmgConfig) -> Run {
    let solver = AmgSolver::setup(a, cfg);
    let b = rhs::ones(a.nrows());
    let mut x = vec![0.0; a.nrows()];
    let res = solver.solve(&b, &mut x);
    assert!(
        res.converged,
        "solver did not converge (relres {})",
        res.final_relres
    );
    Run {
        setup: solver.hierarchy().times.clone(),
        solve: res.times,
        iterations: res.iterations,
        opcx: solver.hierarchy().stats.operator_complexity(),
    }
}

/// Runs with `str_thr = 0.25`, or — under `--select-thr` — with both
/// Table 3 candidates (0.25, 0.6), keeping the faster (the paper's
/// per-matrix selection rule).
fn run(a: &famg_sparse::Csr, cfg: &AmgConfig, select_thr: bool) -> Run {
    let r25 = run_with(a, cfg);
    if !select_thr {
        return r25;
    }
    let cfg60 = AmgConfig {
        strength_threshold: 0.6,
        ..cfg.clone()
    };
    let r60 = run_with(a, &cfg60);
    let t25 = r25.setup.setup_total() + r25.solve.solve_total();
    let t60 = r60.setup.setup_total() + r60.solve.solve_total();
    if t60 < t25 {
        r60
    } else {
        r25
    }
}

fn main() {
    let scale = arg_scale(0.2);
    let only = arg_value("--only");
    let select_thr = std::env::args().any(|a| a == "--select-thr");
    println!("== Fig. 5: single-node HYPRE_base vs HYPRE_opt (scale {scale}) ==\n");
    println!(
        "{:<16} {:>6} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7} | {:>7} {:>6} {:>6}",
        "matrix",
        "rows/k",
        "base_set",
        "base_sol",
        "b_iter",
        "opt_set",
        "opt_sol",
        "o_iter",
        "speedup",
        "opcB",
        "opcO"
    );

    let mut sum_speedup = 0.0f64;
    let mut count = 0usize;
    let mut comp = [(0.0f64, 0usize); 5]; // strength, interp, rap, spmv, gs speedup sums

    for m in suite() {
        if let Some(f) = &only {
            if m.name != f {
                continue;
            }
        }
        let a = (m.gen)(scale);
        let base = run(&a, &AmgConfig::single_node_baseline(), select_thr);
        let opt = run(&a, &AmgConfig::single_node_paper(), select_thr);
        let tb = base.setup.setup_total() + base.solve.solve_total();
        let to = opt.setup.setup_total() + opt.solve.solve_total();
        let speedup = tb.as_secs_f64() / to.as_secs_f64();
        sum_speedup += speedup;
        count += 1;
        let pairs = [
            (base.setup.strength_coarsen, opt.setup.strength_coarsen),
            (base.setup.interp, opt.setup.interp),
            (base.setup.rap, opt.setup.rap),
            (base.solve.spmv, opt.solve.spmv),
            (base.solve.gs, opt.solve.gs),
        ];
        for (k, (b, o)) in pairs.iter().enumerate() {
            if o.as_secs_f64() > 1e-9 && b.as_secs_f64() > 1e-9 {
                comp[k].0 += b.as_secs_f64() / o.as_secs_f64();
                comp[k].1 += 1;
            }
        }
        println!(
            "{:<16} {:>6} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7} | {:>6.2}x {:>6.2} {:>6.2}",
            m.name,
            a.nrows() / 1000,
            fmt_secs(base.setup.setup_total()),
            fmt_secs(base.solve.solve_total()),
            base.iterations,
            fmt_secs(opt.setup.setup_total()),
            fmt_secs(opt.solve.solve_total()),
            opt.iterations,
            speedup,
            base.opcx,
            opt.opcx,
        );
        // Normalized component breakdown (paper's stacked bars).
        let norm = tb.as_secs_f64();
        let bar = |t: std::time::Duration| t.as_secs_f64() / norm;
        println!(
            "    base: S+C {:.3} Interp {:.3} RAP {:.3} Setup* {:.3} | GS {:.3} SpMV {:.3} BLAS1 {:.3} Solve* {:.3}",
            bar(base.setup.strength_coarsen),
            bar(base.setup.interp),
            bar(base.setup.rap),
            bar(base.setup.setup_etc),
            bar(base.solve.gs),
            bar(base.solve.spmv),
            bar(base.solve.blas1),
            bar(base.solve.solve_etc),
        );
        println!(
            "    opt:  S+C {:.3} Interp {:.3} RAP {:.3} Setup* {:.3} | GS {:.3} SpMV {:.3} BLAS1 {:.3} Solve* {:.3}",
            bar(opt.setup.strength_coarsen),
            bar(opt.setup.interp),
            bar(opt.setup.rap),
            bar(opt.setup.setup_etc),
            bar(opt.solve.gs),
            bar(opt.solve.spmv),
            bar(opt.solve.blas1),
            bar(opt.solve.solve_etc),
        );
    }
    if count > 0 {
        println!(
            "\nGeo-ish mean speedup over {count} matrices: {:.2}x (paper: 2.0x vs HYPRE_base)",
            sum_speedup / count as f64
        );
        let names = ["Strength+Coarsen", "Interp", "RAP", "SpMV", "GS"];
        let paper = ["6.1x/3.1x", "~1x", "1.4x", "3.7x", "1.2x"];
        println!("component speedups (mean, paper value):");
        for (k, name) in names.iter().enumerate() {
            if comp[k].1 > 0 {
                println!(
                    "  {:<18} {:>6.2}x   (paper {})",
                    name,
                    comp[k].0 / comp[k].1 as f64,
                    paper[k]
                );
            }
        }
    }
}

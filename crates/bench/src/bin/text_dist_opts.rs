//! §4.2 / §4.3 / §4.4 in-text claims about the multi-node optimizations:
//!
//! 1. Parallel column-index renumbering speeds the distributed RAP
//!    (paper: 2.6–3.5× on 128 nodes).
//! 2. Filtering remote interpolation rows cuts the interpolation
//!    communication volume by more than 3×.
//! 3. Persistent communication reduces halo-exchange cost (paper:
//!    1.7–1.8× on the exchange itself).
//!
//! Usage: `cargo run --release -p famg-bench --bin text_dist_opts
//!         [--ranks 8] [--size 48]`

use famg_bench::{arg_value, fmt_secs, timed};
use famg_dist::coarsen::dist_pmis;
use famg_dist::comm::run_ranks;
use famg_dist::halo::{exchange_adhoc, VectorExchange};
use famg_dist::interp::{dist_extended_i, dist_strength};
use famg_dist::parcsr::{default_partition, ParCsr};
use famg_dist::spgemm::{dist_spgemm, dist_transpose};
use famg_matgen::{laplace3d_7pt, rhs};

fn main() {
    let nranks: usize = arg_value("--ranks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let size: usize = arg_value("--size")
        .and_then(|v| v.parse().ok())
        .unwrap_or(48);
    let a = laplace3d_7pt(size, size, size.max(nranks * 4));
    let n = a.nrows();
    let starts = default_partition(n, nranks);
    println!("== §4 distributed optimizations: {n} rows on {nranks} ranks ==\n");

    // --- 1. Renumbering: sequential vs parallel in distributed RAP. ---
    for par in [false, true] {
        let ((), dt) = timed(|| {
            let (_, _) = run_ranks(nranks, |c| {
                let r = c.rank();
                let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
                let ps = dist_strength(&pa, 0.25, 0.8, r);
                let dc = dist_pmis(c, &ps, 3, None);
                let plan = VectorExchange::plan(c, &pa.colmap, &pa.col_starts);
                let p = dist_extended_i(c, &pa, &plan, &ps, &dc, None, true);
                let rt = dist_transpose(c, &p);
                let ra = dist_spgemm(c, &rt, &pa, par);
                dist_spgemm(c, &ra, &p, par)
            });
        });
        println!(
            "RAP with {} renumbering: {}",
            if par { "parallel  " } else { "sequential" },
            fmt_secs(dt)
        );
    }
    println!("(paper: parallel renumbering speeds RAP 2.6-3.5x on 128 nodes)\n");

    // --- 2. §4.3 filter: interpolation-construction bytes. ---
    // Measured on the 27-point Laplacian (the paper's weak-scaling
    // input), whose fat remote rows are where the filter pays off.
    let a27 = famg_matgen::laplace3d_27pt(size / 2, size / 2, (size / 2).max(nranks * 3));
    let starts27 = default_partition(a27.nrows(), nranks);
    let bytes = |filter: bool| {
        let (_, report) = run_ranks(nranks, |c| {
            let r = c.rank();
            let pa =
                ParCsr::from_global_rows(&a27, starts27[r], starts27[r + 1], starts27.clone(), r);
            let ps = dist_strength(&pa, 0.25, 0.8, r);
            let dc = dist_pmis(c, &ps, 3, None);
            let plan = VectorExchange::plan(c, &pa.colmap, &pa.col_starts);
            dist_extended_i(c, &pa, &plan, &ps, &dc, None, filter)
        });
        report.total_bytes()
    };
    let full = bytes(false);
    let filt = bytes(true);
    println!(
        "interp construction bytes (27-pt, {} rows): full rows {full}, filtered {filt}",
        a27.nrows()
    );
    println!(
        "volume reduction: {:.2}x   (paper: >3x)\n",
        full as f64 / filt as f64
    );

    // --- 3. Persistent vs ad-hoc halo exchange. ---
    let iters = 200usize;
    let x = rhs::ones(n);
    for persistent in [false, true] {
        let ((), dt) = timed(|| {
            let (_, _) = run_ranks(nranks, |c| {
                let r = c.rank();
                let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
                let xl = x[starts[r]..starts[r + 1]].to_vec();
                if persistent {
                    let plan = VectorExchange::plan(c, &pa.colmap, &starts);
                    for _ in 0..iters {
                        std::hint::black_box(plan.exchange(c, &xl));
                    }
                } else {
                    for _ in 0..iters {
                        std::hint::black_box(exchange_adhoc(c, &pa.colmap, &starts, &xl));
                    }
                }
            });
        });
        println!(
            "{iters} halo exchanges, {}: {}",
            if persistent {
                "persistent plan"
            } else {
                "ad-hoc (re-planned)"
            },
            fmt_secs(dt)
        );
    }
    println!("(paper: persistent communication speeds halo exchange 1.7-1.8x)");
}

//! Fig. 6: weak-scaling of FGMRES + AMG across simulated ranks.
//!
//! Two inputs, as in the paper:
//! * `laplace27` — 3D Laplace, 27-point stencil, a fixed sub-cube per
//!   rank (the paper uses 96³ ≈ 0.9M rows/rank; default here is 24³,
//!   override with `--per-rank 32`),
//! * `amg2013`  — the semi-structured AMG2013-like input (~7 nnz/row).
//!
//! Three interpolation schemes per the paper: `mp`, `ei(4)`,
//! `2s-ei(444)`. Reported per (ranks, scheme): setup time, solve time,
//! iteration count — the three panels of Fig. 6(a–c)/(d–f).
//!
//! Usage: `cargo run --release -p famg-bench --bin fig6_weak_scaling --
//!         laplace27 [--ranks 1,2,4,8] [--per-rank 24]`

use famg_bench::{arg_ranks, arg_value, fmt_secs};
use famg_core::params::AmgConfig;
use famg_dist::comm::run_ranks;
use famg_dist::hierarchy::{DistHierarchy, DistOptFlags};
use famg_dist::parcsr::{default_partition, ParCsr};
use famg_dist::solve::dist_fgmres_amg;
use famg_matgen::{amg2013_like, laplace3d_27pt, rhs};

fn main() {
    let input = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "laplace27".into());
    let ranks_list = arg_ranks(&[1, 2, 4, 8]);
    let per_rank: usize = arg_value("--per-rank")
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);

    println!("== Fig. 6 weak scaling: input `{input}`, {per_rank}^3-ish rows per rank ==\n");
    println!(
        "{:<6} {:<12} {:>10} {:>10} {:>6} {:>8} {:>12}",
        "ranks", "scheme", "setup", "solve", "iters", "levels", "comm bytes"
    );

    for &nranks in &ranks_list {
        // Weak scaling: extrude the domain in z so each rank owns a slab.
        let (a, label) = match input.as_str() {
            "laplace27" => (
                laplace3d_27pt(per_rank, per_rank, per_rank * nranks),
                "3D Laplace 27-pt",
            ),
            "amg2013" => (
                amg2013_like(per_rank, per_rank, per_rank * nranks, 2, 2.0, 17),
                "AMG2013-like",
            ),
            other => panic!("unknown input {other} (use laplace27 | amg2013)"),
        };
        let n = a.nrows();
        let starts = default_partition(n, nranks);
        for (scheme, cfg) in [
            ("mp", AmgConfig::multi_node_mp()),
            ("ei(4)", AmgConfig::multi_node_ei4()),
            ("2s-ei(444)", AmgConfig::multi_node_2s_ei444()),
        ] {
            let b = rhs::ones(n);
            let (parts, report) = run_ranks(nranks, |c| {
                let r = c.rank();
                let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
                let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
                let bl = b[starts[r]..starts[r + 1]].to_vec();
                let mut xl = vec![0.0; bl.len()];
                let res = dist_fgmres_amg(c, &h, &bl, &mut xl, 1e-7, 300, 50);
                assert!(res.converged, "{scheme} at {nranks} ranks stalled");
                (
                    h.times.setup_total() + h.setup_comm_time,
                    res.times.solve_total() + res.solve_comm_time,
                    res.iterations,
                    h.num_levels(),
                )
            });
            // Max across ranks = wall time of the slowest rank.
            let setup = parts.iter().map(|p| p.0).max().unwrap();
            let solve = parts.iter().map(|p| p.1).max().unwrap();
            println!(
                "{:<6} {:<12} {:>10} {:>10} {:>6} {:>8} {:>12}",
                nranks,
                scheme,
                fmt_secs(setup),
                fmt_secs(solve),
                parts[0].2,
                parts[0].3,
                report.total_bytes()
            );
            let _ = label;
        }
        println!();
    }
    println!("Paper shape: mp has the fastest setup; ei(4)/2s-ei(444) converge in");
    println!("fewer iterations (faster solve); iterations grow slowly with ranks");
    println!("for the 3D Laplacian and stay near-constant for the AMG2013 input.");
}

//! Machine-readable bench telemetry: the versioned `BENCH_<name>.json`
//! schema emitted by the bench binaries and consumed by `famg-bench-check`
//! (see DESIGN.md §8).
//!
//! Schema v1 (all keys always present; unknown extras live under
//! `"extra"`):
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "bench": "<binary name>",
//!   "mode": "smoke" | "full",
//!   "threads": <pool size>, "ranks": <simulated ranks>,
//!   "problem": {"n": .., "nnz": ..},
//!   "setup_seconds": {"strength_coarsen","interp","rap","setup_etc","total"},
//!   "solve_seconds": {"gs","spmv","blas1","solve_etc","total"},
//!   "solve": {"iterations", "final_relres", "converged"},
//!   "complexity": {"operator", "grid", "levels"},
//!   "counters": {"flops", "comm_bytes", "comm_messages"},
//!   "extra": {..}
//! }
//! ```
//!
//! Wall-clock fields are informational (they vary with the host); the
//! regression gate in `scripts/check.sh` rides on the machine-independent
//! fields — iterations, complexities, and the flop/comm counters.

use famg_core::stats::{PhaseTimes, SetupStats};
use famg_prof::json::Json;
use famg_prof::Profile;
use std::io;
use std::path::{Path, PathBuf};

/// Current `BENCH_*.json` schema version. Bump on any breaking change to
/// the key set or meanings; `famg-bench-check` refuses other versions.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Builder for one bench run's telemetry record.
pub struct BenchReport {
    bench: String,
    mode: &'static str,
    threads: u64,
    ranks: u64,
    n: u64,
    nnz: u64,
    setup: PhaseTimes,
    solve: PhaseTimes,
    iterations: u64,
    final_relres: f64,
    converged: bool,
    op_complexity: f64,
    grid_complexity: f64,
    levels: u64,
    flops: u64,
    comm_bytes: u64,
    comm_messages: u64,
    extra: Vec<(String, Json)>,
}

impl BenchReport {
    /// Starts a report for bench `name` (the binary name, also the file
    /// stem suffix: `BENCH_<name>.json`).
    pub fn new(name: &str, smoke: bool) -> BenchReport {
        BenchReport {
            bench: name.to_string(),
            mode: if smoke { "smoke" } else { "full" },
            threads: rayon::current_num_threads() as u64,
            ranks: 1,
            n: 0,
            nnz: 0,
            setup: PhaseTimes::default(),
            solve: PhaseTimes::default(),
            iterations: 0,
            final_relres: 0.0,
            converged: false,
            op_complexity: 0.0,
            grid_complexity: 0.0,
            levels: 0,
            flops: 0,
            comm_bytes: 0,
            comm_messages: 0,
            extra: Vec::new(),
        }
    }

    /// Simulated rank count (distributed benches).
    pub fn ranks(&mut self, ranks: usize) -> &mut Self {
        self.ranks = ranks as u64;
        self
    }

    /// Finest-level problem shape.
    pub fn problem(&mut self, n: usize, nnz: usize) -> &mut Self {
        self.n = n as u64;
        self.nnz = nnz as u64;
        self
    }

    /// Setup-phase Fig. 5 buckets.
    pub fn setup_times(&mut self, t: &PhaseTimes) -> &mut Self {
        self.setup = t.clone();
        self
    }

    /// Solve-phase Fig. 5 buckets.
    pub fn solve_times(&mut self, t: &PhaseTimes) -> &mut Self {
        self.solve = t.clone();
        self
    }

    /// Iteration outcome.
    pub fn outcome(&mut self, iterations: usize, final_relres: f64, converged: bool) -> &mut Self {
        self.iterations = iterations as u64;
        self.final_relres = final_relres;
        self.converged = converged;
        self
    }

    /// Hierarchy complexities.
    pub fn complexity(&mut self, stats: &SetupStats) -> &mut Self {
        self.op_complexity = stats.operator_complexity();
        self.grid_complexity = stats.grid_complexity();
        self.levels = stats.level_rows.len() as u64;
        self
    }

    /// Accumulates counter totals (flops / comm bytes / comm messages)
    /// from a captured profile.
    pub fn counters_from(&mut self, profile: &Profile) -> &mut Self {
        self.flops += profile.total_counter("flops");
        self.comm_bytes += profile.total_counter("comm_bytes");
        self.comm_messages += profile.total_counter("comm_messages");
        self
    }

    /// Accumulates raw counter totals (for distributed benches, where the
    /// global totals come from the `CommReport` rather than one rank's
    /// profile).
    pub fn counters(&mut self, flops: u64, comm_bytes: u64, comm_messages: u64) -> &mut Self {
        self.flops += flops;
        self.comm_bytes += comm_bytes;
        self.comm_messages += comm_messages;
        self
    }

    /// Attaches a free-form numeric extra.
    pub fn extra_num(&mut self, key: &str, v: f64) -> &mut Self {
        self.extra.push((key.to_string(), Json::Num(v)));
        self
    }

    /// Attaches a free-form JSON extra.
    pub fn extra_json(&mut self, key: &str, v: Json) -> &mut Self {
        self.extra.push((key.to_string(), v));
        self
    }

    /// Renders the schema-v1 document.
    pub fn to_json(&self) -> Json {
        let phase = |t: &PhaseTimes, solve: bool| {
            let mut o: Vec<(String, Json)> = Vec::new();
            let fields: &[(&str, std::time::Duration)] = if solve {
                &[
                    ("gs", t.gs),
                    ("spmv", t.spmv),
                    ("blas1", t.blas1),
                    ("solve_etc", t.solve_etc),
                    ("total", t.solve_total()),
                ]
            } else {
                &[
                    ("strength_coarsen", t.strength_coarsen),
                    ("interp", t.interp),
                    ("rap", t.rap),
                    ("setup_etc", t.setup_etc),
                    ("total", t.setup_total()),
                ]
            };
            for (k, d) in fields {
                o.push(((*k).to_string(), Json::Num(d.as_secs_f64())));
            }
            Json::Obj(o)
        };
        Json::Obj(vec![
            ("schema_version".into(), Json::int(BENCH_SCHEMA_VERSION)),
            ("bench".into(), Json::Str(self.bench.clone())),
            ("mode".into(), Json::Str(self.mode.to_string())),
            ("threads".into(), Json::int(self.threads)),
            ("ranks".into(), Json::int(self.ranks)),
            (
                "problem".into(),
                Json::Obj(vec![
                    ("n".into(), Json::int(self.n)),
                    ("nnz".into(), Json::int(self.nnz)),
                ]),
            ),
            ("setup_seconds".into(), phase(&self.setup, false)),
            ("solve_seconds".into(), phase(&self.solve, true)),
            (
                "solve".into(),
                Json::Obj(vec![
                    ("iterations".into(), Json::int(self.iterations)),
                    ("final_relres".into(), Json::Num(self.final_relres)),
                    ("converged".into(), Json::Bool(self.converged)),
                ]),
            ),
            (
                "complexity".into(),
                Json::Obj(vec![
                    ("operator".into(), Json::Num(self.op_complexity)),
                    ("grid".into(), Json::Num(self.grid_complexity)),
                    ("levels".into(), Json::int(self.levels)),
                ]),
            ),
            (
                "counters".into(),
                Json::Obj(vec![
                    ("flops".into(), Json::int(self.flops)),
                    ("comm_bytes".into(), Json::int(self.comm_bytes)),
                    ("comm_messages".into(), Json::int(self.comm_messages)),
                ]),
            ),
            ("extra".into(), Json::Obj(self.extra.clone())),
        ])
    }

    /// Writes `BENCH_<name>.json` under `dir` (created if missing) and
    /// returns the path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.to_json().pretty())?;
        Ok(path)
    }

    /// Writes the report when the CLI asked for it (`--out <dir>`),
    /// printing the destination. No-op without the flag.
    pub fn write_if_requested(&self) -> io::Result<()> {
        if let Some(dir) = crate::arg_value("--out") {
            let path = self.write(Path::new(&dir))?;
            println!("telemetry: wrote {}", path.display());
        }
        Ok(())
    }
}

/// If `FAMG_CHROME_TRACE` names a directory, writes `profile` there as
/// `<bench>.trace.json` in chrome://tracing format (load via the
/// "Load" button on chrome://tracing or https://ui.perfetto.dev).
pub fn maybe_write_chrome_trace(bench: &str, profile: &Profile) {
    let Ok(dir) = std::env::var("FAMG_CHROME_TRACE") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let dir = PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("FAMG_CHROME_TRACE: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{bench}.trace.json"));
    match std::fs::write(&path, profile.to_chrome_trace(0)) {
        Ok(()) => println!("telemetry: wrote chrome trace {}", path.display()),
        Err(e) => eprintln!("FAMG_CHROME_TRACE: cannot write {}: {e}", path.display()),
    }
}

//! # famg-bench
//!
//! Harnesses regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results).
//!
//! Binaries (run with `cargo run --release -p famg-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_settings`     | Table 1 (evaluation settings) |
//! | `table2_suite`        | Table 2 (matrix suite) |
//! | `fig5_single_node`    | Fig. 5 + §5.2 component speedups |
//! | `fig6_weak_scaling`   | Fig. 6 (weak scaling, both inputs) |
//! | `fig7_breakdown`      | Fig. 7 (128-node breakdown analogue) |
//! | `fig8_strong_scaling` | Fig. 8 (reservoir strong scaling) |
//! | `text_flops_fusion`   | §3.1.1 flop ratio (1.73×) |
//! | `text_dist_opts`      | §4.2/4.3/4.4 distributed-optimization claims |
//!
//! Criterion benches (`cargo bench -p famg-bench`): `kernels`, `spgemm`,
//! `rap_variants`, `smoothers`.

pub mod telemetry;

use famg_core::coarsen::pmis;
use famg_core::interp::{extended_i, CfMap, TruncParams};
use famg_core::strength::strength;
use famg_matgen::laplace2d;
use famg_sparse::transpose::transpose_par;
use famg_sparse::Csr;
use std::time::{Duration, Instant};

/// A finest-level AMG fixture: `(R, A, P)` ready for triple products.
pub struct RapFixture {
    /// Restriction (`Pᵀ`).
    pub r: Csr,
    /// Fine operator.
    pub a: Csr,
    /// Interpolation.
    pub p: Csr,
}

/// Builds a realistic finest-level `(R, A, P)` from PMIS + extended+i on
/// the given operator.
pub fn rap_fixture(a: Csr, seed: u64) -> RapFixture {
    let s = strength(&a, 0.25, 0.8);
    let c = pmis(&s, seed);
    let cf = CfMap::new(c.is_coarse);
    let p = extended_i(&a, &s, &cf, Some(&TruncParams::paper()));
    let r = transpose_par(&p);
    RapFixture { r, a, p }
}

/// Convenience: the `(R, A, P)` fixture over a 2D Laplacian.
pub fn rap_fixture_2d(n: usize, seed: u64) -> RapFixture {
    rap_fixture(laplace2d(n, n), seed)
}

/// Times a closure, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Runs `f` `reps` times and returns the minimum wall time (the standard
/// noise-robust estimator for short kernels).
pub fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(reps > 0);
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        let dt = t0.elapsed();
        if dt < best {
            best = dt;
        }
        out = Some(v);
    }
    (out.unwrap(), best)
}

/// Seconds as a compact human string.
pub fn fmt_secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Parses `--key value` style arguments; returns the value for `key`.
pub fn arg_value(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses `--scale` (default given) as an f64.
pub fn arg_scale(default: f64) -> f64 {
    arg_value("--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--ranks` as a comma list (default given).
pub fn arg_ranks(default: &[usize]) -> Vec<usize> {
    arg_value("--ranks").map_or_else(
        || default.to_vec(),
        |v| {
            v.split(',')
                .map(|t| t.parse().expect("bad --ranks entry"))
                .collect()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_shapes_consistent() {
        let f = rap_fixture_2d(16, 1);
        assert_eq!(f.a.nrows(), 256);
        assert_eq!(f.p.nrows(), 256);
        assert_eq!(f.r.nrows(), f.p.ncols());
        assert_eq!(f.r.ncols(), 256);
        assert!(f.p.ncols() < 256 / 2);
    }

    #[test]
    fn timing_helpers() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
        let (v, d) = best_of(3, || 7);
        assert_eq!(v, 7);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(Duration::from_secs(2)).ends_with('s'));
        assert!(fmt_secs(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_secs(Duration::from_micros(5)).ends_with("us"));
    }
}

//! Right-hand-side and test-vector helpers.

use famg_sparse::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All-ones right-hand side (the AMG2013 convention).
pub fn ones(n: usize) -> Vec<f64> {
    vec![1.0; n]
}

/// Deterministic uniform random vector in `[-1, 1)`.
pub fn random(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Builds `b = A x*` for a known solution `x*` so tests can verify the
/// solver against the exact answer.
pub fn rhs_for_solution(a: &Csr, x_true: &[f64]) -> Vec<f64> {
    let mut b = vec![0.0; a.nrows()];
    famg_sparse::spmv::spmv(a, x_true, &mut b);
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_and_random() {
        assert_eq!(ones(3), vec![1.0, 1.0, 1.0]);
        let r1 = random(10, 1);
        let r2 = random(10, 1);
        let r3 = random(10, 2);
        assert_eq!(r1, r2);
        assert_ne!(r1, r3);
        assert!(r1.iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn manufactured_rhs() {
        let a = crate::laplace::laplace2d(3, 3);
        let x = vec![1.0; 9];
        let b = rhs_for_solution(&a, &x);
        // Interior row of the Dirichlet Laplacian: 4 - 4 = 0.
        assert_eq!(b[4], 0.0);
        // Corner row: 4 - 2 = 2.
        assert_eq!(b[0], 2.0);
    }
}

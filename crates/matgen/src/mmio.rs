//! Matrix Market coordinate-format IO.
//!
//! Supports `matrix coordinate real {general|symmetric}` — enough to
//! exchange problems with other AMG packages and to load University of
//! Florida matrices when the user has them locally.

use famg_sparse::Csr;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structural / syntax problem with the file.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "io error: {e}"),
            MmError::Parse(m) => write!(f, "matrix market parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

/// Reads a Matrix Market coordinate file from any reader.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Csr, MmError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| MmError::Parse("empty file".into()))??;
    let h: Vec<&str> = header.split_whitespace().collect();
    if h.len() < 5 || !h[0].starts_with("%%MatrixMarket") {
        return Err(MmError::Parse("missing %%MatrixMarket header".into()));
    }
    if h[1] != "matrix" || h[2] != "coordinate" {
        return Err(MmError::Parse(format!(
            "unsupported object/format: {} {}",
            h[1], h[2]
        )));
    }
    let field = h[3];
    if field != "real" && field != "integer" && field != "pattern" {
        return Err(MmError::Parse(format!("unsupported field: {field}")));
    }
    let sym = match h[4] {
        "general" => false,
        "symmetric" => true,
        s => return Err(MmError::Parse(format!("unsupported symmetry: {s}"))),
    };

    // Skip comments, find the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| MmError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(str::parse::<usize>)
        .collect::<Result<_, _>>()
        .map_err(|e| MmError::Parse(format!("bad size line: {e}")))?;
    if dims.len() != 3 {
        return Err(MmError::Parse("size line must have 3 fields".into()));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut trips = Vec::with_capacity(if sym { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| MmError::Parse("short entry".into()))?
            .parse()
            .map_err(|e| MmError::Parse(format!("bad row index: {e}")))?;
        let j: usize = it
            .next()
            .ok_or_else(|| MmError::Parse("short entry".into()))?
            .parse()
            .map_err(|e| MmError::Parse(format!("bad col index: {e}")))?;
        let v: f64 = if field == "pattern" {
            1.0
        } else {
            it.next()
                .ok_or_else(|| MmError::Parse("missing value".into()))?
                .parse()
                .map_err(|e| MmError::Parse(format!("bad value: {e}")))?
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(MmError::Parse(format!("entry ({i},{j}) out of bounds")));
        }
        trips.push((i - 1, j - 1, v));
        if sym && i != j {
            trips.push((j - 1, i - 1, v));
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(MmError::Parse(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    Ok(Csr::from_triplets(nrows, ncols, trips))
}

/// Loads a Matrix Market file from disk.
pub fn load_matrix_market(path: impl AsRef<Path>) -> Result<Csr, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes `a` as `matrix coordinate real general`.
pub fn write_matrix_market<W: Write>(a: &Csr, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by famg-matgen")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for i in 0..a.nrows() {
        for (c, v) in a.row_iter(i) {
            writeln!(w, "{} {} {:.17e}", i + 1, c + 1, v)?;
        }
    }
    w.flush()
}

/// Saves `a` to disk in Matrix Market format.
pub fn save_matrix_market(a: &Csr, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_matrix_market(a, std::fs::File::create(path)?)
}

/// Reads a Matrix Market dense-array vector (`matrix array real general`,
/// single column).
pub fn read_vector<R: Read>(reader: R) -> Result<Vec<f64>, MmError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| MmError::Parse("empty file".into()))??;
    let h: Vec<&str> = header.split_whitespace().collect();
    if h.len() < 5 || h[1] != "matrix" || h[2] != "array" || h[3] != "real" {
        return Err(MmError::Parse("expected a real array header".into()));
    }
    let mut dims = None;
    let mut values = Vec::new();
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        if dims.is_none() {
            let d: Vec<usize> = t
                .split_whitespace()
                .map(str::parse::<usize>)
                .collect::<Result<_, _>>()
                .map_err(|e| MmError::Parse(format!("bad size line: {e}")))?;
            if d.len() != 2 || d[1] != 1 {
                return Err(MmError::Parse("expected an n x 1 array".into()));
            }
            dims = Some(d[0]);
            values.reserve(d[0]);
        } else {
            values.push(
                t.parse::<f64>()
                    .map_err(|e| MmError::Parse(format!("bad value: {e}")))?,
            );
        }
    }
    let n = dims.ok_or_else(|| MmError::Parse("missing size line".into()))?;
    if values.len() != n {
        return Err(MmError::Parse(format!(
            "expected {n} values, found {}",
            values.len()
        )));
    }
    Ok(values)
}

/// Writes a vector as a Matrix Market dense array.
pub fn write_vector<W: Write>(v: &[f64], writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix array real general")?;
    writeln!(w, "{} 1", v.len())?;
    for x in v {
        writeln!(w, "{x:.17e}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_general() {
        let a = crate::laplace::laplace2d(5, 4);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a.to_dense(), b.to_dense());
    }

    #[test]
    fn reads_symmetric_storage() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    2 2 3\n\
                    1 1 2.0\n\
                    2 1 -1.0\n\
                    2 2 2.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), Some(-1.0));
        assert_eq!(a.get(1, 0), Some(-1.0));
        assert_eq!(a.nnz(), 4);
    }

    #[test]
    fn reads_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 3 2\n\
                    1 3\n\
                    2 1\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 2), Some(1.0));
        assert_eq!(a.get(1, 0), Some(1.0));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("garbage\n1 1 0\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn vector_roundtrip() {
        let v = vec![1.5, -2.25, 0.0, 1e-30];
        let mut buf = Vec::new();
        write_vector(&v, &mut buf).unwrap();
        let back = read_vector(buf.as_slice()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn vector_rejects_matrix_shape() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
        assert!(read_vector(text.as_bytes()).is_err());
    }

    #[test]
    fn vector_rejects_wrong_count() {
        let text = "%%MatrixMarket matrix array real general\n3 1\n1.0\n2.0\n";
        assert!(read_vector(text.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let a = crate::laplace::laplace3d_7pt(3, 3, 3);
        let dir = std::env::temp_dir().join("famg_mmio_test.mtx");
        save_matrix_market(&a, &dir).unwrap();
        let b = load_matrix_market(&dir).unwrap();
        assert_eq!(a.to_dense(), b.to_dense());
        let _ = std::fs::remove_file(&dir);
    }
}

//! # famg-matgen
//!
//! Problem generators for every workload in the SC '15 paper's evaluation:
//!
//! * [`laplace`] — constant-coefficient Laplacians: 2D 5-point (the
//!   `lap2d_2000` matrix from AMG2013), 3D 7-point, and 3D 27-point (the
//!   `lap3d_128` matrix from HPCG),
//! * [`varcoef`] — variable-coefficient 3D diffusion with harmonic face
//!   averaging (SPD M-matrices),
//! * [`amg2013`] — a semi-structured-like problem approximating the
//!   AMG2013 default input (coefficient pools, ~7–8 nnz/row),
//! * [`reservoir`] — the strong-scaling reservoir problem: a Poisson-like
//!   operator with a highly discontinuous, spatially correlated lognormal
//!   permeability field (substitution for the paper's SGeMS-generated
//!   field, see DESIGN.md),
//! * [`mod@suite`] — synthetic proxies for the 14 single-node matrices of
//!   Table 2 (University of Florida collection substitutes),
//! * [`mmio`] — Matrix Market coordinate-format reader/writer,
//! * [`rhs`] — right-hand-side and initial-guess helpers.

pub mod amg2013;
pub mod laplace;
pub mod mmio;
pub mod reservoir;
pub mod rhs;
pub mod suite;
pub mod varcoef;

pub use amg2013::amg2013_like;
pub use laplace::{
    laplace2d, laplace2d_aniso, laplace2d_neumann, laplace2d_rotated_aniso, laplace3d_27pt,
    laplace3d_7pt, stencil3d_13pt,
};
pub use reservoir::{reservoir_field, reservoir_matrix};
pub use suite::{suite, SuiteMatrix};
pub use varcoef::varcoef3d_7pt;

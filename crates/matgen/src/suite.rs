//! Synthetic proxies for the 14 single-node matrices of Table 2.
//!
//! The paper evaluates University of Florida collection matrices plus two
//! generated Laplacians. The UF matrices are not redistributable here, so
//! each is substituted by a generated matrix from a structurally similar
//! PDE family with matching row count (to within the nearest grid size)
//! and similar nnz/row — see the per-entry notes and DESIGN.md §2. The
//! two generated matrices (`lap2d_2000`, `lap3d_128`) are exact.
//!
//! All proxies are symmetric positive (semi-)definite M-matrices, which is
//! what classical AMG assumes and what the evaluation exercises.

use crate::amg2013::amg2013_like;
use crate::laplace::{laplace2d, laplace2d_aniso, laplace3d_27pt, laplace3d_7pt, stencil3d_13pt};
use crate::reservoir::reservoir_matrix;
use famg_sparse::Csr;

/// One entry of the single-node evaluation suite.
pub struct SuiteMatrix {
    /// Name as used in the paper's Table 2 / Fig. 5.
    pub name: &'static str,
    /// Row count of the original matrix (for reference in reports).
    pub paper_rows: usize,
    /// nnz/row of the original matrix (for reference in reports).
    pub paper_nnz_per_row: usize,
    /// What the proxy is built from.
    pub proxy_note: &'static str,
    /// Generator, parameterized by a linear scale factor in `(0, 1]`
    /// applied to each grid dimension (1.0 ≈ paper-size problem).
    pub gen: fn(f64) -> Csr,
}

#[inline]
fn dim(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(8)
}

/// The 14-matrix suite of Table 2, in the paper's order.
pub fn suite() -> Vec<SuiteMatrix> {
    vec![
        SuiteMatrix {
            name: "2cubes_sphere",
            paper_rows: 101_492,
            paper_nnz_per_row: 9,
            proxy_note: "3D 7-pt Laplacian 47^3 (electromagnetics diffusion proxy)",
            gen: |s| laplace3d_7pt(dim(47, s), dim(47, s), dim(47, s)),
        },
        SuiteMatrix {
            name: "G2_circuit",
            paper_rows: 150_102,
            paper_nnz_per_row: 5,
            proxy_note: "2D 5-pt Laplacian 388^2 (circuit-graph Laplacian proxy)",
            gen: |s| laplace2d(dim(388, s), dim(388, s)),
        },
        SuiteMatrix {
            name: "G3_circuit",
            paper_rows: 1_585_478,
            paper_nnz_per_row: 5,
            proxy_note: "2D 5-pt Laplacian 1259^2",
            gen: |s| laplace2d(dim(1259, s), dim(1259, s)),
        },
        SuiteMatrix {
            name: "StocF-1465",
            paper_rows: 1_465_137,
            paper_nnz_per_row: 14,
            proxy_note: "3D 13-pt second-neighbour stencil 113^3 (porous-flow proxy)",
            gen: |s| stencil3d_13pt(dim(113, s), dim(113, s), dim(113, s)),
        },
        SuiteMatrix {
            name: "apache2",
            paper_rows: 715_176,
            paper_nnz_per_row: 7,
            proxy_note: "3D 7-pt Laplacian 89^3 (structural proxy)",
            gen: |s| laplace3d_7pt(dim(89, s), dim(89, s), dim(89, s)),
        },
        SuiteMatrix {
            name: "atmosmodd",
            paper_rows: 1_270_432,
            paper_nnz_per_row: 7,
            proxy_note: "3D 7-pt anisotropic-layered operator 108^3 (atmospheric proxy)",
            gen: |s| amg2013_like(dim(108, s), dim(108, s), dim(108, s), 1, 0.0, 1),
        },
        SuiteMatrix {
            name: "atmosmodj",
            paper_rows: 1_270_432,
            paper_nnz_per_row: 7,
            proxy_note: "3D 7-pt with mild pools 108^3 (atmospheric proxy)",
            gen: |s| amg2013_like(dim(108, s), dim(108, s), dim(108, s), 2, 0.5, 2),
        },
        SuiteMatrix {
            name: "atmosmodl",
            paper_rows: 1_489_752,
            paper_nnz_per_row: 7,
            proxy_note: "3D 7-pt with mild pools 114^3 (atmospheric proxy)",
            gen: |s| amg2013_like(dim(114, s), dim(114, s), dim(114, s), 2, 0.5, 3),
        },
        SuiteMatrix {
            name: "ecology2",
            paper_rows: 999_999,
            paper_nnz_per_row: 5,
            proxy_note: "2D 5-pt Laplacian 1000^2 (landscape-ecology grid proxy)",
            gen: |s| laplace2d(dim(1000, s), dim(1000, s)),
        },
        SuiteMatrix {
            name: "lap2d_2000",
            paper_rows: 4_000_000,
            paper_nnz_per_row: 5,
            proxy_note: "exact: AMG2013 2D 5-pt Laplacian 2000^2",
            gen: |s| laplace2d(dim(2000, s), dim(2000, s)),
        },
        SuiteMatrix {
            name: "lap3d_128",
            paper_rows: 2_097_152,
            paper_nnz_per_row: 27,
            proxy_note: "exact: HPCG 3D 27-pt Laplacian 128^3",
            gen: |s| laplace3d_27pt(dim(128, s), dim(128, s), dim(128, s)),
        },
        SuiteMatrix {
            name: "parabolic_fem",
            paper_rows: 525_825,
            paper_nnz_per_row: 7,
            proxy_note: "3D 7-pt Laplacian 81^3 (parabolic FEM proxy)",
            gen: |s| laplace3d_7pt(dim(81, s), dim(81, s), dim(81, s)),
        },
        SuiteMatrix {
            name: "thermal2",
            paper_rows: 1_228_045,
            paper_nnz_per_row: 7,
            proxy_note: "3D 7-pt with reservoir-like coefficient field 107^3 (thermal proxy)",
            gen: |s| reservoir_matrix(dim(107, s), dim(107, s), dim(107, s), 13),
        },
        SuiteMatrix {
            name: "tmt_sym",
            paper_rows: 726_713,
            paper_nnz_per_row: 5,
            proxy_note: "2D 5-pt anisotropic Laplacian 852^2 (electromagnetics proxy)",
            gen: |s| laplace2d_aniso(dim(852, s), dim(852, s), 0.1),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fourteen_entries() {
        assert_eq!(suite().len(), 14);
    }

    #[test]
    fn scaled_down_generation_works_for_all() {
        for m in suite() {
            let a = (m.gen)(0.05);
            assert!(a.nrows() >= 64, "{} too small", m.name);
            assert!(a.is_symmetric(1e-10), "{} not symmetric", m.name);
            assert!(
                (0..a.nrows()).all(|i| a.diag(i) > 0.0),
                "{} has nonpositive diagonal",
                m.name
            );
        }
    }

    #[test]
    fn full_scale_row_counts_close_to_paper() {
        // Generate only the two cheapest; check the generators' nominal
        // sizes against Table 2 within 5%.
        let s = suite();
        let g2 = &s[1];
        let a = (g2.gen)(1.0);
        let rel = (a.nrows() as f64 - g2.paper_rows as f64).abs() / g2.paper_rows as f64;
        assert!(rel < 0.05, "{}: rel err {rel}", g2.name);
    }

    #[test]
    fn nnz_per_row_in_family_range() {
        for m in suite() {
            let a = (m.gen)(0.08);
            let avg = a.nnz() as f64 / a.nrows() as f64;
            // Boundary effects pull the average below the paper's interior
            // figure; require the right order.
            assert!(
                avg <= m.paper_nnz_per_row as f64 + 1.0,
                "{}: avg {} vs paper {}",
                m.name,
                avg,
                m.paper_nnz_per_row
            );
            assert!(avg >= 3.0, "{}: avg {}", m.name, avg);
        }
    }
}

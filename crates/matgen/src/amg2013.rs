//! AMG2013-like semi-structured input (Fig. 6 d–f workload).
//!
//! The AMG2013 benchmark's default problem assembles a 3D diffusion
//! operator over a grid of processor sub-boxes whose material coefficient
//! is drawn per "pool" of sub-boxes (`pooldist` controls the pool layout),
//! producing ~8 nonzeros/row with coefficient contrast across sub-box
//! boundaries. We reproduce that structure directly: the domain is split
//! into `pool × pool × pool` sub-boxes, each assigned a coefficient drawn
//! log-uniformly from `[10^-contrast, 10^contrast]`, and discretized with
//! the harmonic-averaged 7-point operator.

use crate::varcoef::varcoef3d_7pt;
use famg_sparse::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the semi-structured problem: `nx × ny × nz` cells, `pool³`
/// coefficient pools, coefficient contrast `10^±contrast` between pools.
pub fn amg2013_like(nx: usize, ny: usize, nz: usize, pool: usize, contrast: f64, seed: u64) -> Csr {
    assert!(pool > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let npools = pool * pool * pool;
    assert!(contrast >= 0.0);
    let coefs: Vec<f64> = (0..npools)
        .map(|_| {
            if contrast == 0.0 {
                1.0
            } else {
                10f64.powf(rng.gen_range(-contrast..contrast))
            }
        })
        .collect();
    let k: Vec<f64> = (0..nx * ny * nz)
        .map(|i| {
            let x = i % nx;
            let y = (i / nx) % ny;
            let z = i / (nx * ny);
            let px = x * pool / nx;
            let py = y * pool / ny;
            let pz = z * pool / nz;
            coefs[pz * pool * pool + py * pool + px]
        })
        .collect();
    varcoef3d_7pt(nx, ny, nz, &k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nnz_per_row_near_seven() {
        let a = amg2013_like(12, 12, 12, 2, 2.0, 5);
        let avg = a.nnz() as f64 / a.nrows() as f64;
        assert!(avg > 6.0 && avg <= 7.0, "avg nnz/row = {avg}");
    }

    #[test]
    fn symmetric_spd_structure() {
        let a = amg2013_like(8, 8, 8, 2, 2.0, 1);
        assert!(a.is_symmetric(1e-12));
        for i in 0..a.nrows() {
            assert!(a.diag(i) > 0.0);
        }
    }

    #[test]
    fn pools_create_contrast() {
        let a = amg2013_like(8, 8, 8, 2, 3.0, 9);
        // Off-diagonal magnitudes should span orders of magnitude.
        let mut min = f64::MAX;
        let mut max: f64 = 0.0;
        for i in 0..a.nrows() {
            for (c, v) in a.row_iter(i) {
                if c != i {
                    min = min.min(v.abs());
                    max = max.max(v.abs());
                }
            }
        }
        assert!(max / min > 100.0);
    }

    #[test]
    fn deterministic() {
        let a = amg2013_like(6, 6, 6, 2, 2.0, 3);
        let b = amg2013_like(6, 6, 6, 2, 2.0, 3);
        assert_eq!(a, b);
    }
}

//! Constant-coefficient Laplacian discretizations.

use famg_sparse::Csr;

/// 2D Poisson, 5-point finite differences, homogeneous Dirichlet boundary:
/// diagonal `4`, cross neighbours `-1`. The paper's `lap2d_2000` matrix is
/// `laplace2d(2000, 2000)`.
pub fn laplace2d(nx: usize, ny: usize) -> Csr {
    assert!(nx > 0 && ny > 0);
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * nx + j;
    let mut rowptr = Vec::with_capacity(n + 1);
    let mut colidx = Vec::with_capacity(5 * n);
    let mut values = Vec::with_capacity(5 * n);
    rowptr.push(0);
    for i in 0..ny {
        for j in 0..nx {
            if i > 0 {
                colidx.push(idx(i - 1, j));
                values.push(-1.0);
            }
            if j > 0 {
                colidx.push(idx(i, j - 1));
                values.push(-1.0);
            }
            colidx.push(idx(i, j));
            values.push(4.0);
            if j + 1 < nx {
                colidx.push(idx(i, j + 1));
                values.push(-1.0);
            }
            if i + 1 < ny {
                colidx.push(idx(i + 1, j));
                values.push(-1.0);
            }
            rowptr.push(colidx.len());
        }
    }
    Csr::from_parts_unchecked(n, n, rowptr, colidx, values)
}

/// 2D Poisson with pure Neumann boundary (finite volumes): every row sums
/// to zero and the diagonal equals the neighbour count. Singular (constant
/// nullspace) — used to test exact constant preservation of interpolation
/// operators without Dirichlet boundary effects.
pub fn laplace2d_neumann(nx: usize, ny: usize) -> Csr {
    assert!(nx > 0 && ny > 0);
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * nx + j;
    let mut trips = Vec::with_capacity(5 * n);
    for i in 0..ny {
        for j in 0..nx {
            let me = idx(i, j);
            let mut deg = 0.0;
            let mut push = |other: usize| {
                trips.push((me, other, -1.0));
                deg += 1.0;
            };
            if i > 0 {
                push(idx(i - 1, j));
            }
            if j > 0 {
                push(idx(i, j - 1));
            }
            if j + 1 < nx {
                push(idx(i, j + 1));
            }
            if i + 1 < ny {
                push(idx(i + 1, j));
            }
            trips.push((me, me, deg));
        }
    }
    Csr::from_triplets(n, n, trips)
}

/// 2D anisotropic Laplacian: `-u_xx - eps * u_yy` (5-point). Strong
/// coupling in x only when `eps` is small — a classic AMG stress test for
/// coarsening direction.
pub fn laplace2d_aniso(nx: usize, ny: usize, eps: f64) -> Csr {
    assert!(nx > 0 && ny > 0 && eps > 0.0);
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * nx + j;
    let mut rowptr = Vec::with_capacity(n + 1);
    let mut colidx = Vec::with_capacity(5 * n);
    let mut values = Vec::with_capacity(5 * n);
    rowptr.push(0);
    let diag = 2.0 + 2.0 * eps;
    for i in 0..ny {
        for j in 0..nx {
            if i > 0 {
                colidx.push(idx(i - 1, j));
                values.push(-eps);
            }
            if j > 0 {
                colidx.push(idx(i, j - 1));
                values.push(-1.0);
            }
            colidx.push(idx(i, j));
            values.push(diag);
            if j + 1 < nx {
                colidx.push(idx(i, j + 1));
                values.push(-1.0);
            }
            if i + 1 < ny {
                colidx.push(idx(i + 1, j));
                values.push(-eps);
            }
            rowptr.push(colidx.len());
        }
    }
    Csr::from_parts_unchecked(n, n, rowptr, colidx, values)
}

/// 2D rotated anisotropic diffusion, 9-point finite differences:
/// `-∇·(Q D Qᵀ ∇u)` with `D = diag(1, eps)` and rotation angle `theta`.
/// The classic AMG stress test: strong coupling along a direction not
/// aligned with the grid, exercising strength-of-connection quality.
pub fn laplace2d_rotated_aniso(nx: usize, ny: usize, eps: f64, theta: f64) -> Csr {
    assert!(nx > 1 && ny > 1 && eps > 0.0);
    let (s, c) = theta.sin_cos();
    // Diffusion tensor entries.
    let a11 = c * c + eps * s * s;
    let a22 = s * s + eps * c * c;
    let a12 = (1.0 - eps) * s * c;
    // Standard 9-point stencil for the rotated operator (finite
    // differences with cross-derivative averaging).
    let n = nx * ny;
    let idx = |i: i64, j: i64| (i * nx as i64 + j) as usize;
    let mut trips = Vec::with_capacity(9 * n);
    for i in 0..ny as i64 {
        for j in 0..nx as i64 {
            let me = idx(i, j);
            let mut add = |di: i64, dj: i64, w: f64| {
                let (ii, jj) = (i + di, j + dj);
                if ii >= 0 && jj >= 0 && ii < ny as i64 && jj < nx as i64 && w != 0.0 {
                    trips.push((me, idx(ii, jj), w));
                }
            };
            add(0, -1, -a11);
            add(0, 1, -a11);
            add(-1, 0, -a22);
            add(1, 0, -a22);
            add(-1, -1, -a12 / 2.0);
            add(1, 1, -a12 / 2.0);
            add(-1, 1, a12 / 2.0);
            add(1, -1, a12 / 2.0);
            trips.push((me, me, 2.0 * a11 + 2.0 * a22));
        }
    }
    Csr::from_triplets(n, n, trips)
}

/// 3D Poisson, 7-point finite differences, Dirichlet boundary:
/// diagonal `6`, face neighbours `-1`.
pub fn laplace3d_7pt(nx: usize, ny: usize, nz: usize) -> Csr {
    stencil3d(nx, ny, nz, &|di, dj, dk| {
        let dist = di.abs() + dj.abs() + dk.abs();
        match dist {
            0 => Some(6.0),
            1 => Some(-1.0),
            _ => None,
        }
    })
}

/// 3D Laplacian, 27-point stencil (HPCG style): diagonal `26`, every
/// neighbour in the 3×3×3 box `-1`. The paper's `lap3d_128` matrix is
/// `laplace3d_27pt(128, 128, 128)`; Fig. 6(a–c) weak-scales
/// `laplace3d_27pt(96, 96, 96)` per rank.
pub fn laplace3d_27pt(nx: usize, ny: usize, nz: usize) -> Csr {
    stencil3d(nx, ny, nz, &|di, dj, dk| {
        if di == 0 && dj == 0 && dk == 0 {
            Some(26.0)
        } else if di.abs() <= 1 && dj.abs() <= 1 && dk.abs() <= 1 {
            Some(-1.0)
        } else {
            None
        }
    })
}

/// 3D 13-point stencil: 7-point core plus second neighbours along each
/// axis with weight `-0.25`. Used as the StocF-1465 proxy (≈14 nnz/row).
pub fn stencil3d_13pt(nx: usize, ny: usize, nz: usize) -> Csr {
    stencil3d(nx, ny, nz, &|di, dj, dk| {
        let on_axis = u8::from(di != 0) + u8::from(dj != 0) + u8::from(dk != 0);
        let dist = di.abs().max(dj.abs()).max(dk.abs());
        match (on_axis, dist) {
            (0, 0) => Some(6.0 + 12.0 * 0.25),
            (1, 1) => Some(-1.0),
            (1, 2) => Some(-0.25),
            _ => None,
        }
    })
}

/// Generic 3D box-stencil assembler over `stencil(di, dj, dk) -> weight`.
/// The stencil is probed over offsets in `[-2, 2]^3`; entries outside the
/// domain are dropped (Dirichlet).
pub fn stencil3d(
    nx: usize,
    ny: usize,
    nz: usize,
    stencil: &dyn Fn(i64, i64, i64) -> Option<f64>,
) -> Csr {
    assert!(nx > 0 && ny > 0 && nz > 0);
    let n = nx * ny * nz;
    // Collect the stencil offsets once, ordered for sorted rows.
    let mut offs: Vec<(i64, i64, i64, f64)> = Vec::new();
    for dk in -2i64..=2 {
        for di in -2i64..=2 {
            for dj in -2i64..=2 {
                if let Some(w) = stencil(di, dj, dk) {
                    offs.push((di, dj, dk, w));
                }
            }
        }
    }
    // Sort by linear index offset so each row's columns come out ascending.
    offs.sort_by_key(|&(di, dj, dk, _)| dk * (nx * ny) as i64 + di * nx as i64 + dj);
    let mut rowptr = Vec::with_capacity(n + 1);
    let mut colidx = Vec::with_capacity(offs.len() * n);
    let mut values = Vec::with_capacity(offs.len() * n);
    rowptr.push(0);
    for k in 0..nz {
        for i in 0..ny {
            for j in 0..nx {
                for &(di, dj, dk, w) in &offs {
                    let (ii, jj, kk) = (i as i64 + di, j as i64 + dj, k as i64 + dk);
                    if ii >= 0
                        && jj >= 0
                        && kk >= 0
                        && (ii as usize) < ny
                        && (jj as usize) < nx
                        && (kk as usize) < nz
                    {
                        colidx.push(kk as usize * nx * ny + ii as usize * nx + jj as usize);
                        values.push(w);
                    }
                }
                rowptr.push(colidx.len());
            }
        }
    }
    Csr::from_parts_unchecked(n, n, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace2d_shape_and_stencil() {
        let a = laplace2d(4, 3);
        assert_eq!(a.nrows(), 12);
        // Interior point (1,1) -> row 5: 4 neighbours + diagonal.
        assert_eq!(a.row_nnz(5), 5);
        assert_eq!(a.get(5, 5), Some(4.0));
        assert_eq!(a.get(5, 4), Some(-1.0));
        assert_eq!(a.get(5, 1), Some(-1.0));
        // Corner has 2 neighbours.
        assert_eq!(a.row_nnz(0), 3);
    }

    #[test]
    fn laplace2d_symmetric_and_sorted() {
        let a = laplace2d(5, 5);
        assert!(a.is_symmetric(0.0));
        assert!(a.rows_sorted());
    }

    #[test]
    fn laplace2d_row_sums_nonnegative() {
        // Dirichlet rows near the boundary have positive row sums,
        // interior rows sum to zero — the M-matrix structure AMG expects.
        let a = laplace2d(6, 6);
        for i in 0..a.nrows() {
            let s: f64 = a.row_vals(i).iter().sum();
            assert!(s >= -1e-14);
        }
    }

    #[test]
    fn neumann_rows_sum_to_zero() {
        let a = laplace2d_neumann(5, 4);
        assert!(a.is_symmetric(0.0));
        for i in 0..a.nrows() {
            let s: f64 = a.row_vals(i).iter().sum();
            assert_eq!(s, 0.0, "row {i}");
        }
        // Corner degree 2, interior degree 4.
        assert_eq!(a.diag(0), 2.0);
        assert_eq!(a.diag(6), 4.0);
    }

    #[test]
    fn laplace3d_7pt_interior() {
        let a = laplace3d_7pt(3, 3, 3);
        assert_eq!(a.nrows(), 27);
        let center = 13; // (1,1,1)
        assert_eq!(a.row_nnz(center), 7);
        assert_eq!(a.get(center, center), Some(6.0));
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn laplace3d_27pt_interior() {
        let a = laplace3d_27pt(4, 4, 4);
        let center = 16 + 4 + 1; // (1,1,1)
        assert_eq!(a.row_nnz(center), 27);
        assert_eq!(a.get(center, center), Some(26.0));
        assert!(a.is_symmetric(0.0));
        assert!(a.rows_sorted());
    }

    #[test]
    fn stencil13_nnz_per_row() {
        let a = stencil3d_13pt(7, 7, 7);
        let center = 3 * 49 + 3 * 7 + 3;
        assert_eq!(a.row_nnz(center), 13);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn aniso_couples_weakly_in_y() {
        let a = laplace2d_aniso(4, 4, 0.01);
        let i = 5; // interior
        assert_eq!(a.get(i, i - 1), Some(-1.0)); // x neighbour
        assert_eq!(a.get(i, i - 4), Some(-0.01)); // y neighbour
    }

    #[test]
    fn rotated_aniso_symmetric_and_grid_aligned_limit() {
        // theta = 0 degenerates to the axis-aligned anisotropic operator.
        let r0 = laplace2d_rotated_aniso(6, 6, 0.1, 0.0);
        assert!(r0.is_symmetric(1e-12));
        let i = 14; // interior point of the 6x6 grid
        assert!((r0.get(i, i - 1).unwrap() + 1.0).abs() < 1e-12); // x: strong
        assert!((r0.get(i, i - 6).unwrap() + 0.1).abs() < 1e-12); // y: weak
        assert_eq!(r0.get(i, i - 7), None); // no cross terms at theta=0
                                            // Rotated: cross terms appear, symmetry holds.
        let r45 = laplace2d_rotated_aniso(8, 8, 0.01, std::f64::consts::FRAC_PI_4);
        assert!(r45.is_symmetric(1e-12));
        let j = 27;
        assert!(r45.get(j, j - 9).is_some(), "diagonal coupling expected");
    }

    #[test]
    fn rotated_aniso_amg_solves() {
        use famg_sparse::spmv::residual_norm_sq;
        // Sanity: the operator is SPD enough for CG-free AMG smoke
        // testing via simple Jacobi iterations reducing the residual.
        let a = laplace2d_rotated_aniso(12, 12, 0.1, 0.5);
        let n = a.nrows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let mut r = vec![0.0; n];
        let r0 = residual_norm_sq(&a, &x, &b, &mut r).sqrt();
        for _ in 0..200 {
            for i in 0..n {
                let mut acc = b[i];
                let mut d = 0.0;
                for (c, v) in a.row_iter(i) {
                    if c == i {
                        d = v;
                    } else {
                        acc -= v * x[c];
                    }
                }
                x[i] = acc / d;
            }
        }
        let r1 = residual_norm_sq(&a, &x, &b, &mut r).sqrt();
        assert!(r1 < 0.1 * r0);
    }

    #[test]
    fn diagonal_dominance() {
        for a in [
            laplace2d(5, 4),
            laplace3d_7pt(3, 4, 2),
            laplace3d_27pt(3, 3, 3),
        ] {
            for i in 0..a.nrows() {
                let d = a.diag(i);
                let off: f64 = a
                    .row_iter(i)
                    .filter(|&(c, _)| c != i)
                    .map(|(_, v)| v.abs())
                    .sum();
                assert!(d >= off - 1e-12, "row {i} not diagonally dominant");
            }
        }
    }
}

//! Variable-coefficient 3D diffusion operators.
//!
//! Discretizes `-∇·(K(x) ∇u) = f` with cell-centred finite volumes on a
//! regular grid: the face transmissibility between two cells is the
//! harmonic mean of their coefficients, yielding a symmetric positive
//! definite M-matrix for any positive coefficient field — the structure
//! both the AMG2013-like and reservoir problems are built on.

use famg_sparse::Csr;

/// Assembles the 7-point variable-coefficient operator for coefficient
/// field `k` given per-cell values (row-major `x` fastest, then `y`, `z`).
///
/// # Panics
/// Panics when `k.len() != nx*ny*nz` or any coefficient is not positive.
pub fn varcoef3d_7pt(nx: usize, ny: usize, nz: usize, k: &[f64]) -> Csr {
    assert_eq!(k.len(), nx * ny * nz);
    assert!(k.iter().all(|&v| v > 0.0), "coefficients must be positive");
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| z * nx * ny + y * nx + x;
    let harm = |a: f64, b: f64| 2.0 * a * b / (a + b);

    let mut rowptr = Vec::with_capacity(n + 1);
    let mut colidx = Vec::with_capacity(7 * n);
    let mut values = Vec::with_capacity(7 * n);
    rowptr.push(0);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let me = idx(x, y, z);
                let kc = k[me];
                let mut diag = 0.0;
                // Neighbours in ascending linear-index order: -z, -y, -x,
                // (diag), +x, +y, +z. Dirichlet boundary: the "missing"
                // face still contributes its transmissibility to the
                // diagonal (coupling to the zero boundary value).
                let neigh = |cond: bool, other: usize| -> f64 {
                    if cond {
                        harm(kc, k[other])
                    } else {
                        kc // boundary face transmissibility
                    }
                };
                let tzm = neigh(z > 0, if z > 0 { idx(x, y, z - 1) } else { 0 });
                let tym = neigh(y > 0, if y > 0 { idx(x, y - 1, z) } else { 0 });
                let txm = neigh(x > 0, if x > 0 { idx(x - 1, y, z) } else { 0 });
                let txp = neigh(x + 1 < nx, if x + 1 < nx { idx(x + 1, y, z) } else { 0 });
                let typ = neigh(y + 1 < ny, if y + 1 < ny { idx(x, y + 1, z) } else { 0 });
                let tzp = neigh(z + 1 < nz, if z + 1 < nz { idx(x, y, z + 1) } else { 0 });
                diag += tzm + tym + txm + txp + typ + tzp;

                if z > 0 {
                    colidx.push(idx(x, y, z - 1));
                    values.push(-tzm);
                }
                if y > 0 {
                    colidx.push(idx(x, y - 1, z));
                    values.push(-tym);
                }
                if x > 0 {
                    colidx.push(idx(x - 1, y, z));
                    values.push(-txm);
                }
                colidx.push(me);
                values.push(diag);
                if x + 1 < nx {
                    colidx.push(idx(x + 1, y, z));
                    values.push(-txp);
                }
                if y + 1 < ny {
                    colidx.push(idx(x, y + 1, z));
                    values.push(-typ);
                }
                if z + 1 < nz {
                    colidx.push(idx(x, y, z + 1));
                    values.push(-tzp);
                }
                rowptr.push(colidx.len());
            }
        }
    }
    Csr::from_parts_unchecked(n, n, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_field_matches_laplacian_scaled() {
        // K ≡ 1 gives the standard 7-point Laplacian.
        let k = vec![1.0; 3 * 3 * 3];
        let a = varcoef3d_7pt(3, 3, 3, &k);
        let l = crate::laplace::laplace3d_7pt(3, 3, 3);
        // Interior stencils agree; boundary rows differ only in the
        // diagonal (Dirichlet face terms), which keeps A SPD.
        let center = 13;
        assert_eq!(a.get(center, center), l.get(center, center));
        assert_eq!(a.get(center, center - 1), Some(-1.0));
    }

    #[test]
    fn symmetric_for_random_field() {
        let k: Vec<f64> = (0..4 * 3 * 2).map(|i| 1.0 + f64::from(i % 7)).collect();
        let a = varcoef3d_7pt(4, 3, 2, &k);
        assert!(a.is_symmetric(1e-14));
    }

    #[test]
    fn diagonally_dominant_m_matrix() {
        let k: Vec<f64> = (0..5 * 5 * 5)
            .map(|i| if i % 9 == 0 { 1000.0 } else { 0.001 })
            .collect();
        let a = varcoef3d_7pt(5, 5, 5, &k);
        for i in 0..a.nrows() {
            let d = a.diag(i);
            assert!(d > 0.0);
            let off: f64 = a
                .row_iter(i)
                .filter(|&(c, _)| c != i)
                .map(|(_, v)| {
                    assert!(v <= 0.0, "off-diagonal must be non-positive");
                    v.abs()
                })
                .sum();
            assert!(d >= off - 1e-12);
        }
    }

    #[test]
    fn harmonic_mean_blocks_jumps() {
        // Two cells with K = 1 and K = 1e6: face transmissibility is
        // ~2 (harmonic mean), not ~5e5 (arithmetic mean).
        let a = varcoef3d_7pt(2, 1, 1, &[1.0, 1e6]);
        let t = -a.get(0, 1).unwrap();
        assert!((t - 2.0).abs() / 2.0 < 1e-5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_coefficients() {
        varcoef3d_7pt(2, 1, 1, &[1.0, 0.0]);
    }
}

//! The strong-scaling reservoir problem (§5.1.2, Fig. 8).
//!
//! The paper uses a permeability field generated geostatistically with
//! sequential Gaussian simulation (SGeMS). We substitute a layered
//! lognormal random field with spatial correlation imposed by repeated
//! box-blur smoothing of white noise (a moving-average random field):
//! the resulting operator preserves the property that matters to the
//! solver — a Poisson-like equation with coefficient jumps spanning many
//! orders of magnitude, hence badly conditioned and requiring a
//! Krylov-wrapped AMG (FGMRES + AMG, tol 1e-5) rather than standalone AMG.

use crate::varcoef::varcoef3d_7pt;
use famg_sparse::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a spatially correlated lognormal permeability field.
///
/// * `sigma` — standard deviation of log-permeability (paper-like fields
///   use 2–4, i.e. jumps of several orders of magnitude),
/// * `layers` — number of horizontal geological layers; each layer gets
///   an independent mean log-permeability, producing the strong vertical
///   discontinuities typical of reservoir models,
/// * `smooth_passes` — box-blur passes controlling in-layer correlation.
pub fn reservoir_field(
    nx: usize,
    ny: usize,
    nz: usize,
    layers: usize,
    sigma: f64,
    smooth_passes: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(nx > 0 && ny > 0 && nz > 0 && layers > 0);
    let n = nx * ny * nz;
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-layer mean log-permeability: deterministically spread across
    // [-sigma, sigma] (so the extreme layers always contrast by 2*sigma),
    // then shuffled so the vertical ordering is random.
    let mut layer_means: Vec<f64> = (0..layers)
        .map(|l| {
            if layers == 1 {
                0.0
            } else {
                sigma * (2.0 * l as f64 / (layers - 1) as f64 - 1.0)
            }
        })
        .collect();
    for i in (1..layer_means.len()).rev() {
        layer_means.swap(i, rng.gen_range(0..=i));
    }
    // White noise.
    let mut logk: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    // In-plane box blur (x and y only — layers stay sharp in z).
    let idx = |x: usize, y: usize, z: usize| z * nx * ny + y * nx + x;
    let mut tmp = vec![0.0; n];
    for _ in 0..smooth_passes {
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let mut acc = 0.0;
                    let mut cnt = 0.0;
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let xx = x as i64 + dx;
                            let yy = y as i64 + dy;
                            if xx >= 0 && yy >= 0 && (xx as usize) < nx && (yy as usize) < ny {
                                acc += logk[idx(xx as usize, yy as usize, z)];
                                cnt += 1.0;
                            }
                        }
                    }
                    tmp[idx(x, y, z)] = acc / cnt;
                }
            }
        }
        std::mem::swap(&mut logk, &mut tmp);
    }
    // Normalize the smoothed noise back to unit spread, add layer means,
    // exponentiate.
    let max_abs = logk.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-30);
    for z in 0..nz {
        let layer = z * layers / nz;
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                logk[i] = layer_means[layer] + sigma * logk[i] / max_abs;
            }
        }
    }
    logk.iter().map(|&v| v.exp()).collect()
}

/// Assembles the reservoir pressure operator on an `nx × ny × nz` grid.
/// Deterministic for a given seed.
pub fn reservoir_matrix(nx: usize, ny: usize, nz: usize, seed: u64) -> Csr {
    let k = reservoir_field(nx, ny, nz, 8.min(nz.max(1)), 3.0, 2, seed);
    varcoef3d_7pt(nx, ny, nz, &k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_is_positive_and_jumpy() {
        let k = reservoir_field(16, 16, 16, 4, 3.0, 2, 42);
        assert!(k.iter().all(|&v| v > 0.0));
        let kmax = k.iter().copied().fold(f64::MIN, f64::max);
        let kmin = k.iter().copied().fold(f64::MAX, f64::min);
        // Several orders of magnitude contrast.
        assert!(kmax / kmin > 1e3, "contrast only {:.1e}", kmax / kmin);
    }

    #[test]
    fn field_deterministic_per_seed() {
        let a = reservoir_field(8, 8, 8, 4, 3.0, 2, 7);
        let b = reservoir_field(8, 8, 8, 4, 3.0, 2, 7);
        let c = reservoir_field(8, 8, 8, 4, 3.0, 2, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn matrix_is_spd_structured() {
        let a = reservoir_matrix(8, 8, 8, 1);
        assert_eq!(a.nrows(), 512);
        assert!(a.is_symmetric(1e-12));
        for i in 0..a.nrows() {
            assert!(a.diag(i) > 0.0);
        }
    }

    #[test]
    fn layers_produce_vertical_discontinuity() {
        let (nx, ny, nz) = (8, 8, 16);
        let k = reservoir_field(nx, ny, nz, 4, 3.0, 2, 3);
        // Mean |log K| jump across a layer boundary should exceed the
        // within-layer jump on average.
        let idx = |x: usize, y: usize, z: usize| z * nx * ny + y * nx + x;
        let mut within = (0.0, 0usize);
        let mut across = (0.0, 0usize);
        for z in 0..nz - 1 {
            let boundary = (z + 1) % (nz / 4) == 0;
            for y in 0..ny {
                for x in 0..nx {
                    let d = (k[idx(x, y, z)].ln() - k[idx(x, y, z + 1)].ln()).abs();
                    if boundary {
                        across = (across.0 + d, across.1 + 1);
                    } else {
                        within = (within.0 + d, within.1 + 1);
                    }
                }
            }
        }
        let mean_within = within.0 / within.1 as f64;
        let mean_across = across.0 / across.1 as f64;
        assert!(mean_across > mean_within);
    }
}

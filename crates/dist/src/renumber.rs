//! Column-index renumbering for received matrix rows (§4.2, Fig. 4).
//!
//! When a rank gathers remote matrix rows for SpGEMM-like operations, the
//! received global column indices must be renumbered into the rank's
//! compressed off-diagonal space. New columns — those neither owned by the
//! rank nor already in its `colmap` — are appended (Fig. 3c). The paper
//! identifies this renumbering as a major multi-node setup bottleneck and
//! parallelizes it with thread-private hash sets, a parallel merge-dedup,
//! and a range-partitioned reverse map; both that version and the
//! ordered-set sequential baseline are provided, and they produce
//! identical results.

use std::collections::{BTreeSet, HashMap};

/// A rank's extended off-diagonal column map after receiving rows.
#[derive(Debug, Clone)]
pub struct ExtendedColmap {
    /// The rank's own global column range `[own.0, own.1)`.
    pub own: (usize, usize),
    /// The pre-existing colmap (sorted).
    pub base: Vec<usize>,
    /// Newly appended global columns (sorted among themselves; their
    /// compressed indices start at `base.len()`).
    pub new: Vec<usize>,
}

/// A renumbered column: either a local (diagonal-block) column or a
/// compressed off-diagonal index into the extended colmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalCol {
    /// Column inside the rank's own range (offset within it).
    Diag(usize),
    /// Compressed off-diagonal index (`< base.len() + new.len()`).
    Offd(usize),
}

impl ExtendedColmap {
    /// Total compressed off-diagonal width.
    pub fn offd_width(&self) -> usize {
        self.base.len() + self.new.len()
    }

    /// Global column for compressed off-diagonal index `k`.
    pub fn global_of(&self, k: usize) -> usize {
        if k < self.base.len() {
            self.base[k]
        } else {
            self.new[k - self.base.len()]
        }
    }

    /// Renumbers a global column (must be own, in base, or in new).
    pub fn lookup(&self, g: usize) -> LocalCol {
        if g >= self.own.0 && g < self.own.1 {
            return LocalCol::Diag(g - self.own.0);
        }
        if let Ok(k) = self.base.binary_search(&g) {
            return LocalCol::Offd(k);
        }
        let k = self
            .new
            .binary_search(&g)
            .unwrap_or_else(|_| panic!("column {g} not renumbered"));
        LocalCol::Offd(self.base.len() + k)
    }
}

/// Sequential baseline: collects new columns through an ordered set (the
/// approach the paper says parallelizes poorly).
pub fn renumber_seq(
    received_cols: &[usize],
    base_colmap: &[usize],
    own: (usize, usize),
) -> ExtendedColmap {
    let mut set = BTreeSet::new();
    for &c in received_cols {
        if (c < own.0 || c >= own.1) && base_colmap.binary_search(&c).is_err() {
            set.insert(c);
        }
    }
    ExtendedColmap {
        own,
        base: base_colmap.to_vec(),
        new: set.into_iter().collect(),
    }
}

/// Parallel renumbering (Fig. 4): thread-private hash sets over chunks of
/// the received columns, merged with a parallel sort-dedup. Produces
/// exactly the same [`ExtendedColmap`] as [`renumber_seq`].
pub fn renumber_par(
    received_cols: &[usize],
    base_colmap: &[usize],
    own: (usize, usize),
) -> ExtendedColmap {
    use rayon::prelude::*;
    // Fixed chunk length (not pool-size derived): the merged result is
    // sort-deduped so any chunking gives the same answer, but a fixed
    // geometry keeps the partials — and any timing built on them —
    // reproducible across pool sizes.
    let chunk = 4096;
    // Phase 1: thread-private hash sets filter duplicates without
    // synchronization (exploits the locality of adjacent rows).
    let partials: Vec<Vec<usize>> = received_cols
        .par_chunks(chunk)
        .map(|cs| {
            let mut h: std::collections::HashSet<usize> = std::collections::HashSet::new();
            for &c in cs {
                if (c < own.0 || c >= own.1) && base_colmap.binary_search(&c).is_err() {
                    h.insert(c);
                }
            }
            let mut v: Vec<usize> = h.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect();
    // Phase 2: merge and eliminate duplicates across threads.
    let mut merged: Vec<usize> = partials.concat();
    merged.par_sort_unstable();
    merged.dedup();
    ExtendedColmap {
        own,
        base: base_colmap.to_vec(),
        new: merged,
    }
}

/// The paper's range-partitioned reverse map: the sorted `new` array is
/// split into `t` ranges, each thread builds a hash map for its range,
/// and lookups first binary-search the range boundaries then probe one
/// small table (O(log t) + O(1) instead of O(log n)).
pub struct PartitionedReverseMap {
    boundaries: Vec<usize>,
    maps: Vec<HashMap<usize, usize>>,
}

impl PartitionedReverseMap {
    /// Builds over the `new` portion of an extended colmap.
    pub fn build(ext: &ExtendedColmap, nparts: usize) -> Self {
        let n = ext.new.len();
        let nparts = nparts.max(1).min(n.max(1));
        let mut boundaries = Vec::with_capacity(nparts);
        let mut maps = Vec::with_capacity(nparts);
        use rayon::prelude::*;
        let ranges: Vec<(usize, usize)> = (0..nparts)
            .map(|p| (n * p / nparts, n * (p + 1) / nparts))
            .collect();
        let built: Vec<HashMap<usize, usize>> = ranges
            .par_iter()
            .map(|&(s, e)| {
                let mut m = HashMap::with_capacity(e - s);
                for k in s..e {
                    m.insert(ext.new[k], ext.base.len() + k);
                }
                m
            })
            .collect();
        for (&(s, _), m) in ranges.iter().zip(built) {
            boundaries.push(if s < n { ext.new[s] } else { usize::MAX });
            maps.push(m);
        }
        PartitionedReverseMap { boundaries, maps }
    }

    /// Looks up the compressed index of a *new* global column.
    pub fn lookup(&self, g: usize) -> Option<usize> {
        if self.maps.is_empty() {
            return None;
        }
        let part = match self.boundaries.binary_search(&g) {
            Ok(p) => p,
            Err(0) => 0,
            Err(p) => p - 1,
        };
        self.maps[part].get(&g).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_appends_sorted_new_columns() {
        let base = vec![2, 5];
        let ext = renumber_seq(&[9, 2, 7, 9, 5, 0, 7], &base, (3, 5));
        // Own range [3,5): 0 is outside -> candidate; 2, 5 in base; 9, 7 new; 0 new.
        assert_eq!(ext.new, vec![0, 7, 9]);
        assert_eq!(ext.lookup(2), LocalCol::Offd(0));
        assert_eq!(ext.lookup(5), LocalCol::Offd(1));
        assert_eq!(ext.lookup(0), LocalCol::Offd(2));
        assert_eq!(ext.lookup(7), LocalCol::Offd(3));
        assert_eq!(ext.lookup(9), LocalCol::Offd(4));
        assert_eq!(ext.lookup(3), LocalCol::Diag(0));
        assert_eq!(ext.lookup(4), LocalCol::Diag(1));
        assert_eq!(ext.offd_width(), 5);
    }

    #[test]
    fn par_matches_seq() {
        // Large pseudo-random input.
        let mut cols = Vec::new();
        let mut state = 7u64;
        for _ in 0..50_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            cols.push(((state >> 33) % 10_000) as usize);
        }
        let base: Vec<usize> = (0..500)
            .map(|i| i * 7)
            .filter(|&c| !(2000..3000).contains(&c))
            .collect();
        let own = (2000, 3000);
        let a = renumber_seq(&cols, &base, own);
        let b = renumber_par(&cols, &base, own);
        assert_eq!(a.new, b.new);
        assert_eq!(a.base, b.base);
    }

    #[test]
    fn global_of_roundtrip() {
        let ext = renumber_seq(&[10, 20], &[4], (0, 2));
        for k in 0..ext.offd_width() {
            let g = ext.global_of(k);
            assert_eq!(ext.lookup(g), LocalCol::Offd(k));
        }
    }

    #[test]
    fn partitioned_reverse_map_matches_binary_search() {
        let cols: Vec<usize> = (0..10_000).map(|i| i * 3 + 1).collect();
        let ext = renumber_seq(&cols, &[], (0, 1));
        for nparts in [1, 2, 7, 16] {
            let prm = PartitionedReverseMap::build(&ext, nparts);
            for &g in cols.iter().step_by(97) {
                let via_map = prm.lookup(g).unwrap();
                assert_eq!(LocalCol::Offd(via_map), ext.lookup(g));
            }
            assert_eq!(prm.lookup(0), None);
        }
    }

    #[test]
    fn empty_inputs() {
        let ext = renumber_par(&[], &[], (0, 10));
        assert_eq!(ext.offd_width(), 0);
        let prm = PartitionedReverseMap::build(&ext, 4);
        assert_eq!(prm.lookup(5), None);
    }

    #[test]
    #[should_panic(expected = "not renumbered")]
    fn lookup_unknown_panics() {
        let ext = renumber_seq(&[7], &[], (0, 2));
        ext.lookup(8);
    }
}

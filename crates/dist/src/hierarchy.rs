//! Distributed AMG setup phase.
//!
//! Mirrors the shared-memory hierarchy construction level by level:
//! local strength → distributed PMIS (optionally aggressive) →
//! distributed interpolation → `R = Pᵀ` kept from setup → distributed
//! Galerkin product, with the §4 knobs (parallel renumbering, remote-row
//! filtering, persistent exchange plans) selectable per run.

use crate::coarsen::{dist_aggressive_pmis, dist_pmis, DistCoarsening};
use crate::comm::{Comm, CommPhase};
use crate::halo::VectorExchange;
use crate::interp::{
    dist_direct, dist_extended_i, dist_multipass, dist_strength, dist_two_stage_extended_i,
};
use crate::parcsr::ParCsr;
use crate::spgemm::{dist_spgemm, dist_transpose};
use famg_core::interp::TruncParams;
use famg_core::params::{AmgConfig, CoarsenKind, InterpKind};
use famg_core::stats::{CommVolume, PhaseTimes, SetupStats};
use famg_sparse::dense::{DenseMatrix, LuFactor};
use std::time::Instant;

/// Borrows one rank's ParCSR matrix as raw parts for `famg-check`.
#[cfg(feature = "validate")]
fn parcsr_parts(m: &ParCsr, rank: usize) -> famg_check::ParCsrParts<'_> {
    let (col_start, col_end) = m.col_range(rank);
    famg_check::ParCsrParts {
        row_start: m.row_start,
        row_end: m.row_end,
        col_start,
        col_end,
        global_cols: m.global_cols,
        diag: &m.diag,
        offd: &m.offd,
        colmap: &m.colmap,
    }
}

#[cfg(feature = "validate")]
fn enforce(rank: usize, level: usize, what: &str, result: famg_check::CheckResult) {
    if let Err(v) = result {
        panic!(
            "distributed hierarchy validation failed on rank {rank} at level {level} ({what}): {v}"
        );
    }
}

/// Per-rank checks at one distributed level boundary: ParCSR structural
/// invariants of the level operator, P, R and the Galerkin coarse
/// operator, plus the local interpolation identity rows. Checks that
/// need a global gather (CF independence across ranks, the Galerkin
/// cross-check) are covered by the serial validators under
/// `famg-core/validate`; PMIS and the interpolation schemes are
/// rank-count invariant, so the serial run exercises the same splitting.
#[cfg(feature = "validate")]
fn validate_dist_level(
    rank: usize,
    level: usize,
    a: &ParCsr,
    p: &ParCsr,
    r: &ParCsr,
    next: &ParCsr,
    is_coarse: &[bool],
) {
    enforce(
        rank,
        level,
        "level operator",
        famg_check::check_parcsr(&parcsr_parts(a, rank)),
    );
    enforce(
        rank,
        level,
        "interpolation",
        famg_check::check_parcsr(&parcsr_parts(p, rank)),
    );
    enforce(
        rank,
        level,
        "restriction",
        famg_check::check_parcsr(&parcsr_parts(r, rank)),
    );
    enforce(
        rank,
        level + 1,
        "coarse operator",
        famg_check::check_parcsr(&parcsr_parts(next, rank)),
    );
    // Each owned C-point interpolates only from itself with weight one.
    // Coarse points keep their owning rank, so the entry must sit in the
    // diag block and the offd row must be empty.
    for (i, &coarse) in is_coarse.iter().enumerate() {
        if !coarse {
            continue;
        }
        assert!(
            p.offd.row_nnz(i) == 0 && p.diag.row_nnz(i) == 1 && p.diag.row_vals(i) == [1.0],
            "distributed hierarchy validation failed on rank {rank} at level {level} \
             (interp C-row): local C-point {i} is not an identity row \
             (diag nnz {}, offd nnz {})",
            p.diag.row_nnz(i),
            p.offd.row_nnz(i)
        );
    }
}

/// Multi-node optimization switches (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistOptFlags {
    /// Parallel column-index renumbering (Fig. 4) instead of the
    /// ordered-set baseline.
    pub parallel_renumber: bool,
    /// Filter remote interpolation rows before sending (§4.3).
    pub filter_interp: bool,
    /// Plan halo exchanges once per operator (§4.4 persistent
    /// communication) instead of per application.
    pub persistent_comm: bool,
}

impl DistOptFlags {
    /// All §4 optimizations on.
    pub const fn all() -> Self {
        DistOptFlags {
            parallel_renumber: true,
            filter_interp: true,
            persistent_comm: true,
        }
    }

    /// All §4 optimizations off (multi-node baseline).
    pub const fn none() -> Self {
        DistOptFlags {
            parallel_renumber: false,
            filter_interp: false,
            persistent_comm: false,
        }
    }
}

impl Default for DistOptFlags {
    fn default() -> Self {
        DistOptFlags::all()
    }
}

/// One distributed multigrid level.
pub struct DistLevel {
    /// The level operator.
    pub a: ParCsr,
    /// Interpolation to this level from the next coarser (`None` at the
    /// coarsest level).
    pub p: Option<ParCsr>,
    /// `Pᵀ`, kept from setup.
    pub r: Option<ParCsr>,
    /// Halo plan for `a` (smoothing, residuals).
    pub plan_a: VectorExchange,
    /// Halo plan for prolongation (`p`'s colmap over coarse vectors).
    pub plan_p: Option<VectorExchange>,
    /// Halo plan for restriction (`r`'s colmap over fine vectors).
    pub plan_r: Option<VectorExchange>,
    /// Reciprocal diagonal.
    pub dinv: Vec<f64>,
    /// Local C/F marker (C-F relaxation ordering).
    pub is_coarse: Vec<bool>,
}

/// The distributed hierarchy owned by one rank.
pub struct DistHierarchy {
    /// Levels, finest first.
    pub levels: Vec<DistLevel>,
    /// Coarsest-level dense factorization, held by rank 0.
    pub coarse_lu: Option<LuFactor>,
    /// Coarsest-level row partition (for the gather/scatter solve).
    pub coarse_starts: Vec<usize>,
    /// Solver configuration.
    pub config: AmgConfig,
    /// §4 optimization flags the hierarchy was built with.
    pub dist_opt: DistOptFlags,
    /// Per-level sizes (global).
    pub stats: SetupStats,
    /// Setup timing (this rank).
    pub times: PhaseTimes,
    /// Wall time blocked in communication during setup (this rank).
    pub setup_comm_time: std::time::Duration,
    /// Bytes/messages this rank sent during setup.
    pub setup_comm: CommVolume,
}

impl DistHierarchy {
    /// Runs the distributed setup phase.
    pub fn build(comm: &Comm, a: ParCsr, cfg: &AmgConfig, dopt: DistOptFlags) -> DistHierarchy {
        let rank = comm.rank();
        let mut times = PhaseTimes::default();
        let mut stats = SetupStats::default();
        let comm_t0 = comm.comm_time();
        let comm_mark = (comm.bytes_sent(), comm.messages_sent());
        let mut levels: Vec<DistLevel> = Vec::new();
        let mut current = a;

        loop {
            // Attribute this level's setup traffic (coarsening, interp,
            // RAP, plans) to (level, Setup).
            let _scope = comm.scoped(levels.len(), CommPhase::Setup);
            let n_global = *current.col_starts.last().unwrap();
            stats.level_rows.push(n_global);
            stats
                .level_nnz
                .push(comm.allreduce_sum_usize(current.local_nnz(), 0x80));
            let at_capacity = levels.len() + 1 >= cfg.max_levels;
            if n_global <= cfg.coarse_solve_size || at_capacity {
                break;
            }

            let t0 = Instant::now();
            let s = dist_strength(&current, cfg.strength_threshold, cfg.max_row_sum, rank);
            let (ckind, ikind) = cfg.level_scheme(levels.len());
            let seed = cfg.seed.wrapping_add(levels.len() as u64);
            let (stage1, coarsening): (Option<DistCoarsening>, DistCoarsening) = match ckind {
                CoarsenKind::Pmis => (None, dist_pmis(comm, &s, seed, None)),
                CoarsenKind::AggressivePmis => {
                    let (f, fin) = dist_aggressive_pmis(comm, &s, seed);
                    (Some(f), fin)
                }
            };
            times.strength_coarsen += t0.elapsed();
            if coarsening.ncoarse_global == 0 || coarsening.ncoarse_global == n_global {
                break;
            }

            // The level's persistent halo plan, built up front so the
            // interpolation schemes reuse it for their C/F code exchange
            // instead of re-planning `current`'s colmap.
            let t0 = Instant::now();
            let plan_a = VectorExchange::plan(comm, &current.colmap, &current.col_starts);
            times.setup_etc += t0.elapsed();

            let t0 = Instant::now();
            let t = TruncParams {
                factor: cfg.trunc_factor,
                max_elements: cfg.max_elements,
            };
            let p = match ikind {
                // Classical (distance-1) falls back to direct in the
                // distributed build; the paper's multi-node schemes are
                // ei(4)/mp/2s-ei and do not exercise it.
                InterpKind::Direct | InterpKind::Classical => {
                    dist_direct(comm, &current, &plan_a, &s, &coarsening, Some(&t))
                }
                InterpKind::ExtendedI => dist_extended_i(
                    comm,
                    &current,
                    &plan_a,
                    &s,
                    &coarsening,
                    Some(&t),
                    dopt.filter_interp,
                ),
                InterpKind::Multipass => {
                    dist_multipass(comm, &current, &plan_a, &s, &coarsening, Some(&t))
                }
                InterpKind::TwoStageExtendedI => dist_two_stage_extended_i(
                    comm,
                    &current,
                    &plan_a,
                    &s,
                    stage1.as_ref().expect("aggressive coarsening required"),
                    &coarsening,
                    cfg.strength_threshold,
                    cfg.max_row_sum,
                    Some(&t),
                    dopt.filter_interp,
                ),
            };
            times.interp += t0.elapsed();

            let t0 = Instant::now();
            let r = dist_transpose(comm, &p);
            let ra = dist_spgemm(comm, &r, &current, dopt.parallel_renumber);
            let next = dist_spgemm(comm, &ra, &p, dopt.parallel_renumber);
            times.rap += t0.elapsed();

            #[cfg(feature = "validate")]
            validate_dist_level(
                rank,
                levels.len(),
                &current,
                &p,
                &r,
                &next,
                &coarsening.is_coarse,
            );

            let t0 = Instant::now();
            let plan_p = VectorExchange::plan(comm, &p.colmap, &p.col_starts);
            let plan_r = VectorExchange::plan(comm, &r.colmap, &r.col_starts);
            let dinv = local_dinv(&current, rank);
            times.setup_etc += t0.elapsed();

            levels.push(DistLevel {
                a: current,
                p: Some(p),
                r: Some(r),
                plan_a,
                plan_p: Some(plan_p),
                plan_r: Some(plan_r),
                dinv,
                is_coarse: coarsening.is_coarse.clone(),
            });
            current = next;
        }

        // Coarsest level: gather to rank 0 and factor.
        let _scope = comm.scoped(levels.len(), CommPhase::Setup);
        #[cfg(feature = "validate")]
        enforce(
            rank,
            levels.len(),
            "coarsest operator",
            famg_check::check_parcsr(&parcsr_parts(&current, rank)),
        );
        let t0 = Instant::now();
        let coarse_starts = current.col_starts.clone();
        let n_coarse = *coarse_starts.last().unwrap();
        let coarse_lu = if n_coarse > 0 {
            // Ship local rows to rank 0 as triplets.
            let mut trips: Vec<(usize, usize, f64)> = Vec::new();
            for i in 0..current.local_rows() {
                for (c, v) in current.global_row(i, rank) {
                    trips.push((current.row_start + i, c, v));
                }
            }
            // Binomial-tree gather: P−1 messages, no empty envelopes.
            let received = comm.gather_to(0, trips, 0x81, |t| t.len() * 24);
            if let Some(parts) = received {
                let all: Vec<(usize, usize, f64)> = parts.into_iter().flatten().collect();
                let global = famg_sparse::Csr::from_triplets(n_coarse, n_coarse, all);
                LuFactor::new(&DenseMatrix::from_csr(&global))
            } else {
                None
            }
        } else {
            None
        };
        let plan_a = VectorExchange::plan(comm, &current.colmap, &current.col_starts);
        let dinv = local_dinv(&current, rank);
        let nl = current.local_rows();
        levels.push(DistLevel {
            a: current,
            p: None,
            r: None,
            plan_a,
            plan_p: None,
            plan_r: None,
            dinv,
            is_coarse: vec![false; nl],
        });
        times.setup_etc += t0.elapsed();

        DistHierarchy {
            levels,
            coarse_lu,
            coarse_starts,
            config: cfg.clone(),
            dist_opt: dopt,
            stats,
            times,
            setup_comm_time: comm.comm_time().checked_sub(comm_t0).unwrap(),
            setup_comm: CommVolume {
                bytes: comm.bytes_sent() - comm_mark.0,
                messages: comm.messages_sent() - comm_mark.1,
            },
        }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }
}

fn local_dinv(a: &ParCsr, _rank: usize) -> Vec<f64> {
    (0..a.local_rows())
        .map(|i| {
            let gi = a.row_start + i;
            let c0 = a.col_starts[crate::parcsr::owner_of(&a.col_starts, gi)];
            let d = a.diag.get(i, gi - c0).unwrap_or(0.0);
            assert!(d != 0.0, "zero diagonal at global row {gi}");
            1.0 / d
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use crate::parcsr::default_partition;
    use famg_matgen::laplace2d;

    #[test]
    fn builds_levels_and_matches_serial_grid_sizes() {
        let a = laplace2d(24, 24);
        let cfg = AmgConfig::single_node_paper();
        let serial = famg_core::Hierarchy::build(&a, &cfg);
        let starts = default_partition(576, 3);
        let (parts, _) = run_ranks(3, |c| {
            let pa = ParCsr::from_global_rows(
                &a,
                starts[c.rank()],
                starts[c.rank() + 1],
                starts.clone(),
                c.rank(),
            );
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
            (h.stats.level_rows.clone(), h.num_levels())
        });
        // PMIS is identical serial/distributed, so level sizes match.
        for (rows, _) in &parts {
            assert_eq!(rows[0], 576);
            assert_eq!(rows, &serial.stats.level_rows, "level rows diverged");
        }
    }

    #[test]
    fn aggressive_schemes_build() {
        let a = laplace2d(20, 20);
        let starts = default_partition(400, 2);
        for cfg in [AmgConfig::multi_node_mp(), AmgConfig::multi_node_2s_ei444()] {
            let (parts, _) = run_ranks(2, |c| {
                let pa = ParCsr::from_global_rows(
                    &a,
                    starts[c.rank()],
                    starts[c.rank() + 1],
                    starts.clone(),
                    c.rank(),
                );
                let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
                (h.num_levels(), h.stats.level_rows.clone())
            });
            let (nl, rows) = &parts[0];
            assert!(*nl >= 2, "{:?}", cfg.interp);
            assert!(
                rows[1] * 4 < rows[0],
                "aggressive coarsening too weak: {rows:?}"
            );
        }
    }

    #[test]
    fn renumber_flag_changes_nothing_numerically() {
        let a = laplace2d(16, 16);
        let cfg = AmgConfig::single_node_paper();
        let starts = default_partition(256, 4);
        let run = |dopt: DistOptFlags| {
            let (parts, _) = run_ranks(4, |c| {
                let pa = ParCsr::from_global_rows(
                    &a,
                    starts[c.rank()],
                    starts[c.rank() + 1],
                    starts.clone(),
                    c.rank(),
                );
                let h = DistHierarchy::build(c, pa, &cfg, dopt);
                h.stats.level_nnz.clone()
            });
            parts[0].clone()
        };
        assert_eq!(run(DistOptFlags::all()), run(DistOptFlags::none()));
    }
}

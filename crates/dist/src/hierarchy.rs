//! Distributed AMG setup phase.
//!
//! Mirrors the shared-memory hierarchy construction level by level:
//! local strength → distributed PMIS (optionally aggressive) →
//! distributed interpolation → `R = Pᵀ` kept from setup → distributed
//! Galerkin product, with the §4 knobs (parallel renumbering, remote-row
//! filtering, persistent exchange plans) selectable per run.

use crate::coarsen::{dist_aggressive_pmis, dist_pmis, DistCoarsening};
use crate::comm::{Comm, CommPhase};
use crate::halo::VectorExchange;
use crate::interp::{
    dist_direct, dist_extended_i, dist_multipass, dist_strength, dist_two_stage_extended_i,
};
use crate::parcsr::ParCsr;
use crate::spgemm::{dist_spgemm, dist_transpose, DistSpgemmPlan};
use famg_core::interp::TruncParams;
use famg_core::params::{AmgConfig, CoarsenKind, InterpKind};
use famg_core::refresh::RefreshError;
use famg_core::solver::SolveError;
use famg_core::stats::{CommVolume, PhaseTimes, SetupStats};
use famg_sparse::dense::{DenseMatrix, LuFactor};

/// Borrows one rank's ParCSR matrix as raw parts for `famg-check`.
#[cfg(feature = "validate")]
fn parcsr_parts(m: &ParCsr, rank: usize) -> famg_check::ParCsrParts<'_> {
    let (col_start, col_end) = m.col_range(rank);
    famg_check::ParCsrParts {
        row_start: m.row_start,
        row_end: m.row_end,
        col_start,
        col_end,
        global_cols: m.global_cols,
        diag: &m.diag,
        offd: &m.offd,
        colmap: &m.colmap,
    }
}

#[cfg(feature = "validate")]
fn enforce(rank: usize, level: usize, what: &str, result: famg_check::CheckResult) {
    if let Err(v) = result {
        panic!(
            "distributed hierarchy validation failed on rank {rank} at level {level} ({what}): {v}"
        );
    }
}

/// Per-rank checks at one distributed level boundary: ParCSR structural
/// invariants of the level operator, P, R and the Galerkin coarse
/// operator, plus the local interpolation identity rows. Checks that
/// need a global gather (CF independence across ranks, the Galerkin
/// cross-check) are covered by the serial validators under
/// `famg-core/validate`; PMIS and the interpolation schemes are
/// rank-count invariant, so the serial run exercises the same splitting.
#[cfg(feature = "validate")]
fn validate_dist_level(
    rank: usize,
    level: usize,
    a: &ParCsr,
    p: &ParCsr,
    r: &ParCsr,
    next: &ParCsr,
    is_coarse: &[bool],
) {
    enforce(
        rank,
        level,
        "level operator",
        famg_check::check_parcsr(&parcsr_parts(a, rank)),
    );
    enforce(
        rank,
        level,
        "interpolation",
        famg_check::check_parcsr(&parcsr_parts(p, rank)),
    );
    enforce(
        rank,
        level,
        "restriction",
        famg_check::check_parcsr(&parcsr_parts(r, rank)),
    );
    enforce(
        rank,
        level + 1,
        "coarse operator",
        famg_check::check_parcsr(&parcsr_parts(next, rank)),
    );
    // Each owned C-point interpolates only from itself with weight one.
    // Coarse points keep their owning rank, so the entry must sit in the
    // diag block and the offd row must be empty.
    for (i, &coarse) in is_coarse.iter().enumerate() {
        if !coarse {
            continue;
        }
        assert!(
            p.offd.row_nnz(i) == 0 && p.diag.row_nnz(i) == 1 && p.diag.row_vals(i) == [1.0],
            "distributed hierarchy validation failed on rank {rank} at level {level} \
             (interp C-row): local C-point {i} is not an identity row \
             (diag nnz {}, offd nnz {})",
            p.diag.row_nnz(i),
            p.offd.row_nnz(i)
        );
    }
}

/// Multi-node optimization switches (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistOptFlags {
    /// Parallel column-index renumbering (Fig. 4) instead of the
    /// ordered-set baseline.
    pub parallel_renumber: bool,
    /// Filter remote interpolation rows before sending (§4.3).
    pub filter_interp: bool,
    /// Plan halo exchanges once per operator (§4.4 persistent
    /// communication) instead of per application.
    pub persistent_comm: bool,
    /// Overlap halo exchanges with interior computation in the solve
    /// kernels (SpMV, residual, hybrid-GS half-sweeps): post the halo,
    /// compute rows with an empty `offd` row while it is in flight,
    /// finish for the boundary rows. Bitwise-neutral by construction —
    /// both modes perform identical per-row arithmetic in the same order.
    pub overlap_comm: bool,
}

impl DistOptFlags {
    /// All §4 optimizations on.
    pub const fn all() -> Self {
        DistOptFlags {
            parallel_renumber: true,
            filter_interp: true,
            persistent_comm: true,
            overlap_comm: true,
        }
    }

    /// All §4 optimizations off (multi-node baseline).
    pub const fn none() -> Self {
        DistOptFlags {
            parallel_renumber: false,
            filter_interp: false,
            persistent_comm: false,
            overlap_comm: false,
        }
    }
}

impl Default for DistOptFlags {
    /// [`DistOptFlags::all`], except that `overlap_comm` honors the
    /// `FAMG_OVERLAP_COMM` environment variable (`0`/`false`/`off`
    /// disable it) — the CI hook that runs the dist suites in both halo
    /// modes without touching every construction site.
    fn default() -> Self {
        DistOptFlags {
            overlap_comm: overlap_comm_env_default(),
            ..DistOptFlags::all()
        }
    }
}

/// Reads the `FAMG_OVERLAP_COMM` toggle (default: on).
fn overlap_comm_env_default() -> bool {
    match std::env::var("FAMG_OVERLAP_COMM") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    }
}

/// Dispatches to the configured distributed interpolation scheme.
#[allow(clippy::too_many_arguments)]
fn build_dist_interp(
    comm: &Comm,
    current: &ParCsr,
    plan_a: &VectorExchange,
    s: &ParCsr,
    stage1: Option<&DistCoarsening>,
    coarsening: &DistCoarsening,
    ikind: InterpKind,
    cfg: &AmgConfig,
    dopt: DistOptFlags,
) -> ParCsr {
    let t = TruncParams {
        factor: cfg.trunc_factor,
        max_elements: cfg.max_elements,
    };
    match ikind {
        // Classical (distance-1) falls back to direct in the
        // distributed build; the paper's multi-node schemes are
        // ei(4)/mp/2s-ei and do not exercise it.
        InterpKind::Direct | InterpKind::Classical => {
            dist_direct(comm, current, plan_a, s, coarsening, Some(&t))
        }
        InterpKind::ExtendedI => dist_extended_i(
            comm,
            current,
            plan_a,
            s,
            coarsening,
            Some(&t),
            dopt.filter_interp,
        ),
        InterpKind::Multipass => dist_multipass(comm, current, plan_a, s, coarsening, Some(&t)),
        InterpKind::TwoStageExtendedI => dist_two_stage_extended_i(
            comm,
            current,
            plan_a,
            s,
            stage1.expect("aggressive coarsening required"),
            coarsening,
            cfg.strength_threshold,
            cfg.max_row_sum,
            Some(&t),
            dopt.filter_interp,
        ),
    }
}

/// Everything pattern-derived about one distributed level, captured at
/// build time by [`DistHierarchy::build_frozen`]. Mirrors the serial
/// `FrozenLevel`: the strength matrix is kept for its *pattern* only (the
/// distributed interpolation builders read columns, never values), the
/// coarsenings pin the CF splitting and global coarse numbering, and the
/// two [`DistSpgemmPlan`]s freeze the Galerkin product's gather
/// geometry, renumbering, and result structure.
pub struct DistFrozenLevel {
    /// Strength matrix (pattern authoritative, values freeze-time stale).
    s: ParCsr,
    /// First-stage coarsening for the aggressive schemes.
    stage1: Option<DistCoarsening>,
    /// Final coarsening (CF marker + global coarse numbering).
    coarsening: DistCoarsening,
    /// Frozen interpolation pattern; refresh verifies the rebuilt
    /// operator lands exactly on it.
    p: ParCsr,
    /// Frozen symbolic product for `RA = R · A`.
    plan_ra: DistSpgemmPlan,
    /// Frozen symbolic product for `A_c = RA · P`.
    plan_rap: DistSpgemmPlan,
}

/// Pattern-derived distributed setup state (one rank's share), captured
/// by [`DistHierarchy::build_frozen`] and consumed by
/// [`DistHierarchy::refresh`].
pub struct DistFrozenSetup {
    /// Finest-level operator structure, for the input-pattern guard.
    fine: ParCsr,
    /// Per-level frozen structure (one entry per non-coarsest level).
    levels: Vec<DistFrozenLevel>,
}

/// One distributed multigrid level.
pub struct DistLevel {
    /// The level operator.
    pub a: ParCsr,
    /// Interpolation to this level from the next coarser (`None` at the
    /// coarsest level).
    pub p: Option<ParCsr>,
    /// `Pᵀ`, kept from setup.
    pub r: Option<ParCsr>,
    /// Halo plan for `a` (smoothing, residuals).
    pub plan_a: VectorExchange,
    /// Halo plan for prolongation (`p`'s colmap over coarse vectors).
    pub plan_p: Option<VectorExchange>,
    /// Halo plan for restriction (`r`'s colmap over fine vectors).
    pub plan_r: Option<VectorExchange>,
    /// Reciprocal diagonal.
    pub dinv: Vec<f64>,
    /// Local C/F marker (C-F relaxation ordering).
    pub is_coarse: Vec<bool>,
}

impl DistLevel {
    /// The transfer operators and halo plans to the next coarser level:
    /// `(P, plan_P, R, plan_R)`. `None` when *any* of the four is absent
    /// — which a well-formed hierarchy only exhibits at the coarsest
    /// level (enforced by [`DistHierarchy::check_shape`]).
    pub fn transfers(&self) -> Option<(&ParCsr, &VectorExchange, &ParCsr, &VectorExchange)> {
        match (&self.p, &self.plan_p, &self.r, &self.plan_r) {
            (Some(p), Some(plan_p), Some(r), Some(plan_r)) => Some((p, plan_p, r, plan_r)),
            _ => None,
        }
    }
}

/// The distributed hierarchy owned by one rank.
pub struct DistHierarchy {
    /// Levels, finest first.
    pub levels: Vec<DistLevel>,
    /// Coarsest-level dense factorization, held by rank 0.
    pub coarse_lu: Option<LuFactor>,
    /// Coarsest-level row partition (for the gather/scatter solve).
    pub coarse_starts: Vec<usize>,
    /// Solver configuration.
    pub config: AmgConfig,
    /// §4 optimization flags the hierarchy was built with.
    pub dist_opt: DistOptFlags,
    /// Per-level sizes (global).
    pub stats: SetupStats,
    /// Setup timing (this rank), derived from the span tree in `profile`.
    pub times: PhaseTimes,
    /// Wall time blocked in communication during setup (this rank).
    pub setup_comm_time: std::time::Duration,
    /// Bytes/messages this rank sent during setup.
    pub setup_comm: CommVolume,
    /// Hierarchical span profile of the setup phase (this rank).
    pub profile: famg_prof::Profile,
}

impl DistHierarchy {
    /// Runs the distributed setup phase.
    pub fn build(comm: &Comm, a: ParCsr, cfg: &AmgConfig, dopt: DistOptFlags) -> DistHierarchy {
        Self::build_impl(comm, a, cfg, dopt, None)
    }

    /// Runs the distributed setup phase and captures the pattern-derived
    /// structure for later numeric-only refreshes.
    pub fn build_frozen(
        comm: &Comm,
        a: ParCsr,
        cfg: &AmgConfig,
        dopt: DistOptFlags,
    ) -> (DistHierarchy, DistFrozenSetup) {
        let fine = a.clone();
        let mut cap = Vec::new();
        let h = Self::build_impl(comm, a, cfg, dopt, Some(&mut cap));
        (h, DistFrozenSetup { fine, levels: cap })
    }

    fn build_impl(
        comm: &Comm,
        a: ParCsr,
        cfg: &AmgConfig,
        dopt: DistOptFlags,
        mut capture: Option<&mut Vec<DistFrozenLevel>>,
    ) -> DistHierarchy {
        let rank = comm.rank();
        let mut stats = SetupStats::default();
        let comm_t0 = comm.comm_time();
        let comm_mark = (comm.bytes_sent(), comm.messages_sent());
        let root_span = famg_prof::scope("setup");
        let mut levels: Vec<DistLevel> = Vec::new();
        let mut current = a;

        loop {
            // Attribute this level's setup traffic (coarsening, interp,
            // RAP, plans) to (level, Setup).
            let _scope = comm.scoped(levels.len(), CommPhase::Setup);
            let n_global = *current.col_starts.last().unwrap();
            stats.level_rows.push(n_global);
            stats
                .level_nnz
                .push(comm.allreduce_sum_usize(current.local_nnz(), 0x80));
            let at_capacity = levels.len() + 1 >= cfg.max_levels;
            if n_global <= cfg.coarse_solve_size || at_capacity {
                break;
            }

            let lvl_idx = levels.len();
            let strength_span = famg_prof::scope_at("strength", lvl_idx);
            let s = dist_strength(&current, cfg.strength_threshold, cfg.max_row_sum, rank);
            drop(strength_span);
            let coarsen_span = famg_prof::scope_at("coarsen", lvl_idx);
            let (ckind, ikind) = cfg.level_scheme(lvl_idx);
            let seed = cfg.seed.wrapping_add(lvl_idx as u64);
            let (stage1, coarsening): (Option<DistCoarsening>, DistCoarsening) = match ckind {
                CoarsenKind::Pmis => (None, dist_pmis(comm, &s, seed, None)),
                CoarsenKind::AggressivePmis => {
                    let (f, fin) = dist_aggressive_pmis(comm, &s, seed);
                    (Some(f), fin)
                }
            };
            drop(coarsen_span);
            if coarsening.ncoarse_global == 0 || coarsening.ncoarse_global == n_global {
                break;
            }

            // The level's persistent halo plan, built up front so the
            // interpolation schemes reuse it for their C/F code exchange
            // instead of re-planning `current`'s colmap.
            let plan_span = famg_prof::scope_at("halo_plan", lvl_idx);
            let plan_a = VectorExchange::plan(comm, &current.colmap, &current.col_starts);
            drop(plan_span);

            let interp_span = famg_prof::scope_at("interp", lvl_idx);
            let p = build_dist_interp(
                comm,
                &current,
                &plan_a,
                &s,
                stage1.as_ref(),
                &coarsening,
                ikind,
                cfg,
                dopt,
            );
            drop(interp_span);

            let rap_span = famg_prof::scope_at("rap", lvl_idx);
            let r = dist_transpose(comm, &p);
            let (next, plans) = if capture.is_some() {
                // Freeze the Galerkin product structure while computing
                // it; `plan.c` is bitwise identical to `dist_spgemm`'s
                // result.
                let plan_ra = DistSpgemmPlan::new(comm, &r, &current, dopt.parallel_renumber);
                let plan_rap = DistSpgemmPlan::new(comm, &plan_ra.c, &p, dopt.parallel_renumber);
                let next = plan_rap.c.clone();
                (next, Some((plan_ra, plan_rap)))
            } else {
                let ra = dist_spgemm(comm, &r, &current, dopt.parallel_renumber);
                (dist_spgemm(comm, &ra, &p, dopt.parallel_renumber), None)
            };
            drop(rap_span);

            #[cfg(feature = "validate")]
            validate_dist_level(
                rank,
                levels.len(),
                &current,
                &p,
                &r,
                &next,
                &coarsening.is_coarse,
            );

            let plan_span = famg_prof::scope_at("halo_plan", lvl_idx);
            let plan_p = VectorExchange::plan(comm, &p.colmap, &p.col_starts);
            let plan_r = VectorExchange::plan(comm, &r.colmap, &r.col_starts);
            let dinv = local_dinv(&current, rank);
            drop(plan_span);

            if let Some(cap) = capture.as_deref_mut() {
                let (plan_ra, plan_rap) = plans.expect("capture always builds plans");
                cap.push(DistFrozenLevel {
                    s,
                    stage1,
                    coarsening: coarsening.clone(),
                    p: p.clone(),
                    plan_ra,
                    plan_rap,
                });
            }

            levels.push(DistLevel {
                a: current,
                p: Some(p),
                r: Some(r),
                plan_a,
                plan_p: Some(plan_p),
                plan_r: Some(plan_r),
                dinv,
                is_coarse: coarsening.is_coarse.clone(),
            });
            current = next;
        }

        // Coarsest level: gather to rank 0 and factor.
        let _scope = comm.scoped(levels.len(), CommPhase::Setup);
        #[cfg(feature = "validate")]
        enforce(
            rank,
            levels.len(),
            "coarsest operator",
            famg_check::check_parcsr(&parcsr_parts(&current, rank)),
        );
        let coarse_span = famg_prof::scope_at("coarse", levels.len());
        let coarse_starts = current.col_starts.clone();
        let coarse_lu = factor_coarsest(comm, &current, rank);
        let plan_a = VectorExchange::plan(comm, &current.colmap, &current.col_starts);
        let dinv = local_dinv(&current, rank);
        let nl = current.local_rows();
        levels.push(DistLevel {
            a: current,
            p: None,
            r: None,
            plan_a,
            plan_p: None,
            plan_r: None,
            dinv,
            is_coarse: vec![false; nl],
        });
        drop(coarse_span);

        drop(root_span);
        let profile = famg_prof::take();
        let times = profile
            .find_root("setup")
            .map(PhaseTimes::from_span)
            .unwrap_or_default();

        DistHierarchy {
            levels,
            coarse_lu,
            coarse_starts,
            config: cfg.clone(),
            dist_opt: dopt,
            stats,
            times,
            setup_comm_time: comm.comm_time_since(comm_t0),
            setup_comm: CommVolume {
                bytes: comm.bytes_sent() - comm_mark.0,
                messages: comm.messages_sent() - comm_mark.1,
            },
            profile,
        }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Validates the structural invariants this rank's solve path relies
    /// on: transfer operators and halo plans present exactly below the
    /// coarsest level, and per-level vector/operator sizes consistent.
    /// `DistHierarchy::build` always satisfies these; the check exists so
    /// the `try_*` solve entry points can reject a hand-assembled or
    /// corrupted hierarchy with a typed error instead of panicking deep
    /// inside a V-cycle.
    pub fn check_shape(&self) -> Result<(), SolveError> {
        if self.levels.is_empty() {
            return Err(SolveError::MalformedHierarchy {
                level: 0,
                what: "hierarchy has no levels",
            });
        }
        for (i, lvl) in self.levels.iter().enumerate() {
            let coarsest = i + 1 == self.levels.len();
            let n = lvl.a.local_rows();
            if lvl.dinv.len() != n {
                return Err(SolveError::MalformedHierarchy {
                    level: i,
                    what: "reciprocal-diagonal length differs from the local row count",
                });
            }
            if lvl.is_coarse.len() != n {
                return Err(SolveError::MalformedHierarchy {
                    level: i,
                    what: "C/F marker length differs from the local row count",
                });
            }
            if coarsest {
                if lvl.p.is_some()
                    || lvl.r.is_some()
                    || lvl.plan_p.is_some()
                    || lvl.plan_r.is_some()
                {
                    return Err(SolveError::MalformedHierarchy {
                        level: i,
                        what: "coarsest level carries transfer operators",
                    });
                }
            } else {
                let Some((p, _, r, _)) = lvl.transfers() else {
                    return Err(SolveError::MalformedHierarchy {
                        level: i,
                        what: "non-coarsest level is missing transfer operators or halo plans",
                    });
                };
                let nc = self.levels[i + 1].a.local_rows();
                if p.local_rows() != n {
                    return Err(SolveError::MalformedHierarchy {
                        level: i,
                        what: "interpolation local row count differs from the level's",
                    });
                }
                if r.local_rows() != nc {
                    return Err(SolveError::MalformedHierarchy {
                        level: i,
                        what: "restriction local row count differs from the next coarser level's",
                    });
                }
            }
        }
        Ok(())
    }

    /// Absorbs a same-pattern operator: re-runs only the value-derived
    /// distributed setup stages over `frozen`'s pattern-derived
    /// structure. Strength, PMIS, halo planning, renumbering, and
    /// symbolic SpGEMM are all skipped; the Galerkin products run as
    /// branch-free numeric passes with values-only halo traffic.
    ///
    /// The pattern guards are agreed collectively (a mismatch on *any*
    /// rank rejects the refresh on *all* ranks, keeping the ranks in
    /// lockstep), and the hierarchy is left untouched on error.
    pub fn refresh(
        &mut self,
        comm: &Comm,
        a: ParCsr,
        frozen: &mut DistFrozenSetup,
    ) -> Result<(), RefreshError> {
        let agree = |ok: bool, tag: u64| comm.allreduce_sum_usize(usize::from(!ok), tag) == 0;
        if !agree(
            frozen.fine.same_pattern(&a) && frozen.levels.len() + 1 == self.levels.len(),
            0x90,
        ) {
            return Err(RefreshError::PatternMismatch {
                level: 0,
                what: "finest operator",
            });
        }
        let root_span = famg_prof::scope("refresh");
        let built = self.refresh_levels(comm, a, frozen);
        // Close and capture the span tree on both the success and error
        // paths, so a rejected refresh cannot leak completed spans into
        // the next capture.
        drop(root_span);
        let profile = famg_prof::take();
        let (levels, coarse_lu) = built?;

        // Commit only now that every level succeeded.
        self.levels = levels;
        self.coarse_lu = coarse_lu;
        self.times = profile
            .find_root("refresh")
            .map(PhaseTimes::from_span)
            .unwrap_or_default();
        self.profile = profile;
        Ok(())
    }

    /// The fallible middle of [`DistHierarchy::refresh`], split out so
    /// the caller can close the root profiler span on every exit path.
    fn refresh_levels(
        &self,
        comm: &Comm,
        a: ParCsr,
        frozen: &mut DistFrozenSetup,
    ) -> Result<(Vec<DistLevel>, Option<LuFactor>), RefreshError> {
        let rank = comm.rank();
        let agree = |ok: bool, tag: u64| comm.allreduce_sum_usize(usize::from(!ok), tag) == 0;
        let cfg = self.config.clone();
        let dopt = self.dist_opt;
        let mut levels: Vec<DistLevel> = Vec::with_capacity(self.levels.len());
        let mut current = a;

        for (idx, fl) in frozen.levels.iter_mut().enumerate() {
            let _scope = comm.scoped(idx, CommPhase::Setup);
            let (_, ikind) = cfg.level_scheme(idx);
            // The level's halo plan depends only on the frozen colmap.
            let plan_a = self.levels[idx].plan_a.clone();

            let interp_span = famg_prof::scope_at("interp", idx);
            let p = build_dist_interp(
                comm,
                &current,
                &plan_a,
                &fl.s,
                fl.stage1.as_ref(),
                &fl.coarsening,
                ikind,
                &cfg,
                dopt,
            );
            drop(interp_span);
            if !agree(p.same_pattern(&fl.p), 0x91) {
                return Err(RefreshError::PatternMismatch {
                    level: idx,
                    what: "interpolation operator",
                });
            }

            let rap_span = famg_prof::scope_at("rap", idx);
            let r = dist_transpose(comm, &p);
            fl.plan_ra.execute(comm, &r, &current);
            let (plan_ra, plan_rap) = (&mut fl.plan_ra, &mut fl.plan_rap);
            plan_rap.execute(comm, &plan_ra.c, &p);
            let next = plan_rap.c.clone();
            drop(rap_span);

            let plan_span = famg_prof::scope_at("halo_plan", idx);
            let plan_p = self.levels[idx].plan_p.clone();
            let plan_r = self.levels[idx].plan_r.clone();
            let dinv = local_dinv(&current, rank);
            drop(plan_span);

            levels.push(DistLevel {
                a: current,
                p: Some(p),
                r: Some(r),
                plan_a,
                plan_p,
                plan_r,
                dinv,
                is_coarse: fl.coarsening.is_coarse.clone(),
            });
            current = next;
        }

        // Coarsest level: re-gather and re-factor over the new values.
        let _scope = comm.scoped(levels.len(), CommPhase::Setup);
        let coarse_span = famg_prof::scope_at("coarse", levels.len());
        let coarse_lu = factor_coarsest(comm, &current, rank);
        let plan_a = self
            .levels
            .last()
            .expect("hierarchy has at least one level")
            .plan_a
            .clone();
        let dinv = local_dinv(&current, rank);
        let nl = current.local_rows();
        levels.push(DistLevel {
            a: current,
            p: None,
            r: None,
            plan_a,
            plan_p: None,
            plan_r: None,
            dinv,
            is_coarse: vec![false; nl],
        });
        drop(coarse_span);
        Ok((levels, coarse_lu))
    }
}

/// Gathers the coarsest operator to rank 0 and densely factors it
/// (returns `None` on every other rank, and everywhere when the operator
/// is empty).
fn factor_coarsest(comm: &Comm, current: &ParCsr, rank: usize) -> Option<LuFactor> {
    let n_coarse = *current.col_starts.last().unwrap();
    if n_coarse == 0 {
        return None;
    }
    // Ship local rows to rank 0 as triplets.
    let mut trips: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..current.local_rows() {
        for (c, v) in current.global_row(i, rank) {
            trips.push((current.row_start + i, c, v));
        }
    }
    // Binomial-tree gather: P−1 messages, no empty envelopes.
    let received = comm.gather_to(0, trips, 0x81, |t| t.len() * 24);
    received.and_then(|parts| {
        let all: Vec<(usize, usize, f64)> = parts.into_iter().flatten().collect();
        let global = famg_sparse::Csr::from_triplets(n_coarse, n_coarse, all);
        LuFactor::new(&DenseMatrix::from_csr(&global))
    })
}

fn local_dinv(a: &ParCsr, _rank: usize) -> Vec<f64> {
    (0..a.local_rows())
        .map(|i| {
            let gi = a.row_start + i;
            let c0 = a.col_starts[crate::parcsr::owner_of(&a.col_starts, gi)];
            let d = a.diag.get(i, gi - c0).unwrap_or(0.0);
            assert!(d != 0.0, "zero diagonal at global row {gi}");
            1.0 / d
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use crate::parcsr::default_partition;
    use famg_matgen::laplace2d;

    #[test]
    fn builds_levels_and_matches_serial_grid_sizes() {
        let a = laplace2d(24, 24);
        let cfg = AmgConfig::single_node_paper();
        let serial = famg_core::Hierarchy::build(&a, &cfg);
        let starts = default_partition(576, 3);
        let (parts, _) = run_ranks(3, |c| {
            let pa = ParCsr::from_global_rows(
                &a,
                starts[c.rank()],
                starts[c.rank() + 1],
                starts.clone(),
                c.rank(),
            );
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
            (h.stats.level_rows.clone(), h.num_levels())
        });
        // PMIS is identical serial/distributed, so level sizes match.
        for (rows, _) in &parts {
            assert_eq!(rows[0], 576);
            assert_eq!(rows, &serial.stats.level_rows, "level rows diverged");
        }
    }

    #[test]
    fn aggressive_schemes_build() {
        let a = laplace2d(20, 20);
        let starts = default_partition(400, 2);
        for cfg in [AmgConfig::multi_node_mp(), AmgConfig::multi_node_2s_ei444()] {
            let (parts, _) = run_ranks(2, |c| {
                let pa = ParCsr::from_global_rows(
                    &a,
                    starts[c.rank()],
                    starts[c.rank() + 1],
                    starts.clone(),
                    c.rank(),
                );
                let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
                (h.num_levels(), h.stats.level_rows.clone())
            });
            let (nl, rows) = &parts[0];
            assert!(*nl >= 2, "{:?}", cfg.interp);
            assert!(
                rows[1] * 4 < rows[0],
                "aggressive coarsening too weak: {rows:?}"
            );
        }
    }

    #[test]
    fn dist_refresh_matches_full_rebuild_bitwise() {
        use famg_matgen::varcoef3d_7pt;
        let (nx, ny, nz) = (8, 8, 4);
        let field = |shift: f64| -> Vec<f64> {
            (0..nx * ny * nz)
                .map(|i| {
                    let x = (i % nx) as f64 / nx as f64;
                    let t = (i / nx) as f64 / ((ny * nz) as f64);
                    let base = 1.0 + 0.5 * (6.0 * (x + t)).sin().powi(2);
                    base * (1.0 + 1e-5 * shift * (9.0 * (x - t)).cos())
                })
                .collect()
        };
        let a1 = varcoef3d_7pt(nx, ny, nz, &field(0.0));
        let a2 = varcoef3d_7pt(nx, ny, nz, &field(0.7));
        assert!(a1.same_pattern(&a2));
        let n = a1.nrows();
        let starts = default_partition(n, 3);
        for cfg in [
            AmgConfig::single_node_paper(),
            AmgConfig::multi_node_2s_ei444(),
        ] {
            let (oks, _) = run_ranks(3, |c| {
                let rk = c.rank();
                let split = |m: &famg_sparse::Csr| {
                    ParCsr::from_global_rows(m, starts[rk], starts[rk + 1], starts.clone(), rk)
                };
                let (mut h, mut frozen) =
                    DistHierarchy::build_frozen(c, split(&a1), &cfg, DistOptFlags::all());
                h.refresh(c, split(&a2), &mut frozen).unwrap();
                let full = DistHierarchy::build(c, split(&a2), &cfg, DistOptFlags::all());
                assert_eq!(h.num_levels(), full.num_levels());
                for (lvl, (r, f)) in h.levels.iter().zip(&full.levels).enumerate() {
                    assert_eq!(r.a.diag, f.a.diag, "diag differs at level {lvl}");
                    assert_eq!(r.a.offd, f.a.offd, "offd differs at level {lvl}");
                    assert_eq!(r.a.colmap, f.a.colmap, "colmap differs at level {lvl}");
                    assert_eq!(r.dinv, f.dinv, "dinv differs at level {lvl}");
                    match (&r.p, &f.p) {
                        (None, None) => {}
                        (Some(rp), Some(fp)) => {
                            assert_eq!(rp.diag, fp.diag, "P diag differs at level {lvl}");
                            assert_eq!(rp.offd, fp.offd, "P offd differs at level {lvl}");
                        }
                        _ => panic!("transfer presence differs at level {lvl}"),
                    }
                }
                true
            });
            assert!(oks.into_iter().all(|x| x), "{:?}", cfg.interp);
        }
    }

    #[test]
    fn dist_refresh_rejects_mismatched_pattern() {
        let a = laplace2d(12, 12);
        let cfg = AmgConfig::single_node_paper();
        let starts = default_partition(144, 2);
        let (oks, _) = run_ranks(2, |c| {
            let rk = c.rank();
            let split = |m: &famg_sparse::Csr| {
                ParCsr::from_global_rows(m, starts[rk], starts[rk + 1], starts.clone(), rk)
            };
            let (mut h, mut frozen) =
                DistHierarchy::build_frozen(c, split(&a), &cfg, DistOptFlags::all());
            let before: Vec<famg_sparse::Csr> = h.levels.iter().map(|l| l.a.diag.clone()).collect();
            let other = famg_sparse::Csr::identity(144);
            let err = h.refresh(c, split(&other), &mut frozen).unwrap_err();
            assert!(matches!(
                err,
                famg_core::RefreshError::PatternMismatch { level: 0, .. }
            ));
            for (now, then) in h.levels.iter().zip(&before) {
                assert_eq!(&now.a.diag, then, "failed refresh must not corrupt state");
            }
            // Still refreshes fine with the original operator.
            h.refresh(c, split(&a), &mut frozen).unwrap();
            true
        });
        assert!(oks.into_iter().all(|x| x));
    }

    #[test]
    fn renumber_flag_changes_nothing_numerically() {
        let a = laplace2d(16, 16);
        let cfg = AmgConfig::single_node_paper();
        let starts = default_partition(256, 4);
        let run = |dopt: DistOptFlags| {
            let (parts, _) = run_ranks(4, |c| {
                let pa = ParCsr::from_global_rows(
                    &a,
                    starts[c.rank()],
                    starts[c.rank() + 1],
                    starts.clone(),
                    c.rank(),
                );
                let h = DistHierarchy::build(c, pa, &cfg, dopt);
                h.stats.level_nnz.clone()
            });
            parts[0].clone()
        };
        assert_eq!(run(DistOptFlags::all()), run(DistOptFlags::none()));
    }
}

//! Distributed PMIS coarsening and its aggressive second pass.
//!
//! The same round-based MIS as the shared-memory version, with neighbour
//! state/measure obtained through halo exchanges. Random weights are the
//! counter-based generator keyed on *global* point indices, so the C/F
//! splitting is identical for every rank count — which lets the tests
//! compare the distributed result bitwise against `famg_core::coarsen`.

use crate::comm::Comm;
use crate::halo::{fetch_values, gather_rows, VectorExchange};
use crate::parcsr::ParCsr;
use crate::spgemm::dist_transpose;
use famg_core::rng::uniform01;

/// One rank's share of a C/F splitting.
#[derive(Debug, Clone)]
pub struct DistCoarsening {
    /// Local C/F marker (index = local row).
    pub is_coarse: Vec<bool>,
    /// Exclusive prefix counts of local C-points (O(1) coarse indices).
    prefix: Vec<usize>,
    /// Number of local C-points.
    pub ncoarse_local: usize,
    /// Global coarse numbering offset of this rank (C-points of rank r
    /// get global coarse indices `coarse_start .. coarse_start + n_c`).
    pub coarse_start: usize,
    /// Global number of C-points.
    pub ncoarse_global: usize,
}

impl DistCoarsening {
    /// Builds the numbering from a local marker (one exscan collective).
    pub fn from_marker(comm: &Comm, is_coarse: Vec<bool>, tag: u64) -> Self {
        let mut prefix = Vec::with_capacity(is_coarse.len());
        let mut acc = 0usize;
        for &c in &is_coarse {
            prefix.push(acc);
            acc += usize::from(c);
        }
        let (coarse_start, ncoarse_global) = comm.exscan_sum(acc, tag);
        DistCoarsening {
            is_coarse,
            prefix,
            ncoarse_local: acc,
            coarse_start,
            ncoarse_global,
        }
    }

    /// Global coarse index of local point `i` (must be coarse).
    pub fn coarse_index(&self, i: usize) -> usize {
        debug_assert!(self.is_coarse[i]);
        self.coarse_start + self.prefix[i]
    }

    /// The coarse-row partition induced by this splitting.
    pub fn coarse_starts(&self, comm: &Comm) -> Vec<usize> {
        let mut s = comm.allgather(self.coarse_start, 0x60, 8);
        s.push(self.ncoarse_global);
        s
    }
}

const UNDECIDED: f64 = 0.0;
const COARSE: f64 = 1.0;
const FINE: f64 = 2.0;

/// Distributed PMIS over a distributed strength matrix (square
/// partition). `active` masks the candidate set (used by the aggressive
/// second pass); inactive points are fine from the start. `index_of`
/// maps local points to the global indices used for the random weights.
pub fn dist_pmis(comm: &Comm, s: &ParCsr, seed: u64, active: Option<&[bool]>) -> DistCoarsening {
    let nl = s.local_rows();
    let st = dist_transpose(comm, s);
    assert_eq!(st.local_rows(), nl, "PMIS needs a square partition");

    // Measures: |Sᵀ_i| + rand(global index).
    let measure: Vec<f64> = (0..nl)
        .map(|i| {
            st.diag.row_nnz(i) as f64
                + st.offd.row_nnz(i) as f64
                + uniform01(seed, (s.row_start + i) as u64)
        })
        .collect();
    let mut state: Vec<f64> = (0..nl)
        .map(|i| {
            let inactive = active.is_some_and(|a| !a[i]);
            if inactive || st.diag.row_nnz(i) + st.offd.row_nnz(i) == 0 {
                FINE
            } else {
                UNDECIDED
            }
        })
        .collect();

    // Halo plans over both neighbour directions.
    let plan_s = VectorExchange::plan(comm, &s.colmap, &s.col_starts);
    let plan_st = VectorExchange::plan(comm, &st.colmap, &st.col_starts);
    let measure_ext_s = plan_s.exchange(comm, &measure);
    let measure_ext_st = plan_st.exchange(comm, &measure);

    loop {
        let state_ext_s = plan_s.exchange(comm, &state);
        let state_ext_st = plan_st.exchange(comm, &state);
        // Selection round.
        let mut selected = Vec::new();
        for i in 0..nl {
            if state[i] != UNDECIDED {
                continue;
            }
            let m = measure[i];
            let win_local = |j: usize| state[j] != UNDECIDED || m > measure[j];
            let wins = s.diag.row_cols(i).iter().all(|&j| win_local(j))
                && st.diag.row_cols(i).iter().all(|&j| win_local(j))
                && s.offd
                    .row_cols(i)
                    .iter()
                    .all(|&k| state_ext_s[k] != UNDECIDED || m > measure_ext_s[k])
                && st
                    .offd
                    .row_cols(i)
                    .iter()
                    .all(|&k| state_ext_st[k] != UNDECIDED || m > measure_ext_st[k]);
            if wins {
                selected.push(i);
            }
        }
        for &i in &selected {
            state[i] = COARSE;
        }
        // Demotion round: undecided points depending on a C-point.
        let state_ext_s = plan_s.exchange(comm, &state);
        for i in 0..nl {
            if state[i] != UNDECIDED {
                continue;
            }
            let dep_coarse = s.diag.row_cols(i).iter().any(|&j| state[j] == COARSE)
                || s.offd.row_cols(i).iter().any(|&k| state_ext_s[k] == COARSE);
            if dep_coarse {
                state[i] = FINE;
            }
        }
        let undecided = state.contains(&UNDECIDED);
        if !comm.allreduce_or(undecided, 0x61) {
            break;
        }
    }

    let is_coarse: Vec<bool> = state.iter().map(|&st| st == COARSE).collect();
    DistCoarsening::from_marker(comm, is_coarse, 0x62)
}

/// Distributed aggressive coarsening: PMIS, then PMIS again over the
/// distance-≤2 strength graph among the first pass's C-points (compact
/// coarse numbering, so the weights match the shared-memory version).
/// Returns `(stage1, final)`.
pub fn dist_aggressive_pmis(
    comm: &Comm,
    s: &ParCsr,
    seed: u64,
) -> (DistCoarsening, DistCoarsening) {
    let rank = comm.rank();
    let first = dist_pmis(comm, s, seed, None);
    let nl = s.local_rows();

    // Gather full remote S rows for the halo (distance-2 reach).
    let gathered = gather_rows(
        comm,
        &s.colmap,
        &s.col_starts,
        |li| s.global_row(li, rank),
        |_, _, _, _| true,
    );
    // C/F state + compact coarse index for every global point we touch:
    // own points, the halo, and the columns of gathered rows.
    let mut extended: Vec<usize> = s
        .colmap
        .iter()
        .copied()
        .chain(gathered.data.iter().flat_map(|r| r.iter().map(|&(c, _)| c)))
        .collect();
    extended.sort_unstable();
    extended.dedup();
    // Encode (is_coarse, compact index) as f64: fine -> -1, coarse -> idx.
    let code = |dc: &DistCoarsening, li: usize| -> f64 {
        if dc.is_coarse[li] {
            dc.coarse_index(li) as f64
        } else {
            -1.0
        }
    };
    let codes_ext = fetch_values(comm, &extended, &s.col_starts, |li| code(&first, li));
    let code_of = |g: usize| -> f64 {
        if g >= s.row_start && g < s.row_end {
            code(&first, g - s.row_start)
        } else {
            codes_ext[extended.binary_search(&g).unwrap()]
        }
    };

    // Build S2 rows (compact coarse space) for local C-points.
    let coarse_starts = first.coarse_starts(comm);
    let nc_local = first.ncoarse_local;
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nc_local];
    let mut local_coarse = 0usize;
    for i in 0..nl {
        if !first.is_coarse[i] {
            continue;
        }
        let me = first.coarse_index(i);
        let mut cols: Vec<usize> = Vec::new();
        let push = |g: usize, cols: &mut Vec<usize>| {
            let c = code_of(g);
            if c >= 0.0 && c as usize != me {
                cols.push(c as usize);
            }
        };
        let row_of = |g: usize| -> Vec<usize> {
            if g >= s.row_start && g < s.row_end {
                s.global_row(g - s.row_start, rank)
                    .into_iter()
                    .map(|(c, _)| c)
                    .collect()
            } else {
                gathered
                    .get(g)
                    .map(|r| r.iter().map(|&(c, _)| c).collect())
                    .unwrap_or_default()
            }
        };
        for (j, _) in s.global_row(i, rank) {
            push(j, &mut cols);
            for k in row_of(j) {
                push(k, &mut cols);
            }
        }
        cols.sort_unstable();
        cols.dedup();
        rows[local_coarse] = cols.into_iter().map(|c| (c, 1.0)).collect();
        local_coarse += 1;
    }
    let s2 = ParCsr::from_local_rows_global_cols(
        coarse_starts[rank],
        coarse_starts[rank + 1],
        first.ncoarse_global,
        coarse_starts.clone(),
        rank,
        &rows,
    );
    let second = dist_pmis(comm, &s2, seed.wrapping_add(1), None);
    // Map back to point space.
    let mut is_coarse = vec![false; nl];
    let mut ci = 0usize;
    for i in 0..nl {
        if first.is_coarse[i] {
            if second.is_coarse[ci] {
                is_coarse[i] = true;
            }
            ci += 1;
        }
    }
    let fin = DistCoarsening::from_marker(comm, is_coarse, 0x63);
    (first, fin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use crate::parcsr::default_partition;
    use famg_core::coarsen::{aggressive_pmis_stages, pmis};
    use famg_core::strength::strength;
    use famg_matgen::laplace2d;

    fn dist_strength_parts(
        a: &famg_sparse::Csr,
        thr: f64,
        mrs: f64,
        starts: &[usize],
        r: usize,
    ) -> ParCsr {
        // Strength is row-local: compute globally and slice (the dist
        // hierarchy computes it locally; this helper is for tests).
        let s = strength(a, thr, mrs);
        ParCsr::from_global_rows(&s, starts[r], starts[r + 1], starts.to_vec(), r)
    }

    #[test]
    fn dist_pmis_matches_serial_for_any_rank_count() {
        let a = laplace2d(12, 12);
        let s = strength(&a, 0.25, 0.8);
        let serial = pmis(&s, 42);
        for nranks in [1usize, 2, 3, 5] {
            let starts = default_partition(144, nranks);
            let (parts, _) = run_ranks(nranks, |c| {
                let ps = dist_strength_parts(&a, 0.25, 0.8, &starts, c.rank());
                dist_pmis(c, &ps, 42, None)
            });
            let mut combined = Vec::new();
            for p in &parts {
                combined.extend_from_slice(&p.is_coarse);
            }
            assert_eq!(combined, serial.is_coarse, "nranks {nranks}");
            assert_eq!(parts[0].ncoarse_global, serial.ncoarse);
        }
    }

    #[test]
    fn coarse_numbering_is_a_partition() {
        let a = laplace2d(10, 10);
        let starts = default_partition(100, 4);
        let (parts, _) = run_ranks(4, |c| {
            let ps = dist_strength_parts(&a, 0.25, 0.8, &starts, c.rank());
            let dc = dist_pmis(c, &ps, 7, None);
            let idx: Vec<usize> = (0..ps.local_rows())
                .filter(|&i| dc.is_coarse[i])
                .map(|i| dc.coarse_index(i))
                .collect();
            (dc.coarse_start, idx, dc.ncoarse_global)
        });
        let mut all: Vec<usize> = Vec::new();
        for (_, idx, _) in &parts {
            all.extend_from_slice(idx);
        }
        all.sort_unstable();
        let total = parts[0].2;
        assert_eq!(all, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn active_mask_restricts_candidates() {
        let a = laplace2d(8, 8);
        let starts = default_partition(64, 2);
        let (parts, _) = run_ranks(2, |c| {
            let ps = dist_strength_parts(&a, 0.25, 0.8, &starts, c.rank());
            // Only even global points may become coarse.
            let active: Vec<bool> = (starts[c.rank()]..starts[c.rank() + 1])
                .map(|g| g % 2 == 0)
                .collect();
            let dc = dist_pmis(c, &ps, 3, Some(&active));
            (active, dc.is_coarse)
        });
        for (active, is_coarse) in parts {
            for (a, c) in active.iter().zip(&is_coarse) {
                assert!(*a || !*c, "inactive point became coarse");
            }
        }
    }

    #[test]
    fn dist_aggressive_matches_serial() {
        let a = laplace2d(14, 14);
        let s = strength(&a, 0.25, 0.8);
        let (serial_first, serial_final) = aggressive_pmis_stages(&s, 11);
        let starts = default_partition(196, 3);
        let (parts, _) = run_ranks(3, |c| {
            let ps = dist_strength_parts(&a, 0.25, 0.8, &starts, c.rank());
            dist_aggressive_pmis(c, &ps, 11)
        });
        let mut first = Vec::new();
        let mut fin = Vec::new();
        for (f, g) in &parts {
            first.extend_from_slice(&f.is_coarse);
            fin.extend_from_slice(&g.is_coarse);
        }
        assert_eq!(first, serial_first.is_coarse);
        assert_eq!(fin, serial_final.is_coarse);
    }
}

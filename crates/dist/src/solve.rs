//! Distributed solve phase: hybrid Gauss-Seidel smoothing, V-cycles,
//! standalone AMG, and FGMRES preconditioned by one V-cycle (the Table 4
//! configuration).
//!
//! Hybrid GS here is GS within a rank and Jacobi across ranks: each
//! half-sweep snapshots the halo (one exchange), then relaxes local rows
//! — interior rows (empty `offd` row) first, boundary rows second, each
//! group in ascending order — reading local columns live and external
//! columns from the snapshot, the rank-level analogue of the Fig. 2
//! kernels. The interior-first ordering is what lets the overlapped mode
//! (`DistOptFlags::overlap_comm`) relax interior rows while the halo is
//! still in flight without changing a single floating-point operation:
//! both modes sweep the same rows in the same order with the same reads.

use crate::comm::{wire, Comm, CommPhase};
use crate::hierarchy::DistHierarchy;
use crate::parcsr::ParCsr;
use crate::spmv::{
    dist_dot, dist_norm2, dist_norm2_multi, try_dist_residual, try_dist_residual_multi,
    try_dist_residual_norm_sq, try_dist_residual_norm_sq_multi, try_dist_spmv, try_dist_spmv_multi,
};
use famg_core::solver::SolveError;
use famg_core::stats::{CommVolume, PhaseTimes};
use famg_sparse::counters::flops;
use famg_sparse::MultiVec;

/// Snapshot of this rank's sent-traffic counters (for phase windows).
fn comm_mark(comm: &Comm) -> (u64, u64) {
    (comm.bytes_sent(), comm.messages_sent())
}

/// Traffic sent since `mark`.
fn comm_since(comm: &Comm, mark: (u64, u64)) -> CommVolume {
    CommVolume {
        bytes: comm.bytes_sent() - mark.0,
        messages: comm.messages_sent() - mark.1,
    }
}

/// Local stored entries of a ParCSR operator (diag + offd blocks).
fn local_nnz(m: &ParCsr) -> usize {
    m.local_nnz()
}

/// Validates the hierarchy and the local vector lengths before entering
/// the instrumented solve body.
fn check_args(h: &DistHierarchy, b: &[f64], x: &[f64]) -> Result<(), SolveError> {
    h.check_shape()?;
    let n = h.levels[0].a.local_rows();
    if b.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            got: b.len(),
            what: "local right-hand side",
        });
    }
    if x.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            got: x.len(),
            what: "local initial guess",
        });
    }
    Ok(())
}

/// Smoothing class selector.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    Coarse,
    Fine,
}

/// One hybrid GS half-sweep on a level: interior rows of the selected
/// class first (no halo reads), then boundary rows against the halo
/// snapshot. With `overlap_comm` the interior pass runs while the halo is
/// in flight; the per-row arithmetic and the sweep order are identical in
/// both modes, so the result is bitwise mode-independent.
fn half_sweep(
    comm: &Comm,
    h: &DistHierarchy,
    level: usize,
    b: &[f64],
    x: &mut [f64],
    class: Class,
) {
    let lvl = &h.levels[level];
    let a = &lvl.a;
    let my_c0 = a.col_starts[comm.rank()];
    let want = class == Class::Coarse;
    let relax_interior = |x: &mut [f64]| {
        for &i in &a.interior_rows {
            if lvl.is_coarse[i] != want {
                continue;
            }
            let mut acc = b[i];
            let li = a.row_start + i - my_c0;
            for (c, v) in a.diag.row_iter(i) {
                if c != li {
                    acc -= v * x[c];
                }
            }
            x[i] = acc * lvl.dinv[i];
        }
    };
    let relax_boundary = |x: &mut [f64], x_ext: &[f64]| {
        for &i in &a.boundary_rows {
            if lvl.is_coarse[i] != want {
                continue;
            }
            let mut acc = b[i];
            let li = a.row_start + i - my_c0;
            for (c, v) in a.diag.row_iter(i) {
                if c != li {
                    acc -= v * x[c];
                }
            }
            for (k, v) in a.offd.row_iter(i) {
                acc -= v * x_ext[k];
            }
            x[i] = acc * lvl.dinv[i];
        }
    };
    if h.dist_opt.overlap_comm {
        // The halo snapshot is taken at post time (sends carry the
        // pre-sweep values), exactly as in the synchronous mode — the
        // across-rank Jacobi coupling is unchanged.
        let inflight = lvl.plan_a.post(comm, x);
        relax_interior(x);
        let x_ext = inflight.finish(comm);
        relax_boundary(x, &x_ext);
    } else {
        let x_ext = lvl.plan_a.exchange(comm, x);
        relax_interior(x);
        relax_boundary(x, &x_ext);
    }
}

/// Batched hybrid GS half-sweep: one halo exchange (one envelope per
/// neighbor, all `k` columns inside) per half-sweep regardless of the
/// batch width. The per-row, per-lane arithmetic follows [`half_sweep`]
/// exactly — interior rows of the selected class first, then boundary
/// rows against the strided halo snapshot — so column `j` is bitwise
/// identical to the scalar sweep on that column, in both halo modes.
/// `acc` is caller-owned `k`-sized lane scratch (see
/// [`DistBatchCycleWorkspace`]).
fn half_sweep_multi(
    comm: &Comm,
    h: &DistHierarchy,
    level: usize,
    b: &MultiVec,
    x: &mut MultiVec,
    class: Class,
    acc: &mut [f64],
) {
    let lvl = &h.levels[level];
    let a = &lvl.a;
    let k = b.k();
    let my_c0 = a.col_starts[comm.rank()];
    let want = class == Class::Coarse;
    let bd = b.data();
    debug_assert_eq!(acc.len(), k);
    let relax_interior = |x: &mut MultiVec, acc: &mut [f64]| {
        let xd = x.data_mut();
        for &i in &a.interior_rows {
            if lvl.is_coarse[i] != want {
                continue;
            }
            acc.copy_from_slice(&bd[i * k..(i + 1) * k]);
            let li = a.row_start + i - my_c0;
            for (c, v) in a.diag.row_iter(i) {
                if c != li {
                    for (aj, xj) in acc.iter_mut().zip(&xd[c * k..(c + 1) * k]) {
                        *aj -= v * xj;
                    }
                }
            }
            let d = lvl.dinv[i];
            for (xj, aj) in xd[i * k..(i + 1) * k].iter_mut().zip(acc.iter()) {
                *xj = aj * d;
            }
        }
    };
    let relax_boundary = |x: &mut MultiVec, x_ext: &[f64], acc: &mut [f64]| {
        let xd = x.data_mut();
        for &i in &a.boundary_rows {
            if lvl.is_coarse[i] != want {
                continue;
            }
            acc.copy_from_slice(&bd[i * k..(i + 1) * k]);
            let li = a.row_start + i - my_c0;
            for (c, v) in a.diag.row_iter(i) {
                if c != li {
                    for (aj, xj) in acc.iter_mut().zip(&xd[c * k..(c + 1) * k]) {
                        *aj -= v * xj;
                    }
                }
            }
            for (e, v) in a.offd.row_iter(i) {
                for (aj, xj) in acc.iter_mut().zip(&x_ext[e * k..(e + 1) * k]) {
                    *aj -= v * xj;
                }
            }
            let d = lvl.dinv[i];
            for (xj, aj) in xd[i * k..(i + 1) * k].iter_mut().zip(acc.iter()) {
                *xj = aj * d;
            }
        }
    };
    if h.dist_opt.overlap_comm {
        let inflight = lvl.plan_a.post_multi(comm, x);
        relax_interior(x, &mut *acc);
        let x_ext = inflight.finish(comm);
        relax_boundary(x, &x_ext, &mut *acc);
    } else {
        let x_ext = lvl.plan_a.exchange_multi(comm, x);
        relax_interior(x, &mut *acc);
        relax_boundary(x, &x_ext, &mut *acc);
    }
}

/// Batched C-F (pre) or F-C (post) smoothing over caller-owned lane
/// scratch.
fn smooth_multi(
    comm: &Comm,
    h: &DistHierarchy,
    level: usize,
    b: &MultiVec,
    x: &mut MultiVec,
    pre: bool,
    acc: &mut [f64],
) {
    if pre {
        half_sweep_multi(comm, h, level, b, x, Class::Coarse, acc);
        half_sweep_multi(comm, h, level, b, x, Class::Fine, acc);
    } else {
        half_sweep_multi(comm, h, level, b, x, Class::Fine, acc);
        half_sweep_multi(comm, h, level, b, x, Class::Coarse, acc);
    }
}

/// C-F smoothing (pre) or F-C smoothing (post).
fn smooth(comm: &Comm, h: &DistHierarchy, level: usize, b: &[f64], x: &mut [f64], pre: bool) {
    if pre {
        half_sweep(comm, h, level, b, x, Class::Coarse);
        half_sweep(comm, h, level, b, x, Class::Fine);
    } else {
        half_sweep(comm, h, level, b, x, Class::Fine);
        half_sweep(comm, h, level, b, x, Class::Coarse);
    }
}

/// Per-level scratch for one scalar V-cycle visit: residual and
/// correction on the fine side, restricted RHS and coarse iterate on the
/// coarse side.
#[derive(Debug, Clone)]
struct CycleBufs {
    r: Vec<f64>,
    corr: Vec<f64>,
    bc: Vec<f64>,
    xc: Vec<f64>,
}

/// Reusable scratch for [`try_dist_vcycle_with`]: one buffer set per
/// non-coarsest level. Build it once per solve and reuse it across
/// cycles — the recursive descent then performs no heap allocation.
#[derive(Debug, Clone)]
pub struct DistCycleWorkspace {
    levels: Vec<CycleBufs>,
}

impl DistCycleWorkspace {
    /// Scratch sized for every non-coarsest level of `h` (this rank's
    /// local row counts).
    #[must_use]
    pub fn for_hierarchy(h: &DistHierarchy) -> Self {
        let mut levels = Vec::new();
        for (l, lvl) in h.levels.iter().enumerate() {
            if lvl.p.is_none() || l + 1 >= h.levels.len() {
                break;
            }
            let nf = lvl.a.local_rows();
            let nc = h.levels[l + 1].a.local_rows();
            levels.push(CycleBufs {
                r: vec![0.0; nf],
                corr: vec![0.0; nf],
                bc: vec![0.0; nc],
                xc: vec![0.0; nc],
            });
        }
        DistCycleWorkspace { levels }
    }

    /// Rebuilds the buffers if they were sized for a different hierarchy.
    fn fit(&mut self, h: &DistHierarchy) {
        if !cycle_ws_fits(h, self.levels.len(), |l| {
            (self.levels[l].r.len(), self.levels[l].bc.len())
        }) {
            *self = Self::for_hierarchy(h);
        }
    }
}

/// Whether `n_bufs` per-level buffer sets whose fine/coarse lengths are
/// reported by `dims(l)` match the descent `h` will take.
fn cycle_ws_fits(h: &DistHierarchy, n_bufs: usize, dims: impl Fn(usize) -> (usize, usize)) -> bool {
    let cut = h
        .levels
        .iter()
        .position(|l| l.p.is_none())
        .unwrap_or(h.levels.len());
    let expected = cut.min(h.levels.len().saturating_sub(1));
    n_bufs == expected
        && (0..expected)
            .all(|l| dims(l) == (h.levels[l].a.local_rows(), h.levels[l + 1].a.local_rows()))
}

/// Applies one distributed V-cycle at `level`.
///
/// # Panics
/// Panics on mis-sized vectors or a level whose operators and halo plans
/// disagree; use [`try_dist_vcycle`] for a typed error.
pub fn dist_vcycle(comm: &Comm, h: &DistHierarchy, level: usize, b: &[f64], x: &mut [f64]) {
    try_dist_vcycle(comm, h, level, b, x)
        .unwrap_or_else(|e| panic!("famg distributed V-cycle: {e}"));
}

/// [`dist_vcycle`] with typed shape errors: every kernel it invokes runs
/// through its `try_` variant, so a mis-sized vector or a plan/operator
/// mismatch on *any* level surfaces as a [`SolveError`] instead of a
/// panic deep inside a kernel. The halo mode follows
/// `h.dist_opt.overlap_comm`. Allocates its own per-call scratch;
/// repeated cycles over one hierarchy should hold a
/// [`DistCycleWorkspace`] and call [`try_dist_vcycle_with`] directly.
pub fn try_dist_vcycle(
    comm: &Comm,
    h: &DistHierarchy,
    level: usize,
    b: &[f64],
    x: &mut [f64],
) -> Result<(), SolveError> {
    let mut ws = DistCycleWorkspace::for_hierarchy(h);
    try_dist_vcycle_with(comm, h, level, b, x, &mut ws)
}

/// [`try_dist_vcycle`] over caller-owned scratch: the descent reuses the
/// workspace's per-level buffers and performs no heap allocation.
pub fn try_dist_vcycle_with(
    comm: &Comm,
    h: &DistHierarchy,
    level: usize,
    b: &[f64],
    x: &mut [f64],
    ws: &mut DistCycleWorkspace,
) -> Result<(), SolveError> {
    ws.fit(h);
    let start = level.min(ws.levels.len());
    vcycle_level(comm, h, level, b, x, &mut ws.levels[start..])
}

/// Recursive scalar V-cycle body; `bufs[0]` is this level's scratch.
fn vcycle_level(
    comm: &Comm,
    h: &DistHierarchy,
    level: usize,
    b: &[f64],
    x: &mut [f64],
    bufs: &mut [CycleBufs],
) -> Result<(), SolveError> {
    let _span = famg_prof::scope_at("vcycle", level);
    // Attribute this level's traffic (smoothing, transfers, residual).
    let _scope = comm.scoped(level, CommPhase::Solve);
    let lvl = &h.levels[level];
    let nl = lvl.a.local_rows();
    if b.len() != nl {
        return Err(SolveError::DimensionMismatch {
            expected: nl,
            got: b.len(),
            what: "level right-hand side",
        });
    }
    if x.len() != nl {
        return Err(SolveError::DimensionMismatch {
            expected: nl,
            got: x.len(),
            what: "level iterate",
        });
    }
    let overlap = h.dist_opt.overlap_comm;
    if lvl.p.is_none() {
        // Coarsest: gather to rank 0, dense solve, scatter back.
        let _s = famg_prof::scope_at("coarse_solve", level);
        coarse_solve(comm, h, b, x);
        return Ok(());
    }
    // Past the coarsest-level check a level must carry all four transfer
    // pieces; `DistHierarchy::check_shape` verifies this up front for
    // the `try_*` entry points.
    let (p, plan_p, rt, plan_r) = lvl
        .transfers()
        // PANIC-FREE: check_shape (run by every try_* entry) rejects a
        // non-coarsest level that is missing P/R or their halo plans.
        .expect("hierarchy invariant: non-coarsest level is missing P/R or their halo plans");
    let (cur, rest) = bufs
        .split_first_mut()
        // PANIC-FREE: fit() sized one buffer set per non-coarsest level.
        .expect("cycle workspace invariant: buffer set missing for a non-coarsest level");

    {
        let _s = famg_prof::scope_at("smooth", level);
        for _ in 0..h.config.num_sweeps {
            smooth(comm, h, level, b, x, true);
        }
        famg_prof::counter(
            "flops",
            2 * h.config.num_sweeps as u64 * flops::gs_sweep(local_nnz(&lvl.a)),
        );
    }

    {
        let _s = famg_prof::scope_at("residual", level);
        // Residual only — the norm is unused here, so skip its allreduce.
        try_dist_residual(comm, &lvl.a, &lvl.plan_a, x, b, &mut cur.r, overlap)?;
        famg_prof::counter("flops", flops::spmv(local_nnz(&lvl.a)));
    }
    {
        let _s = famg_prof::scope_at("restrict", level);
        try_dist_spmv(comm, rt, plan_r, &cur.r, &mut cur.bc, overlap)?;
        famg_prof::counter("flops", flops::spmv(local_nnz(rt)));
    }

    // The coarse cycle starts from a zero iterate, as the fresh
    // allocation used to provide.
    cur.xc.fill(0.0);
    vcycle_level(comm, h, level + 1, &cur.bc, &mut cur.xc, rest)?;

    {
        let _s = famg_prof::scope_at("prolong", level);
        try_dist_spmv(comm, p, plan_p, &cur.xc, &mut cur.corr, overlap)?;
        for (xi, ci) in x.iter_mut().zip(&cur.corr) {
            *xi += ci;
        }
        famg_prof::counter("flops", flops::spmv(local_nnz(p)) + flops::axpy(x.len()));
    }

    {
        let _s = famg_prof::scope_at("smooth", level);
        for _ in 0..h.config.num_sweeps {
            smooth(comm, h, level, b, x, false);
        }
        famg_prof::counter(
            "flops",
            2 * h.config.num_sweeps as u64 * flops::gs_sweep(local_nnz(&lvl.a)),
        );
    }
    Ok(())
}

/// Applies one distributed V-cycle at `level` to a block of `k`
/// right-hand sides.
///
/// # Panics
/// Panics on mis-sized blocks or a malformed level; use
/// [`try_dist_vcycle_multi`] for a typed error.
pub fn dist_vcycle_multi(
    comm: &Comm,
    h: &DistHierarchy,
    level: usize,
    b: &MultiVec,
    x: &mut MultiVec,
) {
    try_dist_vcycle_multi(comm, h, level, b, x)
        .unwrap_or_else(|e| panic!("famg distributed batched V-cycle: {e}"));
}

/// Per-level scratch for one batched V-cycle visit.
#[derive(Debug, Clone)]
struct BatchCycleBufs {
    r: MultiVec,
    corr: MultiVec,
    bc: MultiVec,
    xc: MultiVec,
}

/// Reusable scratch for [`try_dist_vcycle_multi_with`]: one `n x k`
/// buffer set per non-coarsest level plus the `k`-sized lane accumulator
/// the batched smoother threads through every half-sweep. Build it once
/// per solve and reuse it across cycles.
#[derive(Debug, Clone)]
pub struct DistBatchCycleWorkspace {
    levels: Vec<BatchCycleBufs>,
    acc: Vec<f64>,
}

impl DistBatchCycleWorkspace {
    /// Scratch sized for every non-coarsest level of `h` at batch width
    /// `k`.
    #[must_use]
    pub fn for_hierarchy(h: &DistHierarchy, k: usize) -> Self {
        let mut levels = Vec::new();
        for (l, lvl) in h.levels.iter().enumerate() {
            if lvl.p.is_none() || l + 1 >= h.levels.len() {
                break;
            }
            let nf = lvl.a.local_rows();
            let nc = h.levels[l + 1].a.local_rows();
            levels.push(BatchCycleBufs {
                r: MultiVec::new(nf, k),
                corr: MultiVec::new(nf, k),
                bc: MultiVec::new(nc, k),
                xc: MultiVec::new(nc, k),
            });
        }
        DistBatchCycleWorkspace {
            levels,
            acc: vec![0.0; k],
        }
    }

    /// Rebuilds the buffers if sized for a different hierarchy or width.
    fn fit(&mut self, h: &DistHierarchy, k: usize) {
        let shapes_ok = cycle_ws_fits(h, self.levels.len(), |l| {
            (self.levels[l].r.n(), self.levels[l].bc.n())
        });
        if !shapes_ok || self.acc.len() != k || self.levels.iter().any(|b| b.r.k() != k) {
            *self = Self::for_hierarchy(h, k);
        }
    }
}

/// Batched [`try_dist_vcycle`]: one traversal advances all `k` columns,
/// with every halo exchange sending one envelope per neighbor (the
/// message count is independent of `k`). Span-for-span it mirrors the
/// scalar cycle — smoothing windows are named `gs_batch` and transfer /
/// residual windows run the `*_multi` kernels — and column `j` of the
/// result is bitwise identical to the scalar V-cycle applied to column
/// `j` alone, in both halo modes. Allocates its own per-call scratch;
/// repeated cycles should hold a [`DistBatchCycleWorkspace`] and call
/// [`try_dist_vcycle_multi_with`] directly.
pub fn try_dist_vcycle_multi(
    comm: &Comm,
    h: &DistHierarchy,
    level: usize,
    b: &MultiVec,
    x: &mut MultiVec,
) -> Result<(), SolveError> {
    let mut ws = DistBatchCycleWorkspace::for_hierarchy(h, b.k());
    try_dist_vcycle_multi_with(comm, h, level, b, x, &mut ws)
}

/// [`try_dist_vcycle_multi`] over caller-owned scratch: the descent
/// reuses the workspace's per-level blocks and lane accumulator and
/// performs no heap allocation outside the coarsest-level gather.
pub fn try_dist_vcycle_multi_with(
    comm: &Comm,
    h: &DistHierarchy,
    level: usize,
    b: &MultiVec,
    x: &mut MultiVec,
    ws: &mut DistBatchCycleWorkspace,
) -> Result<(), SolveError> {
    ws.fit(h, b.k());
    let start = level.min(ws.levels.len());
    let DistBatchCycleWorkspace { levels, acc } = ws;
    vcycle_level_multi(comm, h, level, b, x, &mut levels[start..], acc)
}

/// Recursive batched V-cycle body; `bufs[0]` is this level's scratch.
fn vcycle_level_multi(
    comm: &Comm,
    h: &DistHierarchy,
    level: usize,
    b: &MultiVec,
    x: &mut MultiVec,
    bufs: &mut [BatchCycleBufs],
    acc: &mut [f64],
) -> Result<(), SolveError> {
    let _span = famg_prof::scope_at("vcycle", level);
    let _scope = comm.scoped(level, CommPhase::Solve);
    let lvl = &h.levels[level];
    let nl = lvl.a.local_rows();
    let k = b.k();
    if b.n() != nl {
        return Err(SolveError::DimensionMismatch {
            expected: nl,
            got: b.n(),
            what: "level right-hand side block",
        });
    }
    if x.n() != nl {
        return Err(SolveError::DimensionMismatch {
            expected: nl,
            got: x.n(),
            what: "level iterate block",
        });
    }
    if x.k() != k {
        return Err(SolveError::DimensionMismatch {
            expected: k,
            got: x.k(),
            what: "level iterate block width",
        });
    }
    let overlap = h.dist_opt.overlap_comm;
    if lvl.p.is_none() {
        let _s = famg_prof::scope_at("coarse_solve", level);
        coarse_solve_multi(comm, h, b, x, acc);
        return Ok(());
    }
    let (p, plan_p, rt, plan_r) = lvl
        .transfers()
        // PANIC-FREE: check_shape (run by every try_* entry) rejects a
        // non-coarsest level that is missing P/R or their halo plans.
        .expect("hierarchy invariant: non-coarsest level is missing P/R or their halo plans");
    let (cur, rest) = bufs
        .split_first_mut()
        // PANIC-FREE: fit() sized one buffer set per non-coarsest level.
        .expect("cycle workspace invariant: buffer set missing for a non-coarsest level");

    {
        let _s = famg_prof::scope_at("gs_batch", level);
        for _ in 0..h.config.num_sweeps {
            smooth_multi(comm, h, level, b, x, true, acc);
        }
        famg_prof::counter(
            "flops",
            2 * h.config.num_sweeps as u64 * flops::gs_sweep_batch(local_nnz(&lvl.a), k),
        );
    }

    {
        let _s = famg_prof::scope_at("residual", level);
        try_dist_residual_multi(comm, &lvl.a, &lvl.plan_a, x, b, &mut cur.r, overlap)?;
        famg_prof::counter("flops", flops::spmm(local_nnz(&lvl.a), k));
    }
    {
        let _s = famg_prof::scope_at("restrict", level);
        try_dist_spmv_multi(comm, rt, plan_r, &cur.r, &mut cur.bc, overlap)?;
        famg_prof::counter("flops", flops::spmm(local_nnz(rt), k));
    }

    // The coarse cycle starts from a zero iterate, as the fresh
    // allocation used to provide.
    cur.xc.fill(0.0);
    vcycle_level_multi(comm, h, level + 1, &cur.bc, &mut cur.xc, rest, acc)?;

    {
        let _s = famg_prof::scope_at("prolong", level);
        try_dist_spmv_multi(comm, p, plan_p, &cur.xc, &mut cur.corr, overlap)?;
        for (xi, ci) in x.data_mut().iter_mut().zip(cur.corr.data()) {
            *xi += ci;
        }
        famg_prof::counter(
            "flops",
            flops::spmm(local_nnz(p), k) + flops::axpy_batch(nl, k),
        );
    }

    {
        let _s = famg_prof::scope_at("gs_batch", level);
        for _ in 0..h.config.num_sweeps {
            smooth_multi(comm, h, level, b, x, false, acc);
        }
        famg_prof::counter(
            "flops",
            2 * h.config.num_sweeps as u64 * flops::gs_sweep_batch(local_nnz(&lvl.a), k),
        );
    }
    Ok(())
}

/// Batched coarsest-level solve: gather the `n_coarse × k` block to rank
/// 0 (one message per rank, all columns inside), back-substitute each
/// column through the same LU, scatter the solution block back. Column
/// `j` sees exactly the scalar [`coarse_solve`] arithmetic.
// ALLOC: coarsest-level gather/solve/scatter — the message payloads and
// the rank-0 dense back-substitution buffers are per-visit by nature
// (one rank-0 round trip per cycle over O(n_coarse) data).
fn coarse_solve_multi(
    comm: &Comm,
    h: &DistHierarchy,
    b: &MultiVec,
    x: &mut MultiVec,
    acc: &mut [f64],
) {
    let n_global = *h
        .coarse_starts
        .last()
        // PANIC-FREE: coarse_starts always has comm.size()+1 entries by
        // construction (DistHierarchy::build), never zero.
        .expect("hierarchy invariant: coarse_starts is never empty");
    let k = b.k();
    if n_global == 0 || k == 0 {
        return;
    }
    let has_lu = comm.allreduce_or(h.coarse_lu.is_some(), 0x90);
    if !has_lu {
        let mut xl = x.clone();
        for _ in 0..4 * h.config.num_sweeps {
            smooth_multi(comm, h, h.levels.len() - 1, b, &mut xl, true, acc);
        }
        x.copy_from(&xl);
        return;
    }
    // Row-major blocks concatenate along rows directly: the gathered
    // parts form the full n_global × k block in rank order.
    let received = comm.gather_to(0, b.data().to_vec(), 0x91, |v| wire::f64s(v.len()));
    let slices: Option<Vec<Vec<f64>>> = received.map(|parts| {
        let full_b: Vec<f64> = parts.into_iter().flatten().collect();
        debug_assert_eq!(full_b.len(), n_global * k);
        let lu = h
            .coarse_lu
            .as_ref()
            // PANIC-FREE: gather_to yields Some only on the gather root
            // (rank 0), the one rank that owns the factorization when
            // the allreduce above reported has_lu.
            .expect("coarse-solve invariant: gather root holds the LU factorization");
        let mut sol = vec![0.0f64; n_global * k];
        let mut col = vec![0.0f64; n_global];
        for j in 0..k {
            for i in 0..n_global {
                col[i] = full_b[i * k + j];
            }
            let solved = lu.solve(&col);
            for i in 0..n_global {
                sol[i * k + j] = solved[i];
            }
        }
        (0..comm.size())
            .map(|r| sol[h.coarse_starts[r] * k..h.coarse_starts[r + 1] * k].to_vec())
            .collect()
    });
    let mine = comm.scatter_from(0, slices, 0x92, |v| wire::f64s(v.len()));
    x.data_mut().copy_from_slice(&mine);
}

// ALLOC: coarsest-level gather/solve/scatter — the message payloads and
// the rank-0 dense back-substitution buffers are per-visit by nature
// (one rank-0 round trip per cycle over O(n_coarse) data).
fn coarse_solve(comm: &Comm, h: &DistHierarchy, b: &[f64], x: &mut [f64]) {
    let n_global = *h
        .coarse_starts
        .last()
        // PANIC-FREE: coarse_starts always has comm.size()+1 entries by
        // construction (DistHierarchy::build), never zero.
        .expect("hierarchy invariant: coarse_starts is never empty");
    if n_global == 0 {
        return;
    }
    // No factorization (level too big for LU) means every rank smooths
    // instead; coarse_lu is Some only on rank 0, so agree via a
    // flag-OR allreduce rather than local inspection.
    let has_lu = comm.allreduce_or(h.coarse_lu.is_some(), 0x90);
    if !has_lu {
        let mut xl = x.to_vec();
        for _ in 0..4 * h.config.num_sweeps {
            smooth(comm, h, h.levels.len() - 1, b, &mut xl, true);
        }
        x.copy_from_slice(&xl);
        return;
    }
    // Gather b to rank 0 over the binomial tree (P−1 messages, none of
    // them empty envelopes), dense-solve there, tree-scatter back.
    let received = comm.gather_to(0, b.to_vec(), 0x91, |v| wire::f64s(v.len()));
    let slices: Option<Vec<Vec<f64>>> = received.map(|parts| {
        let full_b: Vec<f64> = parts.into_iter().flatten().collect();
        debug_assert_eq!(full_b.len(), n_global);
        let sol0 = h
            .coarse_lu
            .as_ref()
            // PANIC-FREE: gather_to yields Some only on the gather root
            // (rank 0), the one rank that owns the factorization when
            // the allreduce above reported has_lu.
            .expect("coarse-solve invariant: gather root holds the LU factorization")
            .solve(&full_b);
        (0..comm.size())
            .map(|r| sol0[h.coarse_starts[r]..h.coarse_starts[r + 1]].to_vec())
            .collect()
    });
    let mine = comm.scatter_from(0, slices, 0x92, |v| wire::f64s(v.len()));
    x.copy_from_slice(&mine);
}

/// Result of a distributed solve (per rank; global quantities identical
/// on every rank).
#[derive(Debug, Clone)]
pub struct DistSolveResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Final global relative residual.
    pub final_relres: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Solve-phase timing (this rank).
    pub times: PhaseTimes,
    /// Wall time blocked in communication during the solve (this rank).
    pub solve_comm_time: std::time::Duration,
    /// Bytes/messages this rank sent during the solve.
    pub solve_comm: CommVolume,
    /// Hierarchical span profile of the solve (this rank).
    pub profile: famg_prof::Profile,
}

/// Standalone distributed AMG iteration to the configured tolerance.
///
/// # Panics
/// Panics on a malformed hierarchy or mis-sized local vectors; use
/// [`try_dist_amg_solve`] for a typed error instead.
pub fn dist_amg_solve(comm: &Comm, h: &DistHierarchy, b: &[f64], x: &mut [f64]) -> DistSolveResult {
    try_dist_amg_solve(comm, h, b, x).unwrap_or_else(|e| panic!("famg distributed solve: {e}"))
}

/// [`dist_amg_solve`] with up-front shape validation: a malformed
/// hierarchy or mis-sized vectors produce a typed [`SolveError`] before
/// any rank communicates.
pub fn try_dist_amg_solve(
    comm: &Comm,
    h: &DistHierarchy,
    b: &[f64],
    x: &mut [f64],
) -> Result<DistSolveResult, SolveError> {
    check_args(h, b, x)?;
    let comm_t0 = comm.comm_time();
    let mark = comm_mark(comm);
    let root_span = famg_prof::scope("solve");
    let scope = comm.scoped(0, CommPhase::Solve);
    let lvl0 = &h.levels[0];
    let ov = h.dist_opt.overlap_comm;
    // ALLOC: per-solve residual buffer and cycle workspace, allocated
    // once here and reused across every V-cycle of the iteration.
    let mut r = vec![0.0; b.len()];
    let mut ws = DistCycleWorkspace::for_hierarchy(h);
    let (bnorm, mut relres);
    {
        let _s = famg_prof::scope("blas1");
        bnorm = dist_norm2(comm, b).max(f64::MIN_POSITIVE);
        relres = try_dist_residual_norm_sq(comm, &lvl0.a, &lvl0.plan_a, x, b, &mut r, ov)?.sqrt()
            / bnorm;
        famg_prof::counter(
            "flops",
            flops::dot(b.len()) + flops::spmv(local_nnz(&lvl0.a)) + flops::dot(b.len()),
        );
    }
    let mut iterations = 0usize;
    while relres > h.config.tolerance && iterations < h.config.max_iterations {
        try_dist_vcycle_with(comm, h, 0, b, x, &mut ws)?;
        iterations += 1;
        let _s = famg_prof::scope("blas1");
        relres = try_dist_residual_norm_sq(comm, &lvl0.a, &lvl0.plan_a, x, b, &mut r, ov)?.sqrt()
            / bnorm;
        famg_prof::counter(
            "flops",
            flops::spmv(local_nnz(&lvl0.a)) + flops::dot(b.len()),
        );
    }
    drop(scope);
    drop(root_span);
    let profile = famg_prof::take();
    let times = profile
        .find_root("solve")
        .map(PhaseTimes::from_span)
        .unwrap_or_default();
    Ok(DistSolveResult {
        iterations,
        final_relres: relres,
        converged: relres <= h.config.tolerance,
        times,
        solve_comm_time: comm.comm_time_since(comm_t0),
        solve_comm: comm_since(comm, mark),
        profile,
    })
}

/// Result of a distributed batched (multi-RHS) solve. Global quantities
/// (iterations, residuals, convergence flags) are identical on every
/// rank; timings and traffic are per rank.
#[derive(Debug, Clone)]
pub struct DistBatchSolveResult {
    /// V-cycles applied per column before that column stopped.
    pub iterations: Vec<usize>,
    /// Final global relative residual per column.
    pub final_relres: Vec<f64>,
    /// Whether each column met the tolerance.
    pub converged: Vec<bool>,
    /// Solve-phase timing (this rank, whole batch).
    pub times: PhaseTimes,
    /// Wall time blocked in communication during the solve (this rank).
    pub solve_comm_time: std::time::Duration,
    /// Bytes/messages this rank sent during the solve.
    pub solve_comm: CommVolume,
    /// Hierarchical span profile of the solve (this rank).
    pub profile: famg_prof::Profile,
}

impl DistBatchSolveResult {
    /// Batch width.
    #[must_use]
    pub fn k(&self) -> usize {
        self.iterations.len()
    }

    /// Whether every column met the tolerance.
    #[must_use]
    pub fn all_converged(&self) -> bool {
        self.converged.iter().all(|&c| c)
    }
}

/// Validates the hierarchy and the local block shapes.
fn check_args_multi(h: &DistHierarchy, b: &MultiVec, x: &MultiVec) -> Result<(), SolveError> {
    h.check_shape()?;
    let n = h.levels[0].a.local_rows();
    if b.n() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            got: b.n(),
            what: "local right-hand side block",
        });
    }
    if x.n() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            got: x.n(),
            what: "local initial guess block",
        });
    }
    if x.k() != b.k() {
        return Err(SolveError::DimensionMismatch {
            expected: b.k(),
            got: x.k(),
            what: "local initial guess block width",
        });
    }
    Ok(())
}

/// Standalone distributed AMG iteration on a block of `k` right-hand
/// sides.
///
/// # Panics
/// Panics on a malformed hierarchy or mis-shaped blocks; use
/// [`try_dist_amg_solve_multi`] for a typed error instead.
pub fn dist_amg_solve_multi(
    comm: &Comm,
    h: &DistHierarchy,
    b: &MultiVec,
    x: &mut MultiVec,
) -> DistBatchSolveResult {
    try_dist_amg_solve_multi(comm, h, b, x)
        .unwrap_or_else(|e| panic!("famg distributed batched solve: {e}"))
}

/// Batched [`try_dist_amg_solve`]: every V-cycle and every residual
/// reduction advances all `k` columns at once, so the collective and
/// halo message counts are those of a single scalar solve running for
/// `max_j iterations(j)` cycles.
///
/// A column that reaches the tolerance (or starts converged) has its
/// iterate snapshotted at that point and restored on exit; the kernels
/// keep advancing the lane (lane arithmetic is independent, so a dead
/// column cannot perturb live ones), but its reported history, residual
/// and iteration count freeze. Column `j` of the result is bitwise
/// identical to the scalar `try_dist_amg_solve` on `(b_j, x_j)` —
/// every rank takes identical masking decisions because the reduced
/// residuals are identical on every rank.
pub fn try_dist_amg_solve_multi(
    comm: &Comm,
    h: &DistHierarchy,
    b: &MultiVec,
    x: &mut MultiVec,
) -> Result<DistBatchSolveResult, SolveError> {
    check_args_multi(h, b, x)?;
    let k = b.k();
    let comm_t0 = comm.comm_time();
    let mark = comm_mark(comm);
    if k == 0 {
        return Ok(DistBatchSolveResult {
            iterations: Vec::new(),   // ALLOC: empty Vec, no heap
            final_relres: Vec::new(), // ALLOC: empty Vec, no heap
            converged: Vec::new(),    // ALLOC: empty Vec, no heap
            times: PhaseTimes::default(),
            solve_comm_time: comm.comm_time_since(comm_t0),
            solve_comm: comm_since(comm, mark),
            profile: famg_prof::Profile::default(),
        });
    }
    let root_span = famg_prof::scope("solve");
    let scope = comm.scoped(0, CommPhase::Solve);
    let lvl0 = &h.levels[0];
    let ov = h.dist_opt.overlap_comm;
    let nl = lvl0.a.local_rows();
    // ALLOC: per-solve residual block, cycle workspace and k-sized
    // reporting lanes, allocated once here and reused across cycles.
    let mut r = MultiVec::new(nl, k);
    let mut ws = DistBatchCycleWorkspace::for_hierarchy(h, k);
    let mut bnorms;
    let mut relres = vec![0.0f64; k]; // ALLOC: k-sized reporting lanes (once per solve)
    {
        let _s = famg_prof::scope("blas1");
        bnorms = dist_norm2_multi(comm, b);
        for bn in &mut bnorms {
            *bn = bn.max(f64::MIN_POSITIVE);
        }
        let sq = try_dist_residual_norm_sq_multi(comm, &lvl0.a, &lvl0.plan_a, x, b, &mut r, ov)?;
        for (o, (s, bn)) in relres.iter_mut().zip(sq.iter().zip(&bnorms)) {
            *o = s.sqrt() / bn;
        }
        famg_prof::counter(
            "flops",
            flops::dot_batch(nl, k) + flops::spmm(local_nnz(&lvl0.a), k) + flops::dot_batch(nl, k),
        );
    }

    // ALLOC: per-solve result assembly (k-sized counters, masks and
    // per-column snapshots) — owned by the returned result.
    let mut iterations = vec![0usize; k];
    let mut final_relres = relres.clone(); // ALLOC: result-owned copy (k elements)
    let mut done: Vec<bool> = relres.iter().map(|&rr| rr <= h.config.tolerance).collect(); // ALLOC: k bools
                                                                                           // A finished column's iterate is snapshotted at its own stopping
                                                                                           // point and restored on exit; the kernels keep advancing the lane.
                                                                                           // ALLOC: one snapshot slot per column, filled on convergence events.
    let mut frozen_cols: Vec<Option<Vec<f64>>> = vec![None; k];
    for (j, d) in done.iter().enumerate() {
        if *d {
            frozen_cols[j] = Some(x.col(j));
        }
    }
    let mut cycles = 0usize;
    while done.iter().any(|d| !d) && cycles < h.config.max_iterations {
        try_dist_vcycle_multi_with(comm, h, 0, b, x, &mut ws)?;
        cycles += 1;
        let _s = famg_prof::scope("blas1");
        let sq = try_dist_residual_norm_sq_multi(comm, &lvl0.a, &lvl0.plan_a, x, b, &mut r, ov)?;
        famg_prof::counter(
            "flops",
            flops::spmm(local_nnz(&lvl0.a), k) + flops::dot_batch(nl, k),
        );
        for j in 0..k {
            if done[j] {
                continue;
            }
            let rr = sq[j].sqrt() / bnorms[j];
            final_relres[j] = rr;
            iterations[j] = cycles;
            if rr <= h.config.tolerance {
                done[j] = true;
                frozen_cols[j] = Some(x.col(j));
            }
        }
    }
    for (j, frozen) in frozen_cols.into_iter().enumerate() {
        if let Some(col) = frozen {
            x.set_col(j, &col);
        }
    }
    drop(scope);
    drop(root_span);
    let profile = famg_prof::take();
    let times = profile
        .find_root("solve")
        .map(PhaseTimes::from_span)
        .unwrap_or_default();
    let converged = final_relres
        .iter()
        .map(|&rr| rr <= h.config.tolerance)
        .collect(); // ALLOC: result-owned convergence flags (k bools)
    Ok(DistBatchSolveResult {
        iterations,
        final_relres,
        converged,
        times,
        solve_comm_time: comm.comm_time_since(comm_t0),
        solve_comm: comm_since(comm, mark),
        profile,
    })
}

/// Distributed flexible GMRES preconditioned with one AMG V-cycle per
/// application (Table 4's solver).
pub fn dist_fgmres_amg(
    comm: &Comm,
    h: &DistHierarchy,
    b: &[f64],
    x: &mut [f64],
    tolerance: f64,
    max_iterations: usize,
    restart: usize,
) -> DistSolveResult {
    try_dist_fgmres_amg(comm, h, b, x, tolerance, max_iterations, restart)
        .unwrap_or_else(|e| panic!("famg distributed FGMRES: {e}"))
}

/// [`dist_fgmres_amg`] with up-front shape validation.
#[allow(clippy::too_many_lines)]
pub fn try_dist_fgmres_amg(
    comm: &Comm,
    h: &DistHierarchy,
    b: &[f64],
    x: &mut [f64],
    tolerance: f64,
    max_iterations: usize,
    restart: usize,
) -> Result<DistSolveResult, SolveError> {
    check_args(h, b, x)?;
    let comm_t0 = comm.comm_time();
    let mark = comm_mark(comm);
    let root_span = famg_prof::scope("solve");
    let scope = comm.scoped(0, CommPhase::Solve);
    let lvl0 = &h.levels[0];
    let a = &lvl0.a;
    let ov = h.dist_opt.overlap_comm;
    let nl = a.local_rows();
    let m = restart.max(1);
    let bnorm = {
        let _s = famg_prof::scope("blas1");
        famg_prof::counter("flops", flops::dot(nl));
        dist_norm2(comm, b).max(f64::MIN_POSITIVE)
    };
    let mut total_iters = 0usize;
    let mut relres;
    // ALLOC: per-solve cycle workspace, reused by every preconditioner
    // application across all restarts.
    let mut ws = DistCycleWorkspace::for_hierarchy(h);

    'outer: loop {
        // ALLOC: per-restart residual seed; becomes the first basis
        // vector (moved into `v`), so it cannot be a reused buffer.
        let mut r = vec![0.0; nl];
        let beta = {
            let _s = famg_prof::scope("spmv");
            famg_prof::counter("flops", flops::spmv(local_nnz(a)) + flops::dot(nl));
            try_dist_residual_norm_sq(comm, a, &lvl0.plan_a, x, b, &mut r, ov)?.sqrt()
        };
        relres = beta / bnorm;
        if relres <= tolerance || total_iters >= max_iterations {
            break;
        }
        for ri in &mut r {
            *ri /= beta;
        }
        // ALLOC: FGMRES basis growth — V, Z, the Hessenberg columns and
        // the Givens coefficients grow with the inner iteration count;
        // storing the basis is inherent to the algorithm (flexible
        // preconditioning forbids recomputing Z).
        let mut v: Vec<Vec<f64>> = vec![r];
        let mut z: Vec<Vec<f64>> = Vec::new(); // ALLOC: retained basis (see above)
        let mut hcols: Vec<Vec<f64>> = Vec::new(); // ALLOC: retained basis (see above)
        let mut cs: Vec<f64> = Vec::new(); // ALLOC: retained basis (see above)
        let mut sn: Vec<f64> = Vec::new(); // ALLOC: retained basis (see above)
        let mut g = vec![0.0f64; m + 1]; // ALLOC: per-restart RHS of the least-squares system
        g[0] = beta;
        let mut inner = 0usize;

        while inner < m && total_iters < max_iterations {
            // Precondition: one V-cycle from zero.
            // ALLOC: zj is pushed into the retained basis Z below; wj
            // likewise becomes the next basis vector.
            let mut zj = vec![0.0; nl];
            try_dist_vcycle_with(comm, h, 0, &v[inner], &mut zj, &mut ws)?;
            let mut w = vec![0.0; nl]; // ALLOC: becomes the next basis vector
            {
                let _s = famg_prof::scope("spmv");
                try_dist_spmv(comm, a, &lvl0.plan_a, &zj, &mut w, ov)?;
                famg_prof::counter("flops", flops::spmv(local_nnz(a)));
            }
            z.push(zj);
            let blas1_span = famg_prof::scope("blas1");
            // ALLOC: one retained Hessenberg column per inner iteration.
            let mut hj = vec![0.0f64; inner + 2];
            for (i, vi) in v.iter().enumerate() {
                let hij = dist_dot(comm, &w, vi);
                hj[i] = hij;
                for (wk, vk) in w.iter_mut().zip(vi) {
                    *wk -= hij * vk;
                }
            }
            let wnorm = dist_norm2(comm, &w);
            hj[inner + 1] = wnorm;
            for i in 0..inner {
                let t = cs[i] * hj[i] + sn[i] * hj[i + 1];
                hj[i + 1] = -sn[i] * hj[i] + cs[i] * hj[i + 1];
                hj[i] = t;
            }
            let (c, s) = givens(hj[inner], hj[inner + 1]);
            cs.push(c);
            sn.push(s);
            hj[inner] = c * hj[inner] + s * hj[inner + 1];
            hj[inner + 1] = 0.0;
            g[inner + 1] = -s * g[inner];
            g[inner] *= c;
            hcols.push(hj);
            famg_prof::counter(
                "flops",
                (inner as u64 + 2) * (flops::dot(nl) + flops::axpy(nl)),
            );
            drop(blas1_span);

            total_iters += 1;
            inner += 1;
            relres = g[inner].abs() / bnorm;
            if relres <= tolerance || wnorm <= f64::MIN_POSITIVE {
                update(x, &hcols, &g, &z, inner);
                continue 'outer;
            }
            let mut vnext = w;
            for vk in &mut vnext {
                *vk /= wnorm;
            }
            v.push(vnext);
        }
        update(x, &hcols, &g, &z, inner);
        if total_iters >= max_iterations {
            let _s = famg_prof::scope("spmv");
            // ALLOC: one exit-path residual buffer for the final report.
            let mut r = vec![0.0; nl];
            relres =
                try_dist_residual_norm_sq(comm, a, &lvl0.plan_a, x, b, &mut r, ov)?.sqrt() / bnorm;
            famg_prof::counter("flops", flops::spmv(local_nnz(a)) + flops::dot(nl));
            break;
        }
    }

    drop(scope);
    drop(root_span);
    let profile = famg_prof::take();
    let times = profile
        .find_root("solve")
        .map(PhaseTimes::from_span)
        .unwrap_or_default();
    Ok(DistSolveResult {
        iterations: total_iters,
        final_relres: relres,
        converged: relres <= tolerance,
        times,
        solve_comm_time: comm.comm_time_since(comm_t0),
        solve_comm: comm_since(comm, mark),
        profile,
    })
}

/// Distributed conjugate gradients preconditioned with one AMG V-cycle
/// per iteration. Each iteration performs the two global reductions the
/// paper's §1 identifies as the Krylov scalability cost — compare the
/// collective counts against `dist_amg_solve`, which needs only the
/// residual-norm reduction.
pub fn dist_pcg_amg(
    comm: &Comm,
    h: &DistHierarchy,
    b: &[f64],
    x: &mut [f64],
    tolerance: f64,
    max_iterations: usize,
) -> DistSolveResult {
    try_dist_pcg_amg(comm, h, b, x, tolerance, max_iterations)
        .unwrap_or_else(|e| panic!("famg distributed PCG: {e}"))
}

/// [`dist_pcg_amg`] with up-front shape validation.
pub fn try_dist_pcg_amg(
    comm: &Comm,
    h: &DistHierarchy,
    b: &[f64],
    x: &mut [f64],
    tolerance: f64,
    max_iterations: usize,
) -> Result<DistSolveResult, SolveError> {
    check_args(h, b, x)?;
    let comm_t0 = comm.comm_time();
    let mark = comm_mark(comm);
    let root_span = famg_prof::scope("solve");
    let scope = comm.scoped(0, CommPhase::Solve);
    let lvl0 = &h.levels[0];
    let a = &lvl0.a;
    let ov = h.dist_opt.overlap_comm;
    let nl = a.local_rows();

    // ALLOC: per-solve PCG vectors (r, z, p, ap) and cycle workspace,
    // allocated once here and reused by every iteration.
    let mut r = vec![0.0; nl];
    let mut ws = DistCycleWorkspace::for_hierarchy(h);
    let bnorm;
    {
        let _s = famg_prof::scope("blas1");
        bnorm = dist_norm2(comm, b).max(f64::MIN_POSITIVE);
        try_dist_residual_norm_sq(comm, a, &lvl0.plan_a, x, b, &mut r, ov)?;
        famg_prof::counter(
            "flops",
            flops::dot(nl) + flops::spmv(local_nnz(a)) + flops::dot(nl),
        );
    }
    let mut z = vec![0.0; nl]; // ALLOC: per-solve preconditioned residual
    try_dist_vcycle_with(comm, h, 0, &r, &mut z, &mut ws)?;
    let mut p = z.clone(); // ALLOC: per-solve search direction
    let (mut rz, mut relres);
    {
        let _s = famg_prof::scope("blas1");
        rz = dist_dot(comm, &r, &z);
        relres = dist_norm2(comm, &r) / bnorm;
        famg_prof::counter("flops", 2 * flops::dot(nl));
    }
    let mut iterations = 0usize;
    let mut ap = vec![0.0; nl]; // ALLOC: per-solve A·p buffer

    while relres > tolerance && iterations < max_iterations {
        let pap;
        {
            let _s = famg_prof::scope("spmv");
            try_dist_spmv(comm, a, &lvl0.plan_a, &p, &mut ap, ov)?;
            pap = dist_dot(comm, &p, &ap);
            famg_prof::counter("flops", flops::spmv(local_nnz(a)) + flops::dot(nl));
        }
        if pap <= 0.0 {
            break; // breakdown (non-SPD operator or preconditioner)
        }
        let alpha = rz / pap;
        for i in 0..nl {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        z.fill(0.0);
        try_dist_vcycle_with(comm, h, 0, &r, &mut z, &mut ws)?;
        {
            let _s = famg_prof::scope("blas1");
            let rz_new = dist_dot(comm, &r, &z);
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..nl {
                p[i] = z[i] + beta * p[i];
            }
            iterations += 1;
            relres = dist_norm2(comm, &r) / bnorm;
            famg_prof::counter("flops", 2 * flops::dot(nl) + 2 * flops::axpy(nl));
        }
    }
    drop(scope);
    drop(root_span);
    let profile = famg_prof::take();
    let times = profile
        .find_root("solve")
        .map(PhaseTimes::from_span)
        .unwrap_or_default();
    Ok(DistSolveResult {
        iterations,
        final_relres: relres,
        converged: relres <= tolerance,
        times,
        solve_comm_time: comm.comm_time_since(comm_t0),
        solve_comm: comm_since(comm, mark),
        profile,
    })
}

fn update(x: &mut [f64], h: &[Vec<f64>], g: &[f64], z: &[Vec<f64>], k: usize) {
    if k == 0 {
        return;
    }
    // ALLOC: k-sized triangular-solve scratch, once per restart exit.
    let mut y = vec![0.0f64; k];
    for i in (0..k).rev() {
        let mut acc = g[i];
        for j in i + 1..k {
            acc -= h[j][i] * y[j];
        }
        y[i] = acc / h[i][i];
    }
    for (j, yj) in y.iter().enumerate() {
        for (xi, zi) in x.iter_mut().zip(&z[j]) {
            *xi += yj * zi;
        }
    }
}

fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() > b.abs() {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c, c * t)
    } else {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use crate::hierarchy::{DistHierarchy, DistOptFlags};
    use crate::parcsr::{default_partition, ParCsr};
    use famg_core::params::AmgConfig;
    use famg_matgen::{amg2013_like, laplace2d, rhs};

    fn solve_dist(
        a: &famg_sparse::Csr,
        cfg: &AmgConfig,
        nranks: usize,
        dopt: DistOptFlags,
        fgmres: bool,
    ) -> (Vec<f64>, usize, bool) {
        let n = a.nrows();
        let b = rhs::ones(n);
        let starts = default_partition(n, nranks);
        let (parts, _) = run_ranks(nranks, |c| {
            let r = c.rank();
            let pa = ParCsr::from_global_rows(a, starts[r], starts[r + 1], starts.clone(), r);
            let h = DistHierarchy::build(c, pa, cfg, dopt);
            let bl = b[starts[r]..starts[r + 1]].to_vec();
            let mut xl = vec![0.0; bl.len()];
            let res = if fgmres {
                dist_fgmres_amg(c, &h, &bl, &mut xl, cfg.tolerance, 200, 50)
            } else {
                dist_amg_solve(c, &h, &bl, &mut xl)
            };
            (xl, res.iterations, res.converged)
        });
        let x: Vec<f64> = parts.iter().flat_map(|(xl, _, _)| xl.clone()).collect();
        (x, parts[0].1, parts[0].2)
    }

    fn check(a: &famg_sparse::Csr, x: &[f64], tol: f64) {
        let b = rhs::ones(a.nrows());
        let mut r = vec![0.0; b.len()];
        let rn = famg_sparse::spmv::residual_norm_sq(a, x, &b, &mut r).sqrt();
        let bn = famg_sparse::vecops::norm2(&b);
        assert!(rn / bn <= tol * 1.05, "relres {}", rn / bn);
    }

    #[test]
    fn dist_amg_solves_laplacian() {
        let a = laplace2d(24, 24);
        let cfg = AmgConfig::single_node_paper();
        for nranks in [1usize, 3] {
            let (x, iters, conv) = solve_dist(&a, &cfg, nranks, DistOptFlags::default(), false);
            assert!(conv, "nranks {nranks}");
            assert!(iters < 40);
            check(&a, &x, cfg.tolerance);
        }
    }

    #[test]
    fn dist_fgmres_amg_solves_jumpy_problem() {
        let a = amg2013_like(8, 8, 8, 2, 2.0, 3);
        let cfg = AmgConfig::multi_node_ei4();
        let (x, iters, conv) = solve_dist(&a, &cfg, 2, DistOptFlags::default(), true);
        assert!(conv);
        assert!(iters < 60, "iters {iters}");
        check(&a, &x, cfg.tolerance);
    }

    #[test]
    fn all_interp_schemes_solve_distributed() {
        let a = laplace2d(20, 20);
        for cfg in [
            AmgConfig::multi_node_ei4(),
            AmgConfig::multi_node_mp(),
            AmgConfig::multi_node_2s_ei444(),
        ] {
            let (x, _, conv) = solve_dist(&a, &cfg, 2, DistOptFlags::default(), true);
            assert!(conv, "{:?}", cfg.interp);
            check(&a, &x, cfg.tolerance);
        }
    }

    #[test]
    fn baseline_flags_same_solution_class() {
        let a = laplace2d(16, 16);
        let cfg = AmgConfig::single_node_paper();
        let (x1, i1, c1) = solve_dist(&a, &cfg, 3, DistOptFlags::all(), false);
        let (x2, i2, c2) = solve_dist(&a, &cfg, 3, DistOptFlags::none(), false);
        assert!(c1 && c2);
        assert_eq!(i1, i2, "optimizations changed convergence");
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn dist_pcg_amg_solves_spd_system() {
        let a = laplace2d(20, 20);
        let n = a.nrows();
        let b = rhs::ones(n);
        let cfg = AmgConfig::single_node_paper();
        let starts = default_partition(n, 3);
        let (parts, _) = run_ranks(3, |c| {
            let r = c.rank();
            let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::default());
            let bl = b[starts[r]..starts[r + 1]].to_vec();
            let mut xl = vec![0.0; bl.len()];
            let res = dist_pcg_amg(c, &h, &bl, &mut xl, 1e-7, 100);
            assert!(res.converged, "PCG stalled at {:.2e}", res.final_relres);
            assert!(res.iterations < 25, "PCG took {}", res.iterations);
            xl
        });
        let x: Vec<f64> = parts.concat();
        check(&a, &x, 1e-7);
    }

    #[test]
    fn solve_with_prewarmed_comm_clock() {
        // Regression test for the old `checked_sub(comm_t0).unwrap()`
        // sites: setup and an extra collective round accumulate comm
        // time *before* the solve snapshots its baseline, and the solve
        // must still report a window no larger than the running total.
        let a = laplace2d(16, 16);
        let cfg = AmgConfig::single_node_paper();
        let starts = default_partition(a.nrows(), 3);
        let b = rhs::ones(a.nrows());
        run_ranks(3, |c| {
            let r = c.rank();
            let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::default());
            // Pre-warm the clock past the hierarchy's own traffic.
            for _ in 0..3 {
                c.barrier();
                c.allreduce_sum(1.0, 0x777);
            }
            let warm = c.comm_time();
            let bl = b[starts[r]..starts[r + 1]].to_vec();
            let mut xl = vec![0.0; bl.len()];
            let res = dist_amg_solve(c, &h, &bl, &mut xl);
            assert!(res.converged);
            assert!(
                res.solve_comm_time <= c.comm_time(),
                "solve window exceeds the running comm clock"
            );
            assert!(c.comm_time() >= warm);
        });
    }

    #[test]
    fn try_solve_rejects_mis_sized_vectors() {
        let a = laplace2d(8, 8);
        let cfg = AmgConfig::single_node_paper();
        let starts = default_partition(a.nrows(), 2);
        run_ranks(2, |c| {
            let r = c.rank();
            let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::default());
            let n = starts[r + 1] - starts[r];
            let bad_b = vec![1.0; n + 1];
            let mut x = vec![0.0; n];
            let err = try_dist_amg_solve(c, &h, &bad_b, &mut x).unwrap_err();
            assert!(matches!(
                err,
                SolveError::DimensionMismatch {
                    what: "local right-hand side",
                    ..
                }
            ));
            let b = vec![1.0; n];
            let mut bad_x = vec![0.0; n + 2];
            let err = try_dist_pcg_amg(c, &h, &b, &mut bad_x, 1e-8, 10).unwrap_err();
            assert!(matches!(
                err,
                SolveError::DimensionMismatch {
                    what: "local initial guess",
                    ..
                }
            ));
        });
    }

    #[test]
    fn try_solve_rejects_malformed_hierarchy() {
        let a = laplace2d(12, 12);
        let cfg = AmgConfig::single_node_paper();
        let starts = default_partition(a.nrows(), 2);
        run_ranks(2, |c| {
            let r = c.rank();
            let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let mut h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::default());
            assert!(h.num_levels() > 1, "problem too small to be multilevel");
            // Knock out one transfer operator on a non-coarsest level.
            h.levels[0].plan_r = None;
            let n = starts[r + 1] - starts[r];
            let b = vec![1.0; n];
            let mut x = vec![0.0; n];
            let err = try_dist_fgmres_amg(c, &h, &b, &mut x, 1e-8, 10, 5).unwrap_err();
            assert!(matches!(
                err,
                SolveError::MalformedHierarchy { level: 0, .. }
            ));
        });
    }

    #[test]
    fn solve_profile_reconciles_with_times_and_comm() {
        if !famg_prof::enabled() {
            return; // span collection compiled out
        }
        let a = laplace2d(16, 16);
        let cfg = AmgConfig::single_node_paper();
        let starts = default_partition(a.nrows(), 2);
        let b = rhs::ones(a.nrows());
        run_ranks(2, |c| {
            let r = c.rank();
            let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::default());
            // Setup captured its own profile with a "setup" root.
            let setup_root = h.profile.find_root("setup").expect("setup profile");
            assert!(setup_root.wall > std::time::Duration::ZERO);
            let bl = b[starts[r]..starts[r + 1]].to_vec();
            let mut xl = vec![0.0; bl.len()];
            let res = dist_amg_solve(c, &h, &bl, &mut xl);
            let root = res.profile.find_root("solve").expect("solve profile");
            // The Fig. 5 buckets are a *view* of the span tree: their sum
            // reconstructs the root wall exactly (saturating self-times
            // can only lose time, never invent it).
            assert!(res.times.solve_total() <= root.wall);
            let lost = root.wall.checked_sub(res.times.solve_total()).unwrap();
            assert!(
                lost <= root.wall / 100 + std::time::Duration::from_micros(50),
                "bucket view lost {lost:?} of {:?}",
                root.wall
            );
            // Comm counters attributed at the send choke point match the
            // per-rank volume window measured by comm_mark/comm_since.
            assert_eq!(
                res.profile.total_counter("comm_bytes"),
                res.solve_comm.bytes
            );
            assert_eq!(
                res.profile.total_counter("comm_messages"),
                res.solve_comm.messages
            );
            // And flops were attached.
            assert!(root.total_counter("flops") > 0);
        });
    }

    #[test]
    fn empty_ranks_tolerated() {
        // More ranks than make sense for the size: trailing ranks own
        // almost nothing; the whole pipeline must still run and agree.
        let a = laplace2d(6, 6); // 36 rows on 5 ranks -> ranks of 7/7/7/7/8
        let cfg = AmgConfig {
            coarse_solve_size: 8,
            ..AmgConfig::single_node_paper()
        };
        let (x, _, conv) = solve_dist(&a, &cfg, 5, DistOptFlags::default(), false);
        assert!(conv);
        check(&a, &x, cfg.tolerance);
    }

    #[test]
    fn batch_solve_bitwise_matches_solo_columns_across_ranks() {
        // The determinism contract at the distributed level: column j of
        // a k-wide solve is bitwise identical to the scalar solve of
        // (b_j, 0), at every rank count and in both halo modes.
        let a = laplace2d(16, 16);
        let n = a.nrows();
        let k = 3usize;
        let cfg = AmgConfig::single_node_paper();
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                (0..n)
                    .map(|i| ((i * (j + 3) + j) % 13) as f64 / 13.0 - 0.3)
                    .collect()
            })
            .collect();
        for nranks in [1usize, 2, 4] {
            for overlap in [false, true] {
                let dopt = DistOptFlags {
                    overlap_comm: overlap,
                    ..DistOptFlags::default()
                };
                let starts = default_partition(n, nranks);
                run_ranks(nranks, |c| {
                    let r = c.rank();
                    let (s, e) = (starts[r], starts[r + 1]);
                    let pa = ParCsr::from_global_rows(&a, s, e, starts.clone(), r);
                    let h = DistHierarchy::build(c, pa, &cfg, dopt);
                    let local_cols: Vec<Vec<f64>> =
                        cols.iter().map(|col| col[s..e].to_vec()).collect();
                    let bb = famg_sparse::MultiVec::from_columns(&local_cols);
                    let mut xb = famg_sparse::MultiVec::new(e - s, k);
                    let res = dist_amg_solve_multi(c, &h, &bb, &mut xb);
                    assert_eq!(res.k(), k);
                    for (j, bl) in local_cols.iter().enumerate() {
                        let mut xl = vec![0.0; e - s];
                        let solo = dist_amg_solve(c, &h, bl, &mut xl);
                        assert_eq!(
                            res.iterations[j], solo.iterations,
                            "iters col {j} ranks {nranks} overlap {overlap}"
                        );
                        assert_eq!(
                            res.final_relres[j].to_bits(),
                            solo.final_relres.to_bits(),
                            "relres col {j} ranks {nranks} overlap {overlap}"
                        );
                        assert_eq!(res.converged[j], solo.converged);
                        assert!(solo.converged);
                        let bcol = xb.col(j);
                        for (i, (bx, sx)) in bcol.iter().zip(&xl).enumerate() {
                            assert_eq!(
                                bx.to_bits(),
                                sx.to_bits(),
                                "x[{i}] col {j} ranks {nranks} overlap {overlap}"
                            );
                        }
                    }
                });
            }
        }
    }

    #[test]
    fn batch_solve_masks_converged_and_edge_widths() {
        let a = laplace2d(12, 12);
        let n = a.nrows();
        let cfg = AmgConfig {
            max_iterations: 3,
            ..AmgConfig::single_node_paper()
        };
        let starts = default_partition(n, 2);
        run_ranks(2, |c| {
            let r = c.rank();
            let (s, e) = (starts[r], starts[r + 1]);
            let pa = ParCsr::from_global_rows(&a, s, e, starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::default());
            let nl = e - s;
            // k = 0 block: a no-op that must not communicate unevenly.
            let b0 = famg_sparse::MultiVec::new(nl, 0);
            let mut x0 = famg_sparse::MultiVec::new(nl, 0);
            let res0 = dist_amg_solve_multi(c, &h, &b0, &mut x0);
            assert_eq!(res0.k(), 0);
            assert!(res0.all_converged());
            // Column 0 starts converged (zero RHS); column 1 cannot
            // converge in 3 cycles. The dead lane must stay pinned at
            // its snapshot and not corrupt the live lane.
            let bl: Vec<f64> = (0..nl).map(|i| ((s + i) % 7) as f64 - 3.0).collect();
            let cols = vec![vec![0.0; nl], bl.clone()];
            let bb = famg_sparse::MultiVec::from_columns(&cols);
            let mut xb = famg_sparse::MultiVec::new(nl, 2);
            let res = dist_amg_solve_multi(c, &h, &bb, &mut xb);
            assert_eq!(res.iterations[0], 0);
            assert!(res.converged[0]);
            assert!(xb.col(0).iter().all(|&v| v == 0.0));
            assert_eq!(res.iterations[1], 3);
            assert!(!res.converged[1]);
            let mut xl = vec![0.0; nl];
            let solo = dist_amg_solve(c, &h, &bl, &mut xl);
            assert_eq!(res.final_relres[1].to_bits(), solo.final_relres.to_bits());
            for (bx, sx) in xb.col(1).iter().zip(&xl) {
                assert_eq!(bx.to_bits(), sx.to_bits());
            }
            // Shape errors are typed.
            let bad = famg_sparse::MultiVec::new(nl + 1, 2);
            let mut xg = famg_sparse::MultiVec::new(nl, 2);
            let err = try_dist_amg_solve_multi(c, &h, &bad, &mut xg).unwrap_err();
            assert!(matches!(
                err,
                SolveError::DimensionMismatch {
                    what: "local right-hand side block",
                    ..
                }
            ));
            let good = famg_sparse::MultiVec::new(nl, 2);
            let mut wrong_k = famg_sparse::MultiVec::new(nl, 3);
            let err = try_dist_amg_solve_multi(c, &h, &good, &mut wrong_k).unwrap_err();
            assert!(matches!(
                err,
                SolveError::DimensionMismatch {
                    what: "local initial guess block width",
                    ..
                }
            ));
        });
    }

    #[test]
    fn batch_vcycle_amortizes_halo_messages() {
        // The point of the batched path: the per-V-cycle message count
        // is independent of k. Compare one batched cycle at k = 4
        // against one scalar cycle — identical message counts.
        let a = laplace2d(16, 16);
        let n = a.nrows();
        let cfg = AmgConfig::single_node_paper();
        let starts = default_partition(n, 4);
        run_ranks(4, |c| {
            let r = c.rank();
            let (s, e) = (starts[r], starts[r + 1]);
            let pa = ParCsr::from_global_rows(&a, s, e, starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::default());
            let nl = e - s;
            let bl: Vec<f64> = (0..nl).map(|i| (s + i) as f64).collect();
            c.barrier();
            let m0 = c.messages_sent();
            let mut xs = vec![0.0; nl];
            dist_vcycle(c, &h, 0, &bl, &mut xs);
            c.barrier();
            let scalar_msgs = c.messages_sent() - m0;
            let bb = famg_sparse::MultiVec::from_columns(&vec![bl.clone(); 4]);
            let mut xb = famg_sparse::MultiVec::new(nl, 4);
            let m1 = c.messages_sent();
            dist_vcycle_multi(c, &h, 0, &bb, &mut xb);
            c.barrier();
            let batch_msgs = c.messages_sent() - m1;
            assert_eq!(
                batch_msgs, scalar_msgs,
                "k=4 cycle must send exactly as many messages as k=1"
            );
        });
    }

    #[test]
    fn rank_count_does_not_change_iterations_much() {
        let a = laplace2d(20, 20);
        let cfg = AmgConfig::single_node_paper();
        let (_, i1, _) = solve_dist(&a, &cfg, 1, DistOptFlags::default(), false);
        let (_, i4, _) = solve_dist(&a, &cfg, 4, DistOptFlags::default(), false);
        // Hybrid smoothing degrades slightly with rank count but stays
        // in the same class (the paper's weak-scaling premise).
        assert!(i4 <= i1 + 4, "iters {i1} -> {i4}");
    }
}

//! # famg-dist
//!
//! Distributed-memory AMG over a *simulated* message-passing runtime.
//!
//! The paper's multi-node optimizations (§4) are algorithmic: the ParCSR
//! distributed matrix layout, halo exchanges, gathering of remote matrix
//! rows for SpGEMM-like operations, parallel renumbering of received
//! column indices (Fig. 4), filtering of remote interpolation rows
//! (§4.3), and persistent communication. This crate implements all of
//! them against [`comm`] — an in-process SPMD runtime where every "rank"
//! is an OS thread and every message is accounted byte-for-byte — so the
//! paper's communication-volume results reproduce exactly while the
//! transport (InfiniBand vs. channels) is the documented substitution.
//!
//! Modules:
//! * [`comm`] — the SPMD runtime: ranks, point-to-point sends, barriers,
//!   collectives, byte/message accounting,
//! * [`parcsr`] — HYPRE's distributed matrix: per-rank `diag`/`offd`
//!   blocks with compressed off-diagonal columns and `colmap` (Fig. 3a),
//! * [`renumber`] — sequential and parallel column-index renumbering for
//!   received rows (§4.2, Fig. 4),
//! * [`halo`] — vector halo exchange (Fig. 3b), ad-hoc and persistent
//!   (§4.4), split into `post`/`finish` halves so kernels can overlap the
//!   in-flight halo with interior computation, and matrix-row gathering
//!   (Fig. 3c) with optional §4.3 filtering,
//! * [`spmv`] — distributed SpMV and fused residual norms, synchronous
//!   or communication-overlapped (bitwise-identical results),
//! * [`spgemm`] — distributed SpGEMM and transpose,
//! * [`coarsen`] — distributed PMIS (+ aggressive second pass),
//! * [`interp`] — distributed direct / extended+i / multipass /
//!   2-stage extended+i interpolation,
//! * [`hierarchy`] — the distributed setup phase,
//! * [`solve`] — distributed V-cycle, standalone AMG and FGMRES+AMG.

// Kernels index several parallel arrays in lockstep; indexed loops are
// the clearest expression of that and match the reference implementations.
#![allow(clippy::needless_range_loop)]
pub mod coarsen;
pub mod comm;
pub mod halo;
pub mod hierarchy;
pub mod interp;
pub mod parcsr;
pub mod renumber;
pub mod solve;
pub mod spgemm;
pub mod spmv;

pub use comm::{run_ranks, Comm, RecvHandle};
pub use halo::{InFlightHalo, InFlightHaloMulti, VectorExchange};
pub use hierarchy::{DistFrozenSetup, DistHierarchy, DistOptFlags};
pub use parcsr::ParCsr;

//! The simulated message-passing runtime.
//!
//! Each rank is an OS thread running the same SPMD closure. Point-to-point
//! messages travel over crossbeam channels as type-erased payloads tagged
//! with `(src, tag)`; a per-rank pending buffer reorders out-of-order
//! arrivals, so `send`/`recv` semantics match tagged MPI. Every inter-rank
//! message is accounted (bytes + count + wall time blocked in recv), which
//! is how the paper's communication-volume numbers (§4.3, §5.4) are
//! reproduced without real network hardware (see DESIGN.md §2).

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// How long a blocking `recv` waits before declaring a deadlock.
const RECV_TIMEOUT: Duration = Duration::from_mins(2);

struct Envelope {
    src: usize,
    tag: u64,
    bytes: usize,
    payload: Box<dyn Any + Send>,
}

/// Per-rank communication counters (shared, atomically updated).
#[derive(Debug, Default)]
pub struct RankCounters {
    /// Bytes sent to other ranks (self-sends excluded).
    pub bytes_sent: AtomicU64,
    /// Messages sent to other ranks.
    pub messages_sent: AtomicU64,
}

/// Aggregate statistics for a finished run.
#[derive(Debug, Clone, Default)]
pub struct CommReport {
    /// Bytes sent per rank.
    pub bytes_per_rank: Vec<u64>,
    /// Messages sent per rank.
    pub messages_per_rank: Vec<u64>,
}

impl CommReport {
    /// Total bytes across ranks.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_rank.iter().sum()
    }

    /// Total messages across ranks.
    pub fn total_messages(&self) -> u64 {
        self.messages_per_rank.iter().sum()
    }
}

/// A rank's endpoint in the simulated world.
#[allow(clippy::struct_field_names)] // comm_time mirrors the MPI profiling name
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    pending: RefCell<HashMap<(usize, u64), VecDeque<Envelope>>>,
    barrier: Arc<Barrier>,
    counters: Arc<Vec<RankCounters>>,
    /// Wall time this rank has spent blocked in `recv`/`barrier`.
    comm_time: Cell<Duration>,
}

impl Comm {
    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Wall time spent blocked on communication so far.
    pub fn comm_time(&self) -> Duration {
        self.comm_time.get()
    }

    /// Bytes this rank has sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.counters[self.rank].bytes_sent.load(Ordering::Relaxed)
    }

    /// Sends `payload` (`bytes` on the wire) to `dst` under `tag`.
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u64, payload: T, bytes: usize) {
        if dst != self.rank {
            let c = &self.counters[self.rank];
            c.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
            c.messages_sent.fetch_add(1, Ordering::Relaxed);
        }
        self.senders[dst]
            .send(Envelope {
                src: self.rank,
                tag,
                bytes,
                payload: Box::new(payload),
            })
            .expect("rank hung up");
    }

    /// Blocking receive of the message sent by `src` under `tag`.
    ///
    /// # Panics
    /// Panics on type mismatch or after `RECV_TIMEOUT` (120 s) (deadlock guard).
    pub fn recv<T: 'static>(&self, src: usize, tag: u64) -> T {
        let key = (src, tag);
        // Check the pending buffer first.
        if let Some(q) = self.pending.borrow_mut().get_mut(&key) {
            if let Some(env) = q.pop_front() {
                return Self::unpack(env);
            }
        }
        let t0 = Instant::now();
        loop {
            let env = self
                .receiver
                .recv_timeout(RECV_TIMEOUT)
                .unwrap_or_else(|_| {
                    panic!(
                        "rank {} timed out waiting for (src {}, tag {})",
                        self.rank, src, tag
                    )
                });
            if env.src == src && env.tag == tag {
                self.comm_time.set(self.comm_time.get() + t0.elapsed());
                return Self::unpack(env);
            }
            self.pending
                .borrow_mut()
                .entry((env.src, env.tag))
                .or_default()
                .push_back(env);
        }
    }

    fn unpack<T: 'static>(env: Envelope) -> T {
        let _ = env.bytes;
        *env.payload
            .downcast::<T>()
            .expect("message type mismatch for (src, tag)")
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        let t0 = Instant::now();
        self.barrier.wait();
        self.comm_time.set(self.comm_time.get() + t0.elapsed());
    }

    /// All-to-all: `sends[dst]` goes to rank `dst`; returns `recv[src]`.
    /// `bytes(payload)` accounts the wire size.
    pub fn alltoall<T: Send + 'static>(
        &self,
        mut sends: Vec<T>,
        tag: u64,
        bytes: impl Fn(&T) -> usize,
    ) -> Vec<T> {
        assert_eq!(sends.len(), self.size);
        // Take out our own slot without communication.
        let mine = sends.remove(self.rank);
        for (dst, payload) in sends.into_iter().enumerate() {
            let dst = if dst >= self.rank { dst + 1 } else { dst };
            let b = bytes(&payload);
            self.send(dst, tag, payload, b);
        }
        let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
        out[self.rank] = Some(mine);
        for src in 0..self.size {
            if src != self.rank {
                out[src] = Some(self.recv(src, tag));
            }
        }
        out.into_iter().map(|o| o.unwrap()).collect()
    }

    /// All-gather of one value per rank.
    pub fn allgather<T: Clone + Send + 'static>(&self, v: T, tag: u64, bytes: usize) -> Vec<T> {
        let sends: Vec<T> = (0..self.size).map(|_| v.clone()).collect();
        self.alltoall(sends, tag, |_| bytes)
    }

    /// Global sum of a scalar (the all-reduce the paper's §1 discusses).
    pub fn allreduce_sum(&self, v: f64, tag: u64) -> f64 {
        self.allgather(v, tag, 8).into_iter().sum()
    }

    /// Global max of a scalar.
    pub fn allreduce_max(&self, v: f64, tag: u64) -> f64 {
        self.allgather(v, tag, 8)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Global sum of a usize.
    pub fn allreduce_sum_usize(&self, v: usize, tag: u64) -> usize {
        self.allgather(v, tag, 8).into_iter().sum()
    }

    /// Global logical-or.
    pub fn allreduce_or(&self, v: bool, tag: u64) -> bool {
        self.allgather(v, tag, 1).into_iter().any(|b| b)
    }

    /// Exclusive prefix sum across ranks (rank r gets Σ_{r'<r} v_{r'});
    /// also returns the global total.
    pub fn exscan_sum(&self, v: usize, tag: u64) -> (usize, usize) {
        let all = self.allgather(v, tag, 8);
        let before: usize = all[..self.rank].iter().sum();
        let total: usize = all.iter().sum();
        (before, total)
    }
}

/// Runs `nranks` copies of `f` as SPMD threads; returns each rank's value
/// (index = rank) plus the communication report.
pub fn run_ranks<T: Send>(nranks: usize, f: impl Fn(&Comm) -> T + Sync) -> (Vec<T>, CommReport) {
    assert!(nranks > 0);
    let mut senders = Vec::with_capacity(nranks);
    let mut receivers = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let barrier = Arc::new(Barrier::new(nranks));
    let counters: Arc<Vec<RankCounters>> =
        Arc::new((0..nranks).map(|_| RankCounters::default()).collect());

    let mut results: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, receiver) in receivers.into_iter().enumerate() {
            let comm = Comm {
                rank,
                size: nranks,
                senders: senders.clone(),
                receiver,
                pending: RefCell::new(HashMap::new()),
                barrier: Arc::clone(&barrier),
                counters: Arc::clone(&counters),
                comm_time: Cell::new(Duration::ZERO),
            };
            let f = &f;
            handles.push(scope.spawn(move || f(&comm)));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("rank panicked"));
        }
    });

    let report = CommReport {
        bytes_per_rank: counters
            .iter()
            .map(|c| c.bytes_sent.load(Ordering::Relaxed))
            .collect(),
        messages_per_rank: counters
            .iter()
            .map(|c| c.messages_sent.load(Ordering::Relaxed))
            .collect(),
    };
    (results.into_iter().map(|o| o.unwrap()).collect(), report)
}

/// Wire size helpers.
pub mod wire {
    /// Bytes of a `f64` slice.
    pub fn f64s(n: usize) -> usize {
        8 * n
    }
    /// Bytes of an index slice (indices travel as 64-bit).
    pub fn idxs(n: usize) -> usize {
        8 * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let (vals, report) = run_ranks(4, |c| {
            let next = (c.rank() + 1) % 4;
            let prev = (c.rank() + 3) % 4;
            c.send(next, 1, c.rank() as u64, 8);
            c.recv::<u64>(prev, 1)
        });
        assert_eq!(vals, vec![3, 0, 1, 2]);
        assert_eq!(report.total_messages(), 4);
        assert_eq!(report.total_bytes(), 32);
    }

    #[test]
    fn out_of_order_tags() {
        let (vals, _) = run_ranks(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, 70u32, 4);
                c.send(1, 8, 80u32, 4);
                0u32
            } else {
                // Receive in reverse tag order: buffering must reorder.
                let b = c.recv::<u32>(0, 8);
                let a = c.recv::<u32>(0, 7);
                a + b
            }
        });
        assert_eq!(vals[1], 150);
    }

    #[test]
    fn collectives() {
        let (vals, _) = run_ranks(3, |c| {
            let s = c.allreduce_sum((c.rank() + 1) as f64, 2);
            let m = c.allreduce_max(c.rank() as f64, 3);
            let (before, total) = c.exscan_sum(10 * (c.rank() + 1), 4);
            (s, m, before, total)
        });
        for (s, m, _, total) in &vals {
            assert_eq!(*s, 6.0);
            assert_eq!(*m, 2.0);
            assert_eq!(*total, 60);
        }
        assert_eq!(vals[0].2, 0);
        assert_eq!(vals[1].2, 10);
        assert_eq!(vals[2].2, 30);
    }

    #[test]
    fn alltoall_routes_correctly() {
        let (vals, report) = run_ranks(3, |c| {
            let sends: Vec<u64> = (0..3).map(|d| (10 * c.rank() + d) as u64).collect();
            c.alltoall(sends, 5, |_| 8)
        });
        // vals[r][s] = 10*s + r
        for r in 0..3 {
            for s in 0..3 {
                assert_eq!(vals[r][s], (10 * s + r) as u64);
            }
        }
        // 6 inter-rank messages (self slots don't hit the wire).
        assert_eq!(report.total_messages(), 6);
    }

    #[test]
    fn self_sends_free() {
        let (_, report) = run_ranks(1, |c| {
            c.send(0, 1, 42u8, 1000);
            assert_eq!(c.recv::<u8>(0, 1), 42);
        });
        assert_eq!(report.total_bytes(), 0);
        assert_eq!(report.total_messages(), 0);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks(4, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }
}

//! The simulated message-passing runtime.
//!
//! Each rank is an OS thread running the same SPMD closure. Point-to-point
//! messages travel over crossbeam channels as type-erased payloads tagged
//! with `(src, tag)`; a per-rank pending buffer reorders out-of-order
//! arrivals, so `send`/`recv` semantics match tagged MPI. Every inter-rank
//! message is accounted (bytes + count + wall time blocked in recv), and
//! can be attributed to a `(level, phase)` scope, which is how the paper's
//! communication-volume numbers (§4.3, §5.4) are reproduced without real
//! network hardware (see DESIGN.md §2).
//!
//! Collectives are *neighbor- and tree-aware*: reductions, gathers and
//! scatters run over a binomial tree rooted at a fixed rank (O(log P)
//! rounds, 2(P−1) total messages), and [`Comm::alltoallv`] exchanges
//! payloads only between ranks with nonzero traffic. The final combine of
//! every reduction walks contributions in rank order, so results are
//! bitwise identical to the naive rank-ordered implementation for a fixed
//! rank count — the determinism contract the distributed solver tests
//! rely on.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// How long a blocking `recv` waits before declaring a deadlock.
const RECV_TIMEOUT: Duration = Duration::from_mins(2);

struct Envelope {
    src: usize,
    tag: u64,
    bytes: usize,
    /// When the sender posted this message. Ranks share one process, so
    /// sender and receiver clocks are the same clock; with an in-process
    /// channel the message is deliverable the instant `send` returns,
    /// making this the arrival time for overlap telemetry.
    sent_at: Instant,
    payload: Box<dyn Any + Send>,
}

/// An in-flight receive posted by [`Comm::irecv`]. If the message had
/// already arrived when the handle was posted it is resolved eagerly;
/// otherwise [`Comm::wait`] blocks for it. Dropping an unresolved handle
/// leaves the message for a later `recv`/`irecv` of the same `(src, tag)`.
#[must_use = "complete the receive with Comm::wait"]
pub struct RecvHandle<T> {
    src: usize,
    tag: u64,
    ready: Option<Envelope>,
    _payload: std::marker::PhantomData<T>,
}

impl<T> RecvHandle<T> {
    /// True if the message had already arrived when the handle was posted
    /// (waiting on it will not block).
    pub fn is_ready(&self) -> bool {
        self.ready.is_some()
    }
}

/// Which solver phase a message belongs to (telemetry attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommPhase {
    /// Hierarchy construction.
    Setup,
    /// Cycling / Krylov iteration.
    Solve,
    /// Traffic outside any scoped region.
    Other,
}

impl CommPhase {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            CommPhase::Setup => "setup",
            CommPhase::Solve => "solve",
            CommPhase::Other => "other",
        }
    }
}

/// Level marker for traffic outside any scoped region.
pub const UNSCOPED_LEVEL: usize = usize::MAX;

/// Telemetry scope: `(hierarchy level, phase)`.
pub type ScopeKey = (usize, CommPhase);

/// Bytes and messages attributed to one scope.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScopeTotals {
    /// Bytes sent to other ranks.
    pub bytes: u64,
    /// Messages sent to other ranks.
    pub messages: u64,
}

/// Per-rank communication counters (shared, atomically updated).
#[derive(Debug, Default)]
pub struct RankCounters {
    /// Bytes sent to other ranks (self-sends excluded).
    pub bytes_sent: AtomicU64,
    /// Messages sent to other ranks.
    pub messages_sent: AtomicU64,
}

/// Aggregate statistics for a finished run.
#[derive(Debug, Clone, Default)]
pub struct CommReport {
    /// Bytes sent per rank.
    pub bytes_per_rank: Vec<u64>,
    /// Messages sent per rank.
    pub messages_per_rank: Vec<u64>,
    /// Bytes/messages per `(level, phase)` scope, summed over ranks.
    /// Unattributed traffic lands under `(UNSCOPED_LEVEL, Other)`.
    pub per_scope: BTreeMap<ScopeKey, ScopeTotals>,
}

impl CommReport {
    /// Total bytes across ranks.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_rank.iter().sum()
    }

    /// Total messages across ranks.
    pub fn total_messages(&self) -> u64 {
        self.messages_per_rank.iter().sum()
    }

    /// Formats the per-level, per-phase breakdown as an aligned table
    /// (the §4.3/§5.4 comm-volume view).
    pub fn scope_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>7} {:>6} {:>14} {:>10}",
            "level", "phase", "bytes", "messages"
        );
        for (&(level, phase), t) in &self.per_scope {
            let lvl = if level == UNSCOPED_LEVEL {
                "-".to_string()
            } else {
                level.to_string()
            };
            let _ = writeln!(
                out,
                "{:>7} {:>6} {:>14} {:>10}",
                lvl,
                phase.label(),
                t.bytes,
                t.messages
            );
        }
        let _ = writeln!(
            out,
            "{:>7} {:>6} {:>14} {:>10}",
            "total",
            "",
            self.total_bytes(),
            self.total_messages()
        );
        out
    }
}

/// Restores the previous telemetry scope on drop (see [`Comm::scoped`]).
pub struct ScopeGuard<'a> {
    comm: &'a Comm,
    prev: ScopeKey,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        self.comm.scope.set(self.prev);
    }
}

/// A rank's endpoint in the simulated world.
#[allow(clippy::struct_field_names)] // comm_time mirrors the MPI profiling name
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    pending: RefCell<HashMap<(usize, u64), VecDeque<Envelope>>>,
    barrier: Arc<Barrier>,
    counters: Arc<Vec<RankCounters>>,
    /// Per-rank scoped counters; rank `r` only ever locks entry `r`, so
    /// the mutex is uncontended — it exists to hand the maps back to
    /// `run_ranks` after the SPMD threads join.
    scoped: Arc<Vec<Mutex<BTreeMap<ScopeKey, ScopeTotals>>>>,
    /// Current telemetry scope for outgoing messages.
    scope: Cell<ScopeKey>,
    /// Wall time this rank has spent blocked in `recv`/`barrier`.
    comm_time: Cell<Duration>,
}

impl Comm {
    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Wall time spent blocked on communication so far.
    pub fn comm_time(&self) -> Duration {
        self.comm_time.get()
    }

    /// Communication time accumulated since an earlier [`Comm::comm_time`]
    /// snapshot `t0`. The clock is monotone non-decreasing by
    /// construction (only ever incremented), so a shortfall would mean a
    /// stale snapshot from a *different* rank's `Comm`; saturate to zero
    /// rather than panic, and flag it loudly in debug builds.
    pub fn comm_time_since(&self, t0: Duration) -> Duration {
        let now = self.comm_time.get();
        debug_assert!(
            now >= t0,
            "comm clock went backwards (now {now:?} < snapshot {t0:?}); \
             was the snapshot taken on a different rank's Comm?"
        );
        now.checked_sub(t0).unwrap_or(Duration::ZERO)
    }

    /// Bytes this rank has sent so far.
    pub fn bytes_sent(&self) -> u64 {
        // ORDERING: Relaxed — telemetry snapshot of this rank's own counter;
        // a rank reads what it wrote (program order), cross-rank totals are
        // only read after the simulated ranks join.
        self.counters[self.rank].bytes_sent.load(Ordering::Relaxed)
    }

    /// Messages this rank has sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.counters[self.rank]
            .messages_sent
            // ORDERING: Relaxed — as for `bytes_sent`: own-counter snapshot.
            .load(Ordering::Relaxed)
    }

    /// Enters a telemetry scope: until the returned guard drops, every
    /// outgoing message is attributed to `(level, phase)`. Scopes nest;
    /// dropping restores the enclosing scope.
    pub fn scoped(&self, level: usize, phase: CommPhase) -> ScopeGuard<'_> {
        let prev = self.scope.replace((level, phase));
        ScopeGuard { comm: self, prev }
    }

    /// Sends `payload` (`bytes` on the wire) to `dst` under `tag`.
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u64, payload: T, bytes: usize) {
        if dst != self.rank {
            let c = &self.counters[self.rank];
            // ORDERING: Relaxed — volume accounting only: the RMW keeps the
            // tallies exact and nothing reads them to synchronize; the
            // payload itself travels through the channel's own locking.
            c.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
            c.messages_sent.fetch_add(1, Ordering::Relaxed);
            let mut scoped = self.scoped[self.rank]
                .lock()
                // PANIC-FREE: poisoning requires a prior panic on another
                // rank's thread; propagating the abort is correct.
                .expect("comm telemetry mutex poisoned by a prior rank panic");
            let t = scoped.entry(self.scope.get()).or_default();
            t.bytes += bytes as u64;
            t.messages += 1;
            drop(scoped);
            // Attribute the same wire volume to the innermost open profiler
            // span on this rank's thread. Doing it here — at the single
            // point where bytes are accounted — means span counters can
            // never double-count nested spans and always reconcile with
            // the `CommReport` totals.
            famg_prof::counter("comm_bytes", bytes as u64);
            famg_prof::counter("comm_messages", 1);
        }
        self.senders[dst]
            .send(Envelope {
                src: self.rank,
                tag,
                bytes,
                sent_at: Instant::now(),
                payload: Box::new(payload), // ALLOC: envelope boxing is the in-process wire format
            })
            // PANIC-FREE: receivers live for the whole run_ranks scope; a
            // hung-up channel means a peer rank already panicked.
            .expect("rank hung up");
    }

    /// Blocking receive of the message sent by `src` under `tag`.
    ///
    /// # Panics
    /// Panics on type mismatch or after `RECV_TIMEOUT` (120 s) (deadlock guard).
    pub fn recv<T: 'static>(&self, src: usize, tag: u64) -> T {
        let handle = self.irecv(src, tag);
        self.wait(handle)
    }

    /// Non-blocking receive: returns a handle that is already resolved if
    /// the message from `(src, tag)` has arrived (in the pending buffer or
    /// sitting in the channel), and otherwise must be completed later with
    /// [`Comm::wait`]. Never blocks; only time spent in `wait` counts as
    /// communication time, which is how the exposed (non-overlapped) halo
    /// wait is measured.
    pub fn irecv<T: 'static>(&self, src: usize, tag: u64) -> RecvHandle<T> {
        let ready = self.take_pending(src, tag).or_else(|| {
            self.drain_channel();
            self.take_pending(src, tag)
        });
        RecvHandle {
            src,
            tag,
            ready,
            _payload: std::marker::PhantomData,
        }
    }

    /// Completes a receive posted by [`Comm::irecv`], blocking if the
    /// message has not arrived yet. The handle must come from this `Comm`
    /// (i.e. the same rank that posted it).
    ///
    /// # Panics
    /// Panics on type mismatch or after `RECV_TIMEOUT` (120 s) (deadlock guard).
    pub fn wait<T: 'static>(&self, handle: RecvHandle<T>) -> T {
        self.wait_timed(handle).0
    }

    /// [`Comm::wait`], additionally returning when the message was *sent*.
    /// Ranks share one clock, and an in-process channel delivers the
    /// moment `send` returns, so the send time is the arrival time — the
    /// overlap telemetry in [`crate::halo`] compares it against the post
    /// and finish marks to split halo wait into hidden and exposed parts.
    ///
    /// # Panics
    /// Panics on type mismatch or after `RECV_TIMEOUT` (120 s) (deadlock guard).
    pub fn wait_timed<T: 'static>(&self, handle: RecvHandle<T>) -> (T, Instant) {
        if let Some(env) = handle.ready {
            let sent_at = env.sent_at;
            return (Self::unpack(env), sent_at);
        }
        // The message may have been buffered by another handle's drain, or
        // be sitting in the channel already (delivered while this rank was
        // computing). Either way, receive it without accruing blocked
        // time: communication time measures genuine waiting for data that
        // has not arrived — exactly the exposed halo wait the overlapped
        // kernels are meant to hide.
        self.drain_channel();
        if let Some(env) = self.take_pending(handle.src, handle.tag) {
            let sent_at = env.sent_at;
            return (Self::unpack(env), sent_at);
        }
        let t0 = Instant::now();
        loop {
            let env = self
                .receiver
                .recv_timeout(RECV_TIMEOUT)
                .unwrap_or_else(|_| {
                    // PANIC-FREE: 120 s deadlock guard — firing means the
                    // exchange protocol is broken; aborting beats hanging.
                    panic!(
                        "rank {} timed out waiting for (src {}, tag {})",
                        self.rank, handle.src, handle.tag
                    )
                });
            if env.src == handle.src && env.tag == handle.tag {
                self.comm_time.set(self.comm_time.get() + t0.elapsed());
                let sent_at = env.sent_at;
                return (Self::unpack(env), sent_at);
            }
            self.pending
                .borrow_mut()
                .entry((env.src, env.tag))
                .or_default()
                .push_back(env);
        }
    }

    /// A mark on the runtime's clock, for overlap telemetry: the halo
    /// `post`/`finish` protocol compares marks against the send times
    /// reported by [`Comm::wait_timed`]. Kept here so wall-clock reads
    /// stay confined to the communication layer.
    pub fn clock_mark(&self) -> Instant {
        Instant::now()
    }

    /// Pops the oldest buffered message for `(src, tag)`, if any.
    fn take_pending(&self, src: usize, tag: u64) -> Option<Envelope> {
        self.pending
            .borrow_mut()
            .get_mut(&(src, tag))
            .and_then(VecDeque::pop_front)
    }

    /// Moves every message already sitting in the channel into the pending
    /// buffer without blocking.
    fn drain_channel(&self) {
        let mut pending = self.pending.borrow_mut();
        while let Ok(env) = self.receiver.try_recv() {
            pending
                .entry((env.src, env.tag))
                .or_default()
                .push_back(env);
        }
    }

    fn unpack<T: 'static>(env: Envelope) -> T {
        let _ = env.bytes;
        *env.payload
            .downcast::<T>()
            // PANIC-FREE: each (src, tag) pair carries exactly one payload
            // type by protocol; a mismatch is a wiring bug, not data.
            .expect("message type mismatch for (src, tag)")
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        let t0 = Instant::now();
        self.barrier.wait();
        self.comm_time.set(self.comm_time.get() + t0.elapsed());
    }

    // --- binomial tree topology (relative to a root) ---------------------

    /// Rank `r` relative to `root` (root becomes 0).
    #[inline]
    fn rel(&self, r: usize, root: usize) -> usize {
        (r + self.size - root) % self.size
    }

    /// Absolute rank of relative rank `v` under `root`.
    #[inline]
    fn abs_rank(&self, v: usize, root: usize) -> usize {
        (v + root) % self.size
    }

    /// Parent of relative rank `v > 0` in the binomial tree: clear the
    /// lowest set bit.
    #[inline]
    fn tree_parent(v: usize) -> usize {
        debug_assert!(v > 0);
        v & (v - 1)
    }

    /// Children of relative rank `v`, nearest first: `v + 2^k` for all
    /// `2^k` below `v`'s lowest set bit (every power below `size` for the
    /// root), clipped to `size`.
    // ALLOC: O(log P) child list per collective round — inherent to the
    // tree topology and negligible next to the message payloads.
    fn tree_children(&self, v: usize) -> Vec<usize> {
        let bound = if v == 0 {
            self.size
        } else {
            v & v.wrapping_neg()
        };
        let mut out = Vec::new();
        let mut b = 1usize;
        while b < bound && v + b < self.size {
            out.push(v + b);
            b <<= 1;
        }
        out
    }

    /// Size of the subtree rooted at relative rank `v` (covers relative
    /// ranks `v .. v + size`).
    fn subtree_size(&self, v: usize) -> usize {
        if v == 0 {
            self.size
        } else {
            (v & v.wrapping_neg()).min(self.size - v)
        }
    }

    // --- tree collectives -------------------------------------------------

    /// Gathers one value per rank to `root` over the binomial tree
    /// (O(log P) rounds, P−1 messages). Returns `Some(values)` indexed by
    /// rank on the root, `None` elsewhere.
    // ALLOC: message payload assembly — gathers own (and forward) their
    // subtree's values by value, as an MPI gather owns its send buffer.
    pub fn gather_to<T: Send + 'static>(
        &self,
        root: usize,
        value: T,
        tag: u64,
        bytes: impl Fn(&T) -> usize,
    ) -> Option<Vec<T>> {
        let me = self.rel(self.rank, root);
        let span = self.subtree_size(me);
        // Subtree contributions, indexed by relative rank − me.
        let mut buf: Vec<Option<T>> = (0..span).map(|_| None).collect();
        buf[0] = Some(value);
        for child in self.tree_children(me) {
            let sub: Vec<(usize, T)> = self.recv(self.abs_rank(child, root), tag);
            for (v, t) in sub {
                debug_assert!(buf[v - me].is_none());
                buf[v - me] = Some(t);
            }
        }
        if me == 0 {
            let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
            for (i, t) in buf.into_iter().enumerate() {
                out[self.abs_rank(i, root)] = t;
            }
            let mut gathered = Vec::with_capacity(out.len());
            for o in out {
                // PANIC-FREE: every relative rank reports exactly once (the
                // subtree spans partition 0..size), so no slot stays None.
                gathered.push(o.expect("gather slot filled"));
            }
            Some(gathered)
        } else {
            let sub: Vec<(usize, T)> = buf
                .into_iter()
                .enumerate()
                // PANIC-FREE: buf[0] is this rank's value and children
                // filled the rest of the subtree span above.
                .map(|(i, t)| (me + i, t.expect("gather subtree slot filled")))
                .collect();
            let b: usize = sub.iter().map(|(_, t)| bytes(t)).sum();
            self.send(self.abs_rank(Self::tree_parent(me), root), tag, sub, b);
            None
        }
    }

    /// Scatters one value per rank from `root` over the binomial tree
    /// (O(log P) rounds, P−1 messages). The root passes `Some(values)`
    /// indexed by rank; every rank returns its own element.
    // ALLOC: message payload assembly — each tree edge forwards its
    // child-subtree block by value, as an MPI scatter owns its buffers.
    pub fn scatter_from<T: Send + 'static>(
        &self,
        root: usize,
        values: Option<Vec<T>>,
        tag: u64,
        bytes: impl Fn(&T) -> usize,
    ) -> T {
        let me = self.rel(self.rank, root);
        let span = self.subtree_size(me);
        let mut buf: Vec<Option<T>> = if me == 0 {
            // PANIC-FREE: the root-only Some(values) contract is the API;
            // both checks reject caller bugs before any message moves.
            let values = values.expect("root must provide the scatter values");
            assert_eq!(values.len(), self.size); // PANIC-FREE: same caller contract

            // Reorder absolute → relative.
            let mut tmp: Vec<Option<T>> = values.into_iter().map(Some).collect();
            (0..self.size)
                .map(|v| tmp[self.abs_rank(v, root)].take())
                .collect()
        } else {
            let sub: Vec<T> = self.recv(self.abs_rank(Self::tree_parent(me), root), tag);
            debug_assert_eq!(sub.len(), span);
            sub.into_iter().map(Some).collect()
        };
        for child in self.tree_children(me) {
            let (c0, c1) = (child - me, child - me + self.subtree_size(child));
            let block: Vec<T> = buf[c0..c1]
                .iter_mut()
                // PANIC-FREE: child subtrees are disjoint, so each slot is
                // taken at most once after being filled above.
                .map(|o| o.take().expect("scatter subtree slot filled"))
                .collect();
            let b: usize = block.iter().map(&bytes).sum();
            self.send(self.abs_rank(child, root), tag, block, b);
        }
        // PANIC-FREE: buf[0] is this rank's own element; the child loop
        // above only takes slots strictly past index 0.
        buf[0].take().expect("scatter kept this rank's element")
    }

    /// Broadcasts `value` from `root` over the binomial tree (O(log P)
    /// rounds, P−1 messages). Only the root's `value` is consulted.
    pub fn broadcast<T: Clone + Send + 'static>(
        &self,
        root: usize,
        value: Option<T>,
        tag: u64,
        bytes: impl Fn(&T) -> usize,
    ) -> T {
        let me = self.rel(self.rank, root);
        let val: T = if me == 0 {
            // PANIC-FREE: the root-only Some(value) contract is the API.
            value.expect("root must provide the broadcast value")
        } else {
            self.recv(self.abs_rank(Self::tree_parent(me), root), tag)
        };
        for child in self.tree_children(me) {
            let b = bytes(&val);
            // ALLOC: one payload copy per tree child — inherent to a
            // by-value broadcast fan-out.
            self.send(self.abs_rank(child, root), tag, val.clone(), b);
        }
        val
    }

    /// Reduces one value per rank at rank 0 — combining in *rank order*,
    /// which keeps floating-point results bitwise deterministic — then
    /// broadcasts the result. 2(P−1) messages, O(log P) rounds.
    fn reduce_bcast<T, R>(
        &self,
        v: T,
        tag: u64,
        in_bytes: usize,
        out_bytes: usize,
        combine: impl Fn(Vec<T>) -> R,
    ) -> R
    where
        T: Send + 'static,
        R: Clone + Send + 'static,
    {
        let gathered = self.gather_to(0, v, tag, |_| in_bytes);
        let reduced = gathered.map(combine);
        self.broadcast(0, reduced, tag, |_| out_bytes)
    }

    /// All-gather of one value per rank over the binomial tree: subtree
    /// contributions flow up to rank 0, then each rank receives only the
    /// *complement* of the subtree it already holds. 2(P−1) messages
    /// (vs the naive P(P−1)), and every value crosses each tree edge at
    /// most once, so total bytes equal the dense exchange's P(P−1)·b.
    pub fn allgather<T: Clone + Send + 'static>(&self, v: T, tag: u64, bytes: usize) -> Vec<T> {
        let me = self.rel(self.rank, 0);
        let span = self.subtree_size(me);
        // Values by relative rank; the up phase fills `me..me + span`.
        let mut buf: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
        buf[me] = Some(v);
        for child in self.tree_children(me) {
            let sub: Vec<(usize, T)> = self.recv(child, tag);
            for (i, t) in sub {
                buf[i] = Some(t);
            }
        }
        if me != 0 {
            let sub: Vec<(usize, T)> = (me..me + span)
                .map(|i| (i, buf[i].clone().unwrap()))
                .collect();
            self.send(Self::tree_parent(me), tag, sub, bytes * span);
            // Down phase: everything outside this rank's subtree.
            let rest: Vec<(usize, T)> = self.recv(Self::tree_parent(me), tag);
            debug_assert_eq!(rest.len(), self.size - span);
            for (i, t) in rest {
                buf[i] = Some(t);
            }
        }
        for child in self.tree_children(me) {
            let cspan = self.subtree_size(child);
            let rest: Vec<(usize, T)> = (0..self.size)
                .filter(|i| !(child..child + cspan).contains(i))
                .map(|i| (i, buf[i].clone().unwrap()))
                .collect();
            self.send(child, tag, rest, bytes * (self.size - cspan));
        }
        buf.into_iter().map(|o| o.unwrap()).collect()
    }

    /// Global sum of a scalar (the all-reduce the paper's §1 discusses).
    /// Summation order is rank 0,1,…,P−1 regardless of message timing.
    pub fn allreduce_sum(&self, v: f64, tag: u64) -> f64 {
        self.reduce_bcast(v, tag, 8, 8, |all| all.into_iter().sum())
    }

    /// Global per-component sum of a vector. Component `j` is combined
    /// in rank order with the same `0 + v₀ + v₁ + …` fold as
    /// [`allreduce_sum`](Self::allreduce_sum), so it is bitwise
    /// identical to a scalar all-reduce of that component alone — while
    /// the whole vector rides one gather/broadcast round, keeping the
    /// message count independent of the vector length. This is how the
    /// batched solvers reduce `k` residual norms for the price of one.
    pub fn allreduce_sum_vec(&self, v: Vec<f64>, tag: u64) -> Vec<f64> {
        let b = wire::f64s(v.len());
        self.reduce_bcast(v, tag, b, b, |all| {
            // ALLOC: k-sized combine output, once per vector all-reduce
            // (the broadcast then owns it as the message payload).
            let mut out = vec![0.0f64; all.first().map_or(0, Vec::len)];
            for rank_v in all {
                debug_assert_eq!(rank_v.len(), out.len());
                for (o, x) in out.iter_mut().zip(&rank_v) {
                    *o += x;
                }
            }
            out
        })
    }

    /// Global max of a scalar.
    pub fn allreduce_max(&self, v: f64, tag: u64) -> f64 {
        self.reduce_bcast(v, tag, 8, 8, |all| {
            all.into_iter().fold(f64::NEG_INFINITY, f64::max)
        })
    }

    /// Global sum of a usize.
    pub fn allreduce_sum_usize(&self, v: usize, tag: u64) -> usize {
        self.reduce_bcast(v, tag, 8, 8, |all| all.into_iter().sum())
    }

    /// Global logical-or.
    pub fn allreduce_or(&self, v: bool, tag: u64) -> bool {
        self.reduce_bcast(v, tag, 1, 1, |all| all.into_iter().any(|b| b))
    }

    /// Exclusive prefix sum across ranks (rank r gets Σ_{r'<r} v_{r'});
    /// also returns the global total. Tree gather + tree scatter.
    pub fn exscan_sum(&self, v: usize, tag: u64) -> (usize, usize) {
        let gathered = self.gather_to(0, v, tag, |_| 8);
        let scanned = gathered.map(|all| {
            let total: usize = all.iter().sum();
            let mut before = 0usize;
            all.into_iter()
                .map(|x| {
                    let b = before;
                    before += x;
                    (b, total)
                })
                .collect::<Vec<_>>()
        });
        self.scatter_from(0, scanned, tag, |_| 16)
    }

    /// Sparse all-to-all: `sends` lists `(dst, payload)` pairs with
    /// strictly increasing `dst`; only those pairs hit the wire. Returns
    /// `(src, payload)` pairs sorted by `src`. Peers are discovered by
    /// tree-gathering the destination lists to rank 0, transposing there,
    /// and tree-scattering each rank just its own source list — so the
    /// total message count is O(neighbor pairs + P log P), never O(P²),
    /// and discovery bytes scale with the neighbor-pair count rather
    /// than P × pairs (no rank learns the full traffic pattern).
    pub fn alltoallv<T: Send + 'static>(
        &self,
        sends: Vec<(usize, T)>,
        tag: u64,
        bytes: impl Fn(&T) -> usize,
    ) -> Vec<(usize, T)> {
        debug_assert!(sends.windows(2).all(|w| w[0].0 < w[1].0));
        if self.size <= 2 {
            return self.alltoallv_small(sends, tag, &bytes);
        }
        // Discover who sends to me: transpose the dst lists at the root.
        let dsts: Vec<usize> = sends.iter().map(|(d, _)| *d).collect();
        let gathered = self.gather_to(0, dsts, tag, |d| wire::idxs(d.len()));
        let src_lists: Option<Vec<Vec<usize>>> = gathered.map(|all| {
            let mut srcs: Vec<Vec<usize>> = vec![Vec::new(); self.size];
            for (src, ds) in all.into_iter().enumerate() {
                for d in ds {
                    srcs[d].push(src); // ascending: src walks 0..P
                }
            }
            srcs
        });
        let srcs: Vec<usize> = self.scatter_from(0, src_lists, tag, |v| wire::idxs(v.len()));
        // Post the point-to-point payloads (self routed locally).
        let mut self_payload: Option<T> = None;
        for (dst, payload) in sends {
            if dst == self.rank {
                self_payload = Some(payload);
            } else {
                let b = bytes(&payload);
                self.send(dst, tag, payload, b);
            }
        }
        srcs.into_iter()
            .map(|src| {
                if src == self.rank {
                    (src, self_payload.take().expect("missing self payload"))
                } else {
                    (src, self.recv(src, tag))
                }
            })
            .collect()
    }

    /// One- and two-rank worlds: a direct peer exchange costs no more
    /// than the discovery round, so skip discovery entirely. The peer
    /// envelope is posted even when empty — at P=2 that is never worse
    /// than discovering there was nothing to send.
    fn alltoallv_small<T: Send + 'static>(
        &self,
        sends: Vec<(usize, T)>,
        tag: u64,
        bytes: impl Fn(&T) -> usize,
    ) -> Vec<(usize, T)> {
        let mut self_payload: Option<T> = None;
        let mut peer_payload: Option<T> = None;
        for (dst, payload) in sends {
            if dst == self.rank {
                self_payload = Some(payload);
            } else {
                peer_payload = Some(payload);
            }
        }
        let mut out = Vec::new();
        if self.size == 1 {
            if let Some(p) = self_payload {
                out.push((self.rank, p));
            }
            return out;
        }
        let peer = 1 - self.rank;
        let b = peer_payload.as_ref().map_or(0, &bytes);
        self.send(peer, tag, peer_payload, b);
        let from_peer: Option<T> = self.recv(peer, tag);
        let mut push = |src: usize, p: Option<T>| {
            if let Some(p) = p {
                out.push((src, p));
            }
        };
        if self.rank == 0 {
            push(0, self_payload);
            push(1, from_peer);
        } else {
            push(0, from_peer);
            push(1, self_payload);
        }
        out
    }

    /// All-to-all: `sends[dst]` goes to rank `dst`; returns `recv[src]`.
    /// `bytes(payload)` accounts the wire size.
    ///
    /// This is the dense baseline — P−1 messages per rank regardless of
    /// content. Production paths use [`Comm::alltoallv`] and the tree
    /// collectives; this stays as the reference implementation the
    /// comm-volume regression tests compare against.
    pub fn alltoall<T: Send + 'static>(
        &self,
        mut sends: Vec<T>,
        tag: u64,
        bytes: impl Fn(&T) -> usize,
    ) -> Vec<T> {
        assert_eq!(sends.len(), self.size);
        // Take out our own slot without communication.
        let mine = sends.remove(self.rank);
        for (dst, payload) in sends.into_iter().enumerate() {
            let dst = if dst >= self.rank { dst + 1 } else { dst };
            let b = bytes(&payload);
            self.send(dst, tag, payload, b);
        }
        let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
        out[self.rank] = Some(mine);
        for src in 0..self.size {
            if src != self.rank {
                out[src] = Some(self.recv(src, tag));
            }
        }
        out.into_iter().map(|o| o.unwrap()).collect()
    }
}

/// Runs `nranks` copies of `f` as SPMD threads; returns each rank's value
/// (index = rank) plus the communication report.
pub fn run_ranks<T: Send>(nranks: usize, f: impl Fn(&Comm) -> T + Sync) -> (Vec<T>, CommReport) {
    assert!(nranks > 0);
    let mut senders = Vec::with_capacity(nranks);
    let mut receivers = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let barrier = Arc::new(Barrier::new(nranks));
    let counters: Arc<Vec<RankCounters>> =
        Arc::new((0..nranks).map(|_| RankCounters::default()).collect());
    let scoped: Arc<Vec<Mutex<BTreeMap<ScopeKey, ScopeTotals>>>> =
        Arc::new((0..nranks).map(|_| Mutex::new(BTreeMap::new())).collect());

    let mut results: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, receiver) in receivers.into_iter().enumerate() {
            let comm = Comm {
                rank,
                size: nranks,
                senders: senders.clone(),
                receiver,
                pending: RefCell::new(HashMap::new()),
                barrier: Arc::clone(&barrier),
                counters: Arc::clone(&counters),
                scoped: Arc::clone(&scoped),
                scope: Cell::new((UNSCOPED_LEVEL, CommPhase::Other)),
                comm_time: Cell::new(Duration::ZERO),
            };
            let f = &f;
            handles.push(scope.spawn(move || f(&comm)));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("rank panicked"));
        }
    });

    let mut per_scope: BTreeMap<ScopeKey, ScopeTotals> = BTreeMap::new();
    for m in scoped.iter() {
        for (k, t) in m.lock().unwrap().iter() {
            let e = per_scope.entry(*k).or_default();
            e.bytes += t.bytes;
            e.messages += t.messages;
        }
    }
    let report = CommReport {
        bytes_per_rank: counters
            .iter()
            // ORDERING: Relaxed — read after every rank thread has been
            // joined; the joins provide the happens-before edges.
            .map(|c| c.bytes_sent.load(Ordering::Relaxed))
            .collect(),
        messages_per_rank: counters
            .iter()
            // ORDERING: Relaxed — as above, ordered by the rank joins.
            .map(|c| c.messages_sent.load(Ordering::Relaxed))
            .collect(),
        per_scope,
    };
    (results.into_iter().map(|o| o.unwrap()).collect(), report)
}

/// Wire size helpers.
pub mod wire {
    /// Bytes of a `f64` slice.
    pub fn f64s(n: usize) -> usize {
        8 * n
    }
    /// Bytes of an index slice (indices travel as 64-bit).
    pub fn idxs(n: usize) -> usize {
        8 * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let (vals, report) = run_ranks(4, |c| {
            let next = (c.rank() + 1) % 4;
            let prev = (c.rank() + 3) % 4;
            c.send(next, 1, c.rank() as u64, 8);
            c.recv::<u64>(prev, 1)
        });
        assert_eq!(vals, vec![3, 0, 1, 2]);
        assert_eq!(report.total_messages(), 4);
        assert_eq!(report.total_bytes(), 32);
    }

    #[test]
    fn out_of_order_tags() {
        let (vals, _) = run_ranks(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, 70u32, 4);
                c.send(1, 8, 80u32, 4);
                0u32
            } else {
                // Receive in reverse tag order: buffering must reorder.
                let b = c.recv::<u32>(0, 8);
                let a = c.recv::<u32>(0, 7);
                a + b
            }
        });
        assert_eq!(vals[1], 150);
    }

    #[test]
    fn collectives() {
        for nranks in [1usize, 2, 3, 5, 8] {
            let (vals, _) = run_ranks(nranks, |c| {
                let s = c.allreduce_sum((c.rank() + 1) as f64, 2);
                let m = c.allreduce_max(c.rank() as f64, 3);
                let (before, total) = c.exscan_sum(10 * (c.rank() + 1), 4);
                (s, m, before, total)
            });
            let expect_sum = (nranks * (nranks + 1) / 2) as f64;
            for (r, (s, m, before, total)) in vals.iter().enumerate() {
                assert_eq!(*s, expect_sum, "nranks {nranks}");
                assert_eq!(*m, (nranks - 1) as f64);
                assert_eq!(*total, 10 * nranks * (nranks + 1) / 2);
                assert_eq!(*before, (0..r).map(|i| 10 * (i + 1)).sum::<usize>());
            }
        }
    }

    #[test]
    fn allgather_matches_naive_and_uses_linear_messages() {
        for nranks in [1usize, 3, 4, 6, 7] {
            let (vals, report) = run_ranks(nranks, |c| c.allgather(c.rank() * 7, 9, 8));
            for v in &vals {
                assert_eq!(*v, (0..nranks).map(|r| r * 7).collect::<Vec<_>>());
            }
            // Tree gather (P−1) + tree broadcast (P−1).
            assert_eq!(report.total_messages(), 2 * (nranks as u64 - 1));
        }
    }

    #[test]
    fn gather_scatter_broadcast_roundtrip() {
        for nranks in [1usize, 2, 5, 8] {
            for root in [0usize, nranks - 1] {
                let (vals, _) = run_ranks(nranks, |c| {
                    let g = c.gather_to(root, vec![c.rank(); c.rank() + 1], 11, |v| {
                        wire::idxs(v.len())
                    });
                    if c.rank() == root {
                        let g = g.as_ref().unwrap();
                        for (r, v) in g.iter().enumerate() {
                            assert_eq!(*v, vec![r; r + 1]);
                        }
                    } else {
                        assert!(g.is_none());
                    }
                    let scattered = c.scatter_from(
                        root,
                        g.map(|v| v.into_iter().map(|x| x.len()).collect()),
                        12,
                        |_| 8,
                    );
                    let bc = c.broadcast(root, (c.rank() == root).then_some(42u64), 13, |_| 8);
                    (scattered, bc)
                });
                for (r, (scattered, bc)) in vals.iter().enumerate() {
                    assert_eq!(*scattered, r + 1, "nranks {nranks} root {root}");
                    assert_eq!(*bc, 42);
                }
            }
        }
    }

    #[test]
    fn reductions_bitwise_match_rank_ordered_combine() {
        // The determinism contract: tree reductions equal the naive
        // rank-ordered fold bit for bit.
        let contrib = |r: usize| ((r * 2654435761) % 1000) as f64 * 1e-3 + 0.1;
        for nranks in [2usize, 5, 7] {
            let naive: f64 = (0..nranks).map(contrib).sum();
            let (vals, _) = run_ranks(nranks, |c| c.allreduce_sum(contrib(c.rank()), 21));
            for v in vals {
                assert_eq!(v.to_bits(), naive.to_bits(), "nranks {nranks}");
            }
        }
    }

    #[test]
    fn alltoallv_sparse_pattern() {
        // Ring pattern: each rank sends one payload to (rank+1) % P.
        let nranks = 6usize;
        let (vals, report) = run_ranks(nranks, |c| {
            let dst = (c.rank() + 1) % nranks;
            let got = c.alltoallv(vec![(dst, c.rank() as u64)], 31, |_| 8);
            assert_eq!(got.len(), 1);
            got[0]
        });
        for (r, (src, v)) in vals.iter().enumerate() {
            assert_eq!(*src, (r + nranks - 1) % nranks);
            assert_eq!(*v, ((r + nranks - 1) % nranks) as u64);
        }
        // Discovery (2(P−1)) + one payload per rank (P, minus self-sends:
        // none here since dst != rank for P > 1).
        assert_eq!(
            report.total_messages(),
            2 * (nranks as u64 - 1) + nranks as u64
        );
    }

    #[test]
    fn alltoallv_empty_and_self() {
        let (vals, _) = run_ranks(3, |c| {
            // Rank 0 sends to itself and rank 2; others send nothing.
            let sends: Vec<(usize, u32)> = if c.rank() == 0 {
                vec![(0, 100), (2, 102)]
            } else {
                Vec::new()
            };
            c.alltoallv(sends, 33, |_| 4)
        });
        assert_eq!(vals[0], vec![(0, 100)]);
        assert!(vals[1].is_empty());
        assert_eq!(vals[2], vec![(0, 102)]);
    }

    #[test]
    fn alltoallv_two_ranks_skips_discovery() {
        // P=2 fast path: one envelope each way, no discovery round.
        let (vals, report) = run_ranks(2, |c| {
            let peer = 1 - c.rank();
            c.alltoallv(vec![(peer, c.rank() as u64)], 34, |_| 8)
        });
        assert_eq!(vals[0], vec![(1, 1)]);
        assert_eq!(vals[1], vec![(0, 0)]);
        assert_eq!(report.total_messages(), 2);

        // Nothing to exchange still costs only the two (empty) envelopes.
        let (vals, report) = run_ranks(2, |c| c.alltoallv(Vec::<(usize, u64)>::new(), 35, |_| 8));
        assert!(vals[0].is_empty() && vals[1].is_empty());
        assert_eq!(report.total_messages(), 2);
        assert_eq!(report.total_bytes(), 0);

        // Single-rank world: self payload routed locally, wire untouched.
        let (vals, report) = run_ranks(1, |c| c.alltoallv(vec![(0, 7u64)], 36, |_| 8));
        assert_eq!(vals[0], vec![(0, 7)]);
        assert_eq!(report.total_messages(), 0);
    }

    #[test]
    fn alltoall_routes_correctly() {
        let (vals, report) = run_ranks(3, |c| {
            let sends: Vec<u64> = (0..3).map(|d| (10 * c.rank() + d) as u64).collect();
            c.alltoall(sends, 5, |_| 8)
        });
        // vals[r][s] = 10*s + r
        for r in 0..3 {
            for s in 0..3 {
                assert_eq!(vals[r][s], (10 * s + r) as u64);
            }
        }
        // 6 inter-rank messages (self slots don't hit the wire).
        assert_eq!(report.total_messages(), 6);
    }

    #[test]
    fn self_sends_free() {
        let (_, report) = run_ranks(1, |c| {
            c.send(0, 1, 42u8, 1000);
            assert_eq!(c.recv::<u8>(0, 1), 42);
        });
        assert_eq!(report.total_bytes(), 0);
        assert_eq!(report.total_messages(), 0);
    }

    #[test]
    fn scoped_counters_attribute_traffic() {
        let (_, report) = run_ranks(2, |c| {
            let peer = 1 - c.rank();
            {
                let _g = c.scoped(0, CommPhase::Setup);
                c.send(peer, 1, 1u8, 10);
                c.recv::<u8>(peer, 1);
                {
                    let _g2 = c.scoped(1, CommPhase::Solve);
                    c.send(peer, 2, 2u8, 20);
                    c.recv::<u8>(peer, 2);
                }
                // Back in the outer scope after the inner guard drops.
                c.send(peer, 3, 3u8, 30);
                c.recv::<u8>(peer, 3);
            }
            c.send(peer, 4, 4u8, 40);
            c.recv::<u8>(peer, 4);
        });
        let setup = report.per_scope[&(0, CommPhase::Setup)];
        let solve = report.per_scope[&(1, CommPhase::Solve)];
        let other = report.per_scope[&(UNSCOPED_LEVEL, CommPhase::Other)];
        assert_eq!((setup.bytes, setup.messages), (80, 4));
        assert_eq!((solve.bytes, solve.messages), (40, 2));
        assert_eq!((other.bytes, other.messages), (80, 2));
        assert_eq!(report.total_bytes(), 200);
        // The table mentions every scope plus the total line.
        let table = report.scope_table();
        assert!(table.contains("setup") && table.contains("solve") && table.contains("total"));
    }

    #[test]
    fn comm_time_since_measures_forward_windows() {
        run_ranks(2, |c| {
            let peer = 1 - c.rank();
            // Warm the clock: a barrier and a blocking recv both add time.
            c.barrier();
            c.send(peer, 1, 1u8, 1);
            c.recv::<u8>(peer, 1);
            let t0 = c.comm_time();
            assert_eq!(c.comm_time_since(t0), Duration::ZERO);
            c.barrier();
            let dt = c.comm_time_since(t0);
            assert_eq!(dt, c.comm_time().checked_sub(t0).unwrap());
        });
    }

    // The saturating fallback trips comm_time_since's debug_assert by
    // design, so it is only observable in release builds.
    #[cfg(not(debug_assertions))]
    #[test]
    fn comm_time_since_saturates_on_foreign_snapshot() {
        run_ranks(1, |c| {
            assert_eq!(
                c.comm_time_since(Duration::from_secs(1_000_000)),
                Duration::ZERO
            );
        });
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks(4, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }
}

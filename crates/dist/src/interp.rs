//! Distributed interpolation construction (§4.3).
//!
//! Extended+i traverses neighbours-of-neighbours, so boundary rows must be
//! gathered from other ranks like a SpGEMM operand (Fig. 3c). The §4.3
//! optimization filters those rows before they hit the wire: for a remote
//! row `k`, interpolation only ever reads the diagonal `a_kk`, entries
//! whose sign opposes the diagonal, and of those only columns that are
//! coarse or owned by the requester. Both the filtered and full-row paths
//! are provided so the >3× communication-volume reduction the paper
//! reports can be measured directly.

use crate::coarsen::DistCoarsening;
use crate::comm::Comm;
use crate::halo::{fetch_values, gather_rows, VectorExchange};
use crate::parcsr::ParCsr;
use famg_core::interp::{truncate_row, TruncParams};
use std::collections::{HashMap, HashSet};

/// Local strength-of-connection over a distributed operator. Strength is
/// row-local, so no communication is needed; the result reuses `a`'s
/// layout conventions.
pub fn dist_strength(a: &ParCsr, threshold: f64, max_row_sum: f64, rank: usize) -> ParCsr {
    let nl = a.local_rows();
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(nl);
    for i in 0..nl {
        let gi = a.row_start + i;
        let full = a.global_row(i, rank);
        let mut max_off = 0.0f64;
        let mut row_sum = 0.0f64;
        let mut diag = 0.0f64;
        for &(c, v) in &full {
            row_sum += v;
            if c == gi {
                diag = v;
            } else {
                max_off = max_off.max(-v);
            }
        }
        let keep = max_off > 0.0 && !(diag != 0.0 && (row_sum / diag).abs() > max_row_sum);
        let cut = threshold * max_off;
        rows.push(if keep {
            full.into_iter()
                .filter(|&(c, v)| c != gi && -v >= cut)
                .collect()
        } else {
            Vec::new()
        });
    }
    ParCsr::from_local_rows_global_cols(
        a.row_start,
        a.row_end,
        a.global_cols,
        a.col_starts.clone(),
        rank,
        &rows,
    )
}

/// C/F + coarse-index code: fine → -1, coarse → global coarse index.
fn cf_code(dc: &DistCoarsening, li: usize) -> f64 {
    if dc.is_coarse[li] {
        dc.coarse_index(li) as f64
    } else {
        -1.0
    }
}

/// Codes for a rank's halo (parallel to `colmap`), planning ad hoc.
fn halo_codes(comm: &Comm, colmap: &[usize], starts: &[usize], dc: &DistCoarsening) -> Vec<f64> {
    let codes: Vec<f64> = (0..dc.is_coarse.len()).map(|i| cf_code(dc, i)).collect();
    VectorExchange::plan(comm, colmap, starts).exchange(comm, &codes)
}

/// Codes for a rank's halo through a pre-built exchange plan (saves the
/// neighbor-discovery + request round that `halo_codes` pays).
fn planned_codes(comm: &Comm, plan: &VectorExchange, dc: &DistCoarsening) -> Vec<f64> {
    let codes: Vec<f64> = (0..dc.is_coarse.len()).map(|i| cf_code(dc, i)).collect();
    plan.exchange(comm, &codes)
}

/// Distributed direct (distance-1) interpolation. Returns `P` with this
/// rank's point rows and the coarse column partition. `plan_a` is the
/// persistent halo plan for `a`'s colmap (the level plan the hierarchy
/// already owns), reused here for the C/F code exchange.
pub fn dist_direct(
    comm: &Comm,
    a: &ParCsr,
    plan_a: &VectorExchange,
    s: &ParCsr,
    cf: &DistCoarsening,
    trunc: Option<&TruncParams>,
) -> ParCsr {
    let rank = comm.rank();
    let nl = a.local_rows();
    let code_a = planned_codes(comm, plan_a, cf);
    let code_of = |g: usize| -> f64 {
        if g >= a.row_start && g < a.row_end {
            cf_code(cf, g - a.row_start)
        } else {
            code_a[a.colmap.binary_search(&g).unwrap()]
        }
    };
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(nl);
    for i in 0..nl {
        if cf.is_coarse[i] {
            rows.push(vec![(cf.coarse_index(i), 1.0)]);
            continue;
        }
        let gi = a.row_start + i;
        let strong: HashSet<usize> = s.global_row(i, rank).into_iter().map(|(c, _)| c).collect();
        let (mut sn, mut sp, mut cn, mut cp) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut diag = 0.0f64;
        let full = a.global_row(i, rank);
        for &(k, v) in &full {
            if k == gi {
                diag = v;
                continue;
            }
            if v < 0.0 {
                sn += v;
            } else {
                sp += v;
            }
            if strong.contains(&k) && code_of(k) >= 0.0 {
                if v < 0.0 {
                    cn += v;
                } else {
                    cp += v;
                }
            }
        }
        if cn == 0.0 && cp == 0.0 {
            rows.push(Vec::new());
            continue;
        }
        let alpha = if cn != 0.0 { sn / cn } else { 0.0 };
        let beta = if cp != 0.0 { sp / cp } else { 0.0 };
        let dd = if cp == 0.0 { diag + sp } else { diag };
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for &(k, v) in &full {
            if k == gi || !strong.contains(&k) {
                continue;
            }
            let code = code_of(k);
            if code < 0.0 {
                continue;
            }
            let scale = if v < 0.0 { alpha } else { beta };
            if scale != 0.0 {
                cols.push(code as usize);
                vals.push(-scale * v / dd);
            }
        }
        if let Some(t) = trunc {
            truncate_row(&mut cols, &mut vals, t);
        }
        rows.push(cols.into_iter().zip(vals).collect());
    }
    build_p(comm, a, cf, rows, rank)
}

fn build_p(
    comm: &Comm,
    a: &ParCsr,
    cf: &DistCoarsening,
    mut rows: Vec<Vec<(usize, f64)>>,
    rank: usize,
) -> ParCsr {
    for r in &mut rows {
        r.sort_unstable_by_key(|&(c, _)| c);
    }
    ParCsr::from_local_rows_global_cols(
        a.row_start,
        a.row_end,
        cf.ncoarse_global,
        cf.coarse_starts(comm),
        rank,
        &rows,
    )
}

/// Distributed extended+i interpolation (Eq. 1). `plan_a` is the
/// persistent halo plan for `a`'s colmap, reused for the C/F code
/// exchange.
///
/// `filter_remote` enables the §4.3 wire filter on gathered `A` rows.
pub fn dist_extended_i(
    comm: &Comm,
    a: &ParCsr,
    plan_a: &VectorExchange,
    s: &ParCsr,
    cf: &DistCoarsening,
    trunc: Option<&TruncParams>,
    filter_remote: bool,
) -> ParCsr {
    let rank = comm.rank();
    let nl = a.local_rows();
    let gi0 = a.row_start;

    // C/F codes for the distance-1 halo.
    let code_a = planned_codes(comm, plan_a, cf);

    // Gather remote S rows. They are only ever read to find the *coarse*
    // strong neighbours of boundary fine points (the Ĉ_i extension), so
    // the §4.3 filter strips their fine columns owner-side.
    let cf_for_s: Vec<f64> = (0..nl).map(|i| cf_code(cf, i)).collect();
    let s_colmap_codes = halo_codes(comm, &s.colmap, &s.col_starts, cf);
    let s_col_coarse = {
        let s_colmap = s.colmap.clone();
        let row_lo = s.row_start;
        let row_hi = s.row_end;
        move |g: usize| -> bool {
            if g >= row_lo && g < row_hi {
                cf_for_s[g - row_lo] >= 0.0
            } else {
                s_colmap
                    .binary_search(&g)
                    .is_ok_and(|k| s_colmap_codes[k] >= 0.0)
            }
        }
    };
    let gathered_s = gather_rows(
        comm,
        &s.colmap,
        &s.col_starts,
        |li| s.global_row(li, rank),
        |_, g, _, _| !filter_remote || s_col_coarse(g),
    );

    // Gather remote A rows, optionally filtered (§4.3). The owner-side
    // filter keeps the diagonal, and otherwise only entries opposing the
    // diagonal sign whose column is coarse or owned by the requester.
    let diag_sign: Vec<f64> = (0..nl)
        .map(|i| {
            let gi = gi0 + i;
            a.global_row(i, rank)
                .iter()
                .find(|&&(c, _)| c == gi)
                .map_or(1.0, |&(_, v)| v)
        })
        .collect();
    let col_starts = a.col_starts.clone();
    let code_a_for_filter = code_a.clone();
    let colmap_for_filter = a.colmap.clone();
    let cf_local: Vec<f64> = (0..nl).map(|i| cf_code(cf, i)).collect();
    let is_coarse_known = move |g: usize| -> bool {
        if g >= gi0 && g < gi0 + nl {
            cf_local[g - gi0] >= 0.0
        } else {
            colmap_for_filter
                .binary_search(&g)
                .is_ok_and(|k| code_a_for_filter[k] >= 0.0)
        }
    };
    let gathered_a = gather_rows(
        comm,
        &a.colmap,
        &a.col_starts,
        |li| a.global_row(li, rank),
        |li, g, v, requester| {
            if !filter_remote {
                return true;
            }
            let gk = gi0 + li;
            if g == gk {
                return true; // diagonal: needed for the sign test
            }
            if v * diag_sign[li] >= 0.0 {
                return false; // same sign as diagonal: ā_kl = 0
            }
            // Keep coarse columns and the requester's own points
            // (the `l = i` terms of b_ik).
            is_coarse_known(g) || (g >= col_starts[requester] && g < col_starts[requester + 1])
        },
    );

    // Codes for points seen only through gathered rows (extended halo).
    let mut extra: Vec<usize> = gathered_s
        .data
        .iter()
        .chain(gathered_a.data.iter())
        .flat_map(|r| r.iter().map(|&(c, _)| c))
        .filter(|&g| (g < gi0 || g >= a.row_end) && a.colmap.binary_search(&g).is_err())
        .collect();
    extra.sort_unstable();
    extra.dedup();
    let extra_codes = fetch_values(comm, &extra, &a.col_starts, |li| cf_code(cf, li));
    let code_of = move |g: usize| -> f64 {
        if g >= gi0 && g < gi0 + nl {
            cf_code(cf, g - gi0)
        } else if let Ok(k) = a.colmap.binary_search(&g) {
            code_a[k]
        } else {
            extra_codes[extra.binary_search(&g).unwrap()]
        }
    };
    // Row access: local rows live in `a`, remote rows in `gathered_a`.
    let row_of = |g: usize| -> Vec<(usize, f64)> {
        if g >= gi0 && g < a.row_end {
            a.global_row(g - gi0, rank)
        } else {
            gathered_a
                .get(g)
                .map(<[(usize, f64)]>::to_vec)
                .unwrap_or_default()
        }
    };
    let srow_of = |g: usize| -> Vec<usize> {
        if g >= gi0 && g < a.row_end {
            s.global_row(g - gi0, rank)
                .into_iter()
                .map(|(c, _)| c)
                .collect()
        } else {
            gathered_s
                .get(g)
                .map(|r| r.iter().map(|&(c, _)| c).collect())
                .unwrap_or_default()
        }
    };

    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(nl);
    for i in 0..nl {
        if cf.is_coarse[i] {
            rows.push(vec![(cf.coarse_index(i), 1.0)]);
            continue;
        }
        let gi = gi0 + i;
        // Sorted strong list for deterministic accumulation order, plus a
        // set for O(1) membership tests.
        let strong_vec: Vec<usize> = s.global_row(i, rank).into_iter().map(|(c, _)| c).collect();
        let strong: HashSet<usize> = strong_vec.iter().copied().collect();
        // Ĉ_i over global point ids, with coarse column indices.
        let mut chat_pos: HashMap<usize, usize> = HashMap::new();
        let mut chat_col: Vec<usize> = Vec::new();
        let mut num: Vec<f64> = Vec::new();
        for &j in &strong_vec {
            let cj = code_of(j);
            if cj >= 0.0 {
                chat_pos.entry(j).or_insert_with(|| {
                    chat_col.push(cj as usize);
                    num.push(0.0);
                    chat_col.len() - 1
                });
            } else {
                for k in srow_of(j) {
                    let ck = code_of(k);
                    if ck >= 0.0 {
                        chat_pos.entry(k).or_insert_with(|| {
                            chat_col.push(ck as usize);
                            num.push(0.0);
                            chat_col.len() - 1
                        });
                    }
                }
            }
        }
        if chat_col.is_empty() {
            rows.push(Vec::new());
            continue;
        }
        let full = a.global_row(i, rank);
        let mut atilde = 0.0f64;
        for &(j, v) in &full {
            if j == gi {
                atilde += v;
            } else if let Some(&pos) = chat_pos.get(&j) {
                num[pos] += v;
            } else if !strong.contains(&j) {
                atilde += v;
            }
        }
        for &(k, aik) in &full {
            if k == gi || !strong.contains(&k) || code_of(k) >= 0.0 {
                continue;
            }
            let krow = row_of(k);
            let akk = krow.iter().find(|&&(c, _)| c == k).map_or(1.0, |&(_, v)| v);
            let mut bik = 0.0f64;
            let mut abar_ki = 0.0f64;
            for &(l, v) in &krow {
                if v * akk < 0.0 {
                    if l == gi {
                        bik += v;
                        abar_ki = v;
                    } else if chat_pos.contains_key(&l) {
                        bik += v;
                    }
                }
            }
            if bik == 0.0 {
                atilde += aik;
                continue;
            }
            let coef = aik / bik;
            atilde += coef * abar_ki;
            for &(l, v) in &krow {
                if l != gi && v * akk < 0.0 {
                    if let Some(&pos) = chat_pos.get(&l) {
                        num[pos] += coef * v;
                    }
                }
            }
        }
        if atilde == 0.0 {
            rows.push(Vec::new());
            continue;
        }
        let mut cols: Vec<usize> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        for (pos, &c) in chat_col.iter().enumerate() {
            let w = -num[pos] / atilde;
            if w != 0.0 {
                cols.push(c);
                vals.push(w);
            }
        }
        // Deterministic order before truncation (HashMap iteration order
        // must not leak into the result).
        let mut order: Vec<usize> = (0..cols.len()).collect();
        order.sort_unstable_by_key(|&k| cols[k]);
        let mut cols: Vec<usize> = order.iter().map(|&k| cols[k]).collect();
        let mut vals: Vec<f64> = order.iter().map(|&k| vals[k]).collect();
        if let Some(t) = trunc {
            truncate_row(&mut cols, &mut vals, t);
        }
        rows.push(cols.into_iter().zip(vals).collect());
    }
    build_p(comm, a, cf, rows, rank)
}

/// Distributed multipass interpolation: direct interpolation where
/// possible, then passes composing the already-assigned neighbours'
/// rows, gathering remote `P` rows for boundary neighbours each pass.
/// `plan_a` is the persistent halo plan for `a`'s colmap.
pub fn dist_multipass(
    comm: &Comm,
    a: &ParCsr,
    plan_a: &VectorExchange,
    s: &ParCsr,
    cf: &DistCoarsening,
    trunc: Option<&TruncParams>,
) -> ParCsr {
    let rank = comm.rank();
    let nl = a.local_rows();
    let gi0 = a.row_start;
    // Pass 0/1: identity on C-points, direct interpolation where a strong
    // coarse neighbour exists (untruncated; truncation applies at the end
    // like the serial version).
    let direct = dist_direct(comm, a, plan_a, s, cf, None);
    let mut rows: Vec<Option<Vec<(usize, f64)>>> = (0..nl)
        .map(|i| {
            if cf.is_coarse[i] {
                Some(vec![(cf.coarse_index(i), 1.0)])
            } else {
                let r = direct.global_row(i, rank);
                if r.is_empty() {
                    None
                } else {
                    Some(r)
                }
            }
        })
        .collect();

    let plan_s = VectorExchange::plan(comm, &s.colmap, &s.col_starts);
    let mut guard = 0usize;
    loop {
        // Exchange done flags over the strength halo.
        let done_local: Vec<f64> = rows
            .iter()
            .map(|r| f64::from(u8::from(r.is_some())))
            .collect();
        let done_ext = plan_s.exchange(comm, &done_local);
        let is_done = |g: usize| -> bool {
            if g >= gi0 && g < a.row_end {
                rows[g - gi0].is_some()
            } else {
                done_ext[s.colmap.binary_search(&g).unwrap()] > 0.5
            }
        };
        // Which halo P rows do we need this pass?
        let mut needed: Vec<usize> = Vec::new();
        let mut todo: Vec<usize> = Vec::new();
        for i in 0..nl {
            if rows[i].is_some() {
                continue;
            }
            let strong: Vec<usize> = s.global_row(i, rank).into_iter().map(|(c, _)| c).collect();
            if strong.iter().any(|&j| is_done(j)) {
                todo.push(i);
                for &j in &strong {
                    if is_done(j) && (j < gi0 || j >= a.row_end) {
                        needed.push(j);
                    }
                }
            }
        }
        needed.sort_unstable();
        needed.dedup();
        let progress = !todo.is_empty();
        // Every rank participates in the gather (collective), even when
        // it personally needs nothing this pass.
        let any = comm.allreduce_or(progress, 0x70);
        if !any {
            break;
        }
        let rows_ref = &rows;
        let gathered_p = gather_rows(
            comm,
            &needed,
            &a.col_starts,
            |li| rows_ref[li].clone().unwrap_or_default(),
            |_, _, _, _| true,
        );
        let prow_of = |g: usize| -> Vec<(usize, f64)> {
            if g >= gi0 && g < a.row_end {
                rows_ref[g - gi0].clone().unwrap_or_default()
            } else {
                gathered_p
                    .get(g)
                    .map(<[(usize, f64)]>::to_vec)
                    .unwrap_or_default()
            }
        };
        // Compose new rows from the pass-start snapshot.
        let mut new_rows: Vec<(usize, Vec<(usize, f64)>)> = Vec::new();
        for &i in &todo {
            let gi = gi0 + i;
            let strong: HashSet<usize> =
                s.global_row(i, rank).into_iter().map(|(c, _)| c).collect();
            let full = a.global_row(i, rank);
            let diag = full
                .iter()
                .find(|&&(c, _)| c == gi)
                .map_or(0.0, |&(_, v)| v);
            let all_sum: f64 = full
                .iter()
                .filter(|&&(c, _)| c != gi)
                .map(|&(_, v)| v)
                .sum();
            let strong_done_sum: f64 = full
                .iter()
                .filter(|&&(c, _)| c != gi && strong.contains(&c) && is_done(c))
                .map(|&(_, v)| v)
                .sum();
            if strong_done_sum == 0.0 || diag == 0.0 {
                continue;
            }
            let alpha = all_sum / strong_done_sum;
            let mut acc: HashMap<usize, f64> = HashMap::new();
            for &(k, v) in &full {
                if k == gi || !strong.contains(&k) || !is_done(k) {
                    continue;
                }
                let coef = -alpha * v / diag;
                for (c, w) in prow_of(k) {
                    *acc.entry(c).or_insert(0.0) += coef * w;
                }
            }
            if !acc.is_empty() {
                let mut r: Vec<(usize, f64)> = acc.into_iter().collect();
                r.sort_unstable_by_key(|&(c, _)| c);
                new_rows.push((i, r));
            }
        }
        for (i, r) in new_rows {
            rows[i] = Some(r);
        }
        guard += 1;
        if guard > nl + 2 {
            break; // safety net
        }
    }

    // Truncate fine rows and assemble.
    let assembled: Vec<Vec<(usize, f64)>> = rows
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            None => Vec::new(),
            Some(r) => {
                if cf.is_coarse[i] {
                    r
                } else if let Some(t) = trunc {
                    let mut cols: Vec<usize> = r.iter().map(|&(c, _)| c).collect();
                    let mut vals: Vec<f64> = r.iter().map(|&(_, v)| v).collect();
                    truncate_row(&mut cols, &mut vals, t);
                    cols.into_iter().zip(vals).collect()
                } else {
                    r
                }
            }
        })
        .collect();
    build_p(comm, a, cf, assembled, rank)
}

/// Distributed two-stage extended+i: extended+i to the stage-1 C-points,
/// Galerkin stage-1 operator via distributed SpGEMM, extended+i among the
/// stage-1 C-points, product, truncation at every stage. `plan_a` covers
/// `a`'s colmap; the stage-1 operator gets its own plan here.
#[allow(clippy::too_many_arguments)]
pub fn dist_two_stage_extended_i(
    comm: &Comm,
    a: &ParCsr,
    plan_a: &VectorExchange,
    s: &ParCsr,
    stage1: &DistCoarsening,
    final_c: &DistCoarsening,
    strength_threshold: f64,
    max_row_sum: f64,
    trunc: Option<&TruncParams>,
    filter_remote: bool,
) -> ParCsr {
    use crate::spgemm::{dist_spgemm, dist_transpose};
    let rank = comm.rank();
    let p1 = dist_extended_i(comm, a, plan_a, s, stage1, trunc, filter_remote);
    let r1 = dist_transpose(comm, &p1);
    let ra = dist_spgemm(comm, &r1, a, true);
    let a1 = dist_spgemm(comm, &ra, &p1, true);
    let s1 = dist_strength(&a1, strength_threshold, max_row_sum, rank);
    // Final C-points within the stage-1 coarse space.
    let marker: Vec<bool> = (0..a.local_rows())
        .filter(|&i| stage1.is_coarse[i])
        .map(|i| final_c.is_coarse[i])
        .collect();
    let cf2 = DistCoarsening::from_marker(comm, marker, 0x71);
    let plan_a1 = VectorExchange::plan(comm, &a1.colmap, &a1.col_starts);
    let p2 = dist_extended_i(comm, &a1, &plan_a1, &s1, &cf2, trunc, filter_remote);
    let p = dist_spgemm(comm, &p1, &p2, true);
    // Truncate the product's fine rows.
    let rows: Vec<Vec<(usize, f64)>> = (0..p.local_rows())
        .map(|i| {
            let r = p.global_row(i, rank);
            if final_c.is_coarse[i] {
                return r;
            }
            match trunc {
                None => r,
                Some(t) => {
                    let mut cols: Vec<usize> = r.iter().map(|&(c, _)| c).collect();
                    let mut vals: Vec<f64> = r.iter().map(|&(_, v)| v).collect();
                    truncate_row(&mut cols, &mut vals, t);
                    cols.into_iter().zip(vals).collect()
                }
            }
        })
        .collect();
    ParCsr::from_local_rows_global_cols(
        p.row_start,
        p.row_end,
        p.global_cols,
        p.col_starts.clone(),
        rank,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::{dist_aggressive_pmis, dist_pmis};
    use crate::comm::run_ranks;
    use crate::parcsr::{default_partition, to_global};
    use famg_core::coarsen::pmis;
    use famg_core::interp::{direct, extended_i, multipass, CfMap};
    use famg_core::strength::strength;
    use famg_matgen::laplace2d;

    fn split(a: &famg_sparse::Csr, starts: &[usize], r: usize) -> ParCsr {
        ParCsr::from_global_rows(a, starts[r], starts[r + 1], starts.to_vec(), r)
    }

    #[test]
    fn dist_strength_matches_serial() {
        let a = laplace2d(10, 8);
        let s_ref = strength(&a, 0.25, 0.8);
        let starts = default_partition(80, 3);
        let (parts, _) = run_ranks(3, |c| {
            let pa = split(&a, &starts, c.rank());
            dist_strength(&pa, 0.25, 0.8, c.rank())
        });
        assert_eq!(to_global(&parts).to_dense(), s_ref.to_dense());
    }

    #[test]
    fn dist_direct_matches_serial() {
        let a = laplace2d(10, 10);
        let s = strength(&a, 0.25, 0.8);
        let c_serial = pmis(&s, 5);
        let p_ref = direct(&a, &s, &CfMap::new(c_serial.is_coarse.clone()), None);
        let starts = default_partition(100, 4);
        let (parts, _) = run_ranks(4, |c| {
            let pa = split(&a, &starts, c.rank());
            let ps = dist_strength(&pa, 0.25, 0.8, c.rank());
            let dc = dist_pmis(c, &ps, 5, None);
            let plan = VectorExchange::plan(c, &pa.colmap, &pa.col_starts);
            dist_direct(c, &pa, &plan, &ps, &dc, None)
        });
        assert_eq!(to_global(&parts).to_dense(), p_ref.to_dense());
    }

    #[test]
    fn dist_extended_i_matches_serial() {
        let a = laplace2d(12, 12);
        let s = strength(&a, 0.25, 0.8);
        let c_serial = pmis(&s, 9);
        let p_ref = extended_i(&a, &s, &CfMap::new(c_serial.is_coarse.clone()), None);
        for nranks in [1usize, 2, 4] {
            let starts = default_partition(144, nranks);
            let (parts, _) = run_ranks(nranks, |c| {
                let pa = split(&a, &starts, c.rank());
                let ps = dist_strength(&pa, 0.25, 0.8, c.rank());
                let dc = dist_pmis(c, &ps, 9, None);
                let plan = VectorExchange::plan(c, &pa.colmap, &pa.col_starts);
                dist_extended_i(c, &pa, &plan, &ps, &dc, None, false)
            });
            let p = to_global(&parts);
            assert!(
                p.frob_diff(&p_ref) < 1e-10,
                "nranks {nranks}: diff {}",
                p.frob_diff(&p_ref)
            );
        }
    }

    #[test]
    fn filtered_gather_same_operator_fewer_bytes() {
        let a = laplace2d(16, 16);
        let starts = default_partition(256, 4);
        let run = |filter: bool| {
            let (parts, report) = run_ranks(4, |c| {
                let pa = split(&a, &starts, c.rank());
                let ps = dist_strength(&pa, 0.25, 0.8, c.rank());
                let dc = dist_pmis(c, &ps, 13, None);
                let plan = VectorExchange::plan(c, &pa.colmap, &pa.col_starts);
                dist_extended_i(c, &pa, &plan, &ps, &dc, None, filter)
            });
            (to_global(&parts), report.total_bytes())
        };
        let (p_full, bytes_full) = run(false);
        let (p_filt, bytes_filt) = run(true);
        assert!(
            p_full.frob_diff(&p_filt) < 1e-12,
            "filter changed the operator"
        );
        assert!(
            bytes_filt < bytes_full,
            "filter did not reduce traffic: {bytes_filt} vs {bytes_full}"
        );
    }

    #[test]
    fn dist_multipass_matches_serial() {
        let a = laplace2d(12, 12);
        let s = strength(&a, 0.25, 0.8);
        let (_, fin) = famg_core::coarsen::aggressive_pmis_stages(&s, 3);
        let p_ref = multipass(&a, &s, &CfMap::new(fin.is_coarse.clone()), None);
        let starts = default_partition(144, 3);
        let (parts, _) = run_ranks(3, |c| {
            let pa = split(&a, &starts, c.rank());
            let ps = dist_strength(&pa, 0.25, 0.8, c.rank());
            let (_, dc) = dist_aggressive_pmis(c, &ps, 3);
            let plan = VectorExchange::plan(c, &pa.colmap, &pa.col_starts);
            dist_multipass(c, &pa, &plan, &ps, &dc, None)
        });
        let p = to_global(&parts);
        assert!(p.frob_diff(&p_ref) < 1e-10, "diff {}", p.frob_diff(&p_ref));
    }

    #[test]
    fn dist_two_stage_shape_and_rows() {
        let a = laplace2d(14, 14);
        let starts = default_partition(196, 3);
        let (parts, _) = run_ranks(3, |c| {
            let pa = split(&a, &starts, c.rank());
            let ps = dist_strength(&pa, 0.25, 0.8, c.rank());
            let (first, fin) = dist_aggressive_pmis(c, &ps, 7);
            let t = TruncParams::paper();
            let plan = VectorExchange::plan(c, &pa.colmap, &pa.col_starts);
            let p = dist_two_stage_extended_i(
                c,
                &pa,
                &plan,
                &ps,
                &first,
                &fin,
                0.25,
                0.8,
                Some(&t),
                true,
            );
            (p, fin.is_coarse.clone())
        });
        let total_nc = parts[0].0.global_cols;
        assert!(total_nc > 0 && total_nc < 196 / 4);
        for (rank, (p, is_coarse)) in parts.iter().enumerate() {
            for i in 0..p.local_rows() {
                let row = p.global_row(i, rank);
                if is_coarse[i] {
                    assert_eq!(row.len(), 1);
                    assert_eq!(row[0].1, 1.0);
                } else {
                    assert!(row.len() <= 4, "trunc violated: {}", row.len());
                }
            }
        }
    }
}

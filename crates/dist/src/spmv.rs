//! Distributed SpMV and residual norms (Fig. 3b).
//!
//! `y = A x` splits into the local product with the block-diagonal part
//! and the product of the off-diagonal part with the gathered external
//! vector. The fused residual + norm kernel mirrors the single-node §3.3
//! optimization, with the norm finished by one all-reduce.

use crate::comm::Comm;
use crate::halo::VectorExchange;
use crate::parcsr::ParCsr;
use famg_sparse::spmv::spmv_seq;

/// `y = A x` using a pre-planned halo exchange.
pub fn dist_spmv(comm: &Comm, a: &ParCsr, plan: &VectorExchange, x_local: &[f64], y: &mut [f64]) {
    assert_eq!(x_local.len(), a.diag.ncols());
    assert_eq!(y.len(), a.local_rows());
    let x_ext = plan.exchange(comm, x_local);
    // Local block-diagonal product...
    spmv_seq(&a.diag, x_local, y);
    // ...plus the off-diagonal contribution.
    for i in 0..a.local_rows() {
        let mut acc = 0.0;
        for (k, v) in a.offd.row_iter(i) {
            acc += v * x_ext[k];
        }
        y[i] += acc;
    }
}

/// Distributed residual only: `r = b - A x` with no norm and therefore
/// no global reduction — one halo exchange is the entire communication.
/// Use this on V-cycle levels where the norm is unused; it returns the
/// *local* squared norm so callers that do want the global value can
/// finish it with one all-reduce (see [`dist_residual_norm_sq`]).
pub fn dist_residual(
    comm: &Comm,
    a: &ParCsr,
    plan: &VectorExchange,
    x_local: &[f64],
    b_local: &[f64],
    r: &mut [f64],
) -> f64 {
    let x_ext = plan.exchange(comm, x_local);
    let mut acc_sq = 0.0;
    for i in 0..a.local_rows() {
        let mut acc = b_local[i];
        for (c, v) in a.diag.row_iter(i) {
            acc -= v * x_local[c];
        }
        for (k, v) in a.offd.row_iter(i) {
            acc -= v * x_ext[k];
        }
        r[i] = acc;
        acc_sq += acc * acc;
    }
    acc_sq
}

/// Fused distributed residual: `r = b - A x` with `‖r‖²` reduced across
/// ranks in a single collective. Returns the *global* squared norm.
pub fn dist_residual_norm_sq(
    comm: &Comm,
    a: &ParCsr,
    plan: &VectorExchange,
    x_local: &[f64],
    b_local: &[f64],
    r: &mut [f64],
) -> f64 {
    let acc_sq = dist_residual(comm, a, plan, x_local, b_local, r);
    comm.allreduce_sum(acc_sq, 0x40)
}

/// Distributed dot product (one all-reduce).
pub fn dist_dot(comm: &Comm, x: &[f64], y: &[f64]) -> f64 {
    comm.allreduce_sum(famg_sparse::vecops::dot_seq(x, y), 0x41)
}

/// Distributed 2-norm.
pub fn dist_norm2(comm: &Comm, x: &[f64]) -> f64 {
    dist_dot(comm, x, x).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use crate::parcsr::default_partition;
    use famg_matgen::{laplace2d, rhs};

    #[test]
    fn dist_spmv_matches_serial() {
        let a = laplace2d(10, 10);
        let n = a.nrows();
        let x = rhs::random(n, 3);
        let mut y_ref = vec![0.0; n];
        famg_sparse::spmv::spmv_seq(&a, &x, &mut y_ref);
        for nranks in [1usize, 2, 3, 5] {
            let starts = default_partition(n, nranks);
            let (results, _) = run_ranks(nranks, |c| {
                let r = c.rank();
                let p = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
                let xl = x[starts[r]..starts[r + 1]].to_vec();
                let plan = VectorExchange::plan(c, &p.colmap, &starts);
                let mut y = vec![0.0; p.local_rows()];
                dist_spmv(c, &p, &plan, &xl, &mut y);
                y
            });
            let y: Vec<f64> = results.concat();
            for (u, v) in y.iter().zip(&y_ref) {
                assert!((u - v).abs() < 1e-12, "nranks {nranks}");
            }
        }
    }

    #[test]
    fn dist_residual_matches_serial() {
        let a = laplace2d(9, 7);
        let n = a.nrows();
        let x = rhs::random(n, 5);
        let b = rhs::random(n, 6);
        let mut r_ref = vec![0.0; n];
        let norm_ref = famg_sparse::spmv::residual_norm_sq(&a, &x, &b, &mut r_ref);
        let starts = default_partition(n, 3);
        let (results, _) = run_ranks(3, |c| {
            let rk = c.rank();
            let p = ParCsr::from_global_rows(&a, starts[rk], starts[rk + 1], starts.clone(), rk);
            let xl = x[starts[rk]..starts[rk + 1]].to_vec();
            let bl = b[starts[rk]..starts[rk + 1]].to_vec();
            let plan = VectorExchange::plan(c, &p.colmap, &starts);
            let mut r = vec![0.0; p.local_rows()];
            let nsq = dist_residual_norm_sq(c, &p, &plan, &xl, &bl, &mut r);
            (nsq, r)
        });
        for (nsq, _) in &results {
            assert!((nsq - norm_ref).abs() < 1e-9 * norm_ref.max(1.0));
        }
        let r: Vec<f64> = results.into_iter().flat_map(|(_, r)| r).collect();
        for (u, v) in r.iter().zip(&r_ref) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn dist_dot_and_norm() {
        let x = rhs::random(30, 1);
        let y = rhs::random(30, 2);
        let d_ref = famg_sparse::vecops::dot_seq(&x, &y);
        let starts = default_partition(30, 4);
        let (results, _) = run_ranks(4, |c| {
            let r = c.rank();
            let xl = &x[starts[r]..starts[r + 1]];
            let yl = &y[starts[r]..starts[r + 1]];
            (dist_dot(c, xl, yl), dist_norm2(c, xl))
        });
        let n_ref = famg_sparse::vecops::norm2(&x);
        for (d, n) in results {
            assert!((d - d_ref).abs() < 1e-12 * d_ref.abs().max(1.0));
            assert!((n - n_ref).abs() < 1e-12 * n_ref.max(1.0));
        }
    }
}

//! Distributed SpMV and residual norms (Fig. 3b).
//!
//! `y = A x` splits into the local product with the block-diagonal part
//! and the product of the off-diagonal part with the gathered external
//! vector. The fused residual + norm kernel mirrors the single-node §3.3
//! optimization, with the norm finished by one all-reduce.
//!
//! Every kernel runs in one of two modes selected by its `overlap` flag:
//! *synchronous* (halo exchanged up front, then all rows) or *overlapped*
//! (halo posted, interior rows computed while it is in flight, boundary
//! rows after `finish`). Both modes perform the identical floating-point
//! operations per row — interior rows never touch `offd`, boundary rows
//! always accumulate diag before offd — so their results are bitwise
//! equal; overlap only changes *when* the wait happens.

use crate::comm::Comm;
use crate::halo::VectorExchange;
use crate::parcsr::ParCsr;
use famg_core::solver::SolveError;
use famg_sparse::{Csr, MultiVec};

/// One row of the block-diagonal product, with the same accumulation
/// order as `famg_sparse::spmv::spmv_seq` (ascending stored columns).
#[inline]
fn diag_row_dot(diag: &Csr, i: usize, x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (c, v) in diag.row_iter(i) {
        acc += v * x[c];
    }
    acc
}

/// Returns a typed dimension-mismatch error unless `expected == got`.
fn dim(expected: usize, got: usize, what: &'static str) -> Result<(), SolveError> {
    if expected == got {
        Ok(())
    } else {
        Err(SolveError::DimensionMismatch {
            expected,
            got,
            what,
        })
    }
}

/// Validates the operator/plan/vector shapes shared by the kernels.
fn check_kernel_dims(a: &ParCsr, plan: &VectorExchange, x_len: usize) -> Result<(), SolveError> {
    dim(a.diag.ncols(), x_len, "local x (owned columns)")?;
    dim(a.offd.ncols(), plan.ext_len(), "halo plan external length")
}

/// `y = A x` using a pre-planned halo exchange (synchronous halo).
///
/// # Panics
/// Panics on mis-sized vectors or a plan that does not match `a`'s
/// off-diagonal block; use [`try_dist_spmv`] for a typed error.
pub fn dist_spmv(comm: &Comm, a: &ParCsr, plan: &VectorExchange, x_local: &[f64], y: &mut [f64]) {
    try_dist_spmv(comm, a, plan, x_local, y, false)
        .unwrap_or_else(|e| panic!("famg dist_spmv: {e}"));
}

/// [`dist_spmv`] with typed shape errors and a selectable halo mode:
/// with `overlap` the interior rows are computed while the halo is in
/// flight (bitwise-identical result, see module docs).
pub fn try_dist_spmv(
    comm: &Comm,
    a: &ParCsr,
    plan: &VectorExchange,
    x_local: &[f64],
    y: &mut [f64],
    overlap: bool,
) -> Result<(), SolveError> {
    check_kernel_dims(a, plan, x_local.len())?;
    dim(a.local_rows(), y.len(), "local y (owned rows)")?;
    if overlap {
        let inflight = plan.post(comm, x_local);
        for &i in &a.interior_rows {
            y[i] = diag_row_dot(&a.diag, i, x_local);
        }
        let x_ext = inflight.finish(comm);
        for &i in &a.boundary_rows {
            y[i] = diag_row_dot(&a.diag, i, x_local);
            let mut acc = 0.0;
            for (k, v) in a.offd.row_iter(i) {
                acc += v * x_ext[k];
            }
            y[i] += acc;
        }
    } else {
        let x_ext = plan.exchange(comm, x_local);
        // Local block-diagonal product...
        for i in 0..a.local_rows() {
            y[i] = diag_row_dot(&a.diag, i, x_local);
        }
        // ...plus the off-diagonal contribution (boundary rows only —
        // interior rows have no offd entries, and skipping their empty
        // accumulator keeps the arithmetic identical to the overlap path).
        for &i in &a.boundary_rows {
            let mut acc = 0.0;
            for (k, v) in a.offd.row_iter(i) {
                acc += v * x_ext[k];
            }
            y[i] += acc;
        }
    }
    Ok(())
}

/// Lane-wise twin of [`diag_row_dot`]: column `j` of `out` follows the
/// exact scalar accumulation order (ascending stored columns from a
/// zero accumulator), so each lane is bitwise identical to the scalar
/// kernel on the extracted column.
#[inline]
fn diag_row_dot_multi(diag: &Csr, i: usize, xd: &[f64], k: usize, out: &mut [f64]) {
    out.fill(0.0);
    for (c, v) in diag.row_iter(i) {
        for (o, xj) in out.iter_mut().zip(&xd[c * k..(c + 1) * k]) {
            *o += v * xj;
        }
    }
}

/// Validates the operator/plan/block shapes shared by the batched
/// kernels.
fn check_kernel_dims_multi(
    a: &ParCsr,
    plan: &VectorExchange,
    x: &MultiVec,
) -> Result<(), SolveError> {
    dim(a.diag.ncols(), x.n(), "local x block (owned columns)")?;
    dim(a.offd.ncols(), plan.ext_len(), "halo plan external length")
}

/// Batched `Y = A X`: one halo exchange for all `k` columns (one
/// envelope per neighbor regardless of width — see
/// [`VectorExchange::post_multi`]) and one matrix traversal per row
/// group. With `overlap` the interior rows are computed while the halo
/// is in flight, exactly like [`try_dist_spmv`]; column `j` is bitwise
/// identical to the scalar kernel in either mode.
pub fn try_dist_spmv_multi(
    comm: &Comm,
    a: &ParCsr,
    plan: &VectorExchange,
    x: &MultiVec,
    y: &mut MultiVec,
    overlap: bool,
) -> Result<(), SolveError> {
    check_kernel_dims_multi(a, plan, x)?;
    dim(a.local_rows(), y.n(), "local y block (owned rows)")?;
    dim(x.k(), y.k(), "local y block width")?;
    let k = x.k();
    let xd = x.data();
    let boundary = |yd: &mut [f64], x_ext: &[f64], acc: &mut [f64]| {
        for &i in &a.boundary_rows {
            acc.fill(0.0);
            for (e, v) in a.offd.row_iter(i) {
                for (aj, xj) in acc.iter_mut().zip(&x_ext[e * k..(e + 1) * k]) {
                    *aj += v * xj;
                }
            }
            for (yj, aj) in yd[i * k..(i + 1) * k].iter_mut().zip(acc.iter()) {
                *yj += aj;
            }
        }
    };
    // ALLOC: k-sized lane accumulator — O(k) per kernel call, not per
    // row; threading it from every caller is not worth the coupling.
    let mut acc = vec![0.0f64; k];
    if overlap {
        let inflight = plan.post_multi(comm, x);
        let yd = y.data_mut();
        for &i in &a.interior_rows {
            let (lo, hi) = (i * k, (i + 1) * k);
            diag_row_dot_multi(&a.diag, i, xd, k, &mut yd[lo..hi]);
        }
        let x_ext = inflight.finish(comm);
        for &i in &a.boundary_rows {
            let (lo, hi) = (i * k, (i + 1) * k);
            diag_row_dot_multi(&a.diag, i, xd, k, &mut yd[lo..hi]);
        }
        boundary(yd, &x_ext, &mut acc);
    } else {
        let x_ext = plan.exchange_multi(comm, x);
        let yd = y.data_mut();
        for i in 0..a.local_rows() {
            let (lo, hi) = (i * k, (i + 1) * k);
            diag_row_dot_multi(&a.diag, i, xd, k, &mut yd[lo..hi]);
        }
        boundary(yd, &x_ext, &mut acc);
    }
    Ok(())
}

/// Batched distributed residual: `R = B - A X` with one halo exchange
/// for all columns; returns the *local* squared norm per column,
/// accumulated in ascending row order so synchronous and overlapped
/// runs (and the scalar kernel, per column) are bitwise equal.
pub fn try_dist_residual_multi(
    comm: &Comm,
    a: &ParCsr,
    plan: &VectorExchange,
    x: &MultiVec,
    b: &MultiVec,
    r: &mut MultiVec,
    overlap: bool,
) -> Result<Vec<f64>, SolveError> {
    check_kernel_dims_multi(a, plan, x)?;
    dim(a.local_rows(), b.n(), "local right-hand side block")?;
    dim(a.local_rows(), r.n(), "local residual block")?;
    dim(x.k(), b.k(), "local right-hand side block width")?;
    dim(x.k(), r.k(), "local residual block width")?;
    let k = x.k();
    let xd = x.data();
    let bd = b.data();
    let diag_part = |i: usize, rd: &mut [f64]| {
        let rr = &mut rd[i * k..(i + 1) * k];
        rr.copy_from_slice(&bd[i * k..(i + 1) * k]);
        for (c, v) in a.diag.row_iter(i) {
            for (rj, xj) in rr.iter_mut().zip(&xd[c * k..(c + 1) * k]) {
                *rj -= v * xj;
            }
        }
    };
    if overlap {
        let inflight = plan.post_multi(comm, x);
        let rd = r.data_mut();
        for &i in &a.interior_rows {
            diag_part(i, rd);
        }
        let x_ext = inflight.finish(comm);
        for &i in &a.boundary_rows {
            diag_part(i, rd);
            let rr = &mut rd[i * k..(i + 1) * k];
            for (e, v) in a.offd.row_iter(i) {
                for (rj, xj) in rr.iter_mut().zip(&x_ext[e * k..(e + 1) * k]) {
                    *rj -= v * xj;
                }
            }
        }
    } else {
        let x_ext = plan.exchange_multi(comm, x);
        let rd = r.data_mut();
        for i in 0..a.local_rows() {
            diag_part(i, rd);
            let rr = &mut rd[i * k..(i + 1) * k];
            for (e, v) in a.offd.row_iter(i) {
                for (rj, xj) in rr.iter_mut().zip(&x_ext[e * k..(e + 1) * k]) {
                    *rj -= v * xj;
                }
            }
        }
    }
    // Norm pass in ascending row order, per lane — the same fold the
    // scalar kernel performs on each extracted column.
    // ALLOC: k-sized result vector, returned to (and reduced by) the
    // caller — it is the kernel's output, not scratch.
    let mut acc_sq = vec![0.0f64; k];
    for row in r.data().chunks_exact(k.max(1)) {
        for (aj, rj) in acc_sq.iter_mut().zip(row) {
            *aj += rj * rj;
        }
    }
    Ok(acc_sq)
}

/// Batched fused residual + norm: per-column *global* squared norms
/// finished by a single vector all-reduce
/// ([`Comm::allreduce_sum_vec`]), so the collective count is
/// independent of the batch width. Column `j` is bitwise identical to
/// [`try_dist_residual_norm_sq`] on that column alone.
pub fn try_dist_residual_norm_sq_multi(
    comm: &Comm,
    a: &ParCsr,
    plan: &VectorExchange,
    x: &MultiVec,
    b: &MultiVec,
    r: &mut MultiVec,
    overlap: bool,
) -> Result<Vec<f64>, SolveError> {
    let acc_sq = try_dist_residual_multi(comm, a, plan, x, b, r, overlap)?;
    Ok(comm.allreduce_sum_vec(acc_sq, 0x40))
}

/// Batched distributed dot products (one vector all-reduce): `out[j] =
/// x[:,j] · y[:,j]` globally, each column bitwise identical to
/// [`dist_dot`].
pub fn dist_dot_multi(comm: &Comm, x: &MultiVec, y: &MultiVec) -> Vec<f64> {
    // PANIC-FREE: shape asserts guard the caller contract at the kernel
    // boundary; the try_* drivers validate block shapes before calling.
    assert_eq!(x.n(), y.n());
    assert_eq!(x.k(), y.k()); // PANIC-FREE: same caller contract
    let k = x.k();
    // ALLOC: k-sized result vector — the all-reduce then owns it as the
    // message payload.
    let mut acc = vec![0.0f64; k];
    for (xr, yr) in x
        .data()
        .chunks_exact(k.max(1))
        .zip(y.data().chunks_exact(k.max(1)))
    {
        for j in 0..k {
            acc[j] += xr[j] * yr[j];
        }
    }
    comm.allreduce_sum_vec(acc, 0x41)
}

/// Batched distributed 2-norms (one vector all-reduce).
pub fn dist_norm2_multi(comm: &Comm, x: &MultiVec) -> Vec<f64> {
    let mut out = dist_dot_multi(comm, x, x);
    for o in &mut out {
        *o = o.sqrt();
    }
    out
}

/// Distributed residual only: `r = b - A x` with no norm and therefore
/// no global reduction — one halo exchange is the entire communication.
/// Use this on V-cycle levels where the norm is unused; it returns the
/// *local* squared norm so callers that do want the global value can
/// finish it with one all-reduce (see [`dist_residual_norm_sq`]).
///
/// # Panics
/// Panics on mis-sized vectors or a mismatched plan; use
/// [`try_dist_residual`] for a typed error.
pub fn dist_residual(
    comm: &Comm,
    a: &ParCsr,
    plan: &VectorExchange,
    x_local: &[f64],
    b_local: &[f64],
    r: &mut [f64],
) -> f64 {
    try_dist_residual(comm, a, plan, x_local, b_local, r, false)
        .unwrap_or_else(|e| panic!("famg dist_residual: {e}"))
}

/// [`dist_residual`] with typed shape errors and a selectable halo mode.
/// The local squared norm is always accumulated over `r` in ascending row
/// order, so synchronous and overlapped runs return bitwise-equal values.
pub fn try_dist_residual(
    comm: &Comm,
    a: &ParCsr,
    plan: &VectorExchange,
    x_local: &[f64],
    b_local: &[f64],
    r: &mut [f64],
    overlap: bool,
) -> Result<f64, SolveError> {
    check_kernel_dims(a, plan, x_local.len())?;
    dim(a.local_rows(), b_local.len(), "local right-hand side")?;
    dim(a.local_rows(), r.len(), "local residual")?;
    if overlap {
        let inflight = plan.post(comm, x_local);
        for &i in &a.interior_rows {
            let mut acc = b_local[i];
            for (c, v) in a.diag.row_iter(i) {
                acc -= v * x_local[c];
            }
            r[i] = acc;
        }
        let x_ext = inflight.finish(comm);
        for &i in &a.boundary_rows {
            let mut acc = b_local[i];
            for (c, v) in a.diag.row_iter(i) {
                acc -= v * x_local[c];
            }
            for (k, v) in a.offd.row_iter(i) {
                acc -= v * x_ext[k];
            }
            r[i] = acc;
        }
    } else {
        let x_ext = plan.exchange(comm, x_local);
        for i in 0..a.local_rows() {
            let mut acc = b_local[i];
            for (c, v) in a.diag.row_iter(i) {
                acc -= v * x_local[c];
            }
            for (k, v) in a.offd.row_iter(i) {
                acc -= v * x_ext[k];
            }
            r[i] = acc;
        }
    }
    // Norm pass in ascending row order regardless of the order the rows
    // were produced in — keeps the sum bitwise mode-independent.
    let mut acc_sq = 0.0;
    for &ri in r.iter() {
        acc_sq += ri * ri;
    }
    Ok(acc_sq)
}

/// Fused distributed residual: `r = b - A x` with `‖r‖²` reduced across
/// ranks in a single collective. Returns the *global* squared norm.
///
/// # Panics
/// Panics on mis-sized vectors or a mismatched plan; use
/// [`try_dist_residual_norm_sq`] for a typed error.
pub fn dist_residual_norm_sq(
    comm: &Comm,
    a: &ParCsr,
    plan: &VectorExchange,
    x_local: &[f64],
    b_local: &[f64],
    r: &mut [f64],
) -> f64 {
    try_dist_residual_norm_sq(comm, a, plan, x_local, b_local, r, false)
        .unwrap_or_else(|e| panic!("famg dist_residual_norm_sq: {e}"))
}

/// [`dist_residual_norm_sq`] with typed shape errors and a selectable
/// halo mode.
pub fn try_dist_residual_norm_sq(
    comm: &Comm,
    a: &ParCsr,
    plan: &VectorExchange,
    x_local: &[f64],
    b_local: &[f64],
    r: &mut [f64],
    overlap: bool,
) -> Result<f64, SolveError> {
    let acc_sq = try_dist_residual(comm, a, plan, x_local, b_local, r, overlap)?;
    Ok(comm.allreduce_sum(acc_sq, 0x40))
}

/// Distributed dot product (one all-reduce).
pub fn dist_dot(comm: &Comm, x: &[f64], y: &[f64]) -> f64 {
    comm.allreduce_sum(famg_sparse::vecops::dot_seq(x, y), 0x41)
}

/// Distributed 2-norm.
pub fn dist_norm2(comm: &Comm, x: &[f64]) -> f64 {
    dist_dot(comm, x, x).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use crate::parcsr::default_partition;
    use famg_matgen::{laplace2d, rhs};

    #[test]
    fn dist_spmv_matches_serial() {
        let a = laplace2d(10, 10);
        let n = a.nrows();
        let x = rhs::random(n, 3);
        let mut y_ref = vec![0.0; n];
        famg_sparse::spmv::spmv_seq(&a, &x, &mut y_ref);
        for nranks in [1usize, 2, 3, 5] {
            let starts = default_partition(n, nranks);
            let (results, _) = run_ranks(nranks, |c| {
                let r = c.rank();
                let p = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
                let xl = x[starts[r]..starts[r + 1]].to_vec();
                let plan = VectorExchange::plan(c, &p.colmap, &starts);
                let mut y = vec![0.0; p.local_rows()];
                dist_spmv(c, &p, &plan, &xl, &mut y);
                y
            });
            let y: Vec<f64> = results.concat();
            for (u, v) in y.iter().zip(&y_ref) {
                assert!((u - v).abs() < 1e-12, "nranks {nranks}");
            }
        }
    }

    #[test]
    fn dist_residual_matches_serial() {
        let a = laplace2d(9, 7);
        let n = a.nrows();
        let x = rhs::random(n, 5);
        let b = rhs::random(n, 6);
        let mut r_ref = vec![0.0; n];
        let norm_ref = famg_sparse::spmv::residual_norm_sq(&a, &x, &b, &mut r_ref);
        let starts = default_partition(n, 3);
        let (results, _) = run_ranks(3, |c| {
            let rk = c.rank();
            let p = ParCsr::from_global_rows(&a, starts[rk], starts[rk + 1], starts.clone(), rk);
            let xl = x[starts[rk]..starts[rk + 1]].to_vec();
            let bl = b[starts[rk]..starts[rk + 1]].to_vec();
            let plan = VectorExchange::plan(c, &p.colmap, &starts);
            let mut r = vec![0.0; p.local_rows()];
            let nsq = dist_residual_norm_sq(c, &p, &plan, &xl, &bl, &mut r);
            (nsq, r)
        });
        for (nsq, _) in &results {
            assert!((nsq - norm_ref).abs() < 1e-9 * norm_ref.max(1.0));
        }
        let r: Vec<f64> = results.into_iter().flat_map(|(_, r)| r).collect();
        for (u, v) in r.iter().zip(&r_ref) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    /// Batched distributed SpMV/residual: each column bitwise identical
    /// to the scalar kernel, in both halo modes, with the message count
    /// of a single scalar exchange.
    #[test]
    fn dist_multi_kernels_bitwise_match_scalar_columns() {
        let a = laplace2d(10, 8);
        let n = a.nrows();
        let k = 3usize;
        let cols_x: Vec<Vec<f64>> = (0..k).map(|j| rhs::random(n, 20 + j as u64)).collect();
        let cols_b: Vec<Vec<f64>> = (0..k).map(|j| rhs::random(n, 30 + j as u64)).collect();
        for nranks in [1usize, 2, 4] {
            let starts = default_partition(n, nranks);
            for overlap in [false, true] {
                let (per_rank, _) = run_ranks(nranks, |c| {
                    let rk = c.rank();
                    let (s, e) = (starts[rk], starts[rk + 1]);
                    let p = ParCsr::from_global_rows(&a, s, e, starts.clone(), rk);
                    let plan = VectorExchange::plan(c, &p.colmap, &starts);
                    let xl_cols: Vec<Vec<f64>> =
                        cols_x.iter().map(|cx| cx[s..e].to_vec()).collect();
                    let bl_cols: Vec<Vec<f64>> =
                        cols_b.iter().map(|cb| cb[s..e].to_vec()).collect();
                    let xm = MultiVec::from_columns(&xl_cols);
                    let bm = MultiVec::from_columns(&bl_cols);
                    let nl = p.local_rows();

                    let before = c.messages_sent();
                    let mut ym = MultiVec::new(nl, k);
                    try_dist_spmv_multi(c, &p, &plan, &xm, &mut ym, overlap).unwrap();
                    let multi_msgs = c.messages_sent() - before;
                    let mut rm = MultiVec::new(nl, k);
                    let norms =
                        try_dist_residual_norm_sq_multi(c, &p, &plan, &xm, &bm, &mut rm, overlap)
                            .unwrap();
                    let dots = dist_dot_multi(c, &xm, &bm);

                    let mut scalar_msgs = 0u64;
                    let mut ys = Vec::new();
                    let mut rs = Vec::new();
                    let mut norms_s = Vec::new();
                    let mut dots_s = Vec::new();
                    for j in 0..k {
                        let before = c.messages_sent();
                        let mut y = vec![0.0; nl];
                        try_dist_spmv(c, &p, &plan, &xl_cols[j], &mut y, overlap).unwrap();
                        scalar_msgs += c.messages_sent() - before;
                        let mut r = vec![0.0; nl];
                        norms_s.push(
                            try_dist_residual_norm_sq(
                                c,
                                &p,
                                &plan,
                                &xl_cols[j],
                                &bl_cols[j],
                                &mut r,
                                overlap,
                            )
                            .unwrap(),
                        );
                        dots_s.push(dist_dot(c, &xl_cols[j], &bl_cols[j]));
                        ys.push(y);
                        rs.push(r);
                    }
                    scalar_msgs /= k as u64;
                    (
                        ym,
                        rm,
                        norms,
                        dots,
                        ys,
                        rs,
                        norms_s,
                        dots_s,
                        multi_msgs,
                        scalar_msgs,
                    )
                });
                for (rk, (ym, rm, norms, dots, ys, rs, norms_s, dots_s, mm, sm)) in
                    per_rank.iter().enumerate()
                {
                    assert_eq!(mm, sm, "nranks {nranks} rank {rk} message count");
                    for j in 0..k {
                        assert_eq!(ym.col(j), ys[j], "spmv nranks {nranks} rank {rk} col {j}");
                        assert_eq!(rm.col(j), rs[j], "resid nranks {nranks} rank {rk} col {j}");
                        assert_eq!(
                            norms[j].to_bits(),
                            norms_s[j].to_bits(),
                            "norm nranks {nranks} rank {rk} col {j} overlap {overlap}"
                        );
                        assert_eq!(dots[j].to_bits(), dots_s[j].to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn dist_dot_and_norm() {
        let x = rhs::random(30, 1);
        let y = rhs::random(30, 2);
        let d_ref = famg_sparse::vecops::dot_seq(&x, &y);
        let starts = default_partition(30, 4);
        let (results, _) = run_ranks(4, |c| {
            let r = c.rank();
            let xl = &x[starts[r]..starts[r + 1]];
            let yl = &y[starts[r]..starts[r + 1]];
            (dist_dot(c, xl, yl), dist_norm2(c, xl))
        });
        let n_ref = famg_sparse::vecops::norm2(&x);
        for (d, n) in results {
            assert!((d - d_ref).abs() < 1e-12 * d_ref.abs().max(1.0));
            assert!((n - n_ref).abs() < 1e-12 * n_ref.max(1.0));
        }
    }
}

//! Distributed SpGEMM (Fig. 3c) and distributed transpose.
//!
//! `C = A · B` with `A`'s column partition matching `B`'s row partition:
//! each rank gathers the remote `B` rows its `A.colmap` references,
//! renumbers their column indices into an extended compressed space
//! (§4.2 — the sequential/parallel choice is the paper's headline
//! multi-node optimization), and multiplies locally with the same sparse
//! accumulator as the single-node kernel.

use crate::comm::Comm;
use crate::halo::{gather_rows, RowGatherPlan};
use crate::parcsr::{owner_of, ParCsr};
use crate::renumber::{renumber_par, renumber_seq, LocalCol};
use famg_sparse::spa::Spa;

/// Distributed sparse matrix–matrix product.
///
/// `parallel_renumber` selects the Fig. 4 parallel renumbering (the
/// optimized path) or the ordered-set sequential baseline.
pub fn dist_spgemm(comm: &Comm, a: &ParCsr, b: &ParCsr, parallel_renumber: bool) -> ParCsr {
    // "spgemm" spans inherit the enclosing phase's Fig. 5 bucket (RAP
    // during setup) in `PhaseTimes::from_span`.
    let _span = famg_prof::scope("spgemm");
    let rank = comm.rank();
    assert_eq!(
        a.col_starts,
        b_row_starts(b, comm),
        "A's column partition must match B's row partition"
    );
    // Gather the remote B rows referenced by A's off-diagonal part.
    let gathered = gather_rows(
        comm,
        &a.colmap,
        &a.col_starts,
        |li| b.global_row(li, rank),
        |_, _, _, _| true,
    );
    // Renumber received columns into B's extended off-diagonal space.
    let received_cols: Vec<usize> = gathered
        .data
        .iter()
        .flat_map(|r| r.iter().map(|&(c, _)| c))
        .collect();
    let own_cols = b.col_range(rank);
    let ext = if parallel_renumber {
        renumber_par(&received_cols, &b.colmap, own_cols)
    } else {
        renumber_seq(&received_cols, &b.colmap, own_cols)
    };
    let ndiag = b.diag.ncols();
    let width = ndiag + ext.offd_width();
    // Pre-encode gathered rows into the unified local column space.
    let encoded: Vec<Vec<(usize, f64)>> = gathered
        .data
        .iter()
        .map(|row| {
            row.iter()
                .map(|&(g, v)| {
                    let lc = match ext.lookup(g) {
                        LocalCol::Diag(c) => c,
                        LocalCol::Offd(k) => ndiag + k,
                    };
                    (lc, v)
                })
                .collect()
        })
        .collect();

    // Multiply row by row.
    let nl = a.local_rows();
    let mut spa = Spa::new(width);
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(nl);
    for i in 0..nl {
        // Diagonal part of A: columns index B's own rows directly.
        for (j, av) in a.diag.row_iter(i) {
            for (c, bv) in b.diag.row_iter(j) {
                spa.add(c, av * bv);
            }
            for (k, bv) in b.offd.row_iter(j) {
                spa.add(ndiag + k, av * bv);
            }
        }
        // Off-diagonal part: gathered rows, aligned with a.colmap order.
        for (k, av) in a.offd.row_iter(i) {
            for &(lc, bv) in &encoded[k] {
                spa.add(lc, av * bv);
            }
        }
        // Decode to global columns.
        let mut out: Vec<(usize, f64)> = spa
            .cols()
            .iter()
            .zip(spa.vals())
            .map(|(&lc, &v)| {
                let g = if lc < ndiag {
                    own_cols.0 + lc
                } else {
                    ext.global_of(lc - ndiag)
                };
                (g, v)
            })
            .collect();
        out.sort_unstable_by_key(|&(c, _)| c);
        rows.push(out);
        spa.reset();
    }
    ParCsr::from_local_rows_global_cols(
        a.row_start,
        a.row_end,
        b.global_cols,
        b.col_starts.clone(),
        rank,
        &rows,
    )
}

/// A frozen symbolic distributed product: everything pattern-derived
/// about one `C = A · B` — the remote-row gather geometry, the §4.2
/// renumbering, and `C`'s structure — captured once so later same-pattern
/// products run a branch-free numeric pass with a values-only halo
/// exchange ([`RowGatherPlan`]).
pub struct DistSpgemmPlan {
    /// Values-only gather of the remote `B` rows behind `A.colmap`.
    gather: RowGatherPlan,
    /// Renumbered (local-column-space) indices of each gathered row,
    /// aligned entrywise with the values [`RowGatherPlan::execute`]
    /// returns.
    encoded: Vec<Vec<usize>>,
    /// Width of `B`'s diagonal block (local columns below this index are
    /// diag, the rest extended off-diagonal).
    ndiag: usize,
    /// Total local column space width (diag + extended offd).
    width: usize,
    /// For each local row of `C`: the local-space column of every stored
    /// entry, diag entries first then offd — the write-back layout.
    c_row_lcs: Vec<Vec<usize>>,
    /// The frozen product. The pattern is authoritative; the values are
    /// rewritten in place by every [`execute`](Self::execute).
    pub c: ParCsr,
}

impl DistSpgemmPlan {
    /// Runs one full (symbolic + numeric) product and freezes its
    /// structure. `plan.c` holds the numeric result for the planning
    /// operands, bitwise identical to [`dist_spgemm`]'s.
    pub fn new(comm: &Comm, a: &ParCsr, b: &ParCsr, parallel_renumber: bool) -> DistSpgemmPlan {
        let rank = comm.rank();
        let c = dist_spgemm(comm, a, b, parallel_renumber);
        // Re-derive the renumbering the product used: gather the remote
        // row *patterns* and renumber exactly as dist_spgemm did.
        let gathered = gather_rows(
            comm,
            &a.colmap,
            &a.col_starts,
            |li| b.global_row(li, rank),
            |_, _, _, _| true,
        );
        let received_cols: Vec<usize> = gathered
            .data
            .iter()
            .flat_map(|r| r.iter().map(|&(c, _)| c))
            .collect();
        let own_cols = b.col_range(rank);
        let ext = if parallel_renumber {
            renumber_par(&received_cols, &b.colmap, own_cols)
        } else {
            renumber_seq(&received_cols, &b.colmap, own_cols)
        };
        let ndiag = b.diag.ncols();
        let width = ndiag + ext.offd_width();
        let lc_of = |g: usize| -> usize {
            match ext.lookup(g) {
                LocalCol::Diag(c) => c,
                LocalCol::Offd(k) => ndiag + k,
            }
        };
        let encoded: Vec<Vec<usize>> = gathered
            .data
            .iter()
            .map(|row| row.iter().map(|&(g, _)| lc_of(g)).collect())
            .collect();
        // C's columns live in B's column space, so the same renumbering
        // maps every stored entry of C to its local-space column.
        let c_row_lcs: Vec<Vec<usize>> = (0..c.local_rows())
            .map(|i| {
                c.diag
                    .row_cols(i)
                    .iter()
                    .copied()
                    .chain(c.offd.row_cols(i).iter().map(|&k| lc_of(c.colmap[k])))
                    .collect()
            })
            .collect();
        let gather = RowGatherPlan::plan(comm, &a.colmap, &a.col_starts, |li| {
            b.diag.row_nnz(li) + b.offd.row_nnz(li)
        });
        DistSpgemmPlan {
            gather,
            encoded,
            ndiag,
            width,
            c_row_lcs,
            c,
        }
    }

    /// Numeric-only product into the frozen pattern: recomputes `self.c`'s
    /// values for same-pattern operands `a` and `b`. The per-column
    /// accumulation order matches [`dist_spgemm`]'s sparse accumulator, so
    /// the values are bitwise identical to a from-scratch product.
    pub fn execute(&mut self, comm: &Comm, a: &ParCsr, b: &ParCsr) {
        let _span = famg_prof::scope("spgemm");
        let rank = comm.rank();
        debug_assert_eq!(a.local_rows(), self.c.local_rows());
        let ext_vals = self.gather.execute(comm, |li| {
            b.global_row(li, rank).into_iter().map(|(_, v)| v).collect()
        });
        let ndiag = self.ndiag;
        let nl = a.local_rows();
        let mut stamp = vec![usize::MAX; self.width];
        let mut slot = vec![0usize; self.width];
        let mut buf: Vec<f64> = Vec::new();
        for i in 0..nl {
            let lcs = &self.c_row_lcs[i];
            buf.clear();
            buf.resize(lcs.len(), 0.0);
            for (t, &lc) in lcs.iter().enumerate() {
                stamp[lc] = i;
                slot[lc] = t;
            }
            for (j, av) in a.diag.row_iter(i) {
                for (cb, bv) in b.diag.row_iter(j) {
                    debug_assert_eq!(stamp[cb], i, "value outside frozen pattern");
                    buf[slot[cb]] += av * bv;
                }
                for (k, bv) in b.offd.row_iter(j) {
                    debug_assert_eq!(stamp[ndiag + k], i, "value outside frozen pattern");
                    buf[slot[ndiag + k]] += av * bv;
                }
            }
            for (k, av) in a.offd.row_iter(i) {
                for (&lc, &bv) in self.encoded[k].iter().zip(&ext_vals[k]) {
                    debug_assert_eq!(stamp[lc], i, "value outside frozen pattern");
                    buf[slot[lc]] += av * bv;
                }
            }
            let dn = self.c.diag.row_nnz(i);
            let dr = self.c.diag.row_range(i);
            self.c.diag.values_mut()[dr].copy_from_slice(&buf[..dn]);
            let or = self.c.offd.row_range(i);
            self.c.offd.values_mut()[or].copy_from_slice(&buf[dn..]);
        }
    }
}

/// Reconstructs B's global row partition from each rank's range.
fn b_row_starts(b: &ParCsr, comm: &Comm) -> Vec<usize> {
    // Row partitions equal col partitions for the square operators famg
    // distributes; transfer operators carry the fine partition in
    // `row_start/row_end`. Rebuild via allgather for generality.
    let mut starts = comm.allgather(b.row_start, 0x50, 8);
    starts.push(comm.allreduce_max(b.row_end as f64, 0x51) as usize);
    starts
}

/// Distributed transpose: `T = Aᵀ`, rows of `T` partitioned by `A`'s
/// column partition. Entries are routed to the owner of their target row.
pub fn dist_transpose(comm: &Comm, a: &ParCsr) -> ParCsr {
    let _span = famg_prof::scope("spgemm");
    let rank = comm.rank();
    let nranks = comm.size();
    // A's global row partition (becomes T's column partition).
    let row_starts = {
        let mut s = comm.allgather(a.row_start, 0x52, 8);
        s.push(comm.allreduce_max(a.row_end as f64, 0x53) as usize);
        s
    };
    // Route each entry to the owner of its global column — point-to-point
    // to actual destination owners only (for a sparse operator each rank
    // touches a handful of column owners, not all P−1).
    let mut outbound: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); nranks];
    for i in 0..a.local_rows() {
        let gi = a.row_start + i;
        for (g, v) in a.global_row(i, rank) {
            outbound[owner_of(&a.col_starts, g)].push((g, gi, v));
        }
    }
    let sends: Vec<_> = outbound
        .iter_mut()
        .enumerate()
        .filter(|(_, t)| !t.is_empty())
        .map(|(dst, t)| (dst, std::mem::take(t)))
        .collect();
    let inbound = comm.alltoallv(sends, 0x54, |t| t.len() * 24);
    // Assemble T's local rows. Inbound batches arrive sorted by source
    // rank, and sources own disjoint ascending row ranges, so the
    // per-row entry order (by T-column = A-row) is deterministic.
    let (t0, t1) = a.col_range(rank);
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); t1 - t0];
    for (_, batch) in inbound {
        for (g, gi, v) in batch {
            rows[g - t0].push((gi, v));
        }
    }
    for r in &mut rows {
        r.sort_unstable_by_key(|&(c, _)| c);
    }
    ParCsr::from_local_rows_global_cols(
        t0,
        t1,
        *row_starts.last().unwrap(),
        row_starts,
        rank,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use crate::parcsr::{default_partition, to_global, ParCsr};
    use famg_matgen::laplace2d;
    use famg_sparse::spgemm::spgemm;
    use famg_sparse::transpose::transpose;
    use famg_sparse::Csr;

    fn split(a: &Csr, starts: &[usize], r: usize) -> ParCsr {
        ParCsr::from_global_rows(a, starts[r], starts[r + 1], starts.to_vec(), r)
    }

    #[test]
    fn dist_spgemm_matches_serial() {
        let a = laplace2d(8, 8);
        let c_ref = spgemm(&a, &a);
        for nranks in [1usize, 2, 4] {
            for par in [false, true] {
                let starts = default_partition(64, nranks);
                let (parts, _) = run_ranks(nranks, |c| {
                    let pa = split(&a, &starts, c.rank());
                    let pb = split(&a, &starts, c.rank());
                    dist_spgemm(c, &pa, &pb, par)
                });
                let c_dist = to_global(&parts);
                assert!(
                    c_ref.frob_diff(&c_dist) < 1e-10,
                    "nranks {nranks} par {par}"
                );
            }
        }
    }

    #[test]
    fn renumber_choice_identical_output() {
        let a = laplace2d(10, 6);
        let starts = default_partition(60, 3);
        let run = |par: bool| {
            let (parts, _) = run_ranks(3, |c| {
                let pa = split(&a, &starts, c.rank());
                let pb = split(&a, &starts, c.rank());
                dist_spgemm(c, &pa, &pb, par)
            });
            to_global(&parts)
        };
        let seq = run(false);
        let par = run(true);
        assert_eq!(seq.to_dense(), par.to_dense());
    }

    #[test]
    fn dist_transpose_matches_serial() {
        let mut a = laplace2d(7, 5);
        // Make it asymmetric so the transpose is non-trivial.
        {
            let vals = a.values_mut();
            for (k, v) in vals.iter_mut().enumerate() {
                *v += 0.01 * (k % 7) as f64;
            }
        }
        let t_ref = transpose(&a);
        for nranks in [1usize, 2, 3] {
            let starts = default_partition(35, nranks);
            let (parts, _) = run_ranks(nranks, |c| {
                let pa = split(&a, &starts, c.rank());
                dist_transpose(c, &pa)
            });
            let t = to_global(&parts);
            assert_eq!(t.to_dense(), t_ref.to_dense(), "nranks {nranks}");
        }
    }

    #[test]
    fn transpose_twice_roundtrips() {
        let a = laplace2d(6, 6);
        let starts = default_partition(36, 2);
        let (parts, _) = run_ranks(2, |c| {
            let pa = split(&a, &starts, c.rank());
            dist_transpose(c, &dist_transpose(c, &pa))
        });
        assert_eq!(to_global(&parts).to_dense(), a.to_dense());
    }

    #[test]
    fn rap_via_dist_ops_matches_serial() {
        // A full distributed R·A·P against the serial fused kernel.
        let a = laplace2d(6, 6);
        // P: simple aggregation of 2 points per aggregate (36 -> 18).
        let p = Csr::from_triplets(36, 18, (0..36).map(|i| (i, i / 2, 1.0)).collect::<Vec<_>>());
        let r = transpose(&p);
        let c_ref = spgemm(&spgemm(&r, &a), &p);
        let starts = default_partition(36, 3);
        let cstarts = default_partition(18, 3);
        let (parts, _) = run_ranks(3, |c| {
            let rk = c.rank();
            let pa = split(&a, &starts, rk);
            // P distributed by fine rows with coarse column partition.
            let pp = ParCsr::from_global_rows(&p, starts[rk], starts[rk + 1], cstarts.clone(), rk);
            let pr = dist_transpose(c, &pp);
            let ra = dist_spgemm(c, &pr, &pa, true);
            dist_spgemm(c, &ra, &pp, true)
        });
        let c_dist = to_global(&parts);
        assert!(c_ref.frob_diff(&c_dist) < 1e-10);
    }
}

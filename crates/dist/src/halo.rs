//! Halo exchanges: vector-element gathering for SpMV (Fig. 3b) and
//! matrix-row gathering for SpGEMM-like operations (Fig. 3c).
//!
//! [`VectorExchange`] separates *planning* (who needs what — the paper's
//! persistent-communication setup, §4.4) from *execution*, so the
//! persistent path plans once per operator while the ad-hoc baseline
//! re-plans on every call. Planning records the actual send/recv neighbor
//! lists, and execution posts point-to-point messages only to ranks with
//! nonzero traffic: one halo exchange costs exactly one message per true
//! neighbor pair, never the P−1 envelopes per rank of an all-to-all.
//! [`gather_rows`] fetches remote matrix rows, optionally applying a
//! caller-side filter — the §4.3 optimization that strips entries the
//! interpolation will never read before they hit the wire.

use crate::comm::{wire, Comm, RecvHandle};
use crate::parcsr::owner_of;
use famg_sparse::MultiVec;

/// Tags are namespaced per module to avoid collisions between concurrent
/// exchange phases.
const TAG_REQ: u64 = 0x10;
const TAG_VAL: u64 = 0x11;
const TAG_ROW_REQ: u64 = 0x20;
const TAG_ROW_DATA: u64 = 0x21;
const TAG_ROW_VAL: u64 = 0x22;
const TAG_FETCH_REQ: u64 = 0x30;
const TAG_FETCH_VAL: u64 = 0x31;

/// A reusable plan for exchanging the vector elements behind a `colmap`.
///
/// Only true neighbors appear in the plan: `send_peers` lists the ranks
/// that request data from this rank (with the local indices to ship),
/// `recv_peers` the ranks owning parts of this rank's halo (with the
/// destination range in the external buffer). Self-owned halo entries
/// (possible under generic partitions) are resolved at plan time into
/// `self_copy`, so execution never searches for — or fails to find — a
/// matching self range.
#[derive(Debug, Clone)]
pub struct VectorExchange {
    /// `(peer rank, local indices to send)`, sorted by rank; never self.
    send_peers: Vec<(usize, Vec<usize>)>,
    /// `(peer rank, ext start, ext end)`, sorted by rank; never self.
    recv_peers: Vec<(usize, usize, usize)>,
    /// Self-owned halo entries: `(local indices, ext start)`.
    self_copy: Option<(Vec<usize>, usize)>,
    /// External buffer length (= colmap length).
    ext_len: usize,
}

/// A halo exchange whose sends are on the wire and whose receives are
/// posted but not yet waited for. Produced by [`VectorExchange::post`];
/// the external buffer becomes available through
/// [`finish`](InFlightHalo::finish). While a halo is in flight the caller
/// is free to compute anything that does not read the external buffer —
/// the interior rows of an SpMV or smoother sweep — which is what hides
/// the communication latency.
pub struct InFlightHalo {
    /// External buffer; self-owned entries already filled.
    ext: Vec<f64>,
    /// `(peer, ext start, ext end, handle)` per receive, in plan order.
    waits: Vec<(usize, usize, usize, RecvHandle<Vec<f64>>)>,
    /// When the sends went on the wire and the receives were posted — the
    /// moment a synchronous exchange would start blocking. `finish`
    /// compares message send times against this mark and its own entry
    /// mark to split the halo wait into hidden and exposed parts.
    posted_at: std::time::Instant,
    /// Keeps the `halo_inflight` span open until `finish`, so the chrome
    /// trace shows the window that interior computation can hide under.
    window: famg_prof::Scope,
}

impl VectorExchange {
    /// Plans the exchange for `colmap` under the ownership partition
    /// `starts`. Involves one neighbor-discovery collective plus one
    /// point-to-point request round (this is the setup cost that
    /// persistent communication amortizes).
    pub fn plan(comm: &Comm, colmap: &[usize], starts: &[usize]) -> VectorExchange {
        debug_assert!(colmap.windows(2).all(|w| w[0] < w[1]));
        // Group the (sorted) colmap by owner: each owner's slice is one
        // contiguous run.
        let mut requests: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut recv_runs: Vec<(usize, usize, usize)> = Vec::new();
        let mut k = 0usize;
        while k < colmap.len() {
            let owner = owner_of(starts, colmap[k]);
            let start = k;
            while k < colmap.len() && colmap[k] < starts[owner + 1] {
                k += 1;
            }
            recv_runs.push((owner, start, k));
            requests.push((
                owner,
                colmap[start..k]
                    .iter()
                    .map(|&g| g - starts[owner])
                    .collect(),
            ));
        }
        // Tell each owner which of its locals we need (neighbors only).
        let incoming = comm.alltoallv(requests, TAG_REQ, |r| wire::idxs(r.len()));
        // Split out the self entry (if any) on both sides: the request we
        // made to ourselves comes straight back through the alltoallv, and
        // its indices pair with the self run of the colmap. Resolving the
        // pair here removes the per-exchange search (and its failure
        // path) from execution.
        let rank = comm.rank();
        let mut self_idx: Option<Vec<usize>> = None;
        let mut send_peers = Vec::with_capacity(incoming.len());
        for (peer, idx) in incoming {
            if peer == rank {
                self_idx = Some(idx);
            } else {
                send_peers.push((peer, idx));
            }
        }
        let mut self_copy: Option<(Vec<usize>, usize)> = None;
        let mut recv_peers = Vec::with_capacity(recv_runs.len());
        for (peer, s, e) in recv_runs {
            if peer == rank {
                let idx = self_idx
                    .take()
                    .expect("self halo run without matching self request");
                debug_assert_eq!(idx.len(), e - s);
                self_copy = Some((idx, s));
            } else {
                recv_peers.push((peer, s, e));
            }
        }
        debug_assert!(self_idx.is_none(), "self request without matching halo run");
        VectorExchange {
            send_peers,
            recv_peers,
            self_copy,
            ext_len: colmap.len(),
        }
    }

    /// Executes the exchange synchronously: gathers owned values from
    /// `x_local` into every requester's external buffer; returns this
    /// rank's external vector (parallel to its colmap). Posts exactly one
    /// message per neighbor with traffic. Equivalent to
    /// [`post`](Self::post) immediately followed by
    /// [`finish`](InFlightHalo::finish) — the entire wait is exposed.
    pub fn exchange(&self, comm: &Comm, x_local: &[f64]) -> Vec<f64> {
        self.post(comm, x_local).finish(comm)
    }

    /// Starts the exchange: fills self-owned entries, posts one send per
    /// requesting neighbor, and posts (non-blocking) receives for every
    /// owning neighbor. The caller may compute on local data while the
    /// halo is in flight, then call [`InFlightHalo::finish`] for the
    /// external buffer.
    ///
    /// All halo spans (`halo_inflight` / `halo_post` / `halo_wait`)
    /// inherit the enclosing kernel's Fig. 5 bucket in
    /// `PhaseTimes::from_span` — they exist for the chrome trace and the
    /// comm-counter attribution, not as buckets of their own.
    // ALLOC: the external buffer is owned by the returned InFlightHalo
    // and each neighbor's packed values become that message's payload —
    // halo envelopes are allocated per exchange by design, mirroring
    // MPI send buffers.
    pub fn post(&self, comm: &Comm, x_local: &[f64]) -> InFlightHalo {
        let window = famg_prof::scope("halo_inflight");
        let _post = famg_prof::scope("halo_post");
        let mut ext = vec![0.0f64; self.ext_len];
        if let Some((idx, s)) = &self.self_copy {
            for (k, &i) in idx.iter().enumerate() {
                ext[s + k] = x_local[i];
            }
        }
        for (peer, idx) in &self.send_peers {
            let vals: Vec<f64> = idx.iter().map(|&i| x_local[i]).collect();
            let b = wire::f64s(vals.len());
            comm.send(*peer, TAG_VAL, vals, b);
        }
        let waits = self
            .recv_peers
            .iter()
            .map(|&(peer, s, e)| (peer, s, e, comm.irecv(peer, TAG_VAL)))
            .collect();
        InFlightHalo {
            ext,
            waits,
            posted_at: comm.clock_mark(),
            window,
        }
    }

    /// Executes a batched exchange synchronously: one envelope per
    /// neighbor carrying all `k` columns. See [`post_multi`].
    ///
    /// [`post_multi`]: Self::post_multi
    pub fn exchange_multi(&self, comm: &Comm, x_local: &MultiVec) -> Vec<f64> {
        self.post_multi(comm, x_local).finish(comm)
    }

    /// Starts a batched exchange for all `k` columns of `x_local`: each
    /// neighbor still receives exactly **one** message per exchange —
    /// its envelope simply carries `k` values per planned index, laid
    /// out row-major to match [`MultiVec`]. The message *count* is
    /// therefore identical to the scalar [`post`](Self::post) at any
    /// width, which is the batched path's communication amortization:
    /// per right-hand side, halo messages cost 1/k of the solo solve
    /// (the per-message envelope/latency cost is what distributed SpMV
    /// is bound by at scale, §4.4).
    ///
    /// The returned external buffer is strided like the input: entry
    /// `e` of column `j` lives at `ext[e * k + j]`, and column `j` is
    /// bitwise identical to a scalar exchange of that column.
    // ALLOC: as in `post` — the strided external buffer belongs to the
    // returned handle and each neighbor's packed block is the message
    // payload; one envelope per neighbor regardless of k.
    pub fn post_multi(&self, comm: &Comm, x_local: &MultiVec) -> InFlightHaloMulti {
        let k = x_local.k();
        let window = famg_prof::scope("halo_batch");
        let _post = famg_prof::scope("halo_post");
        let xd = x_local.data();
        let mut ext = vec![0.0f64; self.ext_len * k];
        if let Some((idx, s)) = &self.self_copy {
            for (e, &i) in idx.iter().enumerate() {
                ext[(s + e) * k..(s + e + 1) * k].copy_from_slice(&xd[i * k..(i + 1) * k]);
            }
        }
        for (peer, idx) in &self.send_peers {
            let mut vals = Vec::with_capacity(idx.len() * k);
            for &i in idx {
                vals.extend_from_slice(&xd[i * k..(i + 1) * k]);
            }
            let b = wire::f64s(vals.len());
            comm.send(*peer, TAG_VAL, vals, b);
        }
        let waits = self
            .recv_peers
            .iter()
            .map(|&(peer, s, e)| (peer, s, e, comm.irecv(peer, TAG_VAL)))
            .collect();
        InFlightHaloMulti {
            ext,
            k,
            waits,
            posted_at: comm.clock_mark(),
            window,
        }
    }

    /// External buffer length.
    pub fn ext_len(&self) -> usize {
        self.ext_len
    }

    /// Ranks this plan sends values to (one message each per exchange).
    pub fn send_peer_ranks(&self) -> Vec<usize> {
        self.send_peers.iter().map(|(r, _)| *r).collect()
    }

    /// Ranks this plan receives values from (self excluded).
    pub fn recv_peer_ranks(&self) -> Vec<usize> {
        self.recv_peers.iter().map(|(r, _, _)| *r).collect()
    }
}

impl InFlightHalo {
    /// Completes the exchange: waits for every posted receive and returns
    /// the external vector (parallel to the plan's colmap).
    ///
    /// The wait the exchange would have cost synchronously is how late
    /// the last message was relative to the post mark (rank skew; the
    /// in-process channel delivers the instant the peer sends). The part
    /// still outstanding when `finish` is entered is *exposed*; the part
    /// that elapsed while the caller computed under the in-flight window
    /// is *hidden*. Both go on profiler counters (`halo_exposed_ns` /
    /// `halo_hidden_ns`) so the comm_volume bench can report how much of
    /// the halo wait the overlap hid. A synchronous `exchange` enters
    /// `finish` immediately, so its wait is (almost) entirely exposed.
    ///
    /// # Panics
    /// Panics with peer/tag/length diagnostics if a wire payload does not
    /// match the planned halo range (a malformed or mismatched plan).
    pub fn finish(self, comm: &Comm) -> Vec<f64> {
        let InFlightHalo {
            mut ext,
            waits,
            posted_at,
            window,
        } = self;
        let entered = comm.clock_mark();
        let mut last_sent: Option<std::time::Instant> = None;
        {
            let _wait = famg_prof::scope("halo_wait");
            for (peer, s, e, handle) in waits {
                let (vals, sent_at): (Vec<f64>, _) = comm.wait_timed(handle);
                check_halo_payload(comm.rank(), peer, TAG_VAL, e - s, vals.len());
                ext[s..e].copy_from_slice(&vals);
                last_sent = Some(last_sent.map_or(sent_at, |m| m.max(sent_at)));
            }
        }
        if let Some(last) = last_sent {
            // `entered >= posted_at`, so exposed <= would_be; saturation
            // only papers over clock-resolution ties.
            let would_be = last.saturating_duration_since(posted_at);
            let exposed = last.saturating_duration_since(entered);
            famg_prof::counter("halo_exposed_ns", nanos(exposed));
            famg_prof::counter("halo_hidden_ns", nanos(would_be.saturating_sub(exposed)));
        }
        drop(window);
        ext
    }
}

/// A batched halo exchange in flight (the k-wide twin of
/// [`InFlightHalo`]): one posted receive per neighbor, each envelope
/// carrying all `k` columns. Produced by [`VectorExchange::post_multi`].
pub struct InFlightHaloMulti {
    /// External buffer, strided `k` per planned index; self-owned
    /// entries already filled.
    ext: Vec<f64>,
    /// Batch width.
    k: usize,
    /// `(peer, ext start, ext end, handle)` per receive, in plan order;
    /// the ranges are in planned-index units, not buffer offsets.
    waits: Vec<(usize, usize, usize, RecvHandle<Vec<f64>>)>,
    /// Post mark for the hidden/exposed wait split (see
    /// [`InFlightHalo::finish`]).
    posted_at: std::time::Instant,
    /// Keeps the `halo_batch` span open until `finish`.
    window: famg_prof::Scope,
}

impl InFlightHaloMulti {
    /// Completes the batched exchange: waits for every posted receive
    /// and returns the strided external buffer (`ext[e * k + j]` is
    /// planned entry `e`, column `j`). Wait accounting matches
    /// [`InFlightHalo::finish`].
    ///
    /// # Panics
    /// Panics with peer/tag/length diagnostics if a wire payload does
    /// not match the planned halo range times the batch width.
    pub fn finish(self, comm: &Comm) -> Vec<f64> {
        let InFlightHaloMulti {
            mut ext,
            k,
            waits,
            posted_at,
            window,
        } = self;
        let entered = comm.clock_mark();
        let mut last_sent: Option<std::time::Instant> = None;
        {
            let _wait = famg_prof::scope("halo_wait");
            for (peer, s, e, handle) in waits {
                let (vals, sent_at): (Vec<f64>, _) = comm.wait_timed(handle);
                check_halo_payload(comm.rank(), peer, TAG_VAL, (e - s) * k, vals.len());
                ext[s * k..e * k].copy_from_slice(&vals);
                last_sent = Some(last_sent.map_or(sent_at, |m| m.max(sent_at)));
            }
        }
        if let Some(last) = last_sent {
            let would_be = last.saturating_duration_since(posted_at);
            let exposed = last.saturating_duration_since(entered);
            famg_prof::counter("halo_exposed_ns", nanos(exposed));
            famg_prof::counter("halo_hidden_ns", nanos(would_be.saturating_sub(exposed)));
        }
        drop(window);
        ext
    }
}

fn nanos(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Validates a received halo payload length against the planned range.
/// Unconditional (also in release): a short or long payload means the
/// sender executed a different plan, and overwriting the external buffer
/// with it would silently corrupt the solve — better to stop with the
/// routing information than to panic deep inside `copy_from_slice`.
fn check_halo_payload(rank: usize, peer: usize, tag: u64, expected: usize, got: usize) {
    // PANIC-FREE: deliberate release-mode guard — a mis-sized payload
    // means sender and receiver ran different plans; stopping with the
    // routing information beats silently corrupting the solve.
    assert!(
        expected == got,
        "rank {rank}: halo payload from rank {peer} (tag {tag:#x}) has {got} values, \
         expected {expected} — sender and receiver disagree on the exchange plan"
    );
}

/// Ad-hoc exchange: plans and executes in one call — the baseline the
/// paper replaces with persistent requests (§4.4 measures 1.7–1.8×).
pub fn exchange_adhoc(
    comm: &Comm,
    colmap: &[usize],
    starts: &[usize],
    x_local: &[f64],
) -> Vec<f64> {
    VectorExchange::plan(comm, colmap, starts).exchange(comm, x_local)
}

/// Rows gathered from other ranks, with global column indices.
#[derive(Debug, Clone)]
pub struct GatheredRows {
    /// Requested global row ids (sorted — mirrors the request list).
    pub rows: Vec<usize>,
    /// Entries per row: `(global_col, value)`.
    pub data: Vec<Vec<(usize, f64)>>,
}

impl GatheredRows {
    /// Locates a gathered row by global id.
    pub fn get(&self, global_row: usize) -> Option<&[(usize, f64)]> {
        self.rows
            .binary_search(&global_row)
            .ok()
            .map(|k| self.data[k].as_slice())
    }

    /// Total gathered entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().map(std::vec::Vec::len).sum()
    }
}

/// Serialized row bundle travelling between ranks.
type RowBundle = (Vec<usize>, Vec<usize>, Vec<f64>); // row_nnz, cols, vals

/// Gathers the rows of the distributed matrix represented by
/// `local_row(local_idx) -> Vec<(global_col, value)>` for the sorted
/// global row list `needed`. `filter(local_row, global_col, value,
/// requester)` decides which entries hit the wire (§4.3); pass
/// `|_, _, _, _| true` for full rows. Requests and replies travel only
/// between true neighbor pairs.
pub fn gather_rows(
    comm: &Comm,
    needed: &[usize],
    row_starts: &[usize],
    local_row: impl Fn(usize) -> Vec<(usize, f64)>,
    filter: impl Fn(usize, usize, f64, usize) -> bool,
) -> GatheredRows {
    let rank = comm.rank();
    debug_assert!(needed.windows(2).all(|w| w[0] < w[1]));
    // Owners own contiguous global ranges, so the sorted `needed` splits
    // into one contiguous run per owner.
    let mut runs: Vec<(usize, usize, usize)> = Vec::new(); // (owner, start, end)
    let mut k = 0usize;
    while k < needed.len() {
        let owner = owner_of(row_starts, needed[k]);
        let start = k;
        while k < needed.len() && needed[k] < row_starts[owner + 1] {
            k += 1;
        }
        runs.push((owner, start, k));
    }
    let requests: Vec<(usize, Vec<usize>)> = runs
        .iter()
        .map(|&(owner, s, e)| (owner, needed[s..e].to_vec()))
        .collect();
    let incoming = comm.alltoallv(requests, TAG_ROW_REQ, |r| wire::idxs(r.len()));
    // Serve: one bundle per requester, sent point-to-point.
    let my_start = row_starts[rank];
    let mut self_bundle: Option<RowBundle> = None;
    for (requester, rows) in &incoming {
        let mut row_nnz = Vec::with_capacity(rows.len());
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for &g in rows {
            let li = g - my_start;
            let mut cnt = 0usize;
            for (c, v) in local_row(li) {
                if filter(li, c, v, *requester) {
                    cols.push(c);
                    vals.push(v);
                    cnt += 1;
                }
            }
            row_nnz.push(cnt);
        }
        let bundle = (row_nnz, cols, vals);
        if *requester == rank {
            self_bundle = Some(bundle);
        } else {
            let b = wire::idxs(bundle.0.len())
                + wire::idxs(bundle.1.len())
                + wire::f64s(bundle.2.len());
            comm.send(*requester, TAG_ROW_DATA, bundle, b);
        }
    }
    // Receive per-owner bundles in run order; rows arrive in request
    // order, i.e. aligned with `needed`.
    let mut data: Vec<Vec<(usize, f64)>> = Vec::with_capacity(needed.len());
    for &(owner, s, e) in &runs {
        let (row_nnz, cols, vals): RowBundle = if owner == rank {
            self_bundle.take().expect("missing self bundle")
        } else {
            comm.recv(owner, TAG_ROW_DATA)
        };
        debug_assert_eq!(row_nnz.len(), e - s);
        let mut off = 0usize;
        for n in row_nnz {
            data.push(
                cols[off..off + n]
                    .iter()
                    .copied()
                    .zip(vals[off..off + n].iter().copied())
                    .collect(),
            );
            off += n;
        }
    }
    GatheredRows {
        rows: needed.to_vec(),
        data,
    }
}

/// A frozen-geometry row gather: the request routing and per-row entry
/// counts of a [`gather_rows`] call, captured once so later exchanges
/// ship *values only* (no column indices, no request round). This is the
/// §4.4 persistent-communication idea applied to the SpGEMM row gather,
/// used by the numeric-refresh setup path where every matrix pattern is
/// frozen and only values change between solves.
#[derive(Debug, Clone)]
pub struct RowGatherPlan {
    /// `(owner, start, end)` runs over the requested row list.
    runs: Vec<(usize, usize, usize)>,
    /// Serve side: `(requester, local row indices)`, in the order the
    /// original request round delivered them.
    serves: Vec<(usize, Vec<usize>)>,
    /// Entries per gathered row, aligned with the request list.
    row_nnz: Vec<usize>,
}

impl RowGatherPlan {
    /// Plans the gather for the sorted global row list `needed` under the
    /// row partition `row_starts`. `local_row_nnz(local_idx)` reports the
    /// (frozen) entry count of an owned row. One request round plus one
    /// count round; every later [`execute`](Self::execute) is a single
    /// values-only message per neighbor.
    pub fn plan(
        comm: &Comm,
        needed: &[usize],
        row_starts: &[usize],
        local_row_nnz: impl Fn(usize) -> usize,
    ) -> RowGatherPlan {
        let rank = comm.rank();
        debug_assert!(needed.windows(2).all(|w| w[0] < w[1]));
        let mut runs: Vec<(usize, usize, usize)> = Vec::new();
        let mut k = 0usize;
        while k < needed.len() {
            let owner = owner_of(row_starts, needed[k]);
            let start = k;
            while k < needed.len() && needed[k] < row_starts[owner + 1] {
                k += 1;
            }
            runs.push((owner, start, k));
        }
        let requests: Vec<(usize, Vec<usize>)> = runs
            .iter()
            .map(|&(owner, s, e)| (owner, needed[s..e].to_vec()))
            .collect();
        let incoming = comm.alltoallv(requests, TAG_ROW_REQ, |r| wire::idxs(r.len()));
        let my_start = row_starts[rank];
        let serves: Vec<(usize, Vec<usize>)> = incoming
            .into_iter()
            .map(|(req, rows)| (req, rows.iter().map(|&g| g - my_start).collect()))
            .collect();
        // Count round: tell each requester how long its rows are.
        let mut self_counts: Option<Vec<usize>> = None;
        for (requester, lis) in &serves {
            let counts: Vec<usize> = lis.iter().map(|&li| local_row_nnz(li)).collect();
            if *requester == rank {
                self_counts = Some(counts);
            } else {
                let b = wire::idxs(counts.len());
                comm.send(*requester, TAG_ROW_DATA, counts, b);
            }
        }
        let mut row_nnz: Vec<usize> = Vec::with_capacity(needed.len());
        for &(owner, s, e) in &runs {
            let counts: Vec<usize> = if owner == rank {
                self_counts.take().expect("missing self counts")
            } else {
                comm.recv(owner, TAG_ROW_DATA)
            };
            debug_assert_eq!(counts.len(), e - s);
            row_nnz.extend(counts);
        }
        RowGatherPlan {
            runs,
            serves,
            row_nnz,
        }
    }

    /// Executes the gather: `local_row_vals(local_idx)` must yield an
    /// owned row's values in the same order the pattern was frozen in
    /// (ascending global column). Returns one value vector per requested
    /// row, aligned with the planned row list.
    pub fn execute(
        &self,
        comm: &Comm,
        local_row_vals: impl Fn(usize) -> Vec<f64>,
    ) -> Vec<Vec<f64>> {
        let rank = comm.rank();
        let mut self_vals: Option<Vec<f64>> = None;
        for (requester, lis) in &self.serves {
            let mut vals = Vec::new();
            for &li in lis {
                vals.extend(local_row_vals(li));
            }
            if *requester == rank {
                self_vals = Some(vals);
            } else {
                let b = wire::f64s(vals.len());
                comm.send(*requester, TAG_ROW_VAL, vals, b);
            }
        }
        let mut data: Vec<Vec<f64>> = Vec::with_capacity(self.row_nnz.len());
        let mut row = 0usize;
        for &(owner, s, e) in &self.runs {
            let vals: Vec<f64> = if owner == rank {
                self_vals.take().expect("missing self values")
            } else {
                comm.recv(owner, TAG_ROW_VAL)
            };
            let mut off = 0usize;
            for _ in s..e {
                let n = self.row_nnz[row];
                data.push(vals[off..off + n].to_vec());
                off += n;
                row += 1;
            }
            debug_assert_eq!(off, vals.len());
        }
        data
    }
}

/// Fetches one `f64` per global index from the owning ranks:
/// `local_value(local_idx)` provides the owner-side values. Used to look
/// up C/F state and coarse numbering for extended halos. `needed` may be
/// unsorted and contain duplicates; traffic flows only between true
/// neighbor pairs.
pub fn fetch_values(
    comm: &Comm,
    needed: &[usize],
    starts: &[usize],
    local_value: impl Fn(usize) -> f64,
) -> Vec<f64> {
    let rank = comm.rank();
    let nranks = comm.size();
    let mut requests: Vec<Vec<usize>> = vec![Vec::new(); nranks];
    for &g in needed {
        requests[owner_of(starts, g)].push(g);
    }
    let owners: Vec<usize> = (0..nranks).filter(|&r| !requests[r].is_empty()).collect();
    let sends: Vec<(usize, Vec<usize>)> = owners
        .iter()
        .map(|&r| (r, std::mem::take(&mut requests[r])))
        .collect();
    let incoming = comm.alltoallv(sends, TAG_FETCH_REQ, |r| wire::idxs(r.len()));
    // Serve each requester point-to-point.
    let my_start = starts[rank];
    let mut self_reply: Option<Vec<f64>> = None;
    for (requester, rows) in &incoming {
        let reply: Vec<f64> = rows.iter().map(|&g| local_value(g - my_start)).collect();
        if *requester == rank {
            self_reply = Some(reply);
        } else {
            let b = wire::f64s(reply.len());
            comm.send(*requester, TAG_FETCH_VAL, reply, b);
        }
    }
    let mut responses: Vec<Vec<f64>> = vec![Vec::new(); nranks];
    for &owner in &owners {
        responses[owner] = if owner == rank {
            self_reply.take().expect("missing self reply")
        } else {
            comm.recv(owner, TAG_FETCH_VAL)
        };
    }
    // Reassemble in `needed` order (per-owner replies keep request order).
    let mut cursor = vec![0usize; nranks];
    needed
        .iter()
        .map(|&g| {
            let owner = owner_of(starts, g);
            let v = responses[owner][cursor[owner]];
            cursor[owner] += 1;
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use crate::parcsr::{default_partition, ParCsr};
    use famg_matgen::laplace2d;

    #[test]
    fn vector_exchange_gathers_correct_elements() {
        let a = laplace2d(8, 8);
        let starts = default_partition(64, 4);
        let (results, _) = run_ranks(4, |c| {
            let r = c.rank();
            let p = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            // x[global i] = 100 + i
            let x_local: Vec<f64> = (starts[r]..starts[r + 1])
                .map(|i| 100.0 + i as f64)
                .collect();
            let plan = VectorExchange::plan(c, &p.colmap, &starts);
            let ext = plan.exchange(c, &x_local);
            (p.colmap.clone(), ext)
        });
        for (colmap, ext) in results {
            for (k, &g) in colmap.iter().enumerate() {
                assert_eq!(ext[k], 100.0 + g as f64);
            }
        }
    }

    #[test]
    fn adhoc_matches_persistent() {
        let a = laplace2d(6, 6);
        let starts = default_partition(36, 3);
        let (results, _) = run_ranks(3, |c| {
            let r = c.rank();
            let p = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let x_local: Vec<f64> = (starts[r]..starts[r + 1]).map(|i| i as f64 * 0.5).collect();
            let plan = VectorExchange::plan(c, &p.colmap, &starts);
            let e1 = plan.exchange(c, &x_local);
            let e2 = exchange_adhoc(c, &p.colmap, &starts, &x_local);
            (e1, e2)
        });
        for (e1, e2) in results {
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn persistent_fewer_bytes_than_adhoc() {
        let a = laplace2d(16, 16);
        let starts = default_partition(256, 4);
        let exchanges = 10;
        let run = |persistent: bool| {
            let (_, report) = run_ranks(4, |c| {
                let r = c.rank();
                let p = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
                let x: Vec<f64> = vec![1.0; starts[r + 1] - starts[r]];
                if persistent {
                    let plan = VectorExchange::plan(c, &p.colmap, &starts);
                    for _ in 0..exchanges {
                        plan.exchange(c, &x);
                    }
                } else {
                    for _ in 0..exchanges {
                        exchange_adhoc(c, &p.colmap, &starts, &x);
                    }
                }
            });
            report.total_bytes()
        };
        let persistent = run(true);
        let adhoc = run(false);
        assert!(
            persistent < adhoc,
            "persistent {persistent} >= adhoc {adhoc}"
        );
    }

    #[test]
    fn exchange_messages_equal_neighbor_count() {
        // A slab-partitioned 2D Laplacian: interior ranks have exactly two
        // neighbors, boundary ranks one. One exchange must post exactly
        // one message per neighbor — no empty envelopes to distant ranks.
        let a = laplace2d(8, 8);
        let starts = default_partition(64, 4);
        let (per_rank, _) = run_ranks(4, |c| {
            let r = c.rank();
            let p = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let x: Vec<f64> = vec![1.0; starts[r + 1] - starts[r]];
            let plan = VectorExchange::plan(c, &p.colmap, &starts);
            let before = c.messages_sent();
            plan.exchange(c, &x);
            (c.messages_sent() - before, plan.send_peer_ranks().len())
        });
        for (r, &(sent, peers)) in per_rank.iter().enumerate() {
            assert_eq!(sent as usize, peers, "rank {r}");
            let expect = usize::from(r > 0) + usize::from(r < 3);
            assert_eq!(peers, expect, "rank {r} neighbor count");
        }
    }

    #[test]
    fn self_owned_halo_resolved_at_plan_time() {
        // A colmap that includes globals this rank itself owns (generic
        // partitions produce these): the self range must be paired at
        // plan time and the exchange must fill it by local copy, with no
        // message posted for it.
        let starts = vec![0usize, 4, 8];
        let (results, report) = run_ranks(2, |c| {
            let r = c.rank();
            // Rank 0 needs its own global 1 plus remote 4; rank 1 needs
            // remote 0 plus its own global 5.
            let colmap: Vec<usize> = if r == 0 { vec![1, 4] } else { vec![0, 5] };
            let plan = VectorExchange::plan(c, &colmap, &starts);
            // Self never appears as a wire peer.
            assert!(!plan.send_peer_ranks().contains(&r));
            assert!(!plan.recv_peer_ranks().contains(&r));
            let x_local: Vec<f64> = (0..4).map(|i| (10 * r + i) as f64).collect();
            plan.exchange(c, &x_local)
        });
        assert_eq!(results[0], vec![1.0, 10.0]); // own x[1], rank 1's x[0]
        assert_eq!(results[1], vec![0.0, 11.0]); // rank 0's x[0], own x[1]
                                                 // One wire message each way for the remote entry; self copies are
                                                 // free.
        assert_eq!(report.total_messages(), 2 + 2); // 2 halo + 2 plan requests
    }

    #[test]
    fn post_finish_matches_exchange_bitwise() {
        let a = laplace2d(8, 8);
        let starts = default_partition(64, 4);
        let (results, _) = run_ranks(4, |c| {
            let r = c.rank();
            let p = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let x: Vec<f64> = (starts[r]..starts[r + 1])
                .map(|i| 1.0 / (i + 1) as f64)
                .collect();
            let plan = VectorExchange::plan(c, &p.colmap, &starts);
            let sync = plan.exchange(c, &x);
            let inflight = plan.post(c, &x);
            // Arbitrary local work while the halo is in flight.
            let _busy: f64 = x.iter().sum();
            let over = inflight.finish(c);
            (sync, over)
        });
        for (sync, over) in results {
            let sb: Vec<u64> = sync.iter().map(|v| v.to_bits()).collect();
            let ob: Vec<u64> = over.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, ob);
        }
    }

    #[test]
    #[should_panic(expected = "disagree on the exchange plan")]
    fn payload_length_mismatch_reports_routing() {
        check_halo_payload(0, 1, TAG_VAL, 3, 2);
    }

    /// The batched exchange posts exactly as many messages as a scalar
    /// exchange (the width rides inside the envelopes) and every column
    /// of the strided external buffer is bitwise identical to a scalar
    /// exchange of that column, including the self-copy path.
    #[test]
    fn multi_exchange_matches_scalar_columns_same_message_count() {
        let a = laplace2d(8, 8);
        let starts = default_partition(64, 4);
        let k = 3usize;
        let (per_rank, _) = run_ranks(4, |c| {
            let r = c.rank();
            let p = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let nl = starts[r + 1] - starts[r];
            let plan = VectorExchange::plan(c, &p.colmap, &starts);
            let cols: Vec<Vec<f64>> = (0..k)
                .map(|j| {
                    (0..nl)
                        .map(|i| 1.0 / (starts[r] + i + j + 1) as f64)
                        .collect()
                })
                .collect();
            let x = MultiVec::from_columns(&cols);
            let before = c.messages_sent();
            let ext = plan.exchange_multi(c, &x);
            let multi_msgs = c.messages_sent() - before;
            let before = c.messages_sent();
            let exts: Vec<Vec<f64>> = cols.iter().map(|col| plan.exchange(c, col)).collect();
            let scalar_msgs = (c.messages_sent() - before) / k as u64;
            (ext, exts, multi_msgs, scalar_msgs)
        });
        for (rank, (ext, exts, multi_msgs, scalar_msgs)) in per_rank.iter().enumerate() {
            assert_eq!(multi_msgs, scalar_msgs, "rank {rank} message count");
            for (j, se) in exts.iter().enumerate() {
                for (e, &v) in se.iter().enumerate() {
                    assert_eq!(
                        ext[e * k + j].to_bits(),
                        v.to_bits(),
                        "rank {rank} col {j} entry {e}"
                    );
                }
            }
        }
    }

    /// Overlapped batched post/finish is bitwise identical to the
    /// synchronous batched exchange.
    #[test]
    fn post_multi_finish_matches_exchange_multi_bitwise() {
        let a = laplace2d(8, 8);
        let starts = default_partition(64, 4);
        let (results, _) = run_ranks(4, |c| {
            let r = c.rank();
            let p = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let nl = starts[r + 1] - starts[r];
            let cols: Vec<Vec<f64>> = (0..4)
                .map(|j| {
                    (0..nl)
                        .map(|i| (starts[r] + i) as f64 + 0.25 * f64::from(j))
                        .collect()
                })
                .collect();
            let x = MultiVec::from_columns(&cols);
            let plan = VectorExchange::plan(c, &p.colmap, &starts);
            let sync = plan.exchange_multi(c, &x);
            let inflight = plan.post_multi(c, &x);
            let _busy: f64 = x.data().iter().sum();
            let over = inflight.finish(c);
            (sync, over)
        });
        for (sync, over) in results {
            let sb: Vec<u64> = sync.iter().map(|v| v.to_bits()).collect();
            let ob: Vec<u64> = over.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, ob);
        }
    }

    #[test]
    fn row_gather_full_rows() {
        let a = laplace2d(8, 8);
        let starts = default_partition(64, 4);
        let (results, _) = run_ranks(4, |c| {
            let r = c.rank();
            let p = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let needed = p.colmap.clone();
            let local = |li: usize| p.global_row(li, r);
            let g = gather_rows(c, &needed, &starts, local, |_, _, _, _| true);
            (needed, g)
        });
        for (needed, g) in results {
            for &row in &needed {
                let got = g.get(row).unwrap();
                let expect: Vec<(usize, f64)> = a.row_iter(row).collect();
                assert_eq!(got, expect.as_slice(), "row {row}");
            }
        }
    }

    #[test]
    fn row_gather_filter_reduces_bytes() {
        let a = laplace2d(12, 12);
        let starts = default_partition(144, 4);
        let run = |filtered: bool| {
            let (_, report) = run_ranks(4, |c| {
                let r = c.rank();
                let p = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
                let local = |li: usize| p.global_row(li, r);
                let needed = p.colmap.clone();
                if filtered {
                    // Keep only negative entries (sign filter of §4.3).
                    gather_rows(c, &needed, &starts, local, |_, _, v, _| v < 0.0)
                } else {
                    gather_rows(c, &needed, &starts, local, |_, _, _, _| true)
                }
            });
            report.total_bytes()
        };
        let full = run(false);
        let filtered = run(true);
        assert!(
            filtered < full,
            "filter did not reduce bytes: {filtered} vs {full}"
        );
    }

    #[test]
    fn gather_rows_empty_request_participates() {
        // A rank with nothing to request must still serve others.
        let a = laplace2d(6, 6);
        let starts = default_partition(36, 3);
        let (results, _) = run_ranks(3, |c| {
            let r = c.rank();
            let p = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let needed: Vec<usize> = if r == 1 { Vec::new() } else { p.colmap.clone() };
            let local = |li: usize| p.global_row(li, r);
            gather_rows(c, &needed, &starts, local, |_, _, _, _| true)
                .rows
                .len()
        });
        assert_eq!(results[1], 0);
        assert!(results[0] > 0 && results[2] > 0);
    }

    #[test]
    fn fetch_values_with_duplicates() {
        let starts = default_partition(12, 3);
        let (results, _) = run_ranks(3, |c| {
            let needed = vec![5, 5, 1, 5]; // duplicates allowed
            fetch_values(c, &needed, &starts, |li| li as f64 * 10.0)
        });
        for vals in results {
            // global 5 is local 1 on rank 1 -> 10.0; global 1 local 1 on
            // rank 0 -> 10.0.
            assert_eq!(vals, vec![10.0, 10.0, 10.0, 10.0]);
        }
    }

    #[test]
    fn fetch_values_roundtrip() {
        let starts = default_partition(40, 4);
        let (results, _) = run_ranks(4, |c| {
            let r = c.rank();
            // Every rank asks for values scattered across all ranks.
            let needed: Vec<usize> = (0..40).step_by(r + 2).collect();
            let vals = fetch_values(c, &needed, &starts, |li| (starts[r] + li) as f64 * 3.0);
            (needed, vals)
        });
        for (needed, vals) in results {
            for (g, v) in needed.iter().zip(&vals) {
                assert_eq!(*v, *g as f64 * 3.0);
            }
        }
    }
}

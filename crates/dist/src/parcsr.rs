//! The ParCSR distributed matrix (Fig. 3a).
//!
//! Rows are partitioned among ranks by contiguous ranges. Each rank
//! stores its block-diagonal part (`diag`, local columns) and its
//! off-diagonal part (`offd`) whose column indices are *compressed*:
//! `offd` column `k` corresponds to global column `colmap[k]`, and
//! `colmap` is kept sorted so gathered halo elements land in a
//! contiguous, binary-searchable external vector.

use famg_sparse::Csr;

/// One rank's share of a distributed matrix.
#[derive(Debug, Clone)]
pub struct ParCsr {
    /// Global row range start (inclusive).
    pub row_start: usize,
    /// Global row range end (exclusive).
    pub row_end: usize,
    /// Global column count.
    pub global_cols: usize,
    /// Row-range starts of the *column* partition, length `nranks + 1`
    /// (for square operators this equals the row partition).
    pub col_starts: Vec<usize>,
    /// Block-diagonal part; columns are local (`global - col_start`).
    pub diag: Csr,
    /// Off-diagonal part; columns are compressed via `colmap`.
    pub offd: Csr,
    /// Sorted map from compressed off-diagonal column to global column.
    pub colmap: Vec<usize>,
    /// Local rows whose `offd` row is empty (ascending). These depend only
    /// on owned data, so kernels can process them while a halo exchange is
    /// in flight. Computed once at construction; the pattern (and thus the
    /// split) is frozen, so numeric refresh reuses it unchanged.
    pub interior_rows: Vec<usize>,
    /// Local rows with at least one `offd` entry (ascending) — the rows
    /// that must wait for the halo.
    pub boundary_rows: Vec<usize>,
}

/// Partitions `0..offd.nrows()` into (interior, boundary) by whether the
/// `offd` row is empty, both ascending.
fn interior_boundary_split(offd: &Csr) -> (Vec<usize>, Vec<usize>) {
    let mut interior = Vec::new();
    let mut boundary = Vec::new();
    for i in 0..offd.nrows() {
        if offd.row_nnz(i) == 0 {
            interior.push(i);
        } else {
            boundary.push(i);
        }
    }
    (interior, boundary)
}

impl ParCsr {
    /// Number of local rows.
    pub fn local_rows(&self) -> usize {
        self.row_end - self.row_start
    }

    /// This rank's owned column range (square-partition convention).
    pub fn col_range(&self, rank: usize) -> (usize, usize) {
        (self.col_starts[rank], self.col_starts[rank + 1])
    }

    /// Local nnz (diag + offd).
    pub fn local_nnz(&self) -> usize {
        self.diag.nnz() + self.offd.nnz()
    }

    /// The rank owning global column `c` under `col_starts`.
    pub fn owner_of_col(&self, c: usize) -> usize {
        owner_of(&self.col_starts, c)
    }

    /// True when `other` has exactly this rank-local sparsity structure
    /// (partitions, diag/offd patterns, and colmap — values ignored).
    pub fn same_pattern(&self, other: &ParCsr) -> bool {
        self.row_start == other.row_start
            && self.row_end == other.row_end
            && self.global_cols == other.global_cols
            && self.col_starts == other.col_starts
            && self.colmap == other.colmap
            && self.diag.same_pattern(&other.diag)
            && self.offd.same_pattern(&other.offd)
    }

    /// Splits rows `[row_start, row_end)` of a global matrix into the
    /// ParCSR layout for one rank. `col_starts` defines the column
    /// ownership (usually the same partition as rows).
    pub fn from_global_rows(
        a: &Csr,
        row_start: usize,
        row_end: usize,
        col_starts: Vec<usize>,
        my_rank: usize,
    ) -> ParCsr {
        assert!(row_end <= a.nrows());
        let (c0, c1) = (col_starts[my_rank], col_starts[my_rank + 1]);
        // Collect the global off-diagonal columns present, sorted.
        let mut ext: Vec<usize> = Vec::new();
        for i in row_start..row_end {
            for &c in a.row_cols(i) {
                if c < c0 || c >= c1 {
                    ext.push(c);
                }
            }
        }
        ext.sort_unstable();
        ext.dedup();
        let colmap = ext;

        let nl = row_end - row_start;
        let mut d_rp = Vec::with_capacity(nl + 1);
        let mut d_ci = Vec::new();
        let mut d_v = Vec::new();
        let mut o_rp = Vec::with_capacity(nl + 1);
        let mut o_ci = Vec::new();
        let mut o_v = Vec::new();
        d_rp.push(0);
        o_rp.push(0);
        for i in row_start..row_end {
            for (c, v) in a.row_iter(i) {
                if c >= c0 && c < c1 {
                    d_ci.push(c - c0);
                    d_v.push(v);
                } else {
                    let k = colmap.binary_search(&c).unwrap();
                    o_ci.push(k);
                    o_v.push(v);
                }
            }
            d_rp.push(d_ci.len());
            o_rp.push(o_ci.len());
        }
        let offd = Csr::from_parts_unchecked(nl, colmap.len(), o_rp, o_ci, o_v);
        let (interior_rows, boundary_rows) = interior_boundary_split(&offd);
        ParCsr {
            row_start,
            row_end,
            global_cols: a.ncols(),
            diag: Csr::from_parts_unchecked(nl, c1 - c0, d_rp, d_ci, d_v),
            offd,
            colmap,
            col_starts,
            interior_rows,
            boundary_rows,
        }
    }

    /// Builds from per-row global `(col, val)` triplet lists produced by a
    /// distributed kernel. `row_start/row_end` give this rank's rows,
    /// `col_starts` the column ownership.
    pub fn from_local_rows_global_cols(
        row_start: usize,
        row_end: usize,
        global_cols: usize,
        col_starts: Vec<usize>,
        my_rank: usize,
        rows: &[Vec<(usize, f64)>],
    ) -> ParCsr {
        assert_eq!(rows.len(), row_end - row_start);
        let (c0, c1) = (col_starts[my_rank], col_starts[my_rank + 1]);
        let mut ext: Vec<usize> = rows
            .iter()
            .flat_map(|r| r.iter().map(|&(c, _)| c))
            .filter(|&c| c < c0 || c >= c1)
            .collect();
        ext.sort_unstable();
        ext.dedup();
        let colmap = ext;
        let nl = rows.len();
        let mut d_rp = vec![0usize];
        let mut d_ci = Vec::new();
        let mut d_v = Vec::new();
        let mut o_rp = vec![0usize];
        let mut o_ci = Vec::new();
        let mut o_v = Vec::new();
        for r in rows {
            for &(c, v) in r {
                if c >= c0 && c < c1 {
                    d_ci.push(c - c0);
                    d_v.push(v);
                } else {
                    o_ci.push(colmap.binary_search(&c).unwrap());
                    o_v.push(v);
                }
            }
            d_rp.push(d_ci.len());
            o_rp.push(o_ci.len());
        }
        let offd = Csr::from_parts_unchecked(nl, colmap.len(), o_rp, o_ci, o_v);
        let (interior_rows, boundary_rows) = interior_boundary_split(&offd);
        ParCsr {
            row_start,
            row_end,
            global_cols,
            diag: Csr::from_parts_unchecked(nl, c1 - c0, d_rp, d_ci, d_v),
            offd,
            colmap,
            col_starts,
            interior_rows,
            boundary_rows,
        }
    }

    /// Iterates local row `i`'s entries with *global* column indices.
    pub fn global_row(&self, i: usize, my_rank: usize) -> Vec<(usize, f64)> {
        let c0 = self.col_starts[my_rank];
        let mut out: Vec<(usize, f64)> = self
            .diag
            .row_iter(i)
            .map(|(c, v)| (c + c0, v))
            .chain(self.offd.row_iter(i).map(|(c, v)| (self.colmap[c], v)))
            .collect();
        out.sort_unstable_by_key(|&(c, _)| c);
        out
    }

    /// Diagonal entry of local row `i` (square partition convention).
    pub fn diag_entry(&self, i: usize) -> f64 {
        self.diag
            .get(i, i + self.row_start - self.col_starts_offset())
            .unwrap_or(0.0)
    }

    fn col_starts_offset(&self) -> usize {
        // For square operators row_start equals the owned col start.
        self.row_start
    }
}

/// The rank owning index `g` under partition `starts`. Handles empty
/// ranks (duplicate boundaries): the owner is the rank whose non-empty
/// range actually contains `g`.
///
/// # Panics
/// Panics (also in release) if `g` lies outside the partition: a
/// malformed colmap would otherwise index `starts` out of bounds with an
/// uninformative slice error.
pub fn owner_of(starts: &[usize], g: usize) -> usize {
    let extent = starts.last().copied().unwrap_or(0);
    assert!(
        g < extent,
        "owner_of: global index {g} outside the partition extent {extent} \
         ({} ranks) — malformed colmap or wrong `starts`",
        starts.len().saturating_sub(1)
    );
    let mut r = match starts.binary_search(&g) {
        Ok(r) => r,
        Err(r) => r - 1,
    };
    // Skip over empty ranks sharing the boundary.
    while starts[r + 1] <= g {
        r += 1;
    }
    r
}

/// Splits `n` rows into `nranks` contiguous near-equal ranges; returns
/// the `nranks + 1` start offsets.
pub fn default_partition(n: usize, nranks: usize) -> Vec<usize> {
    (0..=nranks).map(|r| n * r / nranks).collect()
}

/// Reassembles a global matrix from all ranks' pieces (test helper).
pub fn to_global(parts: &[ParCsr]) -> Csr {
    let n = parts.last().map_or(0, |p| p.row_end);
    let ncols = parts.first().map_or(0, |p| p.global_cols);
    let mut trips = Vec::new();
    for (rank, p) in parts.iter().enumerate() {
        for i in 0..p.local_rows() {
            for (c, v) in p.global_row(i, rank) {
                trips.push((p.row_start + i, c, v));
            }
        }
    }
    Csr::from_triplets(n, ncols, trips)
}

#[cfg(test)]
mod tests {
    use super::*;
    use famg_matgen::laplace2d;

    #[test]
    fn partition_covers() {
        let s = default_partition(10, 3);
        assert_eq!(s, vec![0, 3, 6, 10]);
        assert_eq!(owner_of(&s, 0), 0);
        assert_eq!(owner_of(&s, 3), 1);
        assert_eq!(owner_of(&s, 9), 2);
    }

    #[test]
    fn owner_of_skips_empty_ranks() {
        // Ranks 1 and 3 are empty.
        let s = vec![0, 2, 2, 5, 5, 8];
        assert_eq!(owner_of(&s, 0), 0);
        assert_eq!(owner_of(&s, 2), 2);
        assert_eq!(owner_of(&s, 4), 2);
        assert_eq!(owner_of(&s, 5), 4);
        assert_eq!(owner_of(&s, 7), 4);
    }

    #[test]
    fn split_and_reassemble() {
        let a = laplace2d(8, 8);
        let starts = default_partition(64, 3);
        let parts: Vec<ParCsr> = (0..3)
            .map(|r| ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r))
            .collect();
        let b = to_global(&parts);
        assert_eq!(a.to_dense(), b.to_dense());
        // nnz conserved.
        let total: usize = parts.iter().map(super::ParCsr::local_nnz).sum();
        assert_eq!(total, a.nnz());
    }

    #[test]
    fn colmap_sorted_and_minimal() {
        let a = laplace2d(6, 6);
        let starts = default_partition(36, 4);
        for r in 0..4 {
            let p = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            assert!(p.colmap.windows(2).all(|w| w[0] < w[1]));
            // Every colmap entry is actually referenced.
            let mut used = vec![false; p.colmap.len()];
            for &c in p.offd.colidx() {
                used[c] = true;
            }
            assert!(used.iter().all(|&u| u));
            // No colmap entry lies in the owned range.
            let (c0, c1) = p.col_range(r);
            assert!(p.colmap.iter().all(|&c| c < c0 || c >= c1));
        }
    }

    #[test]
    fn global_row_roundtrip() {
        let a = laplace2d(5, 5);
        let starts = default_partition(25, 2);
        let p = ParCsr::from_global_rows(&a, starts[1], starts[2], starts.clone(), 1);
        for i in 0..p.local_rows() {
            let g = p.global_row(i, 1);
            let expect: Vec<(usize, f64)> = a.row_iter(starts[1] + i).collect();
            assert_eq!(g, expect);
        }
    }

    #[test]
    fn from_local_rows_matches_from_global() {
        let a = laplace2d(6, 4);
        let starts = default_partition(24, 3);
        for r in 0..3 {
            let rows: Vec<Vec<(usize, f64)>> = (starts[r]..starts[r + 1])
                .map(|i| a.row_iter(i).collect())
                .collect();
            let p1 = ParCsr::from_local_rows_global_cols(
                starts[r],
                starts[r + 1],
                24,
                starts.clone(),
                r,
                &rows,
            );
            let p2 = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            assert_eq!(p1.diag, p2.diag);
            assert_eq!(p1.offd, p2.offd);
            assert_eq!(p1.colmap, p2.colmap);
        }
    }

    #[test]
    fn single_rank_has_empty_offd() {
        let a = laplace2d(4, 4);
        let p = ParCsr::from_global_rows(&a, 0, 16, vec![0, 16], 0);
        assert_eq!(p.offd.nnz(), 0);
        assert!(p.colmap.is_empty());
        assert_eq!(p.diag.to_dense(), a.to_dense());
    }
}

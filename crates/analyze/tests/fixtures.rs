//! Mutation fixtures for the three famg-analyze rules.
//!
//! Each `tests/fixtures/*.rsfix` file is a small Rust-subset source with
//! seeded violations. Expected findings are pinned in-file with trailing
//! `//~ <rule-id>` markers on the exact line the diagnostic must land on;
//! negative fixtures carry no markers and must produce zero diagnostics.
//! The harness diffs `(line, rule)` pairs exactly in both directions, so
//! a rule that drifts by even one line — or starts over-reporting — fails
//! with the full diff.

use std::fs;
use std::path::Path;

use famg_analyze::analyze_sources;

/// Reads a fixture and returns `(source, expected (line, rule) pairs)`.
fn load(name: &str) -> (String, Vec<(usize, String)>) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let mut expected = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            for rule in line[pos + 3..].split_whitespace() {
                expected.push((i + 1, rule.to_string()));
            }
        }
    }
    (src, expected)
}

/// Runs one fixture under `mapped_path` (paths select rule scope, e.g.
/// the blessed-module list) and asserts the exact `(line, rule)` set.
fn check(name: &str, mapped_path: &str) {
    let (src, mut expected) = load(name);
    let diags = analyze_sources(&[(mapped_path.to_string(), src)]);
    let mut got: Vec<(usize, String)> =
        diags.iter().map(|d| (d.line, d.rule.to_string())).collect();
    expected.sort();
    got.sort();
    assert_eq!(
        got,
        expected,
        "fixture {name} (as {mapped_path}) diverged; analyzer reported:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn alloc_positive_flags_every_seeded_site() {
    check("alloc_positive.rsfix", "crates/core/src/fx_alloc.rs");
}

#[test]
fn alloc_negative_is_quiet() {
    check("alloc_negative.rsfix", "crates/core/src/fx_alloc.rs");
}

#[test]
fn panic_positive_flags_every_seeded_site() {
    check("panic_positive.rsfix", "crates/dist/src/fx_panic.rs");
}

#[test]
fn panic_negative_is_quiet() {
    check("panic_negative.rsfix", "crates/dist/src/fx_panic.rs");
}

#[test]
fn reduction_positive_flags_every_seeded_site() {
    check("reduction_positive.rsfix", "crates/core/src/fx_red.rs");
}

#[test]
fn reduction_negative_is_quiet() {
    check("reduction_negative.rsfix", "crates/core/src/fx_red.rs");
}

#[test]
fn blessed_module_path_suppresses_reductions() {
    // The *positive* reduction fixture goes quiet when the same source is
    // mapped into the blessed fixed-chunk module list.
    let (src, expected) = load("reduction_positive.rsfix");
    assert!(!expected.is_empty(), "fixture lost its seeded violations");
    let diags = analyze_sources(&[("crates/sparse/src/vecops.rs".to_string(), src)]);
    assert!(
        diags.is_empty(),
        "blessed path still reported:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! The analyzer held to its own standard: its sources must parse under
//! its own Rust subset and produce zero findings, and the workspace it
//! ships with must be clean end to end.

use std::path::Path;

/// The analyzer's own crate, analyzed by itself. The crate is not in
/// [`famg_analyze::ANALYZED_ROOTS`] (it is tooling, not a kernel crate),
/// so this audit feeds the sources in manually — it proves the parser
/// round-trips its own implementation and that no rule fires on it.
#[test]
fn analyzer_is_clean_on_itself() {
    let sources: Vec<(String, String)> = [
        ("crates/analyze/src/lib.rs", include_str!("../src/lib.rs")),
        ("crates/analyze/src/lex.rs", include_str!("../src/lex.rs")),
        (
            "crates/analyze/src/model.rs",
            include_str!("../src/model.rs"),
        ),
        (
            "crates/analyze/src/parse.rs",
            include_str!("../src/parse.rs"),
        ),
        (
            "crates/analyze/src/rules.rs",
            include_str!("../src/rules.rs"),
        ),
        (
            "crates/analyze/src/bin/famg-analyze.rs",
            include_str!("../src/bin/famg-analyze.rs"),
        ),
    ]
    .into_iter()
    .map(|(p, s)| (p.to_string(), s.to_string()))
    .collect();
    let diags = famg_analyze::analyze_sources(&sources);
    assert!(
        diags.is_empty(),
        "self-audit findings:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The shipped kernel crates stay clean: the same invariant the
/// `==> famg-analyze` stage of `scripts/check.sh` enforces, kept in the
/// test suite so `cargo test` alone catches regressions.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = famg_analyze::analyze_workspace(&root).expect("workspace scan failed");
    assert!(
        diags.is_empty(),
        "workspace findings:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! Recursive-descent item parser over the token stream.
//!
//! Walks a lexed file and extracts every `fn` item together with its
//! enclosing context: inline-module path, `impl`/`trait` self type,
//! visibility, `#[cfg(test)]` shadowing, and the token range of the body.
//! Everything else (type definitions, consts, uses) is skipped with
//! bracket-balanced scans — the analyzer only reasons about functions.
//!
//! The parser is deliberately forgiving: a construct outside the supported
//! subset is skipped token-by-token rather than aborting the file, so one
//! exotic item cannot blind the analyzer to the rest of a module.

use crate::lex::{Kind, Lexed, Tok};

/// One `fn` item and enough context to place it in the call graph.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (identifier after `fn`).
    pub name: String,
    /// `impl`/`trait` self type the fn is defined under, if any.
    pub self_ty: Option<String>,
    /// Inline `mod` path from the file root down to the fn.
    pub module: Vec<String>,
    /// True for `pub` / `pub(...)` items.
    pub is_pub: bool,
    /// True if the fn (or an enclosing item) is under `#[cfg(test)]` or
    /// `#[test]`-family attributes.
    pub in_test: bool,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 1-based line of the first attribute above the fn (equals
    /// `sig_line` when there are none). Function-level annotation walk-up
    /// starts above this line.
    pub attr_line: usize,
    /// Half-open token-index range of the body, `None` for bodyless trait
    /// method declarations.
    pub body: Option<(usize, usize)>,
}

/// Parses all `fn` items out of a lexed file.
#[must_use]
pub fn parse_items(lx: &Lexed) -> Vec<FnItem> {
    let mut p = Parser {
        t: &lx.toks,
        i: 0,
        out: Vec::new(),
    };
    let ctx = Ctx {
        module: Vec::new(),
        self_ty: None,
        in_test: false,
    };
    p.items(&ctx);
    p.out
}

#[derive(Clone)]
struct Ctx {
    module: Vec<String>,
    self_ty: Option<String>,
    in_test: bool,
}

struct Parser<'a> {
    t: &'a [Tok],
    i: usize,
    out: Vec<FnItem>,
}

impl Parser<'_> {
    fn cur(&self) -> Option<&Tok> {
        self.t.get(self.i)
    }

    fn at(&self, c: char) -> bool {
        self.cur().is_some_and(|t| t.is(c))
    }

    fn at_ident(&self) -> Option<&str> {
        self.cur()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
    }

    fn ident_at(&self, k: usize) -> Option<&str> {
        self.t
            .get(self.i + k)
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
    }

    fn take_ident(&mut self) -> Option<String> {
        let s = self.at_ident().map(str::to_string);
        if s.is_some() {
            self.i += 1;
        }
        s
    }

    /// Items until end of input or an unmatched `}` (left for the caller).
    fn items(&mut self, ctx: &Ctx) {
        while self.i < self.t.len() && !self.at('}') {
            self.item(ctx);
        }
    }

    fn item(&mut self, ctx: &Ctx) {
        let mut in_test = ctx.in_test;
        let mut attr_line = None;
        // Outer attributes and doc attributes; `#![..]` inner attrs are
        // consumed the same way (their cfg(test) would mark what follows,
        // which is the conservative direction for a test-exclusion mask).
        while self.at('#') {
            attr_line.get_or_insert(self.t[self.i].line);
            self.i += 1;
            if self.at('!') {
                self.i += 1;
            }
            if self.at('[') {
                let start = self.i;
                self.skip_balanced('[', ']');
                if attr_is_test(&self.t[start..self.i]) {
                    in_test = true;
                }
            }
        }
        let mut is_pub = false;
        if self.at_ident() == Some("pub") {
            is_pub = true;
            self.i += 1;
            if self.at('(') {
                self.skip_balanced('(', ')');
            }
        }
        // Qualifiers before an item keyword.
        loop {
            match self.at_ident() {
                Some("const") => {
                    // `const fn` / `const unsafe fn` are qualifiers; a
                    // `const NAME: ...` item is handled below.
                    if matches!(self.ident_at(1), Some("fn" | "unsafe" | "extern" | "async")) {
                        self.i += 1;
                    } else {
                        break;
                    }
                }
                Some("unsafe" | "async" | "auto") => self.i += 1,
                Some("extern") => {
                    if self.ident_at(1) == Some("crate") {
                        break; // `extern crate` item
                    }
                    self.i += 1;
                    if self.cur().is_some_and(|t| t.kind == Kind::Str) {
                        self.i += 1; // ABI string
                    }
                }
                _ => break,
            }
        }
        match self.at_ident() {
            Some("fn") => self.fn_item(ctx, is_pub, in_test, attr_line),
            Some("mod") => {
                self.i += 1;
                let name = self.take_ident().unwrap_or_default();
                if self.at(';') {
                    self.i += 1;
                } else if self.at('{') {
                    self.i += 1;
                    let mut c2 = ctx.clone();
                    c2.module.push(name);
                    c2.in_test = in_test;
                    self.items(&c2);
                    if self.at('}') {
                        self.i += 1;
                    }
                }
            }
            Some("impl") => self.impl_item(ctx, in_test),
            Some("trait") => {
                self.i += 1;
                let name = self.take_ident().unwrap_or_default();
                self.skip_to_body_brace();
                if self.at('{') {
                    self.i += 1;
                    let mut c2 = ctx.clone();
                    c2.self_ty = Some(name);
                    c2.in_test = in_test;
                    self.items(&c2);
                    if self.at('}') {
                        self.i += 1;
                    }
                }
            }
            Some("struct" | "enum" | "union") => self.skip_struct(),
            Some("use" | "static" | "type" | "const" | "extern") => self.skip_to_semi(),
            Some("macro_rules") => {
                self.i += 1;
                if self.at('!') {
                    self.i += 1;
                }
                let _ = self.take_ident();
                if self.at('{') {
                    self.skip_balanced('{', '}');
                } else {
                    self.skip_to_semi();
                }
            }
            _ => self.i += 1, // stray token: skip, stay robust
        }
    }

    fn fn_item(&mut self, ctx: &Ctx, is_pub: bool, in_test: bool, attr_line: Option<usize>) {
        let sig_line = self.t[self.i].line;
        self.i += 1; // `fn`
        let Some(name) = self.take_ident() else {
            return;
        };
        if self.at('<') {
            self.skip_angles();
        }
        if self.at('(') {
            self.skip_balanced('(', ')');
        }
        // Return type and where clause, up to the body or `;`.
        let mut body = None;
        while let Some(t) = self.cur() {
            if t.is(';') {
                self.i += 1;
                break;
            }
            if t.is('{') {
                let open = self.i;
                self.skip_balanced('{', '}');
                body = Some((open + 1, self.i.saturating_sub(1)));
                break;
            }
            if t.is('<') {
                self.skip_angles();
            } else if t.is('(') {
                self.skip_balanced('(', ')');
            } else if t.is('[') {
                self.skip_balanced('[', ']');
            } else {
                self.i += 1;
            }
        }
        self.out.push(FnItem {
            name,
            self_ty: ctx.self_ty.clone(),
            module: ctx.module.clone(),
            is_pub,
            in_test,
            sig_line,
            attr_line: attr_line.unwrap_or(sig_line),
            body,
        });
    }

    fn impl_item(&mut self, ctx: &Ctx, in_test: bool) {
        self.i += 1; // `impl`
        if self.at('<') {
            self.skip_angles();
        }
        // Scan the header up to `{`. The self type is the last plain
        // identifier at bracket depth zero after an optional `for` (trait
        // impls) and before an optional `where`.
        let mut last_ident: Option<String> = None;
        let mut in_where = false;
        while let Some(t) = self.cur() {
            if t.is('{') {
                break;
            }
            if t.is(';') {
                self.i += 1;
                return;
            }
            if t.is('<') {
                self.skip_angles();
                continue;
            }
            if t.is('(') {
                self.skip_balanced('(', ')');
                continue;
            }
            if t.is('[') {
                self.skip_balanced('[', ']');
                continue;
            }
            if t.kind == Kind::Ident {
                match t.text.as_str() {
                    "for" => last_ident = None,
                    "where" => in_where = true,
                    s if !in_where => last_ident = Some(s.to_string()),
                    _ => {}
                }
            }
            self.i += 1;
        }
        if self.at('{') {
            self.i += 1;
            let mut c2 = ctx.clone();
            c2.self_ty = last_ident;
            c2.in_test = in_test;
            self.items(&c2);
            if self.at('}') {
                self.i += 1;
            }
        }
    }

    /// Skips a struct/enum/union definition: optional generics and tuple
    /// body, terminated by `;` or a braced body.
    fn skip_struct(&mut self) {
        self.i += 1; // keyword
        let _ = self.take_ident();
        while let Some(t) = self.cur() {
            if t.is('<') {
                self.skip_angles();
            } else if t.is('(') {
                self.skip_balanced('(', ')');
            } else if t.is('[') {
                self.skip_balanced('[', ']');
            } else if t.is(';') {
                self.i += 1;
                return;
            } else if t.is('{') {
                self.skip_balanced('{', '}');
                return;
            } else {
                self.i += 1;
            }
        }
    }

    /// Skips to just past a `;` at bracket depth zero, balancing `()`,
    /// `[]`, `{}` (struct-literal consts, brace-bodied const exprs).
    fn skip_to_semi(&mut self) {
        while let Some(t) = self.cur() {
            if t.is('(') {
                self.skip_balanced('(', ')');
            } else if t.is('[') {
                self.skip_balanced('[', ']');
            } else if t.is('{') {
                self.skip_balanced('{', '}');
            } else if t.is(';') {
                self.i += 1;
                return;
            } else {
                self.i += 1;
            }
        }
    }

    /// Skips to a `{` at bracket depth zero (trait headers with
    /// supertraits and where clauses).
    fn skip_to_body_brace(&mut self) {
        while let Some(t) = self.cur() {
            if t.is('{') || t.is(';') {
                return;
            }
            if t.is('<') {
                self.skip_angles();
            } else if t.is('(') {
                self.skip_balanced('(', ')');
            } else if t.is('[') {
                self.skip_balanced('[', ']');
            } else {
                self.i += 1;
            }
        }
    }

    /// Consumes from an opening bracket through its matching close.
    fn skip_balanced(&mut self, open: char, close: char) {
        debug_assert!(self.at(open));
        let mut depth = 0usize;
        while let Some(t) = self.cur() {
            if t.is(open) {
                depth += 1;
            } else if t.is(close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Consumes a generic-argument list from `<` through its matching `>`,
    /// treating the `>` of a `->` arrow as plain punctuation.
    fn skip_angles(&mut self) {
        debug_assert!(self.at('<'));
        let mut depth = 0isize;
        while let Some(t) = self.cur() {
            if t.is('<') {
                depth += 1;
            } else if t.is('>') && !(self.i > 0 && self.t[self.i - 1].is('-')) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }
}

/// True if an attribute token slice marks test-only code: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, ..))]`, bench variants. `not(test)`
/// keeps the item analyzed (the conservative direction).
fn attr_is_test(toks: &[Tok]) -> bool {
    let has = |s: &str| toks.iter().any(|t| t.is_ident(s));
    has("test") && !has("not")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn fns(src: &str) -> Vec<FnItem> {
        parse_items(&lex(src))
    }

    #[test]
    fn free_and_method_fns_with_context() {
        let src = "
            pub fn top(x: usize) -> usize { x }
            mod inner {
                impl Widget {
                    pub(crate) fn method(&self) {}
                }
                trait Able { fn decl(&self); fn with_default(&self) { helper(); } }
            }
        ";
        let got = fns(src);
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].name, "top");
        assert!(got[0].is_pub && got[0].self_ty.is_none() && got[0].body.is_some());
        assert_eq!(got[1].name, "method");
        assert_eq!(got[1].self_ty.as_deref(), Some("Widget"));
        assert_eq!(got[1].module, ["inner"]);
        assert!(got[1].is_pub);
        assert_eq!(got[2].name, "decl");
        assert!(got[2].body.is_none());
        assert_eq!(got[3].self_ty.as_deref(), Some("Able"));
    }

    #[test]
    fn cfg_test_marks_fns_recursively() {
        let src = "
            fn live() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() {}
            }
            #[cfg(not(test))]
            fn still_live() {}
        ";
        let got = fns(src);
        let test_flags: Vec<(String, bool)> =
            got.into_iter().map(|f| (f.name, f.in_test)).collect();
        assert_eq!(
            test_flags,
            [
                ("live".into(), false),
                ("helper".into(), true),
                ("case".into(), true),
                ("still_live".into(), false),
            ]
        );
    }

    #[test]
    fn generic_signatures_and_arrow_returns_parse() {
        let src = "
            pub fn map_all<T: Clone, F: Fn(&T) -> Vec<T>>(v: &[T], f: F) -> Vec<Vec<T>>
            where
                F: Send,
            {
                v.iter().map(|x| f(x)).collect()
            }
            impl<'a> Iterator for RowIter<'a> {
                fn next(&mut self) -> Option<(usize, f64)> { None }
            }
        ";
        let got = fns(src);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].name, "map_all");
        assert_eq!(got[1].self_ty.as_deref(), Some("RowIter"));
    }

    #[test]
    fn trait_impl_self_type_is_the_implementing_type() {
        let got = fns("impl fmt::Display for CommVolume { fn fmt(&self) {} }");
        assert_eq!(got[0].self_ty.as_deref(), Some("CommVolume"));
    }

    #[test]
    fn attr_line_precedes_sig_line() {
        let src = "/// doc\n#[inline]\n#[must_use]\npub fn f() -> usize { 1 }\n";
        let got = fns(src);
        assert_eq!(got[0].sig_line, 4);
        assert_eq!(got[0].attr_line, 2);
    }

    #[test]
    fn items_between_fns_are_skipped() {
        let src = "
            use std::fmt;
            const LIMIT: usize = { 4 * 2 };
            static NAME: &str = \"x;y\";
            struct Pair(usize, usize);
            enum Mode { A, B }
            type Alias = Vec<u8>;
            macro_rules! m { ($x:expr) => { $x }; }
            fn survivor() {}
        ";
        let got = fns(src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "survivor");
    }
}

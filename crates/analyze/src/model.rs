//! Workspace model: per-function fact extraction and conservative name
//! resolution.
//!
//! Each parsed function body is scanned once for the facts the rules need:
//!
//! * **calls** — `name(..)`, `recv.name(..)`, `Qual::name(..)` call sites
//!   (macro invocations are classified separately);
//! * **alloc sites** — `vec![..]`, `Vec::new`/`Box::new`-style constructor
//!   calls, `with_capacity`, and the allocating methods `collect`,
//!   `to_vec`, `clone`;
//! * **panic sites** — `unwrap`/`expect` calls and the panicking macro
//!   family (`panic!`, `assert!`, `unreachable!`, ...; `debug_assert*` is
//!   exempt because release builds compile it out);
//! * **reduction sites** — `.sum()`/`.fold(..)`/`.reduce(..)` whose
//!   receiver chain contains a `par_*` adapter, and `+=` accumulation into
//!   an index/deref place inside a single-expression parallel chain.
//!
//! Resolution is by name and deliberately over-approximate: a method call
//! `x.apply(..)` edges to *every* function named `apply` in the analyzed
//! set (trait dispatch and closures cannot be resolved lexically). A
//! `Qual::name(..)` qualifier narrows candidates to the matching impl type
//! or module when one exists in the workspace; qualifiers that match
//! nothing (e.g. `Vec::new`, `f64::max`) resolve to no edge — std behavior
//! is captured by site classification instead, never by traversal.

use std::collections::HashMap;

use crate::lex::{self, Kind, Lexed, Tok};
use crate::parse::{self, FnItem};

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Called name (function, method, or associated function).
    pub name: String,
    /// `Qual` of a `Qual::name(..)` path call, if any.
    pub qual: Option<String>,
    /// 1-based source line.
    pub line: usize,
}

/// A rule-relevant site (allocation, panic, or reduction) with a short
/// description of the triggering syntax.
#[derive(Debug, Clone)]
pub struct Site {
    /// 1-based source line.
    pub line: usize,
    /// Triggering syntax, e.g. `` `vec![..]` `` or `` `.unwrap()` ``.
    pub what: String,
}

/// One analyzed function: parse-time facts plus scanned body sites.
#[derive(Debug)]
pub struct FnNode {
    /// Parse-time item facts (name, context, lines, body range).
    pub item: FnItem,
    /// Index into [`Model::files`].
    pub file: usize,
    /// All call sites, for graph edges.
    pub calls: Vec<Call>,
    /// Heap-allocation sites.
    pub allocs: Vec<Site>,
    /// Panic-capable sites.
    pub panics: Vec<Site>,
    /// Parallel floating-point reduction sites.
    pub reductions: Vec<Site>,
}

/// A lexed source file with its workspace-relative path.
#[derive(Debug)]
pub struct FileInfo {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Lexed token stream and line table.
    pub lexed: Lexed,
}

/// The analyzed workspace: files, functions, and the name index used for
/// conservative call resolution.
#[derive(Debug, Default)]
pub struct Model {
    /// All scanned files.
    pub files: Vec<FileInfo>,
    /// All non-test functions with bodies or declarations.
    pub fns: Vec<FnNode>,
    index: HashMap<String, Vec<usize>>,
}

impl Model {
    /// Builds the model from `(path, source)` pairs. Functions under
    /// `#[cfg(test)]` are excluded entirely: they are neither rule roots
    /// nor resolution candidates, so test-only allocation/panic idiom
    /// never leaks into production reachability.
    #[must_use]
    pub fn build(sources: &[(String, String)]) -> Model {
        let mut m = Model::default();
        for (path, src) in sources {
            let lexed = lex::lex(src);
            let file = m.files.len();
            for item in parse::parse_items(&lexed) {
                if item.in_test {
                    continue;
                }
                let (calls, allocs, panics, reductions) = item
                    .body
                    .map(|range| scan_body(&lexed.toks, range))
                    .unwrap_or_default();
                m.fns.push(FnNode {
                    item,
                    file,
                    calls,
                    allocs,
                    panics,
                    reductions,
                });
            }
            m.files.push(FileInfo {
                path: path.clone(),
                lexed,
            });
        }
        for (i, f) in m.fns.iter().enumerate() {
            m.index.entry(f.item.name.clone()).or_default().push(i);
        }
        m
    }

    /// Resolves a call site to candidate callee indices (see module docs
    /// for the over-approximation policy).
    #[must_use]
    pub fn resolve(&self, call: &Call, caller: &FnNode) -> Vec<usize> {
        let Some(cands) = self.index.get(&call.name) else {
            return Vec::new();
        };
        let Some(qual) = &call.qual else {
            return cands.clone();
        };
        let qual = if qual == "Self" {
            match &caller.item.self_ty {
                Some(t) => t.clone(),
                None => return cands.clone(),
            }
        } else {
            qual.clone()
        };
        let by_ty: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| self.fns[i].item.self_ty.as_deref() == Some(&qual))
            .collect();
        if !by_ty.is_empty() {
            return by_ty;
        }
        let by_mod: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| {
                let f = &self.fns[i];
                f.item.module.last().is_some_and(|m| *m == qual)
                    || file_stem(&self.files[f.file].path) == qual
            })
            .collect();
        // A qualifier matching no workspace type or module is external
        // (std or shim): classified at the call site, not traversed.
        by_mod
    }

    /// True if `line` of `file` carries `marker` in a trailing comment or
    /// in the contiguous comment block directly above it.
    #[must_use]
    pub fn justified_at(&self, file: usize, line: usize, marker: &str) -> bool {
        let lines = &self.files[file].lexed.lines;
        if lines.get(line).is_some_and(|l| l.comment.contains(marker)) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let info = &lines[l];
            if info.has_code || info.comment.is_empty() {
                return false;
            }
            if info.comment.contains(marker) {
                return true;
            }
            l -= 1;
        }
        false
    }

    /// True if the comment block above the function's signature (and its
    /// attributes) carries `marker`, vouching for the whole body and
    /// everything called from it.
    #[must_use]
    pub fn fn_annotated(&self, f: &FnNode, marker: &str) -> bool {
        let lines = &self.files[f.file].lexed.lines;
        let mut l = f.item.attr_line.saturating_sub(1);
        while l >= 1 {
            let info = &lines[l];
            if info.has_code || info.comment.is_empty() {
                return false;
            }
            if info.comment.contains(marker) {
                return true;
            }
            l -= 1;
        }
        false
    }

    /// Qualified display name, `Type::fn` or plain `fn`.
    #[must_use]
    pub fn display_name(&self, i: usize) -> String {
        let f = &self.fns[i];
        match &f.item.self_ty {
            Some(t) => format!("{t}::{}", f.item.name),
            None => f.item.name.clone(),
        }
    }
}

fn file_stem(path: &str) -> &str {
    let base = path.rsplit('/').next().unwrap_or(path);
    base.strip_suffix(".rs").unwrap_or(base)
}

/// Keywords that can directly precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "move", "where", "unsafe", "dyn", "impl", "fn", "struct", "enum", "union", "trait",
    "use", "pub", "const", "static", "crate", "super", "await", "box", "type", "extern", "true",
    "false", "Some", "None", "Ok", "Err",
];

/// Item keywords whose following identifier is a definition, not a call.
const DEF_KEYWORDS: &[&str] = &[
    "fn", "struct", "mod", "trait", "enum", "union", "impl", "use",
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Std container constructors that allocate; anything else resolving to a
/// workspace function is handled by traversal instead.
const ALLOC_QUALS: &[&str] = &["Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet"];

type BodyFacts = (Vec<Call>, Vec<Site>, Vec<Site>, Vec<Site>);

/// Single pass over a body's token range extracting calls, allocation
/// sites, panic sites, and parallel-reduction sites.
fn scan_body(t: &[Tok], (s, e): (usize, usize)) -> BodyFacts {
    let mut calls = Vec::new();
    let mut allocs = Vec::new();
    let mut panics = Vec::new();
    let mut reductions = Vec::new();
    let e = e.min(t.len());
    let mut j = s;
    while j < e {
        let tk = &t[j];
        if tk.kind == Kind::Punct {
            // `place += expr` accumulation into an index or deref place.
            if tk.is('+') && j + 1 < e && t[j + 1].is('=') && j > s {
                let lhs_place = t[j - 1].is(']')
                    || (t[j - 1].kind == Kind::Ident && j >= 2 && t[j - 2].is('*'));
                if lhs_place && par_chain_backward(t, s, j - 1) {
                    reductions.push(Site {
                        line: tk.line,
                        what: "`+=` accumulation in a parallel chain".into(),
                    });
                }
                j += 2;
                continue;
            }
            j += 1;
            continue;
        }
        if tk.kind != Kind::Ident {
            j += 1;
            continue;
        }
        let name = tk.text.as_str();
        if NON_CALL_KEYWORDS.contains(&name) {
            j += 1;
            continue;
        }
        // `fn helper(` / `struct Local(` inside bodies are definitions.
        if j > s && t[j - 1].kind == Kind::Ident && DEF_KEYWORDS.contains(&t[j - 1].text.as_str()) {
            j += 1;
            continue;
        }
        // Macro invocation.
        if j + 1 < e && t[j + 1].is('!') {
            if PANIC_MACROS.contains(&name) {
                panics.push(Site {
                    line: tk.line,
                    what: format!("`{name}!(..)`"),
                });
            } else if name == "vec" {
                allocs.push(Site {
                    line: tk.line,
                    what: "`vec![..]`".into(),
                });
            }
            j += 2;
            continue;
        }
        // Optional turbofish between name and argument list.
        let mut k = j + 1;
        if k + 2 < e && t[k].is(':') && t[k + 1].is(':') && t[k + 2].is('<') {
            k = skip_angles_fwd(t, k + 2, e);
        }
        if k < e && t[k].is('(') {
            let is_method = j > s && t[j - 1].is('.');
            let qual = (!is_method
                && j >= s + 3
                && t[j - 1].is(':')
                && t[j - 2].is(':')
                && t[j - 3].kind == Kind::Ident)
                .then(|| t[j - 3].text.clone());
            match name {
                "new" | "from" => {
                    if let Some(q) = qual.as_deref() {
                        if ALLOC_QUALS.contains(&q) {
                            allocs.push(Site {
                                line: tk.line,
                                what: format!("`{q}::{name}(..)`"),
                            });
                        }
                    }
                }
                "with_capacity" => allocs.push(Site {
                    line: tk.line,
                    what: "`with_capacity(..)`".into(),
                }),
                "collect" | "to_vec" | "clone" if is_method => allocs.push(Site {
                    line: tk.line,
                    what: format!("`.{name}()`"),
                }),
                "unwrap" | "expect" => panics.push(Site {
                    line: tk.line,
                    what: format!("`.{name}(..)`"),
                }),
                "sum" | "fold" | "reduce" if is_method && par_chain_backward(t, s, j - 1) => {
                    reductions.push(Site {
                        line: tk.line,
                        what: format!("`.{name}(..)` over a parallel iterator"),
                    });
                }
                _ => {}
            }
            calls.push(Call {
                name: name.to_string(),
                qual,
                line: tk.line,
            });
        }
        j += 1;
    }
    (calls, allocs, panics, reductions)
}

/// Forward scan from a `<` at `i`, returning the index just past its
/// matching `>` (bounded by `e`); `->` arrows do not close.
fn skip_angles_fwd(t: &[Tok], i: usize, e: usize) -> usize {
    let mut depth = 0isize;
    let mut j = i;
    while j < e {
        if t[j].is('<') {
            depth += 1;
        } else if t[j].is('>') && !(j > 0 && t[j - 1].is('-')) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Backward scan from `from` looking for a `par_*`/`into_par_*` adapter in
/// the same expression chain. Balanced groups passed on the way are
/// skipped whole; the scan ascends through unmatched `(`/`[` (it may start
/// inside a single-expression closure argument) and stops at statement
/// boundaries: `;`, an unmatched `{`, or the body start.
///
/// This deliberately distinguishes `x.par_iter().map(..).sum()` (flagged:
/// the reduction combines across the parallel dimension) from a sequential
/// `.sum()` inside a braced `par_iter().for_each(|row| { .. })` body
/// (quiet: per-row reduction order is fixed).
fn par_chain_backward(t: &[Tok], start: usize, from: usize) -> bool {
    let mut j = from;
    loop {
        let tk = &t[j];
        if tk.kind == Kind::Ident
            && (tk.text.starts_with("par_") || tk.text.starts_with("into_par"))
        {
            return true;
        }
        if tk.kind == Kind::Punct {
            match tk.text.as_bytes().first() {
                Some(b';' | b'{') => return false,
                Some(b')') => {
                    let Some(open) = match_backward(t, start, j, '(', ')') else {
                        return false;
                    };
                    j = open;
                }
                Some(b']') => {
                    let Some(open) = match_backward(t, start, j, '[', ']') else {
                        return false;
                    };
                    j = open;
                }
                Some(b'}') => {
                    let Some(open) = match_backward(t, start, j, '{', '}') else {
                        return false;
                    };
                    j = open;
                }
                _ => {}
            }
        }
        if j <= start {
            return false;
        }
        j -= 1;
    }
}

/// Index of the `open` matching the `close` at `at`, scanning backward but
/// not before `start`.
fn match_backward(t: &[Tok], start: usize, at: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = at;
    loop {
        if t[j].is(close) {
            depth += 1;
        } else if t[j].is(open) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        if j <= start {
            return None;
        }
        j -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(src: &str) -> Model {
        Model::build(&[("crates/x/src/lib.rs".to_string(), src.to_string())])
    }

    fn node<'m>(m: &'m Model, name: &str) -> &'m FnNode {
        m.fns.iter().find(|f| f.item.name == name).unwrap()
    }

    #[test]
    fn alloc_sites_cover_the_rule_vocabulary() {
        let m = model_of(
            "fn f() {
                let a = Vec::new();
                let b = vec![0.0; 8];
                let c = Vec::with_capacity(4);
                let d: Vec<u8> = x.iter().collect();
                let e = s.to_vec();
                let g = h.clone();
                let i = Box::new(3);
            }",
        );
        let f = node(&m, "f");
        assert_eq!(f.allocs.len(), 7, "allocs: {:?}", f.allocs);
    }

    #[test]
    fn panic_sites_skip_debug_asserts_and_unwrap_or() {
        let m = model_of(
            "fn f(o: Option<u8>) {
                o.unwrap();
                o.expect(\"msg\");
                assert!(true);
                assert_eq!(1, 1);
                debug_assert!(true);
                debug_assert_eq!(1, 1);
                o.unwrap_or(3);
                o.unwrap_or_default();
                panic!(\"boom\");
            }",
        );
        let f = node(&m, "f");
        assert_eq!(f.panics.len(), 5, "panics: {:?}", f.panics);
    }

    #[test]
    fn parallel_reductions_flagged_sequential_ones_quiet() {
        let m = model_of(
            "fn f(x: &[f64], y: &[f64]) -> f64 {
                let bad: f64 = x.par_iter().map(|v| v * v).sum();
                let fine: f64 = x.iter().map(|v| v * v).sum();
                x.par_chunks(4).zip(y.par_chunks(4)).for_each(|(a, b)| {
                    let per_row: f64 = a.iter().sum();
                    drop(per_row);
                });
                x.par_iter().zip(y).for_each(|(o, v)| out[i] += v);
                bad + fine
            }",
        );
        let f = node(&m, "f");
        assert_eq!(f.reductions.len(), 2, "reductions: {:?}", f.reductions);
        assert!(f.reductions[0].what.contains(".sum"));
        assert!(f.reductions[1].what.contains("+="));
    }

    #[test]
    fn qualifier_resolution_narrows_by_type_then_module() {
        let srcs = [
            (
                "crates/a/src/alpha.rs".to_string(),
                "impl Alpha { pub fn make() {} } pub fn helper() {}".to_string(),
            ),
            (
                "crates/a/src/beta.rs".to_string(),
                "impl Beta { pub fn make() {} }
                 pub fn caller() { Alpha::make(); beta::make(); Vec::new(); helper(); }"
                    .to_string(),
            ),
        ];
        let m = Model::build(&srcs);
        let caller = node(&m, "caller");
        let by_call = |n: &str| -> Vec<String> {
            caller
                .calls
                .iter()
                .find(|c| c.name == n || c.qual.as_deref() == Some(n))
                .map(|c| {
                    m.resolve(c, caller)
                        .into_iter()
                        .map(|i| m.display_name(i))
                        .collect()
                })
                .unwrap_or_default()
        };
        assert_eq!(by_call("Alpha"), ["Alpha::make"]);
        assert_eq!(by_call("beta"), ["Beta::make"]);
        assert_eq!(by_call("Vec"), Vec::<String>::new());
        assert_eq!(by_call("helper"), ["helper"]);
    }

    #[test]
    fn annotations_resolve_on_line_and_in_block_above() {
        let src = "fn f() {
    let a = Vec::new(); // ALLOC: trailing justification
    // ALLOC: block justification
    // continues here
    let b = Vec::new();
    let c = Vec::new();
}";
        let m = model_of(src);
        assert!(m.justified_at(0, 2, "ALLOC:"));
        assert!(m.justified_at(0, 5, "ALLOC:"));
        assert!(!m.justified_at(0, 6, "ALLOC:"));
    }

    #[test]
    fn fn_level_annotation_sits_above_attrs_and_docs() {
        let src = "// PANIC-FREE: sealed invariant\n/// Docs.\n#[inline]\nfn f() { x.unwrap(); }\nfn g() { x.unwrap(); }";
        let m = model_of(src);
        assert!(m.fn_annotated(node(&m, "f"), "PANIC-FREE:"));
        assert!(!m.fn_annotated(node(&m, "g"), "PANIC-FREE:"));
    }

    #[test]
    fn test_functions_are_invisible() {
        let m = model_of("#[cfg(test)] mod t { pub fn apply() {} } fn apply_real() {}");
        assert!(m.fns.iter().all(|f| f.item.name != "apply"));
    }
}

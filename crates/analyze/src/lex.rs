//! Minimal Rust lexer for the analyzer.
//!
//! Produces a flat token stream plus a per-line table of comment text and
//! code presence. The token stream is what the item parser ([`crate::parse`])
//! and body scanner ([`crate::model`]) walk; the line table is what the
//! annotation escape hatches (`// ALLOC:`, `// PANIC-FREE:`,
//! `// DETERMINISM:`) are resolved against.
//!
//! The lexer covers the subset of Rust this workspace uses: line and nested
//! block comments, string/raw-string/byte-string literals, char literals
//! disambiguated from lifetimes, raw identifiers, and numeric literals with
//! exponents. Multi-character operators are emitted as single-character
//! punctuation tokens (`->` is `-` then `>`); consumers re-associate them,
//! which is unambiguous because whitespace can never split a Rust operator
//! into two valid tokens in the positions the analyzer inspects.

/// Token class. Literal payloads are dropped: the analyzer only dispatches
/// on identifiers and punctuation, so `Str`/`Char`/`Num` exist to keep the
/// stream aligned with the source, not to carry values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (keywords are not distinguished here).
    Ident,
    /// Lifetime such as `'a` (the leading quote is stripped).
    Lifetime,
    /// Numeric literal, including suffix and exponent.
    Num,
    /// String, raw-string, or byte-string literal (payload dropped).
    Str,
    /// Character or byte literal (payload dropped).
    Char,
    /// Single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: Kind,
    /// Source text for `Ident`/`Lifetime`/`Punct`; empty for literals.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// True if this token is the punctuation character `c`.
    #[must_use]
    pub fn is(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// True if this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }
}

/// Per-line facts needed by the annotation walk-up.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// Concatenated comment text on this line (line comments and block
    /// comments that *start* here).
    pub comment: String,
    /// True if at least one token starts on this line.
    pub has_code: bool,
}

/// Lexed source: the token stream plus the per-line comment/code table.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// `lines[l]` describes 1-based line `l`; index 0 is unused.
    pub lines: Vec<LineInfo>,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes `src`. Unterminated literals and comments consume to end of input
/// rather than erroring: the analyzer is a reporter, not a compiler, and a
/// best-effort stream over broken source is more useful than a failure.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let nlines = src.lines().count().max(1);
    let mut lx = Lexed {
        toks: Vec::new(),
        lines: vec![LineInfo::default(); nlines + 2],
    };
    let mut i = 0;
    let mut line = 1;
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            let text: String = b[start..j].iter().collect();
            push_comment(&mut lx.lines, line, text.trim());
            i = j;
            continue;
        }
        // Block comment, possibly nested, possibly multi-line.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut text = String::new();
            while j < n && depth > 0 {
                if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                    continue;
                }
                if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                    continue;
                }
                if b[j] == '\n' {
                    line += 1;
                }
                text.push(b[j]);
                j += 1;
            }
            push_comment(&mut lx.lines, start_line, text.trim());
            i = j;
            continue;
        }
        // Raw strings and raw identifiers: r"..", r#".."#, r#ident.
        if c == 'r' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#') {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                let (end, nl) = skip_raw_string(&b, j + 1, hashes);
                push_tok(&mut lx, Kind::Str, String::new(), line);
                line += nl;
                i = end;
                continue;
            }
            if hashes == 1 && j < n && is_ident_start(b[j]) {
                // Raw identifier `r#type`: lex the identifier part.
                let mut k = j;
                while k < n && is_ident_cont(b[k]) {
                    k += 1;
                }
                let text: String = b[j..k].iter().collect();
                push_tok(&mut lx, Kind::Ident, text, line);
                i = k;
                continue;
            }
            // Bare `r` identifier falls through to the ident arm below.
        }
        // Byte strings/chars: b"..", br"..", b'..'.
        if c == 'b' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '\'' || b[i + 1] == 'r') {
            if b[i + 1] == '"' {
                let (end, nl) = skip_string(&b, i + 2);
                push_tok(&mut lx, Kind::Str, String::new(), line);
                line += nl;
                i = end;
                continue;
            }
            if b[i + 1] == '\'' {
                let end = skip_char(&b, i + 2);
                push_tok(&mut lx, Kind::Char, String::new(), line);
                i = end;
                continue;
            }
            // br"..." / br#"..."#
            let mut j = i + 2;
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                let (end, nl) = skip_raw_string(&b, j + 1, hashes);
                push_tok(&mut lx, Kind::Str, String::new(), line);
                line += nl;
                i = end;
                continue;
            }
            // `br` as a plain identifier prefix: fall through.
        }
        // String literal.
        if c == '"' {
            let (end, nl) = skip_string(&b, i + 1);
            push_tok(&mut lx, Kind::Str, String::new(), line);
            line += nl;
            i = end;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && b[i + 1] == '\\' {
                let end = skip_char(&b, i + 1);
                push_tok(&mut lx, Kind::Char, String::new(), line);
                i = end;
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' {
                push_tok(&mut lx, Kind::Char, String::new(), line);
                i += 3;
                continue;
            }
            // Lifetime: quote followed by an identifier run.
            let mut j = i + 1;
            while j < n && is_ident_cont(b[j]) {
                j += 1;
            }
            let text: String = b[i + 1..j].iter().collect();
            push_tok(&mut lx, Kind::Lifetime, text, line);
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let mut j = i;
            while j < n && is_ident_cont(b[j]) {
                j += 1;
            }
            let text: String = b[i..j].iter().collect();
            push_tok(&mut lx, Kind::Ident, text, line);
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i;
            let mut prev_e = false;
            while j < n {
                let d = b[j];
                if is_ident_cont(d) {
                    prev_e = d == 'e' || d == 'E';
                } else if (d == '.' && j + 1 < n && b[j + 1].is_ascii_digit())
                    || ((d == '+' || d == '-') && prev_e)
                {
                    prev_e = false;
                } else {
                    break;
                }
                j += 1;
            }
            push_tok(&mut lx, Kind::Num, String::new(), line);
            i = j;
            continue;
        }
        push_tok(&mut lx, Kind::Punct, c.to_string(), line);
        i += 1;
    }
    lx
}

fn push_tok(lx: &mut Lexed, kind: Kind, text: String, line: usize) {
    if line < lx.lines.len() {
        lx.lines[line].has_code = true;
    }
    lx.toks.push(Tok { kind, text, line });
}

fn push_comment(lines: &mut [LineInfo], line: usize, text: &str) {
    if line < lines.len() {
        let c = &mut lines[line].comment;
        if !c.is_empty() {
            c.push(' ');
        }
        c.push_str(text);
    }
}

/// Skips a `"`-terminated string body starting at `i` (after the opening
/// quote). Returns `(index after closing quote, newlines crossed)`.
fn skip_string(b: &[char], i: usize) -> (usize, usize) {
    let mut j = i;
    let mut nl = 0;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '"' => return (j + 1, nl),
            '\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, nl)
}

/// Skips a raw-string body starting at `i` (after the opening quote) with
/// `hashes` trailing `#`s. Returns `(index after terminator, newlines)`.
fn skip_raw_string(b: &[char], i: usize, hashes: usize) -> (usize, usize) {
    let mut j = i;
    let mut nl = 0;
    while j < b.len() {
        if b[j] == '\n' {
            nl += 1;
        }
        if b[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0;
            while k < b.len() && seen < hashes && b[k] == '#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, nl);
            }
        }
        j += 1;
    }
    (j, nl)
}

/// Skips a char-literal body starting at `i` (after the opening quote,
/// positioned at a `\` escape or the literal char). Returns the index after
/// the closing quote.
fn skip_char(b: &[char], i: usize) -> usize {
    let mut j = i;
    if j < b.len() && b[j] == '\\' {
        j += 2;
        // \u{...} escapes.
        while j < b.len() && b[j] != '\'' {
            j += 1;
        }
        return (j + 1).min(b.len());
    }
    while j < b.len() && b[j] != '\'' {
        j += 1;
    }
    (j + 1).min(b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_code_are_separated() {
        let lx = lex("let x = 1; // trailing note\n// full line\nlet y = 2;\n");
        assert!(lx.lines[1].has_code);
        assert_eq!(lx.lines[1].comment, "trailing note");
        assert!(!lx.lines[2].has_code);
        assert_eq!(lx.lines[2].comment, "full line");
        assert!(lx.lines[3].has_code);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let lx = lex("/* a /* b */ c */ fn f() {}\n");
        // Nested delimiters are dropped; only the text matters for markers.
        assert_eq!(lx.lines[1].comment, "a  b  c");
        assert!(lx.toks[0].is_ident("fn"));
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let lx = lex("let c = 'x'; fn f<'a>(v: &'a str) {} let e = '\\n';");
        let kinds: Vec<Kind> = lx.toks.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&Kind::Char));
        let lt: Vec<&Tok> = lx
            .toks
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .collect();
        assert_eq!(lt.len(), 2);
        assert_eq!(lt[0].text, "a");
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        assert_eq!(
            idents(r##"let s = r#"quote " inside"#; r#type"##),
            ["let", "s", "type"]
        );
    }

    #[test]
    fn numbers_with_exponents_stay_single_tokens() {
        let lx = lex("let x = 1.5e-3 + 2; let r = 0..n;");
        let nums = lx.toks.iter().filter(|t| t.kind == Kind::Num).count();
        assert_eq!(nums, 3); // 1.5e-3, 2, 0
    }

    #[test]
    fn multi_line_strings_track_lines() {
        let lx = lex("let s = \"a\nb\";\nlet t = 1;\n");
        let t_tok = lx.toks.iter().find(|t| t.is_ident("t")).unwrap();
        assert_eq!(t_tok.line, 3);
    }
}

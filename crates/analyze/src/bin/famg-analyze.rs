//! Solve-path invariant analyzer; see [`famg_analyze`] for the rules.
//!
//! Usage: `cargo run -q -p famg-analyze --bin famg-analyze
//! [--format json|text] [workspace-root]` (default root: the current
//! directory, default format: text). Text mode prints one
//! `path:line: [rule] message` diagnostic per finding; `--format json`
//! emits the shared `famg-diag-v1` document (see
//! [`famg_analyze::to_json`]), the same schema `famg-lint` uses. Exits
//! non-zero on findings — wired into `scripts/check.sh` as the
//! `==> famg-analyze` stage.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = ".".to_string();
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("famg-analyze: unknown format {other:?} (expected json|text)");
                    return ExitCode::from(2);
                }
            },
            _ => root = arg,
        }
    }
    let diags = match famg_analyze::analyze_workspace(Path::new(&root)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("famg-analyze: failed to scan {root}: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", famg_analyze::to_json("famg-analyze", &diags));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if diags.is_empty() {
        eprintln!("famg-analyze: clean");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    eprintln!("famg-analyze: {} finding(s)", diags.len());
    ExitCode::FAILURE
}

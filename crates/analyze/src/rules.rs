//! The three solve-path rules: reachability BFS plus per-site reporting.
//!
//! * [`rule_alloc`] (`alloc-in-solve-path`) — no heap allocation in any
//!   function reachable from a solve root. Setup/refresh-flavored callees
//!   (see [`SETUP_PREFIXES`]) are traversal boundaries: hierarchy setup,
//!   workspace construction, and plan building are allowed to allocate.
//! * [`rule_panic`] (`panic-in-try-path`) — nothing reachable from a
//!   public `try_*` entry point may panic. No name-based exemptions: a
//!   panic inside lazy setup on a fallible path still breaks the
//!   `try_` contract.
//! * [`rule_reduction`] (`reduction-blessed`) — floating-point reductions
//!   over parallel iterators only in the blessed fixed-chunk modules
//!   ([`REDUCTION_BLESSED`]); everywhere else they are
//!   schedule-dependent and need a `// DETERMINISM:` justification.
//!
//! Escape hatches: a `// ALLOC:` / `// PANIC-FREE:` / `// DETERMINISM:`
//! comment on the flagged line (or the comment block directly above it)
//! suppresses that site; the same marker above a function's signature
//! vouches for the function and everything it calls — the BFS reports
//! nothing inside the vouched subtree.

use std::collections::VecDeque;

use famg_check::diag::Diagnostic;

use crate::model::{FnNode, Model};

/// Rule id strings, stable across releases (used in `--format json`).
pub mod id {
    /// No heap allocation reachable from a solve root.
    pub const ALLOC: &str = "alloc-in-solve-path";
    /// No panic reachable from a public `try_*` entry.
    pub const PANIC: &str = "panic-in-try-path";
    /// Parallel FP reductions only in blessed modules.
    pub const REDUCTION: &str = "reduction-blessed";
}

/// Function names that anchor the solve-path reachability set: cycle
/// drivers, Krylov solvers, smoothers, and the SpMV/SpMM kernels.
pub const SOLVE_ROOTS: &[&str] = &[
    "vcycle",
    "vcycle_batch",
    "solve",
    "solve_batch",
    "try_solve",
    "try_solve_batch",
    "cg",
    "cg_batch",
    "cg_with",
    "cg_batch_with",
    "fgmres",
    "try_dist_amg_solve",
    "try_dist_amg_solve_multi",
    "try_dist_vcycle",
    "try_dist_vcycle_multi",
    "try_dist_vcycle_with",
    "try_dist_vcycle_multi_with",
    "try_dist_fgmres_amg",
    "try_dist_pcg_amg",
    "sweep",
    "sweep_batch",
    "smooth",
    "smooth_multi",
    "spmv",
    "spmm",
    "dist_spmv",
];

/// Name prefixes the alloc-rule BFS does not descend into: setup,
/// (re)construction, and validation are allowed to allocate. The panic
/// rule has no such cut.
pub const SETUP_PREFIXES: &[&str] = &[
    "setup",
    "build",
    "from_",
    "for_", // workspace constructors: for_hierarchy, for_problem, ...
    "plan",
    "refresh",
    "freeze",
    "check_",
    "validate",
    "galerkin",
    "coarsen",
    "factor",
    "strength",
    "interp",
    "renumber",
    "partition",
];

/// Files whose parallel reductions are deterministic by construction
/// (fixed-chunk splits with an ordered sequential combine).
pub const REDUCTION_BLESSED: &[&str] = &["crates/sparse/src/vecops.rs"];

/// Marker suppressing `alloc-in-solve-path` findings.
pub const ALLOC_MARKER: &str = "ALLOC:";
/// Marker suppressing `panic-in-try-path` findings.
pub const PANIC_MARKER: &str = "PANIC-FREE:";
/// Marker suppressing `reduction-blessed` findings.
pub const DETERMINISM_MARKER: &str = "DETERMINISM:";

fn is_setup_named(name: &str) -> bool {
    SETUP_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Reachability BFS from `roots`. Returns, for each visited function, the
/// BFS parent (`usize::MAX` for roots) — only functions whose bodies were
/// actually examined appear (function-level annotated nodes and cut names
/// are absorbed silently).
fn reach(
    m: &Model,
    roots: &[usize],
    marker: &str,
    cut: impl Fn(&FnNode) -> bool,
) -> Vec<(usize, usize)> {
    let n = m.fns.len();
    let mut seen = vec![false; n];
    let mut parent = vec![usize::MAX; n];
    let mut out = Vec::new();
    let mut q = VecDeque::new();
    for &r in roots {
        if seen[r] {
            continue;
        }
        seen[r] = true;
        if m.fn_annotated(&m.fns[r], marker) {
            continue;
        }
        q.push_back(r);
    }
    while let Some(f) = q.pop_front() {
        out.push((f, parent[f]));
        for call in &m.fns[f].calls {
            for c in m.resolve(call, &m.fns[f]) {
                if seen[c] {
                    continue;
                }
                seen[c] = true;
                if cut(&m.fns[c]) || m.fn_annotated(&m.fns[c], marker) {
                    continue;
                }
                parent[c] = f;
                q.push_back(c);
            }
        }
    }
    out
}

/// Renders the BFS call path from a root down to `f` as `a → b → c`.
fn chain(m: &Model, parents: &[(usize, usize)], f: usize) -> String {
    let lookup = |i: usize| parents.iter().find(|&&(n, _)| n == i).map(|&(_, p)| p);
    let mut names = vec![m.display_name(f)];
    let mut cur = f;
    while let Some(p) = lookup(cur) {
        if p == usize::MAX {
            break;
        }
        names.push(m.display_name(p));
        cur = p;
    }
    names.reverse();
    if names.len() > 6 {
        let tail = names.split_off(names.len() - 3);
        names.truncate(2);
        names.push("…".to_string());
        names.extend(tail);
    }
    names.join(" → ")
}

/// `alloc-in-solve-path`: flags heap-allocation sites in functions
/// reachable from [`SOLVE_ROOTS`], excluding setup-named callees.
#[must_use]
pub fn rule_alloc(m: &Model) -> Vec<Diagnostic> {
    let roots: Vec<usize> = (0..m.fns.len())
        .filter(|&i| SOLVE_ROOTS.contains(&m.fns[i].item.name.as_str()))
        .collect();
    let visited = reach(m, &roots, ALLOC_MARKER, |f| is_setup_named(&f.item.name));
    let mut out = Vec::new();
    for &(f, _) in &visited {
        let node = &m.fns[f];
        for site in &node.allocs {
            if m.justified_at(node.file, site.line, ALLOC_MARKER) {
                continue;
            }
            out.push(Diagnostic {
                path: m.files[node.file].path.clone(),
                line: site.line,
                rule: id::ALLOC,
                message: format!(
                    "{} allocates on the solve path ({}); hoist into a cached workspace or \
                     justify with `// ALLOC: <why>`",
                    site.what,
                    chain(m, &visited, f)
                ),
            });
        }
    }
    out
}

/// `panic-in-try-path`: flags panic-capable sites in functions reachable
/// from public `try_*` entry points.
#[must_use]
pub fn rule_panic(m: &Model) -> Vec<Diagnostic> {
    let roots: Vec<usize> = (0..m.fns.len())
        .filter(|&i| {
            let it = &m.fns[i].item;
            it.is_pub && it.name.starts_with("try_")
        })
        .collect();
    let visited = reach(m, &roots, PANIC_MARKER, |_| false);
    let mut out = Vec::new();
    for &(f, _) in &visited {
        let node = &m.fns[f];
        for site in &node.panics {
            if m.justified_at(node.file, site.line, PANIC_MARKER) {
                continue;
            }
            out.push(Diagnostic {
                path: m.files[node.file].path.clone(),
                line: site.line,
                rule: id::PANIC,
                message: format!(
                    "{} can panic but is reachable from a fallible `try_*` entry ({}); return \
                     an error or justify with `// PANIC-FREE: <invariant>`",
                    site.what,
                    chain(m, &visited, f)
                ),
            });
        }
    }
    out
}

/// `reduction-blessed`: flags parallel FP reductions outside
/// [`REDUCTION_BLESSED`]. Site-based, no reachability: a
/// schedule-dependent reduction is a determinism hazard wherever it runs.
#[must_use]
pub fn rule_reduction(m: &Model) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for node in &m.fns {
        let path = m.files[node.file].path.as_str();
        if REDUCTION_BLESSED.iter().any(|b| path.ends_with(b)) {
            continue;
        }
        if m.fn_annotated(node, DETERMINISM_MARKER) {
            continue;
        }
        for site in &node.reductions {
            if m.justified_at(node.file, site.line, DETERMINISM_MARKER) {
                continue;
            }
            out.push(Diagnostic {
                path: path.to_string(),
                line: site.line,
                rule: id::REDUCTION,
                message: format!(
                    "{} outside the blessed fixed-chunk modules is schedule-dependent; route \
                     through `famg_sparse::vecops` or justify with `// DETERMINISM: <why>`",
                    site.what
                ),
            });
        }
    }
    out
}

/// Runs all three rules and returns diagnostics sorted by
/// `(path, line, rule)`.
#[must_use]
pub fn run_all(m: &Model) -> Vec<Diagnostic> {
    let mut out = rule_alloc(m);
    out.extend(rule_panic(m));
    out.extend(rule_reduction(m));
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    out
}

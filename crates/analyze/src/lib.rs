//! famg-analyze: call-graph-aware static analysis for the famg workspace.
//!
//! Where `famg-lint` (see `famg_check::lint`) audits individual source
//! lines, this crate proves *flow* properties: it parses a pragmatic
//! subset of Rust (items, fn signatures, bodies as token streams), builds
//! a conservative name-resolved call graph across the kernel crates, and
//! checks three solve-path invariants from the Park et al. (SC'15)
//! reproduction:
//!
//! * **`alloc-in-solve-path`** — the V-cycle, Krylov, smoother, and
//!   SpMV/SpMM hot paths never heap-allocate; buffers are hoisted into
//!   cached workspaces at setup time (the paper's optimized solve phase
//!   is allocation-free by design).
//! * **`panic-in-try-path`** — public `try_*` entry points really are
//!   fallible: everything reachable from them reports via `Result`
//!   instead of panicking, unless a written invariant explains why the
//!   panic is unreachable.
//! * **`reduction-blessed`** — parallel floating-point reductions live
//!   only in the fixed-chunk deterministic modules, preserving the
//!   workspace's bitwise thread-count independence guarantee.
//!
//! The call graph is over-approximate (method and trait calls edge to
//! every same-named function; see [`model`]), so every rule has a
//! written escape hatch (`// ALLOC:`, `// PANIC-FREE:`,
//! `// DETERMINISM:`) that demands a justification rather than silence.
//!
//! Scope: only the kernel crates listed in [`ANALYZED_ROOTS`] are
//! scanned. Telemetry, verification, and generator crates (prof, check,
//! model, bench, matgen) allocate and panic freely by design, and the
//! rayon shim is the substrate *below* these invariants — its ordered
//! reduce is exactly what makes the blessed modules deterministic.

pub mod lex;
pub mod model;
pub mod parse;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use famg_check::diag::{to_json, Diagnostic};
pub use model::Model;

/// Source roots (relative to the workspace root) included in the model.
pub const ANALYZED_ROOTS: &[&str] = &[
    "crates/core/src",
    "crates/sparse/src",
    "crates/krylov/src",
    "crates/dist/src",
];

/// Analyzes in-memory `(path, source)` pairs and returns sorted
/// diagnostics. Paths are workspace-relative with forward slashes; they
/// select rule scope (e.g. [`rules::REDUCTION_BLESSED`]), so fixtures
/// should use realistic paths.
#[must_use]
pub fn analyze_sources(sources: &[(String, String)]) -> Vec<Diagnostic> {
    rules::run_all(&Model::build(sources))
}

/// Walks [`ANALYZED_ROOTS`] under `root`, reads every `.rs` file, and
/// analyzes them as one workspace. File order is sorted for deterministic
/// diagnostics.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for sub in ANALYZED_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, fs::read_to_string(&f)?));
    }
    Ok(analyze_sources(&sources))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

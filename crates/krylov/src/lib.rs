//! # famg-krylov
//!
//! Krylov solvers used by the paper's multi-node evaluation: a flexible
//! (right-preconditioned) GMRES — Table 4's outer solver — and conjugate
//! gradients, both generic over a [`Preconditioner`].
//!
//! Flexible GMRES [Saad 1993] allows the preconditioner to change between
//! iterations, which is required when the preconditioner is itself an
//! iterative method like an AMG V-cycle.

pub mod cg;
pub mod fgmres;
pub mod precond;

pub use cg::{cg, CgOptions};
pub use fgmres::{fgmres, FgmresOptions};
pub use precond::{IdentityPrecond, Preconditioner, RefreshPrecond};

/// Convergence report shared by the Krylov solvers.
#[derive(Debug, Clone)]
pub struct KrylovResult {
    /// Iterations performed (preconditioner applications).
    pub iterations: usize,
    /// Final relative residual (recomputed exactly at exit).
    pub final_relres: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Relative residual history, one entry per iteration.
    pub history: Vec<f64>,
}

//! # famg-krylov
//!
//! Krylov solvers used by the paper's multi-node evaluation: a flexible
//! (right-preconditioned) GMRES — Table 4's outer solver — and conjugate
//! gradients, both generic over a [`Preconditioner`].
//!
//! Flexible GMRES [Saad 1993] allows the preconditioner to change between
//! iterations, which is required when the preconditioner is itself an
//! iterative method like an AMG V-cycle.

pub mod cg;
pub mod fgmres;
pub mod precond;

pub use cg::{cg, cg_batch, CgOptions};
pub use fgmres::{fgmres, FgmresOptions};
pub use precond::{IdentityPrecond, Preconditioner, RefreshPrecond};

/// Convergence report shared by the Krylov solvers.
#[derive(Debug, Clone)]
pub struct KrylovResult {
    /// Iterations performed (preconditioner applications).
    pub iterations: usize,
    /// Final relative residual (recomputed exactly at exit).
    pub final_relres: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Relative residual history, one entry per iteration.
    pub history: Vec<f64>,
}

/// Per-column convergence report for the batched Krylov solvers
/// ([`cg_batch`]): column `j` is bitwise identical to the scalar solver
/// on that right-hand side alone.
#[derive(Debug, Clone)]
pub struct BatchKrylovResult {
    /// Iterations each column performed before its own stopping point.
    pub iterations: Vec<usize>,
    /// Final relative residual per column.
    pub final_relres: Vec<f64>,
    /// Whether each column met the tolerance.
    pub converged: Vec<bool>,
    /// Relative residual history per column.
    pub history: Vec<Vec<f64>>,
}

impl BatchKrylovResult {
    /// Batch width.
    pub fn k(&self) -> usize {
        self.converged.len()
    }

    /// True when every column met the tolerance.
    pub fn all_converged(&self) -> bool {
        self.converged.iter().all(|&c| c)
    }
}

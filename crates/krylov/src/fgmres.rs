//! Flexible GMRES (Saad 1993) with right preconditioning.
//!
//! The paper's multi-node configuration (Table 4) wraps the AMG V-cycle
//! inside flexible GMRES: the "flexible" variant stores the
//! preconditioned vectors `Z` so the preconditioner may vary between
//! iterations, as an AMG cycle does.

use crate::precond::Preconditioner;
use crate::KrylovResult;
use famg_sparse::spmv::spmv;
use famg_sparse::vecops;
use famg_sparse::Csr;

/// FGMRES options.
#[derive(Debug, Clone)]
pub struct FgmresOptions {
    /// Relative residual target.
    pub tolerance: f64,
    /// Maximum total iterations.
    pub max_iterations: usize,
    /// Restart length (Krylov basis size).
    pub restart: usize,
}

impl Default for FgmresOptions {
    fn default() -> Self {
        FgmresOptions {
            tolerance: 1e-7,
            max_iterations: 500,
            restart: 50,
        }
    }
}

/// Solves `A x = b` with right-preconditioned flexible GMRES.
///
/// ```
/// use famg_krylov::{fgmres, FgmresOptions, IdentityPrecond};
/// let a = famg_matgen::laplace2d(12, 12);
/// let b = vec![1.0; a.nrows()];
/// let mut x = vec![0.0; a.nrows()];
/// let res = fgmres(&a, &b, &mut x, &IdentityPrecond, &FgmresOptions::default());
/// assert!(res.converged);
/// ```
pub fn fgmres(
    a: &Csr,
    b: &[f64],
    x: &mut [f64],
    precond: &impl Preconditioner,
    opts: &FgmresOptions,
) -> KrylovResult {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let m = opts.restart.max(1);
    let bnorm = vecops::norm2(b).max(f64::MIN_POSITIVE);

    let mut history = Vec::new(); // ALLOC: result-owned residual history
    let mut total_iters = 0usize;
    let mut relres;

    // Krylov basis V, preconditioned basis Z, Hessenberg H (column major:
    // h[j] has j+2 entries), Givens rotations.
    // ALLOC: FGMRES basis storage — retaining V and Z is inherent to the
    // algorithm (flexible preconditioning forbids recomputing Z).
    let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    let mut z: Vec<Vec<f64>> = Vec::with_capacity(m); // ALLOC: see above

    'outer: loop {
        // r = b - A x
        // ALLOC: per-restart residual seed; becomes the first basis
        // vector (moved into `v`), so it cannot be a reused buffer.
        let mut r = vec![0.0; n];
        spmv(a, x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let beta = vecops::norm2(&r);
        relres = beta / bnorm;
        if relres <= opts.tolerance || total_iters >= opts.max_iterations {
            break;
        }
        v.clear();
        z.clear();
        vecops::scale(1.0 / beta, &mut r);
        v.push(r);
        let mut g = vec![0.0f64; m + 1]; // ALLOC: per-restart least-squares RHS
        g[0] = beta;
        let mut h: Vec<Vec<f64>> = Vec::with_capacity(m); // ALLOC: retained Hessenberg columns
        let mut cs: Vec<f64> = Vec::with_capacity(m); // ALLOC: retained Givens coefficients
        let mut sn: Vec<f64> = Vec::with_capacity(m); // ALLOC: retained Givens coefficients
        let mut inner = 0usize;

        while inner < m && total_iters < opts.max_iterations {
            // z_j = M⁻¹ v_j ; w = A z_j
            // ALLOC: zj joins the retained basis Z below; w likewise
            // becomes the next basis vector after normalization.
            let mut zj = vec![0.0; n];
            precond.apply(&v[inner], &mut zj);
            let mut w = vec![0.0; n]; // ALLOC: becomes the next basis vector
            spmv(a, &zj, &mut w);
            z.push(zj);
            // Modified Gram-Schmidt.
            // ALLOC: one retained Hessenberg column per inner iteration.
            let mut hj = vec![0.0f64; inner + 2];
            for (i, vi) in v.iter().enumerate() {
                let hij = vecops::dot(&w, vi);
                hj[i] = hij;
                vecops::axpy(-hij, vi, &mut w);
            }
            let wnorm = vecops::norm2(&w);
            hj[inner + 1] = wnorm;
            // Apply existing Givens rotations to the new column.
            for i in 0..inner {
                let t = cs[i] * hj[i] + sn[i] * hj[i + 1];
                hj[i + 1] = -sn[i] * hj[i] + cs[i] * hj[i + 1];
                hj[i] = t;
            }
            // New rotation to annihilate hj[inner+1].
            let (c, s) = givens(hj[inner], hj[inner + 1]);
            cs.push(c);
            sn.push(s);
            hj[inner] = c * hj[inner] + s * hj[inner + 1];
            hj[inner + 1] = 0.0;
            g[inner + 1] = -s * g[inner];
            g[inner] *= c;
            h.push(hj);

            total_iters += 1;
            inner += 1;
            relres = g[inner].abs() / bnorm;
            history.push(relres);

            if relres <= opts.tolerance {
                update_solution(x, &h, &g, &z, inner);
                continue 'outer; // recompute the true residual and re-test
            }
            if wnorm <= f64::MIN_POSITIVE {
                // Lucky breakdown: exact solution in the current space.
                update_solution(x, &h, &g, &z, inner);
                continue 'outer;
            }
            let mut vnext = w;
            vecops::scale(1.0 / wnorm, &mut vnext);
            v.push(vnext);
        }
        // Restart (or iteration cap): fold the correction into x.
        update_solution(x, &h, &g, &z, inner);
        if total_iters >= opts.max_iterations {
            // Recompute the exact residual for the report.
            // ALLOC: one exit-path residual buffer for the final report.
            let mut r = vec![0.0; n];
            spmv(a, x, &mut r);
            for (ri, bi) in r.iter_mut().zip(b) {
                *ri = bi - *ri;
            }
            relres = vecops::norm2(&r) / bnorm;
            break;
        }
    }

    KrylovResult {
        iterations: total_iters,
        final_relres: relres,
        converged: relres <= opts.tolerance,
        history,
    }
}

/// Solves the small triangular system and applies `x += Z y`.
fn update_solution(x: &mut [f64], h: &[Vec<f64>], g: &[f64], z: &[Vec<f64>], k: usize) {
    if k == 0 {
        return;
    }
    // ALLOC: k-sized triangular-solve scratch, once per restart exit.
    let mut y = vec![0.0f64; k];
    for i in (0..k).rev() {
        let mut acc = g[i];
        for j in i + 1..k {
            acc -= h[j][i] * y[j];
        }
        y[i] = acc / h[i][i];
    }
    for (j, yj) in y.iter().enumerate() {
        vecops::axpy(*yj, &z[j], x);
    }
}

/// Stable Givens rotation coefficients.
fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() > b.abs() {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c, c * t)
    } else {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::IdentityPrecond;
    use famg_matgen::{laplace2d, rhs};

    fn relres(a: &Csr, b: &[f64], x: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        spmv(a, x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        vecops::norm2(&r) / vecops::norm2(b)
    }

    #[test]
    fn unpreconditioned_solves_small_laplacian() {
        let a = laplace2d(10, 10);
        let b = rhs::ones(100);
        let mut x = vec![0.0; 100];
        let res = fgmres(&a, &b, &mut x, &IdentityPrecond, &FgmresOptions::default());
        assert!(res.converged, "relres {}", res.final_relres);
        assert!(relres(&a, &b, &x) <= 1.1e-7);
    }

    #[test]
    fn restart_path_exercised() {
        let a = laplace2d(16, 16);
        let b = rhs::random(256, 1);
        let mut x = vec![0.0; 256];
        let opts = FgmresOptions {
            restart: 5,
            max_iterations: 2000,
            ..FgmresOptions::default()
        };
        let res = fgmres(&a, &b, &mut x, &IdentityPrecond, &opts);
        assert!(res.converged);
        assert!(res.iterations > 5, "restart never triggered");
        assert!(relres(&a, &b, &x) <= 1.1e-7);
    }

    #[test]
    fn jacobi_preconditioner_helps() {
        let a = laplace2d(14, 14);
        let n = a.nrows();
        let dinv: Vec<f64> = (0..n).map(|i| 1.0 / a.diag(i)).collect();
        let pre = move |r: &[f64], z: &mut [f64]| {
            for i in 0..r.len() {
                z[i] = dinv[i] * r[i];
            }
        };
        let b = rhs::ones(n);
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        let r1 = fgmres(&a, &b, &mut x1, &IdentityPrecond, &FgmresOptions::default());
        let r2 = fgmres(&a, &b, &mut x2, &pre, &FgmresOptions::default());
        assert!(r1.converged && r2.converged);
        // Jacobi on the scaled Laplacian is equivalent up to scaling, so
        // just sanity-check both solve and the history is monotone-ish.
        assert!(relres(&a, &b, &x2) <= 1.1e-7);
    }

    #[test]
    fn nonzero_initial_guess() {
        let a = laplace2d(12, 12);
        let b = rhs::ones(144);
        let mut x = rhs::random(144, 7);
        let res = fgmres(&a, &b, &mut x, &IdentityPrecond, &FgmresOptions::default());
        assert!(res.converged);
        assert!(relres(&a, &b, &x) <= 1.1e-7);
    }

    #[test]
    fn iteration_cap_respected() {
        let a = laplace2d(20, 20);
        let b = rhs::ones(400);
        let mut x = vec![0.0; 400];
        let opts = FgmresOptions {
            max_iterations: 3,
            ..FgmresOptions::default()
        };
        let res = fgmres(&a, &b, &mut x, &IdentityPrecond, &opts);
        assert!(!res.converged);
        assert_eq!(res.iterations, 3);
    }

    #[test]
    fn exact_solution_returns_immediately() {
        let a = laplace2d(8, 8);
        let x_true = rhs::random(64, 3);
        let b = rhs::rhs_for_solution(&a, &x_true);
        let mut x = x_true.clone();
        let res = fgmres(&a, &b, &mut x, &IdentityPrecond, &FgmresOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert_eq!(x, x_true);
    }
}

//! Preconditioned conjugate gradients.
//!
//! Provided alongside FGMRES because SPD problems (every matrix in the
//! paper's suite) admit the cheaper three-term recurrence; the paper's
//! discussion of global reductions (§1) is most visible here — each CG
//! iteration needs two all-reduces versus AMG's none.

use crate::precond::Preconditioner;
use crate::KrylovResult;
use famg_sparse::spmv::spmv;
use famg_sparse::vecops;
use famg_sparse::Csr;

/// CG options.
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Relative residual target.
    pub tolerance: f64,
    /// Maximum iterations.
    pub max_iterations: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tolerance: 1e-7,
            max_iterations: 1000,
        }
    }
}

/// Solves SPD `A x = b` with preconditioned CG.
pub fn cg(
    a: &Csr,
    b: &[f64],
    x: &mut [f64],
    precond: &impl Preconditioner,
    opts: &CgOptions,
) -> KrylovResult {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let bnorm = vecops::norm2(b).max(f64::MIN_POSITIVE);

    let mut r = vec![0.0; n];
    spmv(a, x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let mut z = vec![0.0; n];
    precond.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = vecops::dot(&r, &z);
    let mut relres = vecops::norm2(&r) / bnorm;
    let mut history = Vec::new();
    let mut iterations = 0usize;
    let mut ap = vec![0.0; n];

    while relres > opts.tolerance && iterations < opts.max_iterations {
        spmv(a, &p, &mut ap);
        let pap = vecops::dot(&p, &ap);
        if pap <= 0.0 {
            break; // not SPD (or breakdown): report what we have
        }
        let alpha = rz / pap;
        vecops::axpy(alpha, &p, x);
        vecops::axpy(-alpha, &ap, &mut r);
        z.fill(0.0);
        precond.apply(&r, &mut z);
        let rz_new = vecops::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        vecops::xpby(&z, beta, &mut p);
        iterations += 1;
        relres = vecops::norm2(&r) / bnorm;
        history.push(relres);
    }

    KrylovResult {
        iterations,
        final_relres: relres,
        converged: relres <= opts.tolerance,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::IdentityPrecond;
    use famg_matgen::{laplace2d, laplace3d_7pt, rhs};

    fn relres(a: &Csr, b: &[f64], x: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        spmv(a, x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        vecops::norm2(&r) / vecops::norm2(b)
    }

    #[test]
    fn solves_laplacian() {
        let a = laplace2d(16, 16);
        let b = rhs::ones(256);
        let mut x = vec![0.0; 256];
        let res = cg(&a, &b, &mut x, &IdentityPrecond, &CgOptions::default());
        assert!(res.converged);
        assert!(relres(&a, &b, &x) <= 1.1e-7);
    }

    #[test]
    fn jacobi_precond_reduces_iterations_on_scaled_problem() {
        // Scale rows/cols wildly; Jacobi preconditioning restores the
        // conditioning.
        let base = laplace3d_7pt(6, 6, 6);
        let n = base.nrows();
        let scale: Vec<f64> = (0..n).map(|i| 10f64.powi((i % 5) as i32 - 2)).collect();
        let mut trips = Vec::new();
        for i in 0..n {
            for (j, v) in base.row_iter(i) {
                trips.push((i, j, scale[i] * v * scale[j]));
            }
        }
        let a = Csr::from_triplets(n, n, trips);
        let dinv: Vec<f64> = (0..n).map(|i| 1.0 / a.diag(i)).collect();
        let pre = move |r: &[f64], z: &mut [f64]| {
            for i in 0..r.len() {
                z[i] = dinv[i] * r[i];
            }
        };
        let b = rhs::random(n, 2);
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        let r1 = cg(&a, &b, &mut x1, &IdentityPrecond, &CgOptions::default());
        let r2 = cg(&a, &b, &mut x2, &pre, &CgOptions::default());
        assert!(r2.converged);
        assert!(
            r2.iterations < r1.iterations,
            "jacobi {} vs none {}",
            r2.iterations,
            r1.iterations
        );
    }

    #[test]
    fn history_decreases_overall() {
        let a = laplace2d(12, 12);
        let b = rhs::ones(144);
        let mut x = vec![0.0; 144];
        let res = cg(&a, &b, &mut x, &IdentityPrecond, &CgOptions::default());
        assert!(res.history.last().unwrap() < &1e-7);
        assert!(res.history[0] > *res.history.last().unwrap());
    }

    #[test]
    fn iteration_cap() {
        let a = laplace2d(20, 20);
        let b = rhs::ones(400);
        let mut x = vec![0.0; 400];
        let opts = CgOptions {
            max_iterations: 2,
            ..CgOptions::default()
        };
        let res = cg(&a, &b, &mut x, &IdentityPrecond, &opts);
        assert!(!res.converged);
        assert_eq!(res.iterations, 2);
    }
}

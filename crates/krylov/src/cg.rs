//! Preconditioned conjugate gradients.
//!
//! Provided alongside FGMRES because SPD problems (every matrix in the
//! paper's suite) admit the cheaper three-term recurrence; the paper's
//! discussion of global reductions (§1) is most visible here — each CG
//! iteration needs two all-reduces versus AMG's none.

use crate::precond::Preconditioner;
use crate::{BatchKrylovResult, KrylovResult};
use famg_sparse::multivec::{axpy_batch, dot_batch, norm2_batch, xpby_batch};
use famg_sparse::spmm::spmm;
use famg_sparse::spmv::spmv;
use famg_sparse::vecops;
use famg_sparse::{Csr, MultiVec};

/// CG options.
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Relative residual target.
    pub tolerance: f64,
    /// Maximum iterations.
    pub max_iterations: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tolerance: 1e-7,
            max_iterations: 1000,
        }
    }
}

/// Reusable buffers for [`cg_with`]: the four length-`n` vectors every CG
/// iteration touches. Constructing one per solve (what [`cg`] does) is
/// fine for one-shot use; time-stepping drivers construct it once and
/// keep the steady-state iteration allocation-free.
#[derive(Debug, Clone)]
pub struct CgWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl CgWorkspace {
    /// Workspace for an `n`-row system.
    #[must_use]
    pub fn for_problem(n: usize) -> Self {
        CgWorkspace {
            r: vec![0.0; n],
            z: vec![0.0; n],
            p: vec![0.0; n],
            ap: vec![0.0; n],
        }
    }

    /// Rebuilds the buffers if sized for a different problem.
    fn fit(&mut self, n: usize) {
        if self.r.len() != n {
            *self = Self::for_problem(n);
        }
    }
}

/// Solves SPD `A x = b` with preconditioned CG, constructing a fresh
/// [`CgWorkspace`] for the call. Repeated solves over same-sized systems
/// should hold a workspace and call [`cg_with`] directly.
pub fn cg(
    a: &Csr,
    b: &[f64],
    x: &mut [f64],
    precond: &impl Preconditioner,
    opts: &CgOptions,
) -> KrylovResult {
    let mut ws = CgWorkspace::for_problem(a.nrows());
    cg_with(a, b, x, precond, opts, &mut ws)
}

/// Solves SPD `A x = b` with preconditioned CG using caller-owned
/// buffers; the per-iteration hot loop performs no heap allocation.
pub fn cg_with(
    a: &Csr,
    b: &[f64],
    x: &mut [f64],
    precond: &impl Preconditioner,
    opts: &CgOptions,
    ws: &mut CgWorkspace,
) -> KrylovResult {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let bnorm = vecops::norm2(b).max(f64::MIN_POSITIVE);

    ws.fit(n);
    let CgWorkspace { r, z, p, ap } = ws;
    spmv(a, x, r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    z.fill(0.0);
    precond.apply(r, z);
    p.copy_from_slice(z);
    let mut rz = vecops::dot(r, z);
    let mut relres = vecops::norm2(r) / bnorm;
    // ALLOC: convergence history is owned by the returned result and
    // grows with the iteration count by definition.
    let mut history = Vec::new();
    let mut iterations = 0usize;

    while relres > opts.tolerance && iterations < opts.max_iterations {
        spmv(a, p, ap);
        let pap = vecops::dot(p, ap);
        if pap <= 0.0 {
            break; // not SPD (or breakdown): report what we have
        }
        let alpha = rz / pap;
        vecops::axpy(alpha, p, x);
        vecops::axpy(-alpha, ap, r);
        z.fill(0.0);
        precond.apply(r, z);
        let rz_new = vecops::dot(r, z);
        let beta = rz_new / rz;
        rz = rz_new;
        vecops::xpby(z, beta, p);
        iterations += 1;
        relres = vecops::norm2(r) / bnorm;
        history.push(relres);
    }

    KrylovResult {
        iterations,
        final_relres: relres,
        converged: relres <= opts.tolerance,
        history,
    }
}

/// Solves SPD `A X = B` for all `k` columns with preconditioned CG,
/// advancing every right-hand side through each kernel invocation.
///
/// Column `j` of the result is bitwise identical to [`cg`] on that
/// column alone: every batched kernel (SpMM, per-column dot/axpy and
/// the preconditioner's [`Preconditioner::apply_batch`]) preserves the
/// scalar arithmetic order lane-wise, and the per-column scalars
/// (`alpha`, `beta`, `rz`) never mix lanes. A column that reaches the
/// tolerance — or hits the SPD-breakdown guard `p·Ap <= 0` — is frozen:
/// its iterate is snapshotted at its own stopping point while the
/// remaining columns keep iterating, so the batch never changes what
/// any single column converges to.
pub fn cg_batch(
    a: &Csr,
    b: &MultiVec,
    x: &mut MultiVec,
    precond: &impl Preconditioner,
    opts: &CgOptions,
) -> BatchKrylovResult {
    let mut ws = CgBatchWorkspace::for_problem(a.nrows(), b.k());
    cg_batch_with(a, b, x, precond, opts, &mut ws)
}

/// Reusable buffers for [`cg_batch_with`]: the four `n x k` multivectors
/// and the eight per-column scalar lanes the batched recurrence uses.
#[derive(Debug, Clone)]
pub struct CgBatchWorkspace {
    r: MultiVec,
    z: MultiVec,
    p: MultiVec,
    ap: MultiVec,
    bnorms: Vec<f64>,
    rz: Vec<f64>,
    relres: Vec<f64>,
    pap: Vec<f64>,
    rz_new: Vec<f64>,
    alpha: Vec<f64>,
    neg_alpha: Vec<f64>,
    beta: Vec<f64>,
}

impl CgBatchWorkspace {
    /// Workspace for an `n`-row system with `k` right-hand sides.
    #[must_use]
    pub fn for_problem(n: usize, k: usize) -> Self {
        CgBatchWorkspace {
            r: MultiVec::new(n, k),
            z: MultiVec::new(n, k),
            p: MultiVec::new(n, k),
            ap: MultiVec::new(n, k),
            bnorms: vec![0.0; k],
            rz: vec![0.0; k],
            relres: vec![0.0; k],
            pap: vec![0.0; k],
            rz_new: vec![0.0; k],
            alpha: vec![0.0; k],
            neg_alpha: vec![0.0; k],
            beta: vec![0.0; k],
        }
    }

    /// Rebuilds the buffers if sized for a different problem or width.
    fn fit(&mut self, n: usize, k: usize) {
        if self.r.n() != n || self.r.k() != k {
            *self = Self::for_problem(n, k);
        }
    }
}

/// Batched CG over caller-owned buffers; see [`cg_batch`] for the
/// column-wise bitwise-identity contract. The per-iteration hot loop
/// performs no heap allocation — only per-solve result assembly
/// (histories, frozen-column snapshots) does.
pub fn cg_batch_with(
    a: &Csr,
    b: &MultiVec,
    x: &mut MultiVec,
    precond: &impl Preconditioner,
    opts: &CgOptions,
    ws: &mut CgBatchWorkspace,
) -> BatchKrylovResult {
    let n = a.nrows();
    let k = b.k();
    assert_eq!(b.n(), n);
    assert_eq!(x.n(), n);
    assert_eq!(x.k(), k);
    if k == 0 {
        return BatchKrylovResult {
            iterations: Vec::new(),   // ALLOC: empty Vec, no heap
            final_relres: Vec::new(), // ALLOC: empty Vec, no heap
            converged: Vec::new(),    // ALLOC: empty Vec, no heap
            history: Vec::new(),      // ALLOC: empty Vec, no heap
        };
    }
    ws.fit(n, k);
    let CgBatchWorkspace {
        r,
        z,
        p,
        ap,
        bnorms,
        rz,
        relres,
        pap,
        rz_new,
        alpha,
        neg_alpha,
        beta,
    } = ws;
    norm2_batch(b, bnorms);
    for bn in bnorms.iter_mut() {
        *bn = bn.max(f64::MIN_POSITIVE);
    }

    spmm(a, x, r);
    for (ri, bi) in r.data_mut().iter_mut().zip(b.data()) {
        *ri = bi - *ri;
    }
    z.fill(0.0);
    precond.apply_batch(r, z);
    p.data_mut().copy_from_slice(z.data());
    dot_batch(r, z, rz);
    norm2_batch(r, relres);
    for (rr, bn) in relres.iter_mut().zip(bnorms.iter()) {
        *rr /= bn;
    }

    // Per-solve result assembly: these are owned by (or snapshotted
    // into) the returned BatchKrylovResult, so they cannot live in the
    // reused workspace.
    // ALLOC: per-column history vectors are part of the returned result.
    let mut history: Vec<Vec<f64>> = vec![Vec::new(); k];
    // ALLOC: result-owned copy of the entry residuals (k elements).
    let mut final_relres = relres.clone();
    // ALLOC: result-owned iteration counters (k elements).
    let mut col_iterations = vec![0usize; k];
    // A frozen column stops reporting (its lanes keep being advanced —
    // the arithmetic is lane-independent, so whatever happens there,
    // including NaN after a breakdown, never crosses into live lanes)
    // and its iterate is snapshotted at the solo solver's exit state.
    // ALLOC: one snapshot slot per column, filled on convergence events.
    let mut frozen_cols: Vec<Option<Vec<f64>>> = vec![None; k];
    // ALLOC: per-solve convergence mask (k bools).
    let mut done: Vec<bool> = relres.iter().map(|&rr| rr <= opts.tolerance).collect();
    for j in 0..k {
        if done[j] {
            frozen_cols[j] = Some(x.col(j));
        }
    }

    let mut iterations = 0usize;
    while done.iter().any(|d| !d) && iterations < opts.max_iterations {
        spmm(a, p, ap);
        dot_batch(p, ap, pap);
        // The solo solver exits *before* the update when p·Ap <= 0, so
        // freeze such columns at their pre-update iterate.
        for j in 0..k {
            if !done[j] && pap[j] <= 0.0 {
                done[j] = true;
                frozen_cols[j] = Some(x.col(j));
            }
        }
        if done.iter().all(|&d| d) {
            break;
        }
        for j in 0..k {
            alpha[j] = rz[j] / pap[j];
            neg_alpha[j] = -alpha[j];
        }
        axpy_batch(alpha, p, x);
        axpy_batch(neg_alpha, ap, r);
        z.fill(0.0);
        precond.apply_batch(r, z);
        dot_batch(r, z, rz_new);
        for j in 0..k {
            beta[j] = rz_new[j] / rz[j];
        }
        rz.copy_from_slice(rz_new);
        xpby_batch(z, beta, p);
        iterations += 1;
        norm2_batch(r, relres);
        for j in 0..k {
            relres[j] /= bnorms[j];
            if done[j] {
                continue;
            }
            history[j].push(relres[j]);
            final_relres[j] = relres[j];
            col_iterations[j] = iterations;
            if relres[j] <= opts.tolerance {
                done[j] = true;
                frozen_cols[j] = Some(x.col(j));
            }
        }
    }
    for (j, frozen) in frozen_cols.iter().enumerate() {
        if let Some(col) = frozen {
            x.set_col(j, col);
        }
    }

    let converged = final_relres
        .iter()
        .map(|&rr| rr <= opts.tolerance)
        .collect(); // ALLOC: result-owned convergence flags (k bools)
    BatchKrylovResult {
        iterations: col_iterations,
        final_relres,
        converged,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::IdentityPrecond;
    use famg_matgen::{laplace2d, laplace3d_7pt, rhs};

    fn relres(a: &Csr, b: &[f64], x: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        spmv(a, x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        vecops::norm2(&r) / vecops::norm2(b)
    }

    #[test]
    fn solves_laplacian() {
        let a = laplace2d(16, 16);
        let b = rhs::ones(256);
        let mut x = vec![0.0; 256];
        let res = cg(&a, &b, &mut x, &IdentityPrecond, &CgOptions::default());
        assert!(res.converged);
        assert!(relres(&a, &b, &x) <= 1.1e-7);
    }

    #[test]
    fn jacobi_precond_reduces_iterations_on_scaled_problem() {
        // Scale rows/cols wildly; Jacobi preconditioning restores the
        // conditioning.
        let base = laplace3d_7pt(6, 6, 6);
        let n = base.nrows();
        let scale: Vec<f64> = (0..n).map(|i| 10f64.powi((i % 5) as i32 - 2)).collect();
        let mut trips = Vec::new();
        for i in 0..n {
            for (j, v) in base.row_iter(i) {
                trips.push((i, j, scale[i] * v * scale[j]));
            }
        }
        let a = Csr::from_triplets(n, n, trips);
        let dinv: Vec<f64> = (0..n).map(|i| 1.0 / a.diag(i)).collect();
        let pre = move |r: &[f64], z: &mut [f64]| {
            for i in 0..r.len() {
                z[i] = dinv[i] * r[i];
            }
        };
        let b = rhs::random(n, 2);
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        let r1 = cg(&a, &b, &mut x1, &IdentityPrecond, &CgOptions::default());
        let r2 = cg(&a, &b, &mut x2, &pre, &CgOptions::default());
        assert!(r2.converged);
        assert!(
            r2.iterations < r1.iterations,
            "jacobi {} vs none {}",
            r2.iterations,
            r1.iterations
        );
    }

    #[test]
    fn history_decreases_overall() {
        let a = laplace2d(12, 12);
        let b = rhs::ones(144);
        let mut x = vec![0.0; 144];
        let res = cg(&a, &b, &mut x, &IdentityPrecond, &CgOptions::default());
        assert!(res.history.last().unwrap() < &1e-7);
        assert!(res.history[0] > *res.history.last().unwrap());
    }

    /// Batched CG: every column bitwise identical to the scalar solver,
    /// with both the identity preconditioner (default per-column
    /// `apply_batch` fallback on closures is exercised elsewhere) and a
    /// genuinely batched AMG V-cycle preconditioner.
    #[test]
    fn cg_batch_bitwise_matches_solo_columns() {
        use famg_core::{AmgConfig, AmgSolver};
        let a = laplace2d(20, 20);
        let n = a.nrows();
        let amg = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let opts = CgOptions::default();
        for k in [1usize, 3, 8] {
            let cols: Vec<Vec<f64>> = (0..k).map(|j| rhs::random(n, 11 + j as u64)).collect();
            let b = famg_sparse::MultiVec::from_columns(&cols);

            let mut x = famg_sparse::MultiVec::new(n, k);
            let res = cg_batch(&a, &b, &mut x, &IdentityPrecond, &opts);
            assert!(res.all_converged());
            for (j, col) in cols.iter().enumerate() {
                let mut xs = vec![0.0; n];
                let solo = cg(&a, col, &mut xs, &IdentityPrecond, &opts);
                assert_eq!(res.iterations[j], solo.iterations, "identity k={k} col {j}");
                assert_eq!(res.history[j], solo.history);
                assert_eq!(x.col(j), xs, "identity k={k} col {j}");
            }

            let mut x = famg_sparse::MultiVec::new(n, k);
            let res = cg_batch(&a, &b, &mut x, &amg, &opts);
            assert!(res.all_converged());
            for (j, col) in cols.iter().enumerate() {
                let mut xs = vec![0.0; n];
                let solo = cg(&a, col, &mut xs, &amg, &opts);
                assert_eq!(res.iterations[j], solo.iterations, "amg k={k} col {j}");
                assert_eq!(
                    res.final_relres[j].to_bits(),
                    solo.final_relres.to_bits(),
                    "amg k={k} col {j}"
                );
                assert_eq!(x.col(j), xs, "amg k={k} col {j}");
            }
        }
    }

    /// Early-converged columns freeze at their own exit point while
    /// slower columns iterate to the cap; width zero is a no-op.
    #[test]
    fn cg_batch_masks_and_edge_widths() {
        let a = laplace2d(20, 20);
        let n = a.nrows();
        let opts = CgOptions {
            max_iterations: 5,
            ..CgOptions::default()
        };
        // Column 0: zero RHS (converged at entry). Column 1: random RHS
        // that cannot converge in 5 unpreconditioned iterations.
        let cols = vec![vec![0.0; n], rhs::random(n, 3)];
        let b = famg_sparse::MultiVec::from_columns(&cols);
        let mut x = famg_sparse::MultiVec::new(n, 2);
        let res = cg_batch(&a, &b, &mut x, &IdentityPrecond, &opts);
        assert!(res.converged[0]);
        assert_eq!(res.iterations[0], 0);
        assert!(x.col(0).iter().all(|&v| v == 0.0));
        assert!(!res.converged[1]);
        assert_eq!(res.iterations[1], 5);
        let mut xs = vec![0.0; n];
        let solo = cg(&a, &cols[1], &mut xs, &IdentityPrecond, &opts);
        assert_eq!(res.final_relres[1].to_bits(), solo.final_relres.to_bits());
        assert_eq!(x.col(1), xs);

        let b0 = famg_sparse::MultiVec::new(n, 0);
        let mut x0 = famg_sparse::MultiVec::new(n, 0);
        let res0 = cg_batch(&a, &b0, &mut x0, &IdentityPrecond, &opts);
        assert_eq!(res0.k(), 0);
    }

    #[test]
    fn iteration_cap() {
        let a = laplace2d(20, 20);
        let b = rhs::ones(400);
        let mut x = vec![0.0; 400];
        let opts = CgOptions {
            max_iterations: 2,
            ..CgOptions::default()
        };
        let res = cg(&a, &b, &mut x, &IdentityPrecond, &opts);
        assert!(!res.converged);
        assert_eq!(res.iterations, 2);
    }
}

//! Preconditioner abstraction.

use famg_core::{AmgSolver, RefreshError};
use famg_sparse::{Csr, MultiVec};

/// A (possibly nonlinear / iteration-varying) preconditioner:
/// `apply` computes `z ≈ M⁻¹ r`.
///
/// Implemented directly for [`AmgSolver`] (one V-cycle per application,
/// the paper's multi-node configuration) and for closures, so ad-hoc
/// preconditioners need no wrapper type:
///
/// ```ignore
/// let amg = AmgSolver::setup(&a, &cfg);
/// fgmres(&a, &b, &mut x, &amg, &FgmresOptions::default());
/// ```
pub trait Preconditioner {
    /// Computes `z ≈ M⁻¹ r`. `z` arrives zeroed.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Batched application: `z[:,j] ≈ M⁻¹ r[:,j]` for every column.
    ///
    /// The default extracts each column and calls [`apply`], so column
    /// `j` is bitwise identical to the scalar path by construction;
    /// implementations with a genuinely batched kernel (one matrix
    /// traversal for all `k` columns, like [`AmgSolver`]) override it
    /// and must preserve that per-column bitwise contract.
    ///
    /// [`apply`]: Preconditioner::apply
    fn apply_batch(&self, r: &MultiVec, z: &mut MultiVec) {
        assert_eq!(r.n(), z.n());
        assert_eq!(r.k(), z.k());
        let n = r.n();
        // ALLOC: default column-at-a-time fallback for preconditioners
        // without a batched kernel; the production path (AmgSolver)
        // overrides this with a workspace-backed implementation.
        let mut rc = vec![0.0; n];
        let mut zc = vec![0.0; n]; // ALLOC: see above

        for j in 0..r.k() {
            r.copy_col_into(j, &mut rc);
            zc.fill(0.0);
            self.apply(&rc, &mut zc);
            z.set_col(j, &zc);
        }
    }
}

impl Preconditioner for AmgSolver {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        AmgSolver::apply(self, r, z);
    }

    fn apply_batch(&self, r: &MultiVec, z: &mut MultiVec) {
        AmgSolver::apply_batch(self, r, z);
    }
}

/// A preconditioner that can absorb a same-pattern operator update
/// without repeating its symbolic setup.
///
/// Time-stepping and Newton-type outer loops call [`refresh`] between
/// Krylov solves; when the update is rejected (e.g. the sparsity pattern
/// changed) the caller falls back to a full re-setup.
///
/// [`refresh`]: RefreshPrecond::refresh
pub trait RefreshPrecond: Preconditioner {
    /// Why a refresh was refused; the preconditioner must remain in its
    /// previous, fully usable state.
    type Error;

    /// Re-derives the numeric contents of the preconditioner for `a`,
    /// reusing all pattern-derived structure.
    fn refresh(&mut self, a: &Csr) -> Result<(), Self::Error>;
}

impl RefreshPrecond for AmgSolver {
    type Error = RefreshError;

    fn refresh(&mut self, a: &Csr) -> Result<(), RefreshError> {
        AmgSolver::refresh(self, a)
    }
}

/// No-op preconditioner (`M = I`).
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }

    fn apply_batch(&self, r: &MultiVec, z: &mut MultiVec) {
        z.copy_from(r);
    }
}

impl<F> Preconditioner for F
where
    F: Fn(&[f64], &mut [f64]),
{
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self(r, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_copies() {
        let r = vec![1.0, -2.0];
        let mut z = vec![0.0; 2];
        IdentityPrecond.apply(&r, &mut z);
        assert_eq!(z, r);
    }

    #[test]
    fn amg_precond_direct_and_refreshed() {
        use crate::fgmres::{fgmres, FgmresOptions};
        use famg_core::AmgConfig;
        use famg_matgen::{laplace2d, rhs};

        let a = laplace2d(24, 24);
        let b = rhs::ones(a.nrows());
        let cfg = AmgConfig::single_node_paper();
        let mut amg = AmgSolver::setup_refreshable(&a, &cfg);
        let opts = FgmresOptions {
            tolerance: 1e-10,
            ..FgmresOptions::default()
        };

        let mut x = vec![0.0; a.nrows()];
        let res = fgmres(&a, &b, &mut x, &amg, &opts);
        assert!(res.converged, "AMG-preconditioned FGMRES must converge");

        // Refresh on a scaled operator (same pattern, new values) and
        // re-solve through the trait object path.
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 2.0;
        }
        RefreshPrecond::refresh(&mut amg, &a2).unwrap();
        let mut x2 = vec![0.0; a.nrows()];
        let res2 = fgmres(&a2, &b, &mut x2, &amg, &opts);
        assert!(res2.converged);
        // A·x = b and 2A·x₂ = b ⇒ x ≈ 2·x₂.
        for (xi, x2i) in x.iter().zip(&x2) {
            assert!((xi - 2.0 * x2i).abs() < 1e-6, "{xi} vs {x2i}");
        }
    }

    #[test]
    fn closure_impl() {
        let scale = |r: &[f64], z: &mut [f64]| {
            for (zi, ri) in z.iter_mut().zip(r) {
                *zi = 0.5 * ri;
            }
        };
        let mut z = vec![0.0; 2];
        Preconditioner::apply(&scale, &[2.0, 4.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0]);
    }
}

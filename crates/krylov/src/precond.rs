//! Preconditioner abstraction.

/// A (possibly nonlinear / iteration-varying) preconditioner:
/// `apply` computes `z ≈ M⁻¹ r`.
///
/// Implemented for closures so an AMG solver can be plugged in without a
/// dependency cycle:
///
/// ```ignore
/// let pre = |r: &[f64], z: &mut [f64]| amg.apply(r, z);
/// fgmres(&a, &b, &mut x, &pre, &FgmresOptions::default());
/// ```
pub trait Preconditioner {
    /// Computes `z ≈ M⁻¹ r`. `z` arrives zeroed.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// No-op preconditioner (`M = I`).
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

impl<F> Preconditioner for F
where
    F: Fn(&[f64], &mut [f64]),
{
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self(r, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_copies() {
        let r = vec![1.0, -2.0];
        let mut z = vec![0.0; 2];
        IdentityPrecond.apply(&r, &mut z);
        assert_eq!(z, r);
    }

    #[test]
    fn closure_impl() {
        let scale = |r: &[f64], z: &mut [f64]| {
            for (zi, ri) in z.iter_mut().zip(r) {
                *zi = 0.5 * ri;
            }
        };
        let mut z = vec![0.0; 2];
        Preconditioner::apply(&scale, &[2.0, 4.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0]);
    }
}

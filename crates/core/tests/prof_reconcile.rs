//! Timing reconciliation between the span profiler and the derived
//! `PhaseTimes` view (DESIGN.md §8).
//!
//! `PhaseTimes` is no longer measured independently — it is a projection
//! of the span tree — so these tests pin the projection's two contracts:
//! the Fig. 5 buckets can never sum past the root span's wall clock, and
//! the unattributed remainder ("lost" time between child spans) stays
//! negligible. With the `prof` feature off, the same entry points must
//! return zeroed times and an empty profile rather than diverge.

use famg_core::params::AmgConfig;
use famg_core::solver::AmgSolver;
use famg_core::stats::PhaseTimes;
use famg_matgen::{laplace2d, rhs};
use std::time::Duration;

/// Attribution may lose a little self-time to gaps between spans, but
/// only a little: 1% of the root wall plus scheduling noise.
fn assert_covers(total: Duration, wall: Duration, what: &str) {
    assert!(
        total <= wall,
        "{what}: bucket total {total:?} exceeds root span wall {wall:?}"
    );
    let lost = wall.checked_sub(total).unwrap();
    let budget = wall / 100 + Duration::from_micros(200);
    assert!(
        lost <= budget,
        "{what}: {lost:?} of {wall:?} unattributed (budget {budget:?})"
    );
}

#[test]
fn setup_and_solve_times_are_projections_of_the_span_tree() {
    let a = laplace2d(48, 48);
    let cfg = AmgConfig::single_node_paper();
    let solver = AmgSolver::setup(&a, &cfg);
    let h = solver.hierarchy();
    let b = rhs::ones(a.nrows());
    let mut x = vec![0.0; a.nrows()];
    let res = solver.solve(&b, &mut x);
    assert!(res.converged);

    if !famg_prof::enabled() {
        // Feature off: the view and the profile are both empty, never
        // partially populated.
        assert_eq!(h.times.setup_total(), Duration::ZERO);
        assert_eq!(res.times.solve_total(), Duration::ZERO);
        assert!(h.profile.find_root("setup").is_none());
        assert!(res.profile.find_root("solve").is_none());
        return;
    }

    let setup_root = h.profile.find_root("setup").expect("setup span captured");
    assert_covers(h.times.setup_total(), setup_root.wall, "setup");
    // The view must be byte-for-byte re-derivable from the tree.
    let rederived = PhaseTimes::from_span(setup_root);
    assert_eq!(rederived.setup_total(), h.times.setup_total());

    let solve_root = res.profile.find_root("solve").expect("solve span captured");
    assert_covers(res.times.solve_total(), solve_root.wall, "solve");
    assert_eq!(
        PhaseTimes::from_span(solve_root).solve_total(),
        res.times.solve_total()
    );

    // The solve flop counter must be populated and sit on the tree, not
    // on some side channel.
    assert!(res.profile.total_counter("flops") > 0);
    assert_eq!(
        res.profile.total_counter("flops"),
        solve_root.total_counter("flops")
    );
}

#[test]
fn solve_batch_times_are_projections_of_the_span_tree() {
    let a = laplace2d(40, 40);
    let n = a.nrows();
    let cfg = AmgConfig::single_node_paper();
    let solver = AmgSolver::setup(&a, &cfg);
    let cols: Vec<Vec<f64>> = (0..4)
        .map(|j| (0..n).map(|i| ((i + j) % 9) as f64 - 4.0).collect())
        .collect();
    let b = famg_sparse::MultiVec::from_columns(&cols);
    let mut x = famg_sparse::MultiVec::new(n, 4);
    let res = solver.solve_batch(&b, &mut x);
    assert!(res.all_converged());

    if !famg_prof::enabled() {
        assert_eq!(res.times.solve_total(), Duration::ZERO);
        assert!(res.profile.find_root("solve").is_none());
        return;
    }

    let root = res.profile.find_root("solve").expect("solve span captured");
    assert_covers(res.times.solve_total(), root.wall, "solve_batch");
    assert_eq!(
        PhaseTimes::from_span(root).solve_total(),
        res.times.solve_total()
    );
    // Batched kernels report their k-scaled flops onto the same tree:
    // a k=4 batch must count at least 4x one scalar V-cycle's work.
    assert!(res.profile.total_counter("flops") > 0);
    assert_eq!(
        res.profile.total_counter("flops"),
        root.total_counter("flops")
    );
    // The batched smoother and SpMM windows classify into the Fig. 5
    // buckets (gs_batch -> smoothing, spmm -> SpMV) rather than
    // vanishing into "other".
    let mut solo_x = vec![0.0; n];
    let solo = solver.solve(&cols[0], &mut solo_x);
    let solo_root = solo.profile.find_root("solve").expect("solo span");
    assert!(solo_root.total_counter("flops") > 0);
    assert!(
        res.profile.total_counter("flops") >= 4 * solo_root.total_counter("flops"),
        "batch flops {} < 4x solo flops {}",
        res.profile.total_counter("flops"),
        solo_root.total_counter("flops")
    );
}

#[test]
fn refresh_times_are_projections_of_the_refresh_span() {
    let a = laplace2d(32, 32);
    let cfg = AmgConfig::single_node_paper();
    let mut solver = AmgSolver::setup_refreshable(&a, &cfg);
    // Same-pattern numeric drift.
    let drifted = {
        let mut m = a.clone();
        for v in m.values_mut() {
            *v *= 1.0 + 1e-6;
        }
        m
    };
    solver.refresh(&drifted).expect("same-pattern refresh");
    let h = solver.hierarchy();

    if !famg_prof::enabled() {
        assert_eq!(h.times.setup_total(), Duration::ZERO);
        return;
    }
    let root = h
        .profile
        .find_root("refresh")
        .expect("refresh span captured");
    assert_covers(h.times.setup_total(), root.wall, "refresh");
}

#[cfg(not(feature = "prof"))]
#[test]
fn disabled_profiler_is_compiled_out() {
    // The guard types are zero-sized and take() observes nothing, so the
    // instrumented solve path carries no collection state at all.
    assert!(!famg_prof::enabled());
    assert_eq!(std::mem::size_of::<famg_prof::Scope>(), 0);
    {
        let _s = famg_prof::scope("anything");
        famg_prof::counter("flops", 123);
    }
    let p = famg_prof::take();
    assert!(p.find_root("anything").is_none());
}

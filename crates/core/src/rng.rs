//! Counter-based parallel random number generation for PMIS (§3.3).
//!
//! The paper replaces HYPRE's sequential RNG with MKL's parallel generator
//! so PMIS weights can be produced in parallel. We use a stateless
//! SplitMix64 keyed on `(seed, index)`: every grid point's random weight
//! is a pure function of its global index, so results are identical for
//! any thread count and any work partitioning — the same property the
//! paper relies on for reproducible coarsening.

/// SplitMix64 finalizer over a 64-bit key.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform `f64` in `[0, 1)` for grid point `index` under `seed`.
#[inline]
pub fn uniform01(seed: u64, index: u64) -> f64 {
    let bits = splitmix64(seed ^ index.wrapping_mul(0xA24BAED4963EE407));
    // 53 high bits -> [0, 1) double.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(uniform01(1, 42), uniform01(1, 42));
        assert_ne!(uniform01(1, 42), uniform01(2, 42));
        assert_ne!(uniform01(1, 42), uniform01(1, 43));
    }

    #[test]
    fn in_unit_interval() {
        for i in 0..10_000u64 {
            let v = uniform01(7, i);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| uniform01(3, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        // No obvious low-bit correlation between consecutive indices.
        let pairs_below = (0..n - 1)
            .filter(|&i| uniform01(3, i) < 0.5 && uniform01(3, i + 1) < 0.5)
            .count() as f64;
        let frac = pairs_below / (n - 1) as f64;
        assert!((frac - 0.25).abs() < 0.02, "pair frac {frac}");
    }

    #[test]
    fn distinct_weights_for_distinct_points() {
        // PMIS tie-breaking assumes weights are distinct almost surely.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(uniform01(11, i).to_bits()));
        }
    }
}

//! V-cycle application (the AMG solve-phase kernel).
//!
//! Per level: pre-smooth (C then F), restrict the residual, recurse with a
//! zero initial guess, prolongate-and-correct, post-smooth (F then C).
//! The coarsest level is solved directly (dense LU) when small enough,
//! otherwise relaxed with extra smoothing sweeps.
//!
//! Optimized-path levels store CF-permuted operators; restriction output
//! is scattered through the child level's permutation and prolongation
//! input gathered back, so each level works entirely in its own stored
//! ordering.

use crate::hierarchy::{Hierarchy, TransferOps};
use crate::smoother::Workspace;
use famg_sparse::counters::flops;
use famg_sparse::spmm::{interp_apply_add_multi, restrict_apply_multi, spmm, spmm_axpby};
use famg_sparse::spmv::{interp_apply_add, restrict_apply, spmv};
use famg_sparse::transpose::transpose_par;
use famg_sparse::{Csr, MultiVec};

/// Reusable per-level buffers for V-cycles.
#[derive(Debug, Default)]
pub struct CycleWorkspace {
    /// Residual per level.
    r: Vec<Vec<f64>>,
    /// Coarse right-hand side per level.
    bc: Vec<Vec<f64>>,
    /// Coarse correction per level.
    xc: Vec<Vec<f64>>,
    /// Scratch for permutation scatter/gather.
    scratch: Vec<Vec<f64>>,
    /// Finest-level permuted right-hand side (solver wrapper scratch —
    /// hoisted here so repeated solves allocate nothing in the hot loop).
    pub(crate) fine_b: Vec<f64>,
    /// Finest-level permuted iterate (solver wrapper scratch).
    pub(crate) fine_x: Vec<f64>,
    /// Finest-level residual for convergence checks (solver scratch).
    pub(crate) fine_r: Vec<f64>,
    /// Smoother workspace shared across levels.
    pub smoother_ws: Workspace,
}

impl CycleWorkspace {
    /// Allocates buffers sized for `h`.
    pub fn for_hierarchy(h: &Hierarchy) -> Self {
        let mut ws = CycleWorkspace::default();
        for l in &h.levels {
            let n = l.a.nrows();
            let nc = l.nc;
            ws.r.push(vec![0.0; n]);
            ws.bc.push(vec![0.0; nc]);
            ws.xc.push(vec![0.0; nc]);
            ws.scratch.push(vec![0.0; n.max(nc)]);
        }
        let n = h.n();
        ws.fine_b = vec![0.0; n];
        ws.fine_x = vec![0.0; n];
        ws.fine_r = vec![0.0; n];
        ws
    }
}

/// Applies one V-cycle: `x <- Vcycle(b, x)` at the finest stored level.
///
/// `x` and `b` are in the finest level's *stored* ordering (the solver
/// wrapper handles the external permutation). Timing is recorded through
/// `famg-prof` spans (one `"vcycle"` span per level visit, with
/// smooth/residual/restrict/prolong/coarse sub-spans); the solver
/// wrapper derives the Fig. 5 buckets from the captured tree.
pub fn vcycle(h: &Hierarchy, b: &[f64], x: &mut [f64], ws: &mut CycleWorkspace) {
    cycle_level(h, 0, b, x, ws, false, h.config.cycle);
}

#[allow(clippy::too_many_arguments)]
fn cycle_level(
    h: &Hierarchy,
    level: usize,
    b: &[f64],
    x: &mut [f64],
    ws: &mut CycleWorkspace,
    x_is_zero: bool,
    kind: crate::params::CycleKind,
) {
    let _lvl_span = famg_prof::scope_at("vcycle", level);
    let lvl = &h.levels[level];
    let a = &lvl.a;
    let n = a.nrows();
    debug_assert_eq!(b.len(), n);
    debug_assert_eq!(x.len(), n);

    // Coarsest level: direct solve or heavy smoothing. `ops == None` *is*
    // the coarsest-level marker, so destructuring here leaves no unwrap
    // on the non-coarsest path below — a malformed hierarchy (transfer
    // ops missing mid-hierarchy) is rejected up front by
    // `Hierarchy::check_shape` in the public solve entry points.
    let Some(ops) = lvl.ops.as_ref() else {
        let _s = famg_prof::scope_at("coarse_solve", level);
        if let Some(lu) = &h.coarse_lu {
            famg_prof::counter("flops", flops::lu_solve(n));
            let sol = lu.solve(b);
            x.copy_from_slice(&sol);
        } else {
            famg_prof::counter(
                "flops",
                flops::gs_sweep(a.nnz()) * (4 * h.config.num_sweeps) as u64,
            );
            for s in 0..4 * h.config.num_sweeps {
                lvl.smoother
                    .pre_smooth(a, b, x, &mut ws.smoother_ws, x_is_zero && s == 0);
            }
        }
        return;
    };

    // Pre-smoothing: C then F.
    {
        let _s = famg_prof::scope_at("smooth", level);
        famg_prof::counter(
            "flops",
            flops::gs_sweep(a.nnz()) * h.config.num_sweeps as u64,
        );
        for s in 0..h.config.num_sweeps {
            lvl.smoother
                .pre_smooth(a, b, x, &mut ws.smoother_ws, x_is_zero && s == 0);
        }
    }

    // Residual.
    {
        let _s = famg_prof::scope_at("residual", level);
        famg_prof::counter("flops", flops::spmv(a.nnz()) + n as u64);
        // Split borrows: take the residual buffer out to appease aliasing.
        let mut r = std::mem::take(&mut ws.r[level]);
        spmv(a, x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        ws.r[level] = r;
    }

    // Restrict into the child's stored ordering.
    let nc = lvl.nc;
    let mut bc = std::mem::take(&mut ws.bc[level]);
    {
        let _s = famg_prof::scope_at("restrict", level);
        match ops {
            TransferOps::CfBlock { pft, .. } => {
                famg_prof::counter("flops", flops::spmv(pft.nnz()));
                restrict_apply(pft, nc, &ws.r[level], &mut bc);
            }
            TransferOps::Full { p, r } => {
                famg_prof::counter("flops", flops::spmv(p.nnz()));
                if let Some(rt) = r {
                    spmv(rt, &ws.r[level], &mut bc);
                } else {
                    // Baseline: transpose P on every restriction.
                    let rt = transpose_par(p);
                    spmv(&rt, &ws.r[level], &mut bc);
                }
            }
        }
    }
    // Scatter through the child's permutation, if any.
    let child_perm = h.levels[level + 1].perm.as_ref();
    if let Some(q) = child_perm {
        let _s = famg_prof::scope_at("permute", level);
        let scratch = &mut ws.scratch[level + 1];
        for (j, &v) in bc.iter().enumerate() {
            scratch[q.forward[j]] = v;
        }
        bc.copy_from_slice(&scratch[..nc]);
    }

    // Recurse with zero guess; W/F cycles revisit the coarse level.
    let mut xc = std::mem::take(&mut ws.xc[level]);
    xc.fill(0.0);
    match kind {
        crate::params::CycleKind::V => {
            cycle_level(h, level + 1, &bc, &mut xc, ws, true, kind);
        }
        crate::params::CycleKind::W => {
            cycle_level(h, level + 1, &bc, &mut xc, ws, true, kind);
            cycle_level(h, level + 1, &bc, &mut xc, ws, false, kind);
        }
        crate::params::CycleKind::F => {
            // F-cycle: an F-recursion followed by a V-recursion.
            cycle_level(h, level + 1, &bc, &mut xc, ws, true, kind);
            cycle_level(
                h,
                level + 1,
                &bc,
                &mut xc,
                ws,
                false,
                crate::params::CycleKind::V,
            );
        }
    }

    // Gather back out of the child's ordering.
    if let Some(q) = h.levels[level + 1].perm.as_ref() {
        let _s = famg_prof::scope_at("permute", level);
        let scratch = &mut ws.scratch[level + 1];
        scratch[..nc].copy_from_slice(&xc);
        for (j, xj) in xc.iter_mut().enumerate() {
            *xj = scratch[q.forward[j]];
        }
    }

    // Prolongate and correct.
    {
        let _s = famg_prof::scope_at("prolong", level);
        match ops {
            TransferOps::CfBlock { pf, .. } => {
                famg_prof::counter("flops", flops::spmv(pf.nnz()));
                interp_apply_add(pf, nc, &xc, x);
            }
            TransferOps::Full { p, .. } => {
                famg_prof::counter("flops", flops::spmv(p.nnz()) + n as u64);
                add_spmv(p, &xc, x);
            }
        }
    }
    ws.bc[level] = bc;
    ws.xc[level] = xc;

    // Post-smoothing: F then C.
    {
        let _s = famg_prof::scope_at("smooth", level);
        famg_prof::counter(
            "flops",
            flops::gs_sweep(a.nnz()) * h.config.num_sweeps as u64,
        );
        for _ in 0..h.config.num_sweeps {
            lvl.smoother.post_smooth(a, b, x, &mut ws.smoother_ws);
        }
    }
}

/// `x += P * xc` for the full-operator (baseline) representation.
fn add_spmv(p: &Csr, xc: &[f64], x: &mut [f64]) {
    famg_sparse::spmv::spmv_axpby(p, 1.0, xc, 1.0, x);
}

/// Reusable per-level block-vector buffers for batched V-cycles (the
/// k-wide twin of [`CycleWorkspace`], sized for one batch width).
#[derive(Debug)]
pub struct BatchCycleWorkspace {
    /// Batch width the buffers are sized for.
    k: usize,
    /// Residual per level.
    r: Vec<MultiVec>,
    /// Coarse right-hand side per level.
    bc: Vec<MultiVec>,
    /// Coarse correction per level.
    xc: Vec<MultiVec>,
    /// Scratch for permutation scatter/gather.
    scratch: Vec<MultiVec>,
    /// Finest-level permuted right-hand sides (solver wrapper scratch).
    pub(crate) fine_b: MultiVec,
    /// Finest-level permuted iterates (solver wrapper scratch).
    pub(crate) fine_x: MultiVec,
    /// Finest-level residuals for convergence checks (solver scratch).
    pub(crate) fine_r: MultiVec,
    /// Smoother workspace shared across levels.
    pub smoother_ws: Workspace,
}

impl BatchCycleWorkspace {
    /// Allocates buffers sized for `h` at batch width `k`.
    pub fn for_hierarchy(h: &Hierarchy, k: usize) -> Self {
        let mut ws = BatchCycleWorkspace {
            k,
            r: Vec::new(),
            bc: Vec::new(),
            xc: Vec::new(),
            scratch: Vec::new(),
            fine_b: MultiVec::new(h.n(), k),
            fine_x: MultiVec::new(h.n(), k),
            fine_r: MultiVec::new(h.n(), k),
            smoother_ws: Workspace::new(),
        };
        for l in &h.levels {
            let n = l.a.nrows();
            let nc = l.nc;
            ws.r.push(MultiVec::new(n, k));
            ws.bc.push(MultiVec::new(nc, k));
            ws.xc.push(MultiVec::new(nc, k));
            ws.scratch.push(MultiVec::new(n.max(nc), k));
        }
        ws
    }

    /// Batch width the workspace was allocated for.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Applies one k-wide V-cycle: `X <- Vcycle(B, X)` at the finest stored
/// level, advancing all `k` right-hand sides per kernel invocation.
///
/// Column `j` of the result is bitwise identical to [`vcycle`] on the
/// extracted column: every batched kernel preserves the scalar kernel's
/// per-row arithmetic order lane-wise. Spans use the batched kernel names
/// (`"gs_batch"`, `"spmm"`) so profiles distinguish the two paths while
/// the Fig. 5 rollup buckets them with their scalar twins.
pub fn vcycle_batch(h: &Hierarchy, b: &MultiVec, x: &mut MultiVec, ws: &mut BatchCycleWorkspace) {
    cycle_level_batch(h, 0, b, x, ws, false, h.config.cycle);
}

#[allow(clippy::too_many_arguments)]
fn cycle_level_batch(
    h: &Hierarchy,
    level: usize,
    b: &MultiVec,
    x: &mut MultiVec,
    ws: &mut BatchCycleWorkspace,
    x_is_zero: bool,
    kind: crate::params::CycleKind,
) {
    let _lvl_span = famg_prof::scope_at("vcycle", level);
    let lvl = &h.levels[level];
    let a = &lvl.a;
    let n = a.nrows();
    let k = b.k();
    debug_assert_eq!(b.n(), n);
    debug_assert_eq!(x.n(), n);
    debug_assert_eq!(x.k(), k);

    // Coarsest level: direct solve per column or heavy smoothing.
    let Some(ops) = lvl.ops.as_ref() else {
        let _s = famg_prof::scope_at("coarse_solve", level);
        if let Some(lu) = &h.coarse_lu {
            famg_prof::counter("flops", flops::lu_solve(n) * k as u64);
            for j in 0..k {
                let sol = lu.solve(&b.col(j));
                x.set_col(j, &sol);
            }
        } else {
            famg_prof::counter(
                "flops",
                flops::gs_sweep_batch(a.nnz(), k) * (4 * h.config.num_sweeps) as u64,
            );
            for s in 0..4 * h.config.num_sweeps {
                lvl.smoother
                    .pre_smooth_batch(a, b, x, &mut ws.smoother_ws, x_is_zero && s == 0);
            }
        }
        return;
    };

    // Pre-smoothing: C then F, k lanes per row traversal.
    {
        let _s = famg_prof::scope_at("gs_batch", level);
        famg_prof::counter(
            "flops",
            flops::gs_sweep_batch(a.nnz(), k) * h.config.num_sweeps as u64,
        );
        for s in 0..h.config.num_sweeps {
            lvl.smoother
                .pre_smooth_batch(a, b, x, &mut ws.smoother_ws, x_is_zero && s == 0);
        }
    }

    // Residual, all k columns per matrix traversal.
    {
        let _s = famg_prof::scope_at("spmm", level);
        famg_prof::counter("flops", flops::spmm(a.nnz(), k) + (n * k) as u64);
        let mut r = std::mem::take(&mut ws.r[level]);
        spmm(a, x, &mut r);
        for (ri, bi) in r.data_mut().iter_mut().zip(b.data()) {
            *ri = bi - *ri;
        }
        ws.r[level] = r;
    }

    // Restrict into the child's stored ordering.
    let nc = lvl.nc;
    let mut bc = std::mem::take(&mut ws.bc[level]);
    {
        let _s = famg_prof::scope_at("restrict", level);
        match ops {
            TransferOps::CfBlock { pft, .. } => {
                famg_prof::counter("flops", flops::spmm(pft.nnz(), k));
                restrict_apply_multi(pft, nc, &ws.r[level], &mut bc);
            }
            TransferOps::Full { p, r } => {
                famg_prof::counter("flops", flops::spmm(p.nnz(), k));
                if let Some(rt) = r {
                    spmm(rt, &ws.r[level], &mut bc);
                } else {
                    let rt = transpose_par(p);
                    spmm(&rt, &ws.r[level], &mut bc);
                }
            }
        }
    }
    // Scatter through the child's permutation, if any (whole rows move,
    // so each column sees the scalar scatter exactly).
    let child_perm = h.levels[level + 1].perm.as_ref();
    if let Some(q) = child_perm {
        let _s = famg_prof::scope_at("permute", level);
        let scratch = std::mem::take(&mut ws.scratch[level + 1]);
        let mut scratch = scratch;
        {
            let sd = scratch.data_mut();
            let bd = bc.data();
            for (j, &fwd) in q.forward.iter().enumerate() {
                sd[fwd * k..(fwd + 1) * k].copy_from_slice(&bd[j * k..(j + 1) * k]);
            }
        }
        bc.data_mut().copy_from_slice(&scratch.data()[..nc * k]);
        ws.scratch[level + 1] = scratch;
    }

    // Recurse with zero guess; W/F cycles revisit the coarse level.
    let mut xc = std::mem::take(&mut ws.xc[level]);
    xc.fill(0.0);
    match kind {
        crate::params::CycleKind::V => {
            cycle_level_batch(h, level + 1, &bc, &mut xc, ws, true, kind);
        }
        crate::params::CycleKind::W => {
            cycle_level_batch(h, level + 1, &bc, &mut xc, ws, true, kind);
            cycle_level_batch(h, level + 1, &bc, &mut xc, ws, false, kind);
        }
        crate::params::CycleKind::F => {
            cycle_level_batch(h, level + 1, &bc, &mut xc, ws, true, kind);
            cycle_level_batch(
                h,
                level + 1,
                &bc,
                &mut xc,
                ws,
                false,
                crate::params::CycleKind::V,
            );
        }
    }

    // Gather back out of the child's ordering.
    if let Some(q) = h.levels[level + 1].perm.as_ref() {
        let _s = famg_prof::scope_at("permute", level);
        let mut scratch = std::mem::take(&mut ws.scratch[level + 1]);
        scratch.data_mut()[..nc * k].copy_from_slice(xc.data());
        {
            let sd = scratch.data();
            let xd = xc.data_mut();
            for (j, &fwd) in q.forward.iter().enumerate() {
                xd[j * k..(j + 1) * k].copy_from_slice(&sd[fwd * k..(fwd + 1) * k]);
            }
        }
        ws.scratch[level + 1] = scratch;
    }

    // Prolongate and correct.
    {
        let _s = famg_prof::scope_at("prolong", level);
        match ops {
            TransferOps::CfBlock { pf, .. } => {
                famg_prof::counter("flops", flops::spmm(pf.nnz(), k));
                interp_apply_add_multi(pf, nc, &xc, x);
            }
            TransferOps::Full { p, .. } => {
                famg_prof::counter("flops", flops::spmm(p.nnz(), k) + (n * k) as u64);
                spmm_axpby(p, 1.0, &xc, 1.0, x);
            }
        }
    }
    ws.bc[level] = bc;
    ws.xc[level] = xc;

    // Post-smoothing: F then C.
    {
        let _s = famg_prof::scope_at("gs_batch", level);
        famg_prof::counter(
            "flops",
            flops::gs_sweep_batch(a.nnz(), k) * h.config.num_sweeps as u64,
        );
        for _ in 0..h.config.num_sweeps {
            lvl.smoother.post_smooth_batch(a, b, x, &mut ws.smoother_ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::AmgConfig;
    use famg_matgen::{laplace2d, rhs};
    use famg_sparse::spmv::residual_norm_sq;

    fn rel_residual(a: &Csr, b: &[f64], x: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        let rn = residual_norm_sq(a, x, b, &mut r).sqrt();
        let bn = famg_sparse::vecops::norm2(b);
        rn / bn
    }

    /// Runs `cycles` V-cycles handling the finest-level permutation the
    /// way the solver wrapper does; returns relative residuals after each.
    fn run_cycles(a: &Csr, cfg: &AmgConfig, b: &[f64], cycles: usize) -> Vec<f64> {
        let h = Hierarchy::build(a, cfg);
        let (pb, mut px) = match &h.levels[0].perm {
            Some(q) => (q.apply_vec(b), vec![0.0; b.len()]),
            None => (b.to_vec(), vec![0.0; b.len()]),
        };
        let pa = &h.levels[0].a;
        let mut ws = CycleWorkspace::for_hierarchy(&h);
        let mut out = Vec::new();
        for _ in 0..cycles {
            vcycle(&h, &pb, &mut px, &mut ws);
            out.push(rel_residual(pa, &pb, &px));
        }
        out
    }

    #[test]
    fn single_vcycle_reduces_residual_strongly() {
        let a = laplace2d(24, 24);
        let b = rhs::ones(a.nrows());
        for cfg in [
            AmgConfig::single_node_paper(),
            AmgConfig::single_node_baseline(),
        ] {
            let res = run_cycles(&a, &cfg, &b, 1);
            // PMIS + extended+i V(1,1) factors are typically 0.1–0.4.
            assert!(
                res[0] < 0.45,
                "V-cycle left relative residual {} (opt={})",
                res[0],
                cfg.opt.cf_reorder
            );
        }
    }

    #[test]
    fn repeated_vcycles_converge_geometrically() {
        let a = laplace2d(32, 32);
        let b = rhs::random(a.nrows(), 1);
        let res = run_cycles(&a, &AmgConfig::single_node_paper(), &b, 8);
        let mut prev = 1.0f64;
        for &cur in &res {
            assert!(
                cur < 0.55 * prev,
                "convergence factor too weak: {cur}/{prev}"
            );
            prev = cur;
        }
        assert!(prev < 1e-4);
    }

    #[test]
    fn w_and_f_cycles_converge_at_least_as_fast() {
        use crate::params::CycleKind;
        let a = laplace2d(24, 24);
        let b = rhs::ones(a.nrows());
        let res_of = |kind: CycleKind| {
            let cfg = AmgConfig {
                cycle: kind,
                ..AmgConfig::single_node_paper()
            };
            run_cycles(&a, &cfg, &b, 4)
        };
        let v = res_of(CycleKind::V);
        let w = res_of(CycleKind::W);
        let f = res_of(CycleKind::F);
        // Per-cycle, W and F do strictly more coarse work and must not be
        // meaningfully worse than V.
        assert!(w[3] <= v[3] * 1.2, "W {} vs V {}", w[3], v[3]);
        assert!(f[3] <= v[3] * 1.2, "F {} vs V {}", f[3], v[3]);
        assert!(w.iter().all(|&r| r.is_finite()));
    }
}

//! Numeric-refresh setup: rebuilds a hierarchy's values over frozen
//! pattern-derived structure (§3.1.1 taken end-to-end).
//!
//! A full AMG setup makes two kinds of decisions:
//!
//! * **pattern-derived** — strength-graph topology, CF splitting,
//!   interpolation sparsity, the symbolic structure of the Galerkin
//!   products, CF permutations, and smoother task geometry. These depend
//!   only on the operator's sparsity pattern (plus thresholds applied to
//!   its values at freeze time);
//! * **value-derived** — interpolation weights, coarse-operator values,
//!   smoother diagonals, and the coarsest-level factorization.
//!
//! Time-dependent and Newton-type workloads re-solve with the *same
//! pattern* and new values hundreds of times. [`Hierarchy::build_frozen`]
//! captures the pattern-derived half into a [`FrozenSetup`];
//! [`Hierarchy::refresh`] then absorbs a same-pattern operator by
//! re-running only branch-free numeric passes (interpolation weights over
//! the frozen strength/CF inputs, numeric-only RAP into the frozen coarse
//! patterns, smoother extraction) — strength computation, PMIS,
//! permutation construction, and symbolic SpGEMM are skipped entirely.
//!
//! ## Refresh contract
//!
//! * Refresh with the operator the hierarchy was frozen from — or any
//!   same-pattern operator whose values induce the same frozen decisions —
//!   yields a hierarchy bitwise identical to a from-scratch
//!   [`Hierarchy::build`] on that operator.
//! * A mismatched input pattern, or values that drive an interpolation
//!   builder off the frozen sparsity, returns
//!   [`RefreshError::PatternMismatch`] and leaves the hierarchy in its
//!   previous (fully usable) state — never a silently wrong answer. The
//!   refresh is transactional: new levels are assembled on the side and
//!   swapped in only after every level succeeds.
//! * Under the `validate` feature each refresh cross-checks itself
//!   against a from-scratch build and panics if any level drifts beyond
//!   1e-12, catching value changes that silently flip a frozen decision
//!   (e.g. a strength threshold crossing).

use crate::coarsen::Coarsening;
use crate::hierarchy::{build_interp, build_smoother, extract_fine_block};
use crate::hierarchy::{Hierarchy, Level, TransferOps};
use crate::interp::{CfMap, ExtITape};
use crate::params::{AmgConfig, InterpKind};
use crate::stats::PhaseTimes;
use famg_sparse::dense::{DenseMatrix, LuFactor};
use famg_sparse::permute::permute_symmetric;
use famg_sparse::transpose::transpose_par;
use famg_sparse::triple::{
    rap_cf_numeric, rap_cf_numeric_from_parts, rap_row_fused_numeric, rap_scalar_fused_numeric,
};
use famg_sparse::Csr;

/// A frozen value-move: an output pattern plus, for every output
/// nonzero, the source value-array position it copies from.
///
/// The setup phase contains several transforms that only *relocate*
/// values — symmetric permutation, CF block splitting, transposition.
/// Their symbolic side (destination layout) is pattern-derived, so it is
/// captured once by running the original transform over an index-valued
/// matrix ([`index_valued`]); refresh then replays each as a single
/// branch-free gather, bitwise identical to re-running the transform.
#[derive(Debug)]
pub(crate) struct ValueMap {
    /// Output pattern template (values are freeze-time scribble).
    out: Csr,
    /// For each output nnz, the source nnz it copies.
    src: Vec<u32>,
}

impl ValueMap {
    /// Harvests the map from a transform's output over an index-valued
    /// input: each output value *is* the source position it came from.
    pub(crate) fn capture(transformed: Csr) -> ValueMap {
        let src = transformed
            .values()
            .iter()
            .map(|&v| {
                debug_assert_eq!(
                    v,
                    f64::from(v as u32),
                    "not an index-valued transform output"
                );
                v as u32
            })
            .collect();
        ValueMap {
            out: transformed,
            src,
        }
    }

    /// Replays the move against a new source value array.
    // ALLOC: refresh-path rebuild; the analyzer reaches this only through
    // the name-based over-approximation of `apply` (`cg_with` calls
    // `precond.apply`, which shares the method name). Kept as the
    // documented false-positive example for DESIGN.md §10.
    pub(crate) fn apply(&self, source: &[f64]) -> Csr {
        let values: Vec<f64> = self.src.iter().map(|&k| source[k as usize]).collect();
        Csr::from_parts_unchecked(
            self.out.nrows(),
            self.out.ncols(),
            self.out.rowptr().to_vec(),
            self.out.colidx().to_vec(),
            values,
        )
    }
}

/// A matrix with `pattern`'s sparsity whose k-th stored value is `k` —
/// feed it through a value-moving transform to learn where each value
/// lands (the transform must be arithmetic-free on values).
pub(crate) fn index_valued(pattern: &Csr) -> Csr {
    assert!(
        u32::try_from(pattern.nnz()).is_ok(),
        "value-map capture: nnz exceeds u32"
    );
    Csr::from_parts_unchecked(
        pattern.nrows(),
        pattern.ncols(),
        pattern.rowptr().to_vec(),
        pattern.colidx().to_vec(),
        (0..pattern.nnz()).map(|k| k as f64).collect(),
    )
}

/// Everything pattern-derived about one level, captured at build time.
///
/// `s`, `stage1`, `final_c`, and `cf` are stored in the level's *builder*
/// ordering (CF-permuted on the optimized path), i.e. exactly as the
/// interpolation builders consumed them during the full build.
#[derive(Debug)]
pub struct FrozenLevel {
    /// Strength matrix. Only its pattern is consumed on refresh (the
    /// interpolation builders read `a`'s values directly and `s`'s
    /// pattern only), so the values are freeze-time stale by design.
    pub(crate) s: Csr,
    /// First-stage coarsening for the aggressive schemes.
    pub(crate) stage1: Option<Coarsening>,
    /// Final coarsening.
    pub(crate) final_c: Coarsening,
    /// CF map the interpolation builders were invoked with.
    pub(crate) cf: CfMap,
    /// Frozen interpolation pattern (full `n × nc` form); refresh
    /// verifies the rebuilt operator lands exactly on it.
    pub(crate) p: Csr,
    /// Numeric replay tape for extended+i levels: the builder's
    /// arithmetic circuit recorded at freeze time, so refresh skips the
    /// structure-discovery passes entirely. `None` for other schemes.
    pub(crate) tape: Option<ExtITape>,
    /// CF permutation as a value gather (`current` → `A_perm`);
    /// optimized path only.
    pub(crate) perm_map: Option<ValueMap>,
    /// CF block split as four value gathers (`A_perm` → `A_CC`, `A_CF`,
    /// `A_FC`, `A_FF`); optimized path only.
    pub(crate) cf_maps: Option<[ValueMap; 4]>,
    /// `P_F` transposition as a value gather (`P_F` → `P_Fᵀ`);
    /// optimized path only.
    pub(crate) pft_map: Option<ValueMap>,
    /// Frozen coarse-operator pattern. The values are scratch space for
    /// the numeric RAP kernels (scribbled even on a failed refresh —
    /// harmless, since only the pattern is ever read).
    pub(crate) rap: Csr,
}

/// Pattern-derived setup state captured by [`Hierarchy::build_frozen`].
#[derive(Debug)]
pub struct FrozenSetup {
    /// Finest-level row pointer, for the input-pattern guard.
    pub(crate) fine_rowptr: Vec<usize>,
    /// Finest-level column indices, for the input-pattern guard.
    pub(crate) fine_colidx: Vec<usize>,
    /// Per-level frozen structure (one entry per non-coarsest level).
    pub(crate) levels: Vec<FrozenLevel>,
}

impl FrozenSetup {
    /// True when `a` has exactly the sparsity pattern this setup was
    /// frozen from.
    pub fn matches_pattern(&self, a: &Csr) -> bool {
        a.nrows() == a.ncols()
            && a.rowptr() == &self.fine_rowptr[..]
            && a.colidx() == &self.fine_colidx[..]
    }
}

/// Why a refresh was refused. The hierarchy is untouched in every case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefreshError {
    /// The new operator (level 0) or a rebuilt interpolation operator
    /// (level ≥ 0) does not match the frozen sparsity structure.
    PatternMismatch {
        /// Multigrid level the mismatch was detected on.
        level: usize,
        /// Which artifact mismatched.
        what: &'static str,
    },
    /// The solver was set up without [`Hierarchy::build_frozen`] (no
    /// frozen structure to refresh against).
    NoFrozenSetup,
}

impl std::fmt::Display for RefreshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefreshError::PatternMismatch { level, what } => write!(
                f,
                "refresh pattern mismatch at level {level}: {what} does not \
                 match the frozen structure (rebuild with `setup` instead)"
            ),
            RefreshError::NoFrozenSetup => write!(
                f,
                "no frozen setup captured; use `setup_refreshable` to enable refresh"
            ),
        }
    }
}

impl std::error::Error for RefreshError {}

/// Projects an untruncated interpolation operator onto a frozen truncated
/// pattern, replaying [`crate::interp::truncate_row`]'s row-sum-preserving
/// rescale over the frozen kept set.
///
/// When the new values would have led truncation to the same kept set,
/// this is bitwise identical to truncating from scratch (`sum_before`
/// accumulates the raw row in emit order, `sum_after` the kept entries in
/// frozen order — the exact same additions `truncate_row` performs).
/// When the kept set *would* have drifted, the frozen sparsity wins: the
/// result is still a consistent row-sum-preserving operator, just not the
/// one a from-scratch truncation would pick (the classic frozen-symbolic
/// trade; the `validate` cross-check reports such drift).
fn project_onto_frozen(raw: &Csr, frozen: &Csr) -> Csr {
    let n = frozen.nrows();
    debug_assert_eq!(raw.nrows(), n);
    debug_assert_eq!(raw.ncols(), frozen.ncols());
    let mut values = vec![0.0f64; frozen.nnz()];
    // Row-stamped markers: position of each column in the raw row.
    let mut stamp = vec![usize::MAX; frozen.ncols()];
    let mut pos = vec![0usize; frozen.ncols()];
    for i in 0..n {
        for (k, &c) in raw.row_cols(i).iter().enumerate() {
            stamp[c] = i;
            pos[c] = k;
        }
        let rvals = raw.row_vals(i);
        let sum_before: f64 = rvals.iter().sum();
        let out = &mut values[frozen.row_range(i)];
        let mut sum_after = 0.0f64;
        for (o, &c) in out.iter_mut().zip(frozen.row_cols(i)) {
            // A frozen entry the new weights no longer produce stays as
            // an explicit zero (pattern is frozen by contract).
            *o = if stamp[c] == i { rvals[pos[c]] } else { 0.0 };
            sum_after += *o;
        }
        if sum_after != 0.0 && sum_before != 0.0 {
            let scale = sum_before / sum_after;
            for o in out.iter_mut() {
                *o *= scale;
            }
        }
    }
    Csr::from_parts_unchecked(
        n,
        frozen.ncols(),
        frozen.rowptr().to_vec(),
        frozen.colidx().to_vec(),
        values,
    )
}

/// Rebuilds the interpolation weights for one level over the frozen
/// inputs.
///
/// The single-shot schemes (direct, classical, extended+i) recompute raw
/// weights and project them onto the frozen sparsity — truncation's
/// kept-set selection is itself a frozen pattern decision, so refresh
/// never re-runs it. The composed schemes (multipass, two-stage) truncate
/// *inside* their stages, so they are re-run in full and must land
/// exactly on the frozen pattern; drifting off it is an error.
fn refresh_interp(
    a: &Csr,
    fl: &FrozenLevel,
    level: usize,
    cfg: &AmgConfig,
) -> Result<Csr, RefreshError> {
    let (_, ikind) = cfg.level_scheme(level);
    match ikind {
        InterpKind::Direct | InterpKind::Classical | InterpKind::ExtendedI => {
            let raw = match (ikind, fl.tape.as_ref()) {
                // Extended+i replays its frozen arithmetic circuit — no
                // structure discovery, just indexed loads and flops.
                (InterpKind::ExtendedI, Some(tape)) => tape.replay(a),
                (InterpKind::ExtendedI, None) => crate::interp::extended_i(a, &fl.s, &fl.cf, None),
                (InterpKind::Direct, _) => crate::interp::direct(a, &fl.s, &fl.cf, None),
                _ => crate::interp::classical(a, &fl.s, &fl.cf, None),
            };
            Ok(project_onto_frozen(&raw, &fl.p))
        }
        InterpKind::Multipass | InterpKind::TwoStageExtendedI => {
            let p = build_interp(
                a,
                &fl.s,
                &fl.cf,
                fl.stage1.as_ref(),
                &fl.final_c,
                ikind,
                cfg,
            );
            if p.same_pattern(&fl.p) {
                Ok(p)
            } else {
                Err(RefreshError::PatternMismatch {
                    level,
                    what: "interpolation operator",
                })
            }
        }
    }
}

impl Hierarchy {
    /// Absorbs a same-pattern operator: re-runs only the value-derived
    /// setup stages over `frozen`'s pattern-derived structure. On success
    /// the hierarchy is bitwise identical to `Hierarchy::build(a, cfg)`
    /// whenever `a`'s values induce the same frozen decisions; on error
    /// the hierarchy is left unchanged.
    pub fn refresh(&mut self, a: &Csr, frozen: &mut FrozenSetup) -> Result<(), RefreshError> {
        if !frozen.matches_pattern(a) {
            return Err(RefreshError::PatternMismatch {
                level: 0,
                what: "finest operator",
            });
        }
        if frozen.levels.len() + 1 != self.levels.len() {
            return Err(RefreshError::PatternMismatch {
                level: 0,
                what: "level count",
            });
        }
        let cfg = self.config.clone();
        // Root span: the refresh is a (numeric-only) setup, so its tree
        // reuses the setup span names and buckets into the same Fig. 5
        // categories via `PhaseTimes::from_span`.
        let root_span = famg_prof::scope("refresh");
        let built = self.refresh_levels(a, frozen, &cfg);
        // Close and capture the span tree unconditionally — also on the
        // error path, so a failed refresh cannot leak completed spans
        // into the next capture — and before validate_refresh, whose
        // nested full build captures its own profile and must see a
        // clean span stack.
        drop(root_span);
        let profile = famg_prof::take();
        let (levels, coarse_lu) = built?;
        let times = profile
            .find_root("refresh")
            .map(PhaseTimes::from_span)
            .unwrap_or_default();

        #[cfg(feature = "validate")]
        validate_refresh(&levels, a, &cfg);

        // Commit only now that every level succeeded.
        self.levels = levels;
        self.coarse_lu = coarse_lu;
        self.times = times;
        self.profile = profile;
        Ok(())
    }

    /// The fallible middle of [`Hierarchy::refresh`]: rebuilds every
    /// level's numeric content over the frozen structure. Split out so
    /// the caller can close the root profiler span and drain the
    /// collector on *both* the success and error paths.
    fn refresh_levels(
        &self,
        a: &Csr,
        frozen: &mut FrozenSetup,
        cfg: &AmgConfig,
    ) -> Result<(Vec<Level>, Option<LuFactor>), RefreshError> {
        let mut levels: Vec<Level> = Vec::with_capacity(self.levels.len());
        let mut current: Csr = a.clone();

        for (idx, fl) in frozen.levels.iter_mut().enumerate() {
            let nc = fl.cf.nc;
            if cfg.opt.cf_reorder {
                // --- Optimized path: reuse the frozen permutation. ---
                let reorder_span = famg_prof::scope_at("cf_reorder", idx);
                let perm = self.levels[idx]
                    .perm
                    .clone()
                    .expect("cf_reorder level must carry a permutation");
                let ap = match &fl.perm_map {
                    Some(m) => m.apply(current.values()),
                    None => permute_symmetric(&current, &perm),
                };
                drop(reorder_span);

                let interp_span = famg_prof::scope_at("interp", idx);
                let p_full = refresh_interp(&ap, fl, idx, cfg);
                drop(interp_span);
                let p_full = p_full?;

                let extract_span = famg_prof::scope_at("extract_p", idx);
                let pf = extract_fine_block(&p_full, nc);
                let pft = match &fl.pft_map {
                    Some(m) => m.apply(pf.values()),
                    None => transpose_par(&pf),
                };
                drop(extract_span);

                // --- Numeric-only RAP into the frozen coarse pattern. ---
                let rap_span = famg_prof::scope_at("rap", idx);
                match &fl.cf_maps {
                    Some([mcc, mcf, mfc, mff]) => {
                        let av = ap.values();
                        let (a_cc, a_cf) = (mcc.apply(av), mcf.apply(av));
                        let (a_fc, a_ff) = (mfc.apply(av), mff.apply(av));
                        rap_cf_numeric(&a_cc, &a_cf, &a_fc, &a_ff, &pf, &pft, &mut fl.rap);
                    }
                    None => rap_cf_numeric_from_parts(&ap, nc, &pf, &mut fl.rap),
                }
                drop(rap_span);
                let next = fl.rap.clone();

                let smoother_span = famg_prof::scope_at("smoother_setup", idx);
                let mut ap = ap;
                let smoother = build_smoother(&mut ap, nc, None, cfg);
                drop(smoother_span);

                levels.push(Level {
                    a: ap,
                    perm: Some(perm),
                    nc,
                    ops: Some(TransferOps::CfBlock { pf, pft }),
                    smoother,
                });
                current = next;
            } else {
                // --- Baseline path: original ordering throughout. ---
                let interp_span = famg_prof::scope_at("interp", idx);
                let p = refresh_interp(&current, fl, idx, cfg);
                drop(interp_span);
                let p = p?;

                let rap_span = famg_prof::scope_at("rap", idx);
                let r = transpose_par(&p);
                if cfg.opt.row_fused_rap {
                    rap_row_fused_numeric(&r, &current, &p, &mut fl.rap);
                } else {
                    rap_scalar_fused_numeric(&r, &current, &p, &mut fl.rap);
                }
                drop(rap_span);
                let next = fl.rap.clone();

                let smoother_span = famg_prof::scope_at("smoother_setup", idx);
                let mut cur = current;
                let smoother = build_smoother(&mut cur, nc, Some(&fl.final_c.is_coarse), cfg);
                let r_kept = cfg.opt.keep_transpose.then_some(r);
                drop(smoother_span);

                levels.push(Level {
                    a: cur,
                    perm: None,
                    nc,
                    ops: Some(TransferOps::Full { p, r: r_kept }),
                    smoother,
                });
                current = next;
            }
        }

        // --- Coarsest level: refactor LU over the new values. ---
        let coarse_span = famg_prof::scope_at("coarse", frozen.levels.len());
        let coarse_lu = if current.nrows() <= cfg.coarse_solve_size && current.nrows() > 0 {
            LuFactor::new(&DenseMatrix::from_csr(&current))
        } else {
            None
        };
        let mut cur = current;
        let smoother = build_smoother(&mut cur, 0, None, cfg);
        levels.push(Level {
            a: cur,
            perm: None,
            nc: 0,
            ops: None,
            smoother,
        });
        drop(coarse_span);
        Ok((levels, coarse_lu))
    }
}

/// `validate`-feature cross-check: a refreshed hierarchy must agree with
/// a from-scratch build on the same numeric operator to 1e-12 on every
/// level (same patterns, same values). A failure means the new values
/// silently flipped a frozen pattern decision — the refresh result is
/// still a consistent Galerkin hierarchy, but no longer the one a full
/// setup would produce.
#[cfg(feature = "validate")]
fn validate_refresh(levels: &[Level], a: &Csr, cfg: &AmgConfig) {
    let fresh = Hierarchy::build(a, cfg);
    assert_eq!(
        fresh.levels.len(),
        levels.len(),
        "refresh validation: level count drifted"
    );
    for (lvl, (refreshed, scratch)) in levels.iter().zip(&fresh.levels).enumerate() {
        assert!(
            refreshed.a.same_pattern(&scratch.a),
            "refresh validation: operator pattern drifted at level {lvl}"
        );
        let scale = scratch
            .a
            .values()
            .iter()
            .fold(1.0f64, |m, v| m.max(v.abs()));
        for (x, y) in refreshed.a.values().iter().zip(scratch.a.values()) {
            assert!(
                (x - y).abs() <= 1e-12 * scale,
                "refresh validation: operator values drifted at level {lvl}: {x} vs {y}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use famg_matgen::{laplace2d, varcoef3d_7pt};

    fn fields(nx: usize, ny: usize, nz: usize, shift: f64) -> Vec<f64> {
        // Smooth positive coefficient field. `shift != 0` applies a small
        // multiplicative drift, modelling a time step of a coefficient
        // evolution: values change everywhere, but gently enough that no
        // frozen threshold decision (strength cut, truncation kept-set)
        // flips — the regime the refresh path is built for.
        (0..nx * ny * nz)
            .map(|i| {
                let x = (i % nx) as f64 / nx as f64;
                let t = (i / nx) as f64 / (ny * nz) as f64;
                let base = 1.0 + 0.5 * (6.0 * (x + t)).sin().powi(2);
                base * (1.0 + 1e-5 * shift * (9.0 * (x - t)).cos())
            })
            .collect()
    }

    fn configs() -> Vec<AmgConfig> {
        vec![
            AmgConfig::single_node_paper(),
            AmgConfig::single_node_baseline(),
            AmgConfig::multi_node_mp(),
            AmgConfig::multi_node_2s_ei444(),
        ]
    }

    #[test]
    fn refresh_matches_full_rebuild_bitwise() {
        let (nx, ny, nz) = (12, 12, 8);
        let a1 = varcoef3d_7pt(nx, ny, nz, &fields(nx, ny, nz, 0.0));
        let a2 = varcoef3d_7pt(nx, ny, nz, &fields(nx, ny, nz, 0.35));
        assert!(a1.same_pattern(&a2));
        for cfg in configs() {
            let (mut h, mut frozen) = Hierarchy::build_frozen(&a1, &cfg);
            h.refresh(&a2, &mut frozen).unwrap();
            let full = Hierarchy::build(&a2, &cfg);
            assert_eq!(h.levels.len(), full.levels.len(), "{:?}", cfg.interp);
            for (lvl, (r, f)) in h.levels.iter().zip(&full.levels).enumerate() {
                assert_eq!(
                    r.a, f.a,
                    "operator differs at level {lvl} ({:?})",
                    cfg.interp
                );
                match (r.ops.as_ref(), f.ops.as_ref()) {
                    (None, None) => {}
                    (
                        Some(TransferOps::Full { p: rp, r: rr }),
                        Some(TransferOps::Full { p: fp, r: fr }),
                    ) => {
                        assert_eq!(rp, fp, "P differs at level {lvl}");
                        assert_eq!(rr, fr, "R differs at level {lvl}");
                    }
                    (
                        Some(TransferOps::CfBlock { pf: ra, pft: rb }),
                        Some(TransferOps::CfBlock { pf: fa, pft: fb }),
                    ) => {
                        assert_eq!(ra, fa, "P_F differs at level {lvl}");
                        assert_eq!(rb, fb, "P_Fᵀ differs at level {lvl}");
                    }
                    _ => panic!("transfer representation differs at level {lvl}"),
                }
            }
        }
    }

    #[test]
    fn refresh_with_identical_values_is_identity() {
        let a = laplace2d(32, 32);
        let cfg = AmgConfig::single_node_paper();
        let (mut h, mut frozen) = Hierarchy::build_frozen(&a, &cfg);
        let before: Vec<Csr> = h.levels.iter().map(|l| l.a.clone()).collect();
        h.refresh(&a, &mut frozen).unwrap();
        for (lvl, (now, then)) in h.levels.iter().zip(&before).enumerate() {
            assert_eq!(&now.a, then, "level {lvl}");
        }
    }

    #[test]
    fn mismatched_pattern_is_an_error_and_leaves_state_intact() {
        let a = laplace2d(24, 24);
        let cfg = AmgConfig::single_node_paper();
        let (mut h, mut frozen) = Hierarchy::build_frozen(&a, &cfg);
        let before: Vec<Csr> = h.levels.iter().map(|l| l.a.clone()).collect();
        // Different pattern: a finer grid.
        let other = laplace2d(25, 24);
        let err = h.refresh(&other, &mut frozen).unwrap_err();
        assert!(matches!(
            err,
            RefreshError::PatternMismatch { level: 0, .. }
        ));
        // Same shape, different pattern.
        let diagonal = Csr::identity(24 * 24);
        let err = h.refresh(&diagonal, &mut frozen).unwrap_err();
        assert!(matches!(err, RefreshError::PatternMismatch { .. }));
        for (now, then) in h.levels.iter().zip(&before) {
            assert_eq!(&now.a, then, "failed refresh must not corrupt state");
        }
        // And the hierarchy still refreshes fine afterwards.
        h.refresh(&a, &mut frozen).unwrap();
    }

    #[test]
    fn refresh_covers_all_interp_kinds() {
        let (nx, ny, nz) = (10, 10, 6);
        let a1 = varcoef3d_7pt(nx, ny, nz, &fields(nx, ny, nz, 0.1));
        let a2 = varcoef3d_7pt(nx, ny, nz, &fields(nx, ny, nz, 0.9));
        for ikind in [
            InterpKind::Direct,
            InterpKind::Classical,
            InterpKind::ExtendedI,
        ] {
            let cfg = AmgConfig {
                interp: ikind,
                ..AmgConfig::single_node_paper()
            };
            let (mut h, mut frozen) = Hierarchy::build_frozen(&a1, &cfg);
            h.refresh(&a2, &mut frozen).unwrap();
            let full = Hierarchy::build(&a2, &cfg);
            for (lvl, (r, f)) in h.levels.iter().zip(&full.levels).enumerate() {
                assert_eq!(r.a, f.a, "{ikind:?} level {lvl}");
            }
        }
    }
}

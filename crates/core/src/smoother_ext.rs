//! Extended smoothers from Baker, Falgout, Kolev, Yang, *"Multigrid
//! Smoothers for Ultra-Parallel Computing"* (the paper's reference \[26\]):
//! ℓ1-Jacobi, ℓ1-scaled hybrid Gauss-Seidel, and polynomial (Chebyshev)
//! smoothing.
//!
//! The ℓ1 variants replace the diagonal scaling `1/a_ii` with
//! `1/(a_ii + Σ_{j∉Ω_i} |a_ij|)` where `Ω_i` is the set of columns owned
//! by the same parallel task: the extra ℓ1 term damps the inter-task
//! Jacobi coupling, making the smoother *unconditionally convergent* for
//! SPD matrices regardless of task count — the property that makes them
//! attractive at extreme scale, at the cost of slightly slower smoothing.
//!
//! Chebyshev smoothing needs no snapshot buffer or task structure at all
//! (it is a pure SpMV polynomial), trading an eigenvalue estimate at
//! setup for fully deterministic, reduction-free sweeps.
#![deny(unsafe_op_in_unsafe_fn)]

use famg_sparse::partition::split_rows_by_nnz;
use famg_sparse::spmv::spmv;
use famg_sparse::vecops;
use famg_sparse::Csr;
use rayon::prelude::*;
use std::ops::Range;

/// ℓ1-Jacobi smoother: `x += D_ℓ1⁻¹ (b - A x)` with
/// `(D_ℓ1)_ii = a_ii + Σ_{j ∉ task(i)} |a_ij|`.
#[derive(Debug)]
pub struct L1Jacobi {
    dinv: Vec<f64>,
}

impl L1Jacobi {
    /// Builds the ℓ1 diagonal for the given task decomposition.
    pub fn new(a: &Csr, nthreads: usize) -> Self {
        let ranges = split_rows_by_nnz(a.rowptr(), nthreads.max(1));
        let owner = owner_map(a.nrows(), &ranges);
        let dinv = (0..a.nrows())
            .map(|i| {
                let mut d = 0.0;
                let mut l1 = 0.0;
                for (c, v) in a.row_iter(i) {
                    if c == i {
                        d = v;
                    } else if owner[c] != owner[i] {
                        l1 += v.abs();
                    }
                }
                let dl1 = d + l1;
                assert!(dl1 != 0.0, "zero l1 diagonal in row {i}");
                1.0 / dl1
            })
            .collect();
        L1Jacobi { dinv }
    }

    /// One sweep.
    pub fn sweep(&self, a: &Csr, b: &[f64], x: &mut [f64], temp: &mut Vec<f64>) {
        let n = a.nrows();
        temp.resize(n, 0.0);
        temp.copy_from_slice(x);
        let temp = &temp[..];
        let dinv = &self.dinv;
        x.par_iter_mut()
            .enumerate()
            .with_min_len(512)
            .for_each(|(i, xi)| {
                let mut acc = b[i];
                for (c, v) in a.row_iter(i) {
                    acc -= v * temp[c];
                }
                *xi = temp[i] + dinv[i] * acc;
            });
    }
}

/// ℓ1 hybrid Gauss-Seidel: GS within each task using the ℓ1-augmented
/// diagonal; off-task couplings are both snapshot (Jacobi) *and* damped
/// through the ℓ1 term, giving unconditional SPD convergence.
#[derive(Debug)]
pub struct L1HybridGs {
    dinv: Vec<f64>,
    ranges: Vec<Range<usize>>,
}

impl L1HybridGs {
    /// Builds over `nthreads` contiguous nnz-balanced row blocks.
    pub fn new(a: &Csr, nthreads: usize) -> Self {
        let ranges = split_rows_by_nnz(a.rowptr(), nthreads.max(1));
        let owner = owner_map(a.nrows(), &ranges);
        let dinv = (0..a.nrows())
            .map(|i| {
                let mut d = 0.0;
                let mut l1 = 0.0;
                for (c, v) in a.row_iter(i) {
                    if c == i {
                        d = v;
                    } else if owner[c] != owner[i] {
                        l1 += v.abs();
                    }
                }
                1.0 / (d + l1)
            })
            .collect();
        L1HybridGs { dinv, ranges }
    }

    /// One forward sweep.
    pub fn sweep(&self, a: &Csr, b: &[f64], x: &mut [f64], temp: &mut Vec<f64>) {
        let n = a.nrows();
        temp.resize(n, 0.0);
        temp.copy_from_slice(x);
        let temp = &temp[..];
        struct XPtr(*mut f64);
        // SAFETY: the row ranges are disjoint; each spawned task writes
        // only its own range and reads other ranges from the snapshot.
        unsafe impl Sync for XPtr {}
        let p = XPtr(x.as_mut_ptr());
        let p = &p;
        rayon::scope(|s| {
            for r in &self.ranges {
                let r = r.clone(); // ALLOC: `Range` clone is a stack copy, no heap
                s.spawn(move |_| {
                    // ALLOC: `Range` clone is a stack copy, no heap
                    for i in r.clone() {
                        let mut acc = b[i];
                        for (c, v) in a.row_iter(i) {
                            if c == i {
                                continue;
                            }
                            let xv = if r.contains(&c) {
                                // SAFETY: own contiguous block.
                                unsafe { *p.0.add(c) }
                            } else {
                                temp[c]
                            };
                            acc -= v * xv;
                        }
                        // ℓ1 update keeps the pre-sweep value share:
                        // x_i <- x̃_i + dinv (b - A x)_i evaluated with the
                        // mixed (GS/Jacobi) neighbour values.
                        let diag = 1.0 / self.dinv[i];
                        let a_ii_xi = {
                            // acc currently = b - Σ_{j≠i} a_ij x_j.
                            // Solve (a_ii + l1) x_i = acc + l1 * x̃_i.
                            let l1 = diag - a_diag(a, i);
                            (acc + l1 * temp[i]) * self.dinv[i]
                        };
                        // SAFETY: i is in this task's own range.
                        unsafe { *p.0.add(i) = a_ii_xi };
                    }
                });
            }
        });
    }
}

#[inline]
fn a_diag(a: &Csr, i: usize) -> f64 {
    a.row_iter(i).find(|&(c, _)| c == i).map_or(0.0, |(_, v)| v)
}

fn owner_map(n: usize, ranges: &[Range<usize>]) -> Vec<usize> {
    let mut owner = vec![0usize; n];
    for (t, r) in ranges.iter().enumerate() {
        for o in &mut owner[r.clone()] {
            *o = t;
        }
    }
    owner
}

/// Chebyshev polynomial smoother of the given degree over the interval
/// `[lambda_max / ratio, lambda_max]`.
#[derive(Debug)]
pub struct Chebyshev {
    degree: usize,
    lambda_max: f64,
    lambda_min: f64,
    dinv: Vec<f64>,
}

impl Chebyshev {
    /// Estimates the largest eigenvalue of `D⁻¹A` by power iteration and
    /// builds a degree-`degree` smoother targeting the upper `1/ratio`
    /// of the spectrum (standard choice: ratio = 30).
    pub fn new(a: &Csr, degree: usize, ratio: f64, power_iters: usize) -> Self {
        assert!(degree >= 1 && ratio > 1.0);
        let n = a.nrows();
        let dinv: Vec<f64> = (0..n)
            .map(|i| {
                let d = a_diag(a, i);
                assert!(d != 0.0);
                1.0 / d
            })
            .collect();
        // Power iteration on D⁻¹A with a deterministic start vector.
        let mut v: Vec<f64> = (0..n)
            .map(|i| 1.0 + (crate::rng::uniform01(0xC4EB, i as u64) - 0.5))
            .collect();
        let mut av = vec![0.0; n];
        let mut lambda = 1.0f64;
        for _ in 0..power_iters.max(1) {
            spmv(a, &v, &mut av);
            for (x, di) in av.iter_mut().zip(&dinv) {
                *x *= di;
            }
            let norm = vecops::norm2(&av).max(f64::MIN_POSITIVE);
            lambda = norm / vecops::norm2(&v).max(f64::MIN_POSITIVE);
            std::mem::swap(&mut v, &mut av);
            vecops::scale(1.0 / norm, &mut v);
        }
        // 10% safety margin, as in hypre.
        let lambda_max = 1.1 * lambda;
        Chebyshev {
            degree,
            lambda_max,
            lambda_min: lambda_max / ratio,
            dinv,
        }
    }

    /// Estimated spectral bounds `(lambda_min, lambda_max)` of `D⁻¹A`.
    pub fn bounds(&self) -> (f64, f64) {
        (self.lambda_min, self.lambda_max)
    }

    /// Applies the Chebyshev polynomial in the standard three-term
    /// recurrence form: `x += p(D⁻¹A) D⁻¹ r` with
    /// `ρ_1 = 1/σ_1`, `ρ_k = 1/(2σ_1 - ρ_{k-1})`,
    /// `d_k = ρ_k ρ_{k-1} d_{k-1} + (2ρ_k/δ) r_{k-1}` (hypre's scheme).
    pub fn sweep(&self, a: &Csr, b: &[f64], x: &mut [f64]) {
        let n = a.nrows();
        let theta = 0.5 * (self.lambda_max + self.lambda_min);
        let delta = 0.5 * (self.lambda_max - self.lambda_min);
        let sigma1 = theta / delta;
        // r = D⁻¹ (b - A x)
        // ALLOC: Chebyshev recurrence scratch (r, d, Ad): the smoother is
        // stateless by design, so its three O(n) vectors are per-sweep.
        let mut r = vec![0.0; n];
        spmv(a, x, &mut r);
        for i in 0..n {
            r[i] = (b[i] - r[i]) * self.dinv[i];
        }
        // d_1 = r / theta
        let mut d: Vec<f64> = r.iter().map(|&v| v / theta).collect(); // ALLOC: see above
        let mut rho_prev = 1.0 / sigma1;
        let mut ad = vec![0.0; n]; // ALLOC: see above
        for k in 0..self.degree {
            for (xi, di) in x.iter_mut().zip(&d) {
                *xi += di;
            }
            if k + 1 == self.degree {
                break;
            }
            spmv(a, &d, &mut ad);
            for i in 0..n {
                r[i] -= ad[i] * self.dinv[i];
            }
            let rho = 1.0 / (2.0 * sigma1 - rho_prev);
            for i in 0..n {
                d[i] = rho * rho_prev * d[i] + 2.0 * rho / delta * r[i];
            }
            rho_prev = rho;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use famg_matgen::{laplace2d, rhs};
    use famg_sparse::spmv::residual_norm_sq;

    fn residual(a: &Csr, b: &[f64], x: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        residual_norm_sq(a, x, b, &mut r).sqrt()
    }

    #[test]
    fn l1_jacobi_monotone_on_spd() {
        // The defining property: residual (in the right norm) never
        // diverges even with absurd task counts. Check 2-norm decrease
        // over many sweeps.
        let a = laplace2d(12, 12);
        let b = rhs::ones(a.nrows());
        let sm = L1Jacobi::new(&a, 64);
        let mut x = vec![0.0; a.nrows()];
        let mut temp = Vec::new();
        let r0 = residual(&a, &b, &x);
        let mut prev = r0;
        for _ in 0..80 {
            sm.sweep(&a, &b, &mut x, &mut temp);
            let cur = residual(&a, &b, &x);
            assert!(cur <= prev * (1.0 + 1e-10), "diverged: {prev} -> {cur}");
            prev = cur;
        }
        assert!(prev < 0.5 * r0);
    }

    #[test]
    fn l1_dinv_augmented_only_across_tasks() {
        let a = laplace2d(8, 8);
        // One task: ℓ1 term vanishes, dinv = plain 1/a_ii.
        let one = L1Jacobi::new(&a, 1);
        for (i, &d) in one.dinv.iter().enumerate() {
            assert!((d - 1.0 / a.diag(i)).abs() < 1e-15);
        }
        // Many tasks: boundary rows get a strictly smaller dinv.
        let many = L1Jacobi::new(&a, 8);
        assert!(many.dinv.iter().zip(&one.dinv).any(|(m, o)| m < o));
        assert!(many.dinv.iter().zip(&one.dinv).all(|(m, o)| m <= o));
    }

    #[test]
    fn l1_hybrid_gs_converges_with_many_tasks() {
        let a = laplace2d(10, 10);
        let b = rhs::ones(a.nrows());
        let sm = L1HybridGs::new(&a, 16);
        let mut x = vec![0.0; a.nrows()];
        let mut temp = Vec::new();
        let r0 = residual(&a, &b, &x);
        for _ in 0..60 {
            sm.sweep(&a, &b, &mut x, &mut temp);
        }
        assert!(residual(&a, &b, &x) < 0.3 * r0);
    }

    #[test]
    fn l1_hybrid_single_task_reduces_like_gs() {
        let a = laplace2d(8, 8);
        let b = rhs::random(a.nrows(), 3);
        let sm = L1HybridGs::new(&a, 1);
        let mut x = vec![0.0; a.nrows()];
        let mut temp = Vec::new();
        // With one task the l1 term vanishes and the sweep IS plain GS.
        let mut x_ref = vec![0.0; a.nrows()];
        crate::smoother::gauss_seidel_seq(&a, &b, &mut x_ref);
        sm.sweep(&a, &b, &mut x, &mut temp);
        for (u, v) in x.iter().zip(&x_ref) {
            assert!((u - v).abs() < 1e-13);
        }
    }

    #[test]
    fn chebyshev_estimates_reasonable_spectrum() {
        // D⁻¹A of the 5-point Laplacian has eigenvalues in (0, 2).
        let a = laplace2d(16, 16);
        let ch = Chebyshev::new(&a, 2, 30.0, 30);
        let (lo, hi) = ch.bounds();
        assert!(hi > 1.5 && hi < 2.3, "lambda_max {hi}");
        assert!(lo > 0.0 && lo < hi);
    }

    #[test]
    fn chebyshev_smooths_effectively() {
        let a = laplace2d(12, 12);
        let b = rhs::ones(a.nrows());
        let ch = Chebyshev::new(&a, 3, 30.0, 20);
        let mut x = vec![0.0; a.nrows()];
        let r0 = residual(&a, &b, &x);
        for _ in 0..15 {
            ch.sweep(&a, &b, &mut x);
        }
        assert!(residual(&a, &b, &x) < 0.3 * r0);
    }

    #[test]
    fn chebyshev_deterministic() {
        let a = laplace2d(10, 10);
        let b = rhs::ones(a.nrows());
        let ch1 = Chebyshev::new(&a, 2, 30.0, 10);
        let ch2 = Chebyshev::new(&a, 2, 30.0, 10);
        let mut x1 = vec![0.0; a.nrows()];
        let mut x2 = vec![0.0; a.nrows()];
        ch1.sweep(&a, &b, &mut x1);
        ch2.sweep(&a, &b, &mut x2);
        assert_eq!(x1, x2);
    }
}

//! Extended+i (distance-2) interpolation — Eq. 1 of the paper
//! (De Sterck, Falgout, Nolting, Yang 2008).
//!
//! Each F-point `i` interpolates from
//! `Ĉ_i = C_i^s ∪ ⋃_{j∈F_i^s} C_j^s` — its strong coarse neighbours plus
//! the strong coarse neighbours of its strong *fine* neighbours:
//!
//! ```text
//! w_ij = -(1/ã_ii) (a_ij + Σ_{k∈F_i^s} a_ik ā_kj / b_ik),   j ∈ Ĉ_i
//! ã_ii = a_ii + Σ_{n∈N_i^w \ Ĉ_i} a_in + Σ_{k∈F_i^s} a_ik ā_ki / b_ik
//! b_ik = Σ_{l∈Ĉ_i∪{i}} ā_kl,   ā_kl = a_kl when sign(a_kl) ≠ sign(a_kk), else 0
//! ```
//!
//! Like SpGEMM, the construction touches neighbours-of-neighbours, and
//! the output size is unknown a priori; the same chunked assembly used by
//! the one-pass SpGEMM is used here. Truncation is fused into row
//! construction when requested (§3.1.2).

use super::common::{CfMap, TruncParams};
use famg_sparse::partition::split_evenly;
use famg_sparse::Csr;
use rayon::prelude::*;

/// Builds the extended+i interpolation operator (`n × nc`).
///
/// `trunc = Some(p)` applies fused per-row truncation; `None` returns the
/// untruncated operator (the baseline then truncates as a separate pass).
pub fn extended_i(a: &Csr, s: &Csr, cf: &CfMap, trunc: Option<&TruncParams>) -> Csr {
    let n = a.nrows();
    assert_eq!(s.nrows(), n);
    assert_eq!(cf.len(), n);
    if n == 0 {
        return Csr::zero(0, 0);
    }
    let nthreads = famg_sparse::partition::num_threads();
    let blocks = split_evenly(n, nthreads * 4);

    struct Chunk {
        row_nnz: Vec<usize>,
        colidx: Vec<usize>,
        values: Vec<f64>,
    }

    let chunks: Vec<Chunk> = blocks
        .par_iter()
        .map(|range| {
            let mut ch = Chunk {
                row_nnz: Vec::with_capacity(range.len()),
                colidx: Vec::new(),
                values: Vec::new(),
            };
            // Per-thread markers, epoch-stamped by row index.
            let mut chat_row = vec![usize::MAX; n]; // membership stamp
            let mut chat_pos = vec![0usize; n]; // position in chat list
            let mut strong_row = vec![usize::MAX; n]; // S_i membership
            let mut chat: Vec<usize> = Vec::new();
            let mut num: Vec<f64> = Vec::new();
            let mut out_cols: Vec<usize> = Vec::new();
            let mut out_vals: Vec<f64> = Vec::new();

            for i in range.clone() {
                if cf.is_coarse[i] {
                    out_cols.push(cf.cmap[i]);
                    out_vals.push(1.0);
                    ch.row_nnz.push(1);
                    ch.colidx.append(&mut out_cols);
                    ch.values.append(&mut out_vals);
                    continue;
                }
                chat.clear();
                num.clear();
                // --- Step 1: mark S_i and build Ĉ_i. ---
                for &j in s.row_cols(i) {
                    strong_row[j] = i;
                }
                let add_chat = |c: usize,
                                chat: &mut Vec<usize>,
                                num: &mut Vec<f64>,
                                chat_row: &mut [usize],
                                chat_pos: &mut [usize]| {
                    if chat_row[c] != i {
                        chat_row[c] = i;
                        chat_pos[c] = chat.len();
                        chat.push(c);
                        num.push(0.0);
                    }
                };
                for &j in s.row_cols(i) {
                    if cf.is_coarse[j] {
                        add_chat(j, &mut chat, &mut num, &mut chat_row, &mut chat_pos);
                    } else {
                        for &k in s.row_cols(j) {
                            if cf.is_coarse[k] {
                                add_chat(k, &mut chat, &mut num, &mut chat_row, &mut chat_pos);
                            }
                        }
                    }
                }
                if chat.is_empty() {
                    // No interpolatory set: empty row, smoother-only point.
                    ch.row_nnz.push(0);
                    continue;
                }
                // --- Steps 2–4: diagonal, numerators, distribution. ---
                let mut atilde = 0.0f64;
                // First pass over A_i: diagonal, weak lumping, direct
                // numerator contributions.
                for (j, v) in a.row_iter(i) {
                    if j == i {
                        atilde += v;
                    } else if chat_row[j] == i {
                        num[chat_pos[j]] += v;
                    } else if strong_row[j] != i {
                        // Weak neighbour outside Ĉ_i: lump into diagonal.
                        atilde += v;
                    }
                    // Strong fine neighbours handled below; strong coarse
                    // neighbours are in Ĉ_i (handled above).
                }
                // Distribution through strong fine neighbours.
                for (k, aik) in a.row_iter(i) {
                    if k == i || strong_row[k] != i || cf.is_coarse[k] {
                        continue;
                    }
                    let akk = a.diag(k);
                    // b_ik and ā_ki in one sweep of row k.
                    let mut bik = 0.0f64;
                    let mut abar_ki = 0.0f64;
                    for (l, v) in a.row_iter(k) {
                        if v * akk < 0.0 {
                            if l == i {
                                bik += v;
                                abar_ki = v;
                            } else if chat_row[l] == i {
                                bik += v;
                            }
                        }
                    }
                    if bik == 0.0 {
                        // Nothing to distribute to: lump a_ik (HYPRE's
                        // guard against zero denominators).
                        atilde += aik;
                        continue;
                    }
                    let coef = aik / bik;
                    atilde += coef * abar_ki;
                    for (l, v) in a.row_iter(k) {
                        if l != i && v * akk < 0.0 && chat_row[l] == i {
                            num[chat_pos[l]] += coef * v;
                        }
                    }
                }
                if atilde == 0.0 {
                    ch.row_nnz.push(0);
                    continue;
                }
                // --- Step 5: weights. ---
                for (pos, &c) in chat.iter().enumerate() {
                    let w = -num[pos] / atilde;
                    if w != 0.0 {
                        out_cols.push(cf.cmap[c]);
                        out_vals.push(w);
                    }
                }
                if let Some(t) = trunc {
                    super::common::truncate_row(&mut out_cols, &mut out_vals, t);
                }
                ch.row_nnz.push(out_cols.len());
                ch.colidx.append(&mut out_cols);
                ch.values.append(&mut out_vals);
            }
            ch
        })
        .collect();

    // Stitch chunks.
    let mut rowptr = vec![0usize; n + 1];
    let mut idx = 0usize;
    let mut acc = 0usize;
    for c in &chunks {
        for &k in &c.row_nnz {
            rowptr[idx] = acc;
            acc += k;
            idx += 1;
        }
    }
    rowptr[n] = acc;
    let mut colidx = vec![0usize; acc];
    let mut values = vec![0.0f64; acc];
    let mut dst = 0usize;
    for c in &chunks {
        colidx[dst..dst + c.colidx.len()].copy_from_slice(&c.colidx);
        values[dst..dst + c.values.len()].copy_from_slice(&c.values);
        dst += c.colidx.len();
    }
    Csr::from_parts_unchecked(n, cf.nc, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::pmis;
    use crate::strength::strength;
    use famg_matgen::{laplace2d, laplace3d_7pt};

    #[test]
    fn hand_computed_1d_example() {
        // 1D tridiag(-1, 2, -1), n = 5, C = {0, 3}.
        // For F-point 1: Ĉ = {0, 3}, b_{1,2} = -2, ã = 1.5,
        // w_0 = 2/3, w_3 = 1/3 (see module docs derivation).
        let mut trips = Vec::new();
        for i in 0..5usize {
            trips.push((i, i, 2.0));
            if i > 0 {
                trips.push((i, i - 1, -1.0));
            }
            if i < 4 {
                trips.push((i, i + 1, -1.0));
            }
        }
        let a = Csr::from_triplets(5, 5, trips);
        let s = strength(&a, 0.25, 10.0);
        let cf = CfMap::new(vec![true, false, false, true, false]);
        let p = extended_i(&a, &s, &cf, None);
        assert_eq!(p.ncols(), 2);
        // Row 1: w(col 0) = 2/3, w(col 1 = point 3) = 1/3.
        assert!((p.get(1, 0).unwrap() - 2.0 / 3.0).abs() < 1e-14);
        assert!((p.get(1, 1).unwrap() - 1.0 / 3.0).abs() < 1e-14);
        // Row 2 (F between 1 and 3): symmetric problem, Ĉ = {0, 3}.
        let w: f64 = p.row_vals(2).iter().sum();
        assert!((w - 1.0).abs() < 1e-12);
        // Coarse rows identity.
        assert_eq!(p.row_cols(0), &[0]);
        assert_eq!(p.row_vals(0), &[1.0]);
        assert_eq!(p.row_cols(3), &[1]);
    }

    fn setup(a: &Csr, seed: u64) -> (Csr, CfMap) {
        let s = strength(a, 0.25, 0.8);
        let c = pmis(&s, seed);
        (s, CfMap::new(c.is_coarse))
    }

    #[test]
    fn constant_preserved_on_interior_rows() {
        let a = laplace2d(15, 15);
        let (s, cf) = setup(&a, 3);
        let p = extended_i(&a, &s, &cf, None);
        for i in 0..a.nrows() {
            let row_sum: f64 = a.row_vals(i).iter().sum();
            if row_sum.abs() < 1e-12 && p.row_nnz(i) > 0 {
                let w: f64 = p.row_vals(i).iter().sum();
                assert!((w - 1.0).abs() < 1e-10, "row {i}: Σw = {w}");
            }
        }
    }

    #[test]
    fn truncated_rows_capped_and_sum_preserved() {
        let a = laplace3d_7pt(8, 8, 8);
        let (s, cf) = setup(&a, 5);
        let t = TruncParams::paper();
        let p = extended_i(&a, &s, &cf, Some(&t));
        for i in 0..a.nrows() {
            if !cf.is_coarse[i] {
                assert!(p.row_nnz(i) <= 4, "row {i} has {} entries", p.row_nnz(i));
            }
        }
    }

    #[test]
    fn fused_truncation_equals_post_truncation() {
        // The optimized (fused) and baseline (separate-pass) truncation
        // must produce identical operators.
        let a = laplace3d_7pt(6, 6, 6);
        let (s, cf) = setup(&a, 7);
        let t = TruncParams::paper();
        let fused = extended_i(&a, &s, &cf, Some(&t));
        let post = super::super::common::truncate_matrix(&extended_i(&a, &s, &cf, None), &t);
        assert_eq!(fused, post);
    }

    #[test]
    fn every_fine_point_with_strong_neighbours_interpolates() {
        let a = laplace2d(20, 20);
        let (s, cf) = setup(&a, 11);
        let p = extended_i(&a, &s, &cf, None);
        for i in 0..a.nrows() {
            if !cf.is_coarse[i] && s.row_nnz(i) > 0 {
                assert!(p.row_nnz(i) > 0, "fine point {i} has empty row");
            }
        }
    }

    #[test]
    fn weights_reference_valid_coarse_columns() {
        let a = laplace2d(13, 9);
        let (s, cf) = setup(&a, 13);
        let p = extended_i(&a, &s, &cf, Some(&TruncParams::paper()));
        assert_eq!(p.ncols(), cf.nc);
        assert!(p.no_duplicate_cols());
    }

    #[test]
    fn deterministic_across_calls() {
        let a = laplace3d_7pt(7, 7, 7);
        let (s, cf) = setup(&a, 17);
        let p1 = extended_i(&a, &s, &cf, Some(&TruncParams::paper()));
        let p2 = extended_i(&a, &s, &cf, Some(&TruncParams::paper()));
        assert_eq!(p1, p2);
    }

    #[test]
    fn distance_two_reach() {
        // 1D chain with C = {0, 4}: point 2 has no coarse neighbour at
        // distance one — the extended set must reach {0, 4} through its
        // strong fine neighbours, and by symmetry give weights 1/2, 1/2.
        let mut trips = Vec::new();
        for i in 0..5usize {
            trips.push((i, i, 2.0));
            if i > 0 {
                trips.push((i, i - 1, -1.0));
            }
            if i < 4 {
                trips.push((i, i + 1, -1.0));
            }
        }
        let a = Csr::from_triplets(5, 5, trips);
        let s = strength(&a, 0.25, 10.0);
        let cf = CfMap::new(vec![true, false, false, false, true]);
        assert!(!s.row_cols(2).iter().any(|&j| cf.is_coarse[j]));
        let p = extended_i(&a, &s, &cf, None);
        assert_eq!(p.row_nnz(2), 2, "point 2 must interpolate at distance 2");
        assert!((p.get(2, 0).unwrap() - 0.5).abs() < 1e-12);
        assert!((p.get(2, 1).unwrap() - 0.5).abs() < 1e-12);
    }
}

//! Numeric replay tape for extended+i interpolation.
//!
//! [`extended_i`](super::extended_i) spends most of its time *discovering*
//! structure: marking `S_i`, assembling `Ĉ_i`, scanning neighbour rows for
//! sign-filtered entries. Once the operator pattern is frozen, every one
//! of those decisions is fixed, and the weight computation collapses to a
//! straight-line arithmetic circuit over `A`'s value array. [`ExtITape`]
//! records that circuit at freeze time — for each accumulation the builder
//! performs, the nnz index it reads — and [`ExtITape::replay`] re-executes
//! it against new values with no hashing, no marker stamping, and no
//! per-row allocation.
//!
//! Replay performs the *same additions in the same order* as the builder,
//! so on inputs that induce the same frozen decisions the result is
//! bitwise identical to `extended_i(a, s, cf, None)`. The decisions frozen
//! into the tape (beyond the sparsity pattern itself) are:
//!
//! * the sign filter `ā_kl = a_kl` iff `sign(a_kl) ≠ sign(a_kk)`,
//! * the zero-denominator lump `b_ik == 0`,
//! * the empty-diagonal guard `ã_ii == 0`,
//! * the nonzero-weight emit check `w ≠ 0`.
//!
//! Values that flip any of them produce a consistent-but-different
//! operator (the frozen-symbolic trade documented in
//! [`crate::refresh`]); the `validate` feature's cross-check reports it.

use super::common::CfMap;
use famg_sparse::Csr;

/// One distribution term: `k` is a strong fine neighbour of the row.
///
/// An empty `b_ik` index range encodes the frozen lump decision
/// (`b_ik == 0` at capture): replay adds `a[aik]` straight into the
/// diagonal. Otherwise replay computes `coef = a[aik] / Σ a[bik…]`, adds
/// `coef · a[abar]` to the diagonal, and distributes `coef · a[l]` to the
/// recorded numerator slots.
#[derive(Debug, Clone, Copy)]
struct KOp {
    /// nnz index of `a_ik` in the row of `i`.
    aik: u32,
    /// nnz index of `ā_ki` in row `k` (`u32::MAX` when absent → 0.0).
    abar: u32,
    /// Exclusive end of this op's `b_ik` term indices in `bik_idx`
    /// (start = previous op's end; ops are laid out in replay order).
    bik_end: u32,
    /// Exclusive end of this op's distribution terms in `dist_*`.
    dist_end: u32,
}

/// Frozen numeric circuit of one `extended_i` invocation.
///
/// All index streams are flat, in capture (= replay) order, with per-row
/// boundaries in `*_ptr` arrays; `KOp` sub-streams chain via running
/// cursors. Indices are `u32` — the tape refuses to capture operators
/// with ≥ 2³² nonzeros, far beyond a single node's memory anyway.
#[derive(Debug)]
pub struct ExtITape {
    /// Frozen untruncated operator: pattern plus capture-time values.
    /// Replay clones the values (coarse identity rows keep their 1.0)
    /// and overwrites every fine-row entry.
    raw: Csr,
    /// Numerator slot count (`|Ĉ_i|`) per row.
    nslots: Vec<u32>,
    /// Largest `nslots`, sizing the replay scratch.
    max_slots: usize,
    /// Per-row range into `at_idx` (direct diagonal terms).
    at_ptr: Vec<u32>,
    /// nnz indices summed directly into `ã_ii` (diagonal + weak lumps).
    at_idx: Vec<u32>,
    /// Per-row range into `dn_idx`/`dn_slot` (direct numerator terms).
    dn_ptr: Vec<u32>,
    /// nnz index of each direct `a_ij`, `j ∈ Ĉ_i`.
    dn_idx: Vec<u32>,
    /// Numerator slot the direct term adds into.
    dn_slot: Vec<u32>,
    /// Per-row range into `kops`.
    k_ptr: Vec<u32>,
    kops: Vec<KOp>,
    /// `b_ik` term nnz indices (row-`k` scan order, `l = i` included).
    bik_idx: Vec<u32>,
    /// Distribution term nnz indices (row-`k` scan order, `l ≠ i`).
    dist_idx: Vec<u32>,
    /// Numerator slot each distribution term adds into.
    dist_slot: Vec<u32>,
    /// Per-row range into `em_slot`.
    em_ptr: Vec<u32>,
    /// Slots emitted as weights, in raw-row entry order.
    em_slot: Vec<u32>,
}

fn idx(x: usize) -> u32 {
    u32::try_from(x).expect("extended+i tape: index stream exceeds u32")
}

impl ExtITape {
    /// Runs the extended+i construction once, recording the numeric
    /// circuit. The by-product `raw` operator is bitwise identical to
    /// `extended_i(a, s, cf, None)`.
    pub fn capture(a: &Csr, s: &Csr, cf: &CfMap) -> ExtITape {
        let n = a.nrows();
        assert_eq!(s.nrows(), n);
        assert_eq!(cf.len(), n);
        let mut t = ExtITape {
            raw: Csr::zero(0, 0),
            nslots: Vec::with_capacity(n),
            max_slots: 0,
            at_ptr: vec![0],
            at_idx: Vec::new(),
            dn_ptr: vec![0],
            dn_idx: Vec::new(),
            dn_slot: Vec::new(),
            k_ptr: vec![0],
            kops: Vec::new(),
            bik_idx: Vec::new(),
            dist_idx: Vec::new(),
            dist_slot: Vec::new(),
            em_ptr: vec![0],
            em_slot: Vec::new(),
        };
        let mut rowptr = Vec::with_capacity(n + 1);
        let mut colidx: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        rowptr.push(0);

        // Mirrors the builder's per-row state exactly (same stamp
        // discipline, same traversal order) so the recorded additions
        // replay in the builder's order.
        let mut chat_row = vec![usize::MAX; n];
        let mut chat_pos = vec![0usize; n];
        let mut strong_row = vec![usize::MAX; n];
        let mut chat: Vec<usize> = Vec::new();
        let mut num: Vec<f64> = Vec::new();
        let mut bik_tmp: Vec<u32> = Vec::new();
        let mut dist_tmp: Vec<(u32, u32)> = Vec::new();

        let close_row = |t: &mut ExtITape| {
            t.at_ptr.push(idx(t.at_idx.len()));
            t.dn_ptr.push(idx(t.dn_idx.len()));
            t.k_ptr.push(idx(t.kops.len()));
            t.em_ptr.push(idx(t.em_slot.len()));
        };

        for i in 0..n {
            if cf.is_coarse[i] {
                colidx.push(cf.cmap[i]);
                values.push(1.0);
                rowptr.push(colidx.len());
                t.nslots.push(0);
                close_row(&mut t);
                continue;
            }
            chat.clear();
            num.clear();
            for &j in s.row_cols(i) {
                strong_row[j] = i;
            }
            let add_chat = |c: usize,
                            chat: &mut Vec<usize>,
                            num: &mut Vec<f64>,
                            chat_row: &mut [usize],
                            chat_pos: &mut [usize]| {
                if chat_row[c] != i {
                    chat_row[c] = i;
                    chat_pos[c] = chat.len();
                    chat.push(c);
                    num.push(0.0);
                }
            };
            for &j in s.row_cols(i) {
                if cf.is_coarse[j] {
                    add_chat(j, &mut chat, &mut num, &mut chat_row, &mut chat_pos);
                } else {
                    for &k in s.row_cols(j) {
                        if cf.is_coarse[k] {
                            add_chat(k, &mut chat, &mut num, &mut chat_row, &mut chat_pos);
                        }
                    }
                }
            }
            t.nslots.push(idx(chat.len()));
            t.max_slots = t.max_slots.max(chat.len());
            if chat.is_empty() {
                rowptr.push(colidx.len());
                close_row(&mut t);
                continue;
            }
            let a_row0 = a.row_range(i).start;
            let mut atilde = 0.0f64;
            for (off, (j, v)) in a.row_iter(i).enumerate() {
                if j == i {
                    atilde += v;
                    t.at_idx.push(idx(a_row0 + off));
                } else if chat_row[j] == i {
                    num[chat_pos[j]] += v;
                    t.dn_idx.push(idx(a_row0 + off));
                    t.dn_slot.push(idx(chat_pos[j]));
                } else if strong_row[j] != i {
                    atilde += v;
                    t.at_idx.push(idx(a_row0 + off));
                }
            }
            for (off, (k, aik)) in a.row_iter(i).enumerate() {
                if k == i || strong_row[k] != i || cf.is_coarse[k] {
                    continue;
                }
                let akk = a.diag(k);
                let k_row0 = a.row_range(k).start;
                let mut bik = 0.0f64;
                let mut abar_ki = 0.0f64;
                let mut abar_at = u32::MAX;
                bik_tmp.clear();
                for (koff, (l, v)) in a.row_iter(k).enumerate() {
                    if v * akk < 0.0 {
                        if l == i {
                            bik += v;
                            abar_ki = v;
                            abar_at = idx(k_row0 + koff);
                            bik_tmp.push(idx(k_row0 + koff));
                        } else if chat_row[l] == i {
                            bik += v;
                            bik_tmp.push(idx(k_row0 + koff));
                        }
                    }
                }
                if bik == 0.0 {
                    // Frozen lump decision: empty b_ik range.
                    atilde += aik;
                    t.kops.push(KOp {
                        aik: idx(a_row0 + off),
                        abar: u32::MAX,
                        bik_end: idx(t.bik_idx.len()),
                        dist_end: idx(t.dist_idx.len()),
                    });
                    continue;
                }
                let coef = aik / bik;
                atilde += coef * abar_ki;
                dist_tmp.clear();
                for (koff, (l, v)) in a.row_iter(k).enumerate() {
                    if l != i && v * akk < 0.0 && chat_row[l] == i {
                        num[chat_pos[l]] += coef * v;
                        dist_tmp.push((idx(k_row0 + koff), idx(chat_pos[l])));
                    }
                }
                t.bik_idx.extend_from_slice(&bik_tmp);
                for &(di, ds) in &dist_tmp {
                    t.dist_idx.push(di);
                    t.dist_slot.push(ds);
                }
                t.kops.push(KOp {
                    aik: idx(a_row0 + off),
                    abar: abar_at,
                    bik_end: idx(t.bik_idx.len()),
                    dist_end: idx(t.dist_idx.len()),
                });
            }
            if atilde == 0.0 {
                // Frozen empty-row decision: nothing emitted.
                rowptr.push(colidx.len());
                close_row(&mut t);
                continue;
            }
            for (pos, &c) in chat.iter().enumerate() {
                let w = -num[pos] / atilde;
                if w != 0.0 {
                    colidx.push(cf.cmap[c]);
                    values.push(w);
                    t.em_slot.push(idx(pos));
                }
            }
            rowptr.push(colidx.len());
            close_row(&mut t);
        }
        t.raw = Csr::from_parts_unchecked(n, cf.nc, rowptr, colidx, values);
        t
    }

    /// Re-executes the frozen circuit against `a`'s values. `a` must have
    /// the sparsity pattern the tape was captured from (same nnz layout —
    /// the refresh path's finest-level guard establishes this).
    pub fn replay(&self, a: &Csr) -> Csr {
        let n = self.raw.nrows();
        debug_assert_eq!(a.nrows(), n);
        let av = a.values();
        let mut values = self.raw.values().to_vec();
        let mut num = vec![0.0f64; self.max_slots];
        // Running cursors into the KOp sub-streams.
        let mut cb = 0usize;
        let mut cd = 0usize;
        for i in 0..n {
            let kr = self.k_ptr[i] as usize..self.k_ptr[i + 1] as usize;
            let er = self.em_ptr[i] as usize..self.em_ptr[i + 1] as usize;
            if er.is_empty() {
                // Coarse identity row, empty row, or frozen-dead row:
                // values come from the template; skip the cursors past
                // any recorded (unemitted) work.
                if let Some(last) = self.kops[kr.clone()].last() {
                    cb = last.bik_end as usize;
                    cd = last.dist_end as usize;
                }
                continue;
            }
            for s in &mut num[..self.nslots[i] as usize] {
                *s = 0.0;
            }
            let mut atilde = 0.0f64;
            for &ix in &self.at_idx[self.at_ptr[i] as usize..self.at_ptr[i + 1] as usize] {
                atilde += av[ix as usize];
            }
            let dnr = self.dn_ptr[i] as usize..self.dn_ptr[i + 1] as usize;
            for (&ix, &sl) in self.dn_idx[dnr.clone()].iter().zip(&self.dn_slot[dnr]) {
                num[sl as usize] += av[ix as usize];
            }
            for op in &self.kops[kr] {
                let b0 = cb;
                cb = op.bik_end as usize;
                let d0 = cd;
                cd = op.dist_end as usize;
                if b0 == cb {
                    // Frozen lump.
                    atilde += av[op.aik as usize];
                    continue;
                }
                let mut bik = 0.0f64;
                for &ix in &self.bik_idx[b0..cb] {
                    bik += av[ix as usize];
                }
                let coef = av[op.aik as usize] / bik;
                let abar = if op.abar == u32::MAX {
                    0.0
                } else {
                    av[op.abar as usize]
                };
                atilde += coef * abar;
                for (&ix, &sl) in self.dist_idx[d0..cd].iter().zip(&self.dist_slot[d0..cd]) {
                    num[sl as usize] += coef * av[ix as usize];
                }
            }
            let row0 = self.raw.row_range(i).start;
            for (off, &sl) in self.em_slot[er].iter().enumerate() {
                values[row0 + off] = -num[sl as usize] / atilde;
            }
        }
        Csr::from_parts_unchecked(
            n,
            self.raw.ncols(),
            self.raw.rowptr().to_vec(),
            self.raw.colidx().to_vec(),
            values,
        )
    }

    /// The frozen untruncated operator captured alongside the tape.
    pub fn raw(&self) -> &Csr {
        &self.raw
    }
}

#[cfg(test)]
mod tests {
    use super::super::extended_i;
    use super::*;
    use crate::coarsen::pmis;
    use crate::strength::strength;
    use famg_matgen::{laplace3d_7pt, varcoef3d_7pt};

    fn setup(a: &Csr, seed: u64) -> (Csr, CfMap) {
        let s = strength(a, 0.25, 0.8);
        let c = pmis(&s, seed);
        (s, CfMap::new(c.is_coarse))
    }

    #[test]
    fn capture_byproduct_matches_builder() {
        let a = laplace3d_7pt(9, 8, 7);
        let (s, cf) = setup(&a, 3);
        let tape = ExtITape::capture(&a, &s, &cf);
        assert_eq!(tape.raw(), &extended_i(&a, &s, &cf, None));
    }

    #[test]
    fn replay_on_same_values_is_bitwise_identity() {
        let a = laplace3d_7pt(8, 8, 8);
        let (s, cf) = setup(&a, 5);
        let tape = ExtITape::capture(&a, &s, &cf);
        assert_eq!(tape.replay(&a), extended_i(&a, &s, &cf, None));
    }

    #[test]
    fn replay_tracks_value_drift_bitwise() {
        let (nx, ny, nz) = (9, 9, 6);
        let field: Vec<f64> = (0..nx * ny * nz)
            .map(|i| 1.0 + 0.5 * ((i % 17) as f64 / 17.0))
            .collect();
        let a1 = varcoef3d_7pt(nx, ny, nz, &field);
        let (s, cf) = setup(&a1, 7);
        let tape = ExtITape::capture(&a1, &s, &cf);
        // Small multiplicative drift keeps every frozen sign/zero
        // decision; the replay must equal a fresh build bitwise.
        let drift: Vec<f64> = field
            .iter()
            .enumerate()
            .map(|(i, &k)| k * (1.0 + 1e-5 * ((i % 13) as f64 - 6.0)))
            .collect();
        let a2 = varcoef3d_7pt(nx, ny, nz, &drift);
        assert!(a1.same_pattern(&a2));
        assert_eq!(tape.replay(&a2), extended_i(&a2, &s, &cf, None));
    }
}

//! Direct (distance-1) interpolation.
//!
//! The textbook classical operator: each F-point interpolates from its
//! strong coarse neighbours, with weak/fine connections redistributed by
//! scaling so that row sums of `A` are respected:
//!
//! ```text
//! w_ij = -α_i · a_ij / a_ii,   α_i = Σ_{k∈N_i⁻} a_ik / Σ_{j∈C_i⁻} a_ij
//! ```
//!
//! with negative and positive connections scaled separately (positive
//! off-diagonals, when no positive coarse connection exists, are lumped
//! into the diagonal). Used standalone as the baseline operator and as
//! pass 1 of multipass interpolation.

use super::common::{CfMap, RowBuilder, TruncParams};
use famg_sparse::Csr;

/// Builds the direct interpolation operator (`n × nc`).
pub fn direct(a: &Csr, s: &Csr, cf: &CfMap, trunc: Option<&TruncParams>) -> Csr {
    let n = a.nrows();
    assert_eq!(s.nrows(), n);
    let mut b = RowBuilder::new(n);
    let mut cols: Vec<usize> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    // Strong-neighbour marker: strong[j] == i means j ∈ S_i.
    let mut strong = vec![usize::MAX; n];

    for i in 0..n {
        if cf.is_coarse[i] {
            cols.push(cf.cmap[i]);
            vals.push(1.0);
            b.push_row(&mut cols, &mut vals, None);
            continue;
        }
        for &j in s.row_cols(i) {
            strong[j] = i;
        }
        // Sums of negative / positive connections over all neighbours and
        // over strong coarse neighbours.
        let (mut sn, mut sp, mut cn, mut cp) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut diag = 0.0f64;
        for (k, v) in a.row_iter(i) {
            if k == i {
                diag = v;
                continue;
            }
            if v < 0.0 {
                sn += v;
            } else {
                sp += v;
            }
            if strong[k] == i && cf.is_coarse[k] {
                if v < 0.0 {
                    cn += v;
                } else {
                    cp += v;
                }
            }
        }
        if cn == 0.0 && cp == 0.0 {
            // No strong coarse neighbour: empty row (point is handled by
            // smoothing alone).
            b.push_row(&mut cols, &mut vals, None);
            continue;
        }
        let alpha = if cn != 0.0 { sn / cn } else { 0.0 };
        let beta = if cp != 0.0 { sp / cp } else { 0.0 };
        // Positive connections with no positive coarse target are lumped
        // into the diagonal.
        let dd = if cp == 0.0 { diag + sp } else { diag };
        for (k, v) in a.row_iter(i) {
            if k == i || strong[k] != i || !cf.is_coarse[k] {
                continue;
            }
            let scale = if v < 0.0 { alpha } else { beta };
            if scale != 0.0 {
                cols.push(cf.cmap[k]);
                vals.push(-scale * v / dd);
            }
        }
        b.push_row(&mut cols, &mut vals, trunc);
    }
    b.finish(cf.nc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::pmis;
    use crate::strength::strength;
    use famg_matgen::laplace2d;

    fn setup(nx: usize, ny: usize) -> (Csr, Csr, CfMap) {
        let a = laplace2d(nx, ny);
        let s = strength(&a, 0.25, 0.8);
        let c = pmis(&s, 1);
        let cf = CfMap::new(c.is_coarse);
        (a, s, cf)
    }

    #[test]
    fn coarse_rows_are_identity() {
        let (a, s, cf) = setup(8, 8);
        let p = direct(&a, &s, &cf, None);
        assert_eq!(p.ncols(), cf.nc);
        for i in 0..a.nrows() {
            if cf.is_coarse[i] {
                assert_eq!(p.row_nnz(i), 1);
                assert_eq!(p.row_cols(i), &[cf.cmap[i]]);
                assert_eq!(p.row_vals(i), &[1.0]);
            }
        }
    }

    #[test]
    fn weights_positive_and_bounded_on_laplacian() {
        let (a, s, cf) = setup(10, 10);
        let p = direct(&a, &s, &cf, None);
        for i in 0..a.nrows() {
            for (_, w) in p.row_iter(i) {
                assert!(w > 0.0 && w <= 1.0 + 1e-12, "weight {w} out of range");
            }
        }
    }

    #[test]
    fn interpolates_constant_on_interior() {
        // For zero-row-sum rows (interior), direct interpolation is
        // exact on constants: Σ_j w_ij = 1.
        let (a, s, cf) = setup(12, 12);
        let p = direct(&a, &s, &cf, None);
        for i in 0..a.nrows() {
            let row_sum: f64 = a.row_vals(i).iter().sum();
            if row_sum.abs() < 1e-12 && p.row_nnz(i) > 0 && !cf.is_coarse[i] {
                let w: f64 = p.row_vals(i).iter().sum();
                assert!((w - 1.0).abs() < 1e-10, "row {i}: Σw = {w}");
            }
        }
    }

    #[test]
    fn truncation_caps_row_length() {
        let (a, s, cf) = setup(16, 16);
        let t = TruncParams {
            factor: 0.0,
            max_elements: 2,
        };
        let p = direct(&a, &s, &cf, Some(&t));
        for i in 0..a.nrows() {
            assert!(p.row_nnz(i) <= 2);
        }
    }
}

//! Multipass interpolation (Stüben 1999) — the `mp` scheme of Fig. 6/8.
//!
//! Designed for aggressive coarsening, where many F-points have no coarse
//! point within distance one: F-points adjacent to C-points get direct
//! interpolation (pass 1); every later pass interpolates the F-points
//! whose strong neighbours were assigned in earlier passes by composing
//! their weights. Cheap to build (the paper's fastest setup) but less
//! accurate than 2-stage extended+i.

use super::common::{CfMap, TruncParams};
use famg_sparse::Csr;

/// Builds the multipass interpolation operator (`n × nc`).
pub fn multipass(a: &Csr, s: &Csr, cf: &CfMap, trunc: Option<&TruncParams>) -> Csr {
    let n = a.nrows();
    assert_eq!(s.nrows(), n);
    // Per-row assembled weights (point space): built pass by pass.
    let mut rows: Vec<Option<(Vec<usize>, Vec<f64>)>> = vec![None; n];
    // Pass 0: C-points are identity.
    for i in 0..n {
        if cf.is_coarse[i] {
            rows[i] = Some((vec![cf.cmap[i]], vec![1.0]));
        }
    }
    // Pass 1: F-points with strong coarse neighbours -> direct interp.
    let direct_p = super::direct::direct(a, s, cf, None);
    for i in 0..n {
        if !cf.is_coarse[i] && direct_p.row_nnz(i) > 0 {
            rows[i] = Some((direct_p.row_cols(i).to_vec(), direct_p.row_vals(i).to_vec()));
        }
    }
    // Later passes: compose weights of already-assigned strong neighbours.
    let mut marker = vec![usize::MAX; cf.nc];
    let mut pass = 2usize;
    loop {
        let todo: Vec<usize> = (0..n)
            .filter(|&i| rows[i].is_none() && s.row_cols(i).iter().any(|&j| rows[j].is_some()))
            .collect();
        if todo.is_empty() {
            break;
        }
        // Snapshot which rows are assigned so this pass only reads prior
        // passes (order independence within a pass).
        let assigned: Vec<bool> = rows.iter().map(std::option::Option::is_some).collect();
        let mut new_rows: Vec<(usize, Vec<usize>, Vec<f64>)> = Vec::with_capacity(todo.len());
        for &i in &todo {
            let diag = a.diag(i);
            // Scale so the full row of A is represented by the assigned
            // strong neighbours (direct-interpolation style lumping).
            let all_sum: f64 = a.row_iter(i).filter(|&(c, _)| c != i).map(|(_, v)| v).sum();
            let strong_done_sum: f64 = a
                .row_iter(i)
                .filter(|&(c, _)| c != i && assigned[c] && s.row_cols(i).contains(&c))
                .map(|(_, v)| v)
                .sum();
            if strong_done_sum == 0.0 || diag == 0.0 {
                continue; // try again next pass (or stay empty)
            }
            let alpha = all_sum / strong_done_sum;
            let mut cols: Vec<usize> = Vec::new();
            let mut vals: Vec<f64> = Vec::new();
            for (k, v) in a.row_iter(i) {
                if k == i || !assigned[k] || !s.row_cols(i).contains(&k) {
                    continue;
                }
                let (pc, pv) = rows[k].as_ref().unwrap();
                let coef = -alpha * v / diag;
                for (c, w) in pc.iter().zip(pv) {
                    if marker[*c] == usize::MAX
                        || marker[*c] >= cols.len()
                        || cols[marker[*c]] != *c
                    {
                        marker[*c] = cols.len();
                        cols.push(*c);
                        vals.push(coef * w);
                    } else {
                        vals[marker[*c]] += coef * w;
                    }
                }
            }
            // Reset marker entries used by this row.
            for &c in &cols {
                marker[c] = usize::MAX;
            }
            if !cols.is_empty() {
                new_rows.push((i, cols, vals));
            }
        }
        if new_rows.is_empty() {
            break;
        }
        for (i, cols, vals) in new_rows {
            rows[i] = Some((cols, vals));
        }
        pass += 1;
        if pass > n {
            break; // safety net; cannot happen on finite graphs
        }
    }
    // Assemble, truncating fine rows.
    let mut rowptr = Vec::with_capacity(n + 1);
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    rowptr.push(0);
    let mut tc = Vec::new();
    let mut tv = Vec::new();
    for i in 0..n {
        if let Some((cols, vals)) = &rows[i] {
            tc.clear();
            tv.clear();
            tc.extend_from_slice(cols);
            tv.extend_from_slice(vals);
            if !cf.is_coarse[i] {
                if let Some(t) = trunc {
                    super::common::truncate_row(&mut tc, &mut tv, t);
                }
            }
            colidx.extend_from_slice(&tc);
            values.extend_from_slice(&tv);
        }
        rowptr.push(colidx.len());
    }
    Csr::from_parts_unchecked(n, cf.nc, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::{aggressive_pmis, pmis};
    use crate::strength::strength;
    use famg_matgen::laplace2d;

    fn setup_aggressive(nx: usize, ny: usize, seed: u64) -> (Csr, Csr, CfMap) {
        let a = laplace2d(nx, ny);
        let s = strength(&a, 0.25, 0.8);
        let c = aggressive_pmis(&s, seed);
        let cf = CfMap::new(c.is_coarse);
        (a, s, cf)
    }

    #[test]
    fn covers_distant_fine_points() {
        let (a, s, cf) = setup_aggressive(20, 20, 1);
        let p = multipass(&a, &s, &cf, None);
        // With aggressive coarsening many F-points are 2+ hops from any
        // C-point; multipass must still interpolate them all (points
        // with strong connections, that is).
        for i in 0..a.nrows() {
            if !cf.is_coarse[i] && s.row_nnz(i) > 0 {
                assert!(p.row_nnz(i) > 0, "fine point {i} uncovered");
            }
        }
    }

    #[test]
    fn constant_preserved_exactly_on_neumann_operator() {
        // With all row sums zero (pure Neumann), every interpolation row
        // must sum to exactly 1 — no boundary contamination.
        let a = famg_matgen::laplace2d_neumann(16, 16);
        let s = strength(&a, 0.25, 10.0);
        let c = aggressive_pmis(&s, 3);
        let cf = CfMap::new(c.is_coarse);
        let p = multipass(&a, &s, &cf, None);
        for i in 0..a.nrows() {
            if p.row_nnz(i) > 0 {
                let w: f64 = p.row_vals(i).iter().sum();
                assert!((w - 1.0).abs() < 1e-9, "row {i}: Σw = {w}");
            }
        }
    }

    #[test]
    fn matches_direct_when_coarsening_standard() {
        // With ordinary PMIS, every F-point has a strong C neighbour, so
        // multipass stops after pass 1 and equals direct interpolation.
        let a = laplace2d(12, 12);
        let s = strength(&a, 0.25, 0.8);
        let c = pmis(&s, 5);
        let cf = CfMap::new(c.is_coarse);
        let mp = multipass(&a, &s, &cf, None);
        let d = super::super::direct::direct(&a, &s, &cf, None);
        // Identical where direct has entries (pass-1 rows).
        for i in 0..a.nrows() {
            if d.row_nnz(i) > 0 {
                assert_eq!(mp.row_cols(i), d.row_cols(i), "row {i}");
                for (x, y) in mp.row_vals(i).iter().zip(d.row_vals(i)) {
                    assert!((x - y).abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn truncation_respected() {
        let (a, s, cf) = setup_aggressive(24, 24, 7);
        let t = TruncParams::paper();
        let p = multipass(&a, &s, &cf, Some(&t));
        for i in 0..a.nrows() {
            if !cf.is_coarse[i] {
                assert!(p.row_nnz(i) <= 4);
            }
        }
    }
}

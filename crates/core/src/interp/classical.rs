//! Classical (Ruge–Stüben) distance-1 interpolation, in the modified
//! (sign-aware) form.
//!
//! ```text
//! w_ij = -(1/ã_ii) ( a_ij + Σ_{k∈F_i^s} a_ik · ā_kj / Σ_{m∈C_i} ā_km )
//! ã_ii = a_ii + Σ_{n∈N_i^w} a_in
//! ```
//!
//! with `ā_kl = a_kl` when its sign opposes `a_kk` and `0` otherwise.
//! Strong fine neighbours distribute through the *common* coarse set
//! `C_i`; when a strong fine neighbour shares no coarse point with `i`
//! (which PMIS does not preclude — the reason the paper pairs PMIS with
//! distance-two operators instead), its connection is lumped into the
//! diagonal. Provided as the textbook baseline against extended+i.

use super::common::{CfMap, RowBuilder, TruncParams};
use famg_sparse::Csr;

/// Builds the classical interpolation operator (`n × nc`).
pub fn classical(a: &Csr, s: &Csr, cf: &CfMap, trunc: Option<&TruncParams>) -> Csr {
    let n = a.nrows();
    assert_eq!(s.nrows(), n);
    let mut b = RowBuilder::new(n);
    let mut cols: Vec<usize> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    // Markers stamped by row id.
    let mut strong = vec![usize::MAX; n];
    let mut ci_row = vec![usize::MAX; n]; // C_i membership
    let mut ci_pos = vec![0usize; n];
    let mut num: Vec<f64> = Vec::new();
    let mut ci: Vec<usize> = Vec::new();

    for i in 0..n {
        if cf.is_coarse[i] {
            cols.push(cf.cmap[i]);
            vals.push(1.0);
            b.push_row(&mut cols, &mut vals, None);
            continue;
        }
        for &j in s.row_cols(i) {
            strong[j] = i;
        }
        // C_i = strong coarse neighbours.
        ci.clear();
        num.clear();
        for &j in s.row_cols(i) {
            if cf.is_coarse[j] && ci_row[j] != i {
                ci_row[j] = i;
                ci_pos[j] = ci.len();
                ci.push(j);
                num.push(0.0);
            }
        }
        if ci.is_empty() {
            b.push_row(&mut cols, &mut vals, None);
            continue;
        }
        let mut atilde = 0.0f64;
        for (j, v) in a.row_iter(i) {
            if j == i {
                atilde += v;
            } else if ci_row[j] == i {
                num[ci_pos[j]] += v;
            } else if strong[j] != i {
                atilde += v; // weak neighbour: lumped
            }
            // Strong fine neighbours handled in the distribution loop.
        }
        for (k, aik) in a.row_iter(i) {
            if k == i || strong[k] != i || cf.is_coarse[k] {
                continue;
            }
            let akk = a.diag(k);
            // Denominator: Σ_{m∈C_i} ā_km.
            let mut denom = 0.0f64;
            for (m, v) in a.row_iter(k) {
                if v * akk < 0.0 && ci_row[m] == i {
                    denom += v;
                }
            }
            if denom == 0.0 {
                atilde += aik; // no common coarse point: lump
                continue;
            }
            let coef = aik / denom;
            for (m, v) in a.row_iter(k) {
                if v * akk < 0.0 && ci_row[m] == i {
                    num[ci_pos[m]] += coef * v;
                }
            }
        }
        if atilde == 0.0 {
            b.push_row(&mut cols, &mut vals, None);
            continue;
        }
        for (pos, &j) in ci.iter().enumerate() {
            let w = -num[pos] / atilde;
            if w != 0.0 {
                cols.push(cf.cmap[j]);
                vals.push(w);
            }
        }
        b.push_row(&mut cols, &mut vals, trunc);
    }
    b.finish(cf.nc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::pmis;
    use crate::strength::strength;
    use famg_matgen::{laplace2d, laplace2d_neumann};

    #[test]
    fn hand_computed_1d_alternating() {
        // tridiag(-1, 2, -1), C = {0, 2, 4}: fine point 1 interpolates
        // 1/2 from each coarse neighbour; no strong fine neighbours.
        let mut trips = Vec::new();
        for i in 0..5usize {
            trips.push((i, i, 2.0));
            if i > 0 {
                trips.push((i, i - 1, -1.0));
            }
            if i < 4 {
                trips.push((i, i + 1, -1.0));
            }
        }
        let a = Csr::from_triplets(5, 5, trips);
        let s = strength(&a, 0.25, 10.0);
        let cf = CfMap::new(vec![true, false, true, false, true]);
        let p = classical(&a, &s, &cf, None);
        assert_eq!(p.get(1, 0), Some(0.5));
        assert_eq!(p.get(1, 1), Some(0.5));
        assert_eq!(p.get(3, 1), Some(0.5));
        assert_eq!(p.get(3, 2), Some(0.5));
        // Coarse rows identity.
        assert_eq!(p.row_cols(0), &[0]);
    }

    #[test]
    fn ff_distribution_through_common_coarse() {
        // 2D Laplacian with PMIS: many F-F strong pairs share coarse
        // neighbours; every interpolated row of the zero-row-sum operator
        // must sum to 1.
        let a = laplace2d_neumann(12, 12);
        let s = strength(&a, 0.25, 10.0);
        let c = pmis(&s, 3);
        let cf = CfMap::new(c.is_coarse);
        let p = classical(&a, &s, &cf, None);
        for i in 0..p.nrows() {
            if p.row_nnz(i) > 0 && !cf.is_coarse[i] {
                let w: f64 = p.row_vals(i).iter().sum();
                // Lumping of no-common-coarse neighbours perturbs the row
                // sum; most rows must still be exact.
                assert!(w > 0.2 && w < 1.5, "row {i}: Σw = {w}");
            }
        }
    }

    #[test]
    fn solver_works_with_classical_interp() {
        use crate::params::{AmgConfig, InterpKind};
        use crate::solver::AmgSolver;
        let a = laplace2d(24, 24);
        let cfg = AmgConfig {
            interp: InterpKind::Classical,
            max_iterations: 300,
            ..AmgConfig::single_node_paper()
        };
        let solver = AmgSolver::setup(&a, &cfg);
        let b = famg_matgen::rhs::ones(a.nrows());
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        assert!(
            res.converged,
            "classical interp stalled at {}",
            res.final_relres
        );
    }

    #[test]
    fn extended_i_interpolates_more_points_than_classical() {
        // The paper's motivation: with PMIS, classical (distance-1)
        // leaves the distance-2 fine points uncovered; extended+i covers
        // them.
        let a = laplace2d(25, 25);
        let s = strength(&a, 0.25, 0.8);
        let c = pmis(&s, 19);
        let cf = CfMap::new(c.is_coarse);
        let pc = classical(&a, &s, &cf, None);
        let pe = super::super::extended_i(&a, &s, &cf, None);
        let empty_classical = (0..a.nrows()).filter(|&i| pc.row_nnz(i) == 0).count();
        let empty_extended = (0..a.nrows()).filter(|&i| pe.row_nnz(i) == 0).count();
        assert!(empty_extended <= empty_classical);
    }
}

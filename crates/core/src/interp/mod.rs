//! Interpolation operator construction (§3.1.2).
//!
//! Four operators, matching Tables 3/4:
//!
//! * [`direct`] — textbook direct (distance-1) interpolation,
//! * [`extended_i`] — extended+i distance-2 interpolation (Eq. 1 of the
//!   paper), the single-node default (`ei(4)`),
//! * [`multipass`] — Stüben's multipass interpolation for aggressive
//!   coarsening (`mp`),
//! * [`two_stage_extended_i`] — extended+i composed across the two PMIS
//!   stages of aggressive coarsening with truncation at every stage
//!   (`2s-ei(444)`).
//!
//! Every builder returns a full `n × nc` operator whose coarse rows are
//! identity rows; the optimized solver path permutes points coarse-first
//! so the operator takes the `[I; P_F]` form exploited by the CF-block
//! RAP and the interpolation/restriction SpMVs.

mod classical;
mod common;
mod direct;
mod extended_i;
mod multipass;
mod tape;
mod two_stage;

pub use classical::classical;
pub use common::{truncate_matrix, truncate_row, CfMap, TruncParams};
pub use direct::direct;
pub use extended_i::extended_i;
pub use multipass::multipass;
pub use tape::ExtITape;
pub use two_stage::two_stage_extended_i;

//! Shared interpolation plumbing: CF index maps and truncation.

use famg_sparse::Csr;

/// C/F splitting with the coarse-index map used to number `P`'s columns.
#[derive(Debug, Clone)]
pub struct CfMap {
    /// `true` for C-points.
    pub is_coarse: Vec<bool>,
    /// Point -> coarse column index (`usize::MAX` for F-points).
    pub cmap: Vec<usize>,
    /// Number of C-points.
    pub nc: usize,
}

impl CfMap {
    /// Builds the map; coarse columns are numbered in point order.
    pub fn new(is_coarse: Vec<bool>) -> Self {
        let mut cmap = vec![usize::MAX; is_coarse.len()];
        let mut nc = 0usize;
        for (i, &c) in is_coarse.iter().enumerate() {
            if c {
                cmap[i] = nc;
                nc += 1;
            }
        }
        CfMap {
            is_coarse,
            cmap,
            nc,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.is_coarse.len()
    }

    /// True when there are no points.
    pub fn is_empty(&self) -> bool {
        self.is_coarse.is_empty()
    }
}

/// Interpolation truncation parameters (Table 3: `trunc_fact = 0.1`,
/// `max_elmts = 4`).
#[derive(Debug, Clone, Copy)]
pub struct TruncParams {
    /// Relative magnitude threshold: entries below `factor * max|row|`
    /// are dropped.
    pub factor: f64,
    /// Keep at most this many entries per row (0 = unlimited).
    pub max_elements: usize,
}

impl TruncParams {
    /// The paper's `ei(4)` truncation.
    pub fn paper() -> Self {
        TruncParams {
            factor: 0.1,
            max_elements: 4,
        }
    }

    /// No truncation.
    pub fn none() -> Self {
        TruncParams {
            factor: 0.0,
            max_elements: 0,
        }
    }
}

/// Truncates one interpolation row in place: drops entries below
/// `factor * max|row|`, keeps at most `max_elements` largest-magnitude
/// entries, and rescales the survivors so the row sum is preserved
/// (constant vectors stay exactly interpolated).
pub fn truncate_row(cols: &mut Vec<usize>, vals: &mut Vec<f64>, p: &TruncParams) {
    if cols.is_empty() {
        return;
    }
    let sum_before: f64 = vals.iter().sum();
    let max_abs = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let thr = p.factor * max_abs;
    // Drop below-threshold entries.
    let mut k = 0usize;
    for i in 0..cols.len() {
        if vals[i].abs() >= thr {
            cols[k] = cols[i];
            vals[k] = vals[i];
            k += 1;
        }
    }
    cols.truncate(k);
    vals.truncate(k);
    // Cap to the max_elements largest magnitudes (stable by magnitude
    // then column for determinism).
    if p.max_elements > 0 && cols.len() > p.max_elements {
        let mut order: Vec<usize> = (0..cols.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            vals[b]
                .abs()
                .partial_cmp(&vals[a].abs())
                .unwrap()
                .then(cols[a].cmp(&cols[b]))
        });
        order.truncate(p.max_elements);
        order.sort_unstable(); // restore original relative order
        let new_cols: Vec<usize> = order.iter().map(|&i| cols[i]).collect();
        let new_vals: Vec<f64> = order.iter().map(|&i| vals[i]).collect();
        *cols = new_cols;
        *vals = new_vals;
    }
    // Rescale to preserve the row sum.
    let sum_after: f64 = vals.iter().sum();
    if sum_after != 0.0 && sum_before != 0.0 {
        let scale = sum_before / sum_after;
        for v in vals.iter_mut() {
            *v *= scale;
        }
    }
}

/// Truncates a whole interpolation matrix (the baseline, non-fused path:
/// the operator is materialized first and truncated afterwards).
pub fn truncate_matrix(p: &Csr, params: &TruncParams) -> Csr {
    let n = p.nrows();
    let mut rowptr = Vec::with_capacity(n + 1);
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    rowptr.push(0);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..n {
        cols.clear();
        vals.clear();
        cols.extend_from_slice(p.row_cols(i));
        vals.extend_from_slice(p.row_vals(i));
        truncate_row(&mut cols, &mut vals, params);
        colidx.extend_from_slice(&cols);
        values.extend_from_slice(&vals);
        rowptr.push(colidx.len());
    }
    Csr::from_parts_unchecked(n, p.ncols(), rowptr, colidx, values)
}

/// Shared row-assembly buffer for interpolation builders.
pub(crate) struct RowBuilder {
    pub rowptr: Vec<usize>,
    pub colidx: Vec<usize>,
    pub values: Vec<f64>,
}

impl RowBuilder {
    pub fn new(n: usize) -> Self {
        let mut rowptr = Vec::with_capacity(n + 1);
        rowptr.push(0);
        RowBuilder {
            rowptr,
            colidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Pushes a completed row, optionally truncating it first (the
    /// paper's fused truncation).
    pub fn push_row(
        &mut self,
        cols: &mut Vec<usize>,
        vals: &mut Vec<f64>,
        trunc: Option<&TruncParams>,
    ) {
        if let Some(t) = trunc {
            truncate_row(cols, vals, t);
        }
        self.colidx.extend_from_slice(cols);
        self.values.extend_from_slice(vals);
        self.rowptr.push(self.colidx.len());
        cols.clear();
        vals.clear();
    }

    pub fn finish(self, nc: usize) -> Csr {
        let n = self.rowptr.len() - 1;
        Csr::from_parts_unchecked(n, nc, self.rowptr, self.colidx, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfmap_numbers_coarse_points() {
        let m = CfMap::new(vec![true, false, true, true, false]);
        assert_eq!(m.nc, 3);
        assert_eq!(m.cmap, vec![0, usize::MAX, 1, 2, usize::MAX]);
    }

    #[test]
    fn truncate_drops_small_and_rescales() {
        let mut cols = vec![0, 1, 2, 3];
        let mut vals = vec![0.5, 0.01, 0.3, 0.2]; // sum = 1.01
        truncate_row(
            &mut cols,
            &mut vals,
            &TruncParams {
                factor: 0.1,
                max_elements: 0,
            },
        );
        assert_eq!(cols, vec![0, 2, 3]);
        let sum: f64 = vals.iter().sum();
        assert!((sum - 1.01).abs() < 1e-14);
    }

    #[test]
    fn truncate_caps_max_elements() {
        let mut cols = vec![0, 1, 2, 3, 4, 5];
        let mut vals = vec![0.6, 0.5, 0.4, 0.3, 0.2, 0.1];
        truncate_row(
            &mut cols,
            &mut vals,
            &TruncParams {
                factor: 0.0,
                max_elements: 4,
            },
        );
        assert_eq!(cols, vec![0, 1, 2, 3]);
        let sum: f64 = vals.iter().sum();
        assert!((sum - 2.1).abs() < 1e-12); // original sum preserved
    }

    #[test]
    fn truncate_preserves_negative_weights() {
        let mut cols = vec![0, 1, 2];
        let mut vals = vec![-0.5, -0.4, -0.001];
        truncate_row(&mut cols, &mut vals, &TruncParams::paper());
        assert_eq!(cols, vec![0, 1]);
        let sum: f64 = vals.iter().sum();
        assert!((sum + 0.901).abs() < 1e-12);
    }

    #[test]
    fn truncate_empty_and_none() {
        let mut cols: Vec<usize> = vec![];
        let mut vals: Vec<f64> = vec![];
        truncate_row(&mut cols, &mut vals, &TruncParams::paper());
        assert!(cols.is_empty());

        let mut cols = vec![0, 1];
        let mut vals = vec![0.9, 0.1];
        truncate_row(&mut cols, &mut vals, &TruncParams::none());
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn matrix_truncation_matches_rowwise() {
        let p = Csr::from_triplets(
            2,
            3,
            vec![(0, 0, 0.7), (0, 1, 0.02), (0, 2, 0.3), (1, 1, 1.0)],
        );
        let t = truncate_matrix(&p, &TruncParams::paper());
        assert_eq!(t.row_nnz(0), 2);
        assert_eq!(t.row_nnz(1), 1);
        let sum: f64 = t.row_vals(0).iter().sum();
        assert!((sum - 1.02).abs() < 1e-14);
    }
}

//! Two-stage extended+i interpolation (Yang 2010) — `2s-ei(444)`.
//!
//! Aggressive coarsening is two PMIS stages; this operator composes an
//! extended+i interpolation for each stage:
//!
//! 1. `P1`: fine points → stage-1 C-points (extended+i on `A`),
//! 2. `P2`: stage-1 C-points → final C-points (extended+i on the stage-1
//!    Galerkin operator `A1 = P1ᵀ A P1`),
//! 3. `P = P1 · P2`, truncated.
//!
//! Truncation is applied *at every stage* (the `(444)` in the paper's
//! label: `max_elmts = 4` for stage 1, stage 2, and the product).
//!
//! Note: HYPRE's production implementation assembles the two stages
//! without materializing `A1`; we form `A1` explicitly via the (already
//! optimized) triple product — semantically equivalent, with a setup-time
//! cost consistent with the paper's observation that 2-stage
//! interpolation construction dominates aggressive-coarsening setup.

use super::common::{truncate_matrix, CfMap, TruncParams};
use super::extended_i::extended_i;
use crate::coarsen::Coarsening;
use crate::strength::strength;
use famg_sparse::spgemm::{spgemm_with, SpgemmKernel};
use famg_sparse::transpose::transpose_par;
use famg_sparse::triple::rap_row_fused;
use famg_sparse::Csr;

/// Builds the two-stage extended+i operator (`n × nc_final`).
///
/// `stage1` is the first-pass PMIS splitting, `final_c` the aggressive
/// (second-pass) splitting; `final_c` C-points must be a subset of
/// `stage1` C-points (as produced by
/// [`crate::coarsen::aggressive_pmis_stages`]). `kernel` picks the
/// SpGEMM implementation for the `P1·P2` composition (all kernels give
/// identical results; the hierarchy passes the config-selected one).
#[allow(clippy::too_many_arguments)]
pub fn two_stage_extended_i(
    a: &Csr,
    s: &Csr,
    stage1: &Coarsening,
    final_c: &Coarsening,
    strength_threshold: f64,
    max_row_sum: f64,
    trunc: Option<&TruncParams>,
    kernel: SpgemmKernel,
) -> Csr {
    let n = a.nrows();
    assert_eq!(stage1.is_coarse.len(), n);
    assert_eq!(final_c.is_coarse.len(), n);
    // Stage 1: interpolate everything to the stage-1 C-points.
    let cf1 = CfMap::new(stage1.is_coarse.clone());
    let p1 = extended_i(a, s, &cf1, trunc);
    // Stage-1 Galerkin operator.
    let r1 = transpose_par(&p1);
    let a1 = rap_row_fused(&r1, a, &p1);
    // Stage 2: among stage-1 C-points, interpolate to the final C-points.
    let s1 = strength(&a1, strength_threshold, max_row_sum);
    let is_final_in_stage1: Vec<bool> = (0..n)
        .filter(|&i| stage1.is_coarse[i])
        .map(|i| final_c.is_coarse[i])
        .collect();
    let cf2 = CfMap::new(is_final_in_stage1);
    let p2 = extended_i(&a1, &s1, &cf2, trunc);
    // Compose and truncate the product.
    let p = spgemm_with(kernel, &p1, &p2);
    match trunc {
        Some(t) => truncate_matrix(&p, t),
        None => p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::aggressive_pmis_stages;
    use famg_matgen::laplace2d;

    fn setup(nx: usize, ny: usize, seed: u64) -> (Csr, Csr, Coarsening, Coarsening) {
        let a = laplace2d(nx, ny);
        let s = strength(&a, 0.25, 0.8);
        let (first, fin) = aggressive_pmis_stages(&s, seed);
        (a, s, first, fin)
    }

    #[test]
    fn shape_and_identity_rows() {
        let (a, s, first, fin) = setup(16, 16, 1);
        let p = two_stage_extended_i(&a, &s, &first, &fin, 0.25, 0.8, None, SpgemmKernel::Auto);
        assert_eq!(p.nrows(), a.nrows());
        assert_eq!(p.ncols(), fin.ncoarse);
        // Final C-points interpolate to themselves with weight 1.
        let cmap = CfMap::new(fin.is_coarse.clone());
        for i in 0..a.nrows() {
            if fin.is_coarse[i] {
                assert_eq!(p.get(i, cmap.cmap[i]), Some(1.0), "row {i}");
            }
        }
    }

    #[test]
    fn constant_preserved_exactly_on_neumann_operator() {
        let a = famg_matgen::laplace2d_neumann(20, 20);
        let s = strength(&a, 0.25, 10.0);
        let (first, fin) = aggressive_pmis_stages(&s, 3);
        let p = two_stage_extended_i(&a, &s, &first, &fin, 0.25, 10.0, None, SpgemmKernel::Auto);
        for i in 0..a.nrows() {
            if p.row_nnz(i) > 0 {
                let w: f64 = p.row_vals(i).iter().sum();
                assert!((w - 1.0).abs() < 1e-9, "row {i}: Σw = {w}");
            }
        }
    }

    #[test]
    fn truncation_caps_rows() {
        let (a, s, first, fin) = setup(20, 20, 5);
        let t = TruncParams::paper();
        let p = two_stage_extended_i(
            &a,
            &s,
            &first,
            &fin,
            0.25,
            0.8,
            Some(&t),
            SpgemmKernel::Auto,
        );
        for i in 0..a.nrows() {
            if !fin.is_coarse[i] {
                assert!(p.row_nnz(i) <= 4, "row {i}: {}", p.row_nnz(i));
            }
        }
    }

    #[test]
    fn covers_fine_points_despite_aggressive_coarsening() {
        let (a, s, first, fin) = setup(24, 24, 7);
        let p = two_stage_extended_i(
            &a,
            &s,
            &first,
            &fin,
            0.25,
            0.8,
            Some(&TruncParams::paper()),
            SpgemmKernel::Auto,
        );
        let mut uncovered = 0usize;
        for i in 0..a.nrows() {
            if !fin.is_coarse[i] && s.row_nnz(i) > 0 && p.row_nnz(i) == 0 {
                uncovered += 1;
            }
        }
        // The composition may legitimately drop a handful of boundary
        // points, but the bulk must be covered.
        assert!(
            uncovered * 50 < a.nrows(),
            "{uncovered} of {} uncovered",
            a.nrows()
        );
    }
}

//! # famg-core
//!
//! Classical (BoomerAMG-style) algebraic multigrid, reproducing the solver
//! of Park et al., SC '15, with both the *baseline* (HYPRE 2.10.0b-like)
//! and *optimized* code paths so every speedup in the paper's Fig. 5 can
//! be measured as an ablation:
//!
//! | Paper §                | Baseline twin            | Optimized twin          |
//! |------------------------|--------------------------|-------------------------|
//! | §3.1.1 SpGEMM          | two-pass                 | one-pass chunked        |
//! | §3.1.1 RAP fusion      | scalar fusion (Fig 1b)   | row fusion (Fig 1a)     |
//! | §3.1.1 CF reordering   | full `P` with identity rows interleaved | `P = [I; P_F]` blocks |
//! | §3.1.2 interpolation   | extended+i, post-truncation | extended+i, fused truncation, 3-way row partition |
//! | §3.2 smoothing         | hybrid GS with per-nz branches (Fig 2a) | reordered hybrid GS (Fig 2b) |
//! | §3.2 restriction       | transpose `P` per application | keep `R = Pᵀ` from setup |
//! | §3.3 residual norm     | SpMV then dot            | fused SpMV+dot          |
//!
//! Modules:
//! * [`params`] — solver configuration mirroring the paper's Tables 3/4,
//! * [`strength`] — classical strength-of-connection matrix,
//! * [`coarsen`] — PMIS coarsening (plus aggressive second-pass PMIS),
//! * [`interp`] — interpolation operators: direct, extended+i
//!   (distance-2), multipass, and 2-stage extended+i,
//! * [`reorder`] — CF permutation plumbing and intra-row 3-way partitions,
//! * [`smoother`] — Jacobi, hybrid Gauss-Seidel (baseline + optimized),
//!   lexicographic level-scheduled GS, multicolor GS,
//! * [`hierarchy`] — multigrid level construction (setup phase),
//! * [`refresh`] — numeric-refresh setup over frozen pattern structure
//!   for same-pattern operator sequences,
//! * [`cycle`] — V-cycle application,
//! * [`solver`] — the user-facing [`AmgSolver`] with timing breakdowns.

// Kernels index several parallel arrays in lockstep; indexed loops are
// the clearest expression of that and match the reference implementations.
#![allow(clippy::needless_range_loop)]
pub mod coarsen;
pub mod convergence;
pub mod cycle;
pub mod hierarchy;
pub mod interp;
pub mod params;
pub mod refresh;
pub mod reorder;
pub mod rng;
pub mod smoother;
pub mod smoother_ext;
pub mod solver;
pub mod stats;
pub mod strength;

pub use hierarchy::Hierarchy;
pub use params::{AmgConfig, CoarsenKind, InterpKind, OptFlags, SmootherKind};
pub use refresh::{FrozenSetup, RefreshError};
pub use solver::{AmgSolver, BatchSolveResult, SolveError, SolveResult};
pub use stats::{PhaseTimes, SetupStats};

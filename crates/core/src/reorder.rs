//! CF reordering plumbing (§3.1.2, §3.2).
//!
//! After coarsening, the optimized path renumbers points so C-points
//! precede F-points, permutes the operator symmetrically, and partitions
//! the entries *within* each row:
//!
//! * [`partition_rows_cf_sign`] — the interpolation-construction
//!   partition: `[coarse same-sign-as-diagonal | coarse opposite-sign |
//!   fine]`, computed with a single O(nnz) sweep per row (the paper's
//!   "partial sorting"). Extended+i needs exactly these three classes.
//! * [`partition_rows_gs`] — the smoothing partition of Fig. 2(b):
//!   `[diagonal | own-thread lower | own-thread upper | other-thread]`,
//!   which removes the per-nonzero ownership branch from hybrid GS and
//!   enables the zero-initial-guess skip.
//!
//! Both partitions only reorder entries within rows, so SpMV and any
//! other row-order-insensitive kernel keep working on the same matrix.

use famg_sparse::permute::{cf_permutation, permute_symmetric, Permutation};
use famg_sparse::Csr;
use std::ops::Range;

/// The CF ordering of one level: permutation plus coarse count.
#[derive(Debug, Clone)]
pub struct CfOrdering {
    /// Old-to-new point permutation (coarse first).
    pub perm: Permutation,
    /// Number of coarse points (they occupy `0..nc` after permutation).
    pub nc: usize,
}

/// Builds the CF ordering and the permuted operator in one call.
pub fn cf_reorder(a: &Csr, is_coarse: &[bool]) -> (Csr, CfOrdering) {
    let (perm, nc) = cf_permutation(is_coarse);
    let ap = permute_symmetric(a, &perm);
    (ap, CfOrdering { perm, nc })
}

/// Row-internal partition boundaries produced by
/// [`partition_rows_cf_sign`].
#[derive(Debug, Clone)]
pub struct CfSignPartition {
    /// Start of the coarse opposite-sign segment of each row.
    pub opp_start: Vec<usize>,
    /// Start of the fine segment of each row (= end of opposite-sign).
    pub fine_start: Vec<usize>,
}

/// Partitions each row of a CF-permuted matrix (coarse columns `< nc`)
/// into `[coarse same-sign | coarse opposite-sign | fine]`, where "sign"
/// is relative to the row's diagonal. One O(nnz) sweep per row — the
/// paper's partial sort replacing a full O(n log n) sort.
#[allow(clippy::explicit_counter_loop)] // cursor spans three source buffers
pub fn partition_rows_cf_sign(a: &mut Csr, nc: usize) -> CfSignPartition {
    let n = a.nrows();
    let rowptr = a.rowptr().to_vec();
    let mut opp_start = vec![0usize; n];
    let mut fine_start = vec![0usize; n];
    let diag: Vec<f64> = (0..n).map(|i| a.diag(i)).collect();
    let (colidx, values) = a.colidx_values_mut();
    let mut tmp_c: Vec<(usize, f64)> = Vec::new();
    let mut tmp_o: Vec<(usize, f64)> = Vec::new();
    let mut tmp_f: Vec<(usize, f64)> = Vec::new();
    for i in 0..n {
        let r = rowptr[i]..rowptr[i + 1];
        tmp_c.clear();
        tmp_o.clear();
        tmp_f.clear();
        let dsign = diag[i] >= 0.0;
        for k in r.clone() {
            let (c, v) = (colidx[k], values[k]);
            if c >= nc {
                tmp_f.push((c, v));
            } else if (v >= 0.0) == dsign {
                tmp_c.push((c, v));
            } else {
                tmp_o.push((c, v));
            }
        }
        let mut k = r.start;
        for &(c, v) in tmp_c.iter().chain(&tmp_o).chain(&tmp_f) {
            colidx[k] = c;
            values[k] = v;
            k += 1;
        }
        opp_start[i] = r.start + tmp_c.len();
        fine_start[i] = r.start + tmp_c.len() + tmp_o.len();
    }
    CfSignPartition {
        opp_start,
        fine_start,
    }
}

/// Thread ownership for the optimized hybrid GS: following Fig. 2(b),
/// each parallel task owns one contiguous range of coarse rows and one of
/// fine rows (so both the C-sweep and the F-sweep are load-balanced).
#[derive(Debug, Clone)]
pub struct ThreadOwnership {
    /// Per-thread coarse row range (subset of `0..nc`).
    pub coarse: Vec<Range<usize>>,
    /// Per-thread fine row range (subset of `nc..n`).
    pub fine: Vec<Range<usize>>,
}

impl ThreadOwnership {
    /// Splits the coarse rows `0..nc` and fine rows `nc..n` of a
    /// CF-permuted matrix into `nthreads` nnz-balanced ranges each.
    pub fn build(a: &Csr, nc: usize, nthreads: usize) -> Self {
        let n = a.nrows();
        let rowptr = a.rowptr();
        let nthreads = nthreads.max(1);
        let coarse = if nc == 0 {
            vec![0..0; nthreads]
        } else {
            pad(
                famg_sparse::partition::split_rows_by_nnz(&rowptr[..=nc], nthreads),
                nthreads,
                nc,
            )
        };
        let fine = if n == nc {
            vec![n..n; nthreads]
        } else {
            // Shift the fine sub-rowptr to start at 0 for the splitter.
            let sub: Vec<usize> = rowptr[nc..=n].iter().map(|&p| p - rowptr[nc]).collect();
            pad(
                famg_sparse::partition::split_rows_by_nnz(&sub, nthreads)
                    .into_iter()
                    .map(|r| r.start + nc..r.end + nc)
                    .collect(),
                nthreads,
                n,
            )
        };
        ThreadOwnership { coarse, fine }
    }

    /// Number of parallel tasks.
    pub fn nthreads(&self) -> usize {
        self.coarse.len()
    }

    /// The thread owning row `i` (rows below `nc` looked up in the coarse
    /// ranges, others in the fine ranges).
    pub fn owner_of(&self, i: usize, nc: usize) -> usize {
        let set = if i < nc { &self.coarse } else { &self.fine };
        set.iter()
            .position(|r| r.contains(&i))
            .expect("row not covered by ownership")
    }
}

/// Pads a possibly-short range list to exactly `nthreads` entries with
/// empty ranges at `end`.
fn pad(mut v: Vec<Range<usize>>, nthreads: usize, end: usize) -> Vec<Range<usize>> {
    while v.len() < nthreads {
        v.push(end..end);
    }
    v
}

/// Row-internal partition for the optimized hybrid GS (Fig. 2b).
#[derive(Debug, Clone)]
pub struct GsPartition {
    /// Thread ownership the partition was computed against.
    pub own: ThreadOwnership,
    /// For each row: start of the own-thread upper segment.
    pub up_start: Vec<usize>,
    /// For each row: start of the other-thread (external) segment
    /// (`extptr` in Fig. 2b).
    pub ext_start: Vec<usize>,
    /// Reciprocal diagonal of each row.
    pub dinv: Vec<f64>,
}

/// Reorders each row of `a` into `[diag | own-lower | own-upper | ext]`
/// relative to the thread ownership, returning the segment boundaries and
/// the inverse diagonal. The diagonal entry is placed first in the row
/// (it stays in the matrix so SpMV is unaffected). "Own" means the column
/// lies in either of the row-owner's two ranges (coarse or fine).
///
/// # Panics
/// Panics when a row has no diagonal entry or the diagonal is zero.
pub fn partition_rows_gs(a: &mut Csr, nc: usize, own: &ThreadOwnership) -> GsPartition {
    let n = a.nrows();
    let rowptr = a.rowptr().to_vec();
    let mut up_start = vec![0usize; n];
    let mut ext_start = vec![0usize; n];
    let mut dinv = vec![0.0f64; n];
    let (colidx, values) = a.colidx_values_mut();
    let mut low: Vec<(usize, f64)> = Vec::new();
    let mut up: Vec<(usize, f64)> = Vec::new();
    let mut ext: Vec<(usize, f64)> = Vec::new();
    for i in 0..n {
        let r = rowptr[i]..rowptr[i + 1];
        let t = own.owner_of(i, nc);
        let my_c = own.coarse[t].clone();
        let my_f = own.fine[t].clone();
        low.clear();
        up.clear();
        ext.clear();
        let mut diag = None;
        for k in r.clone() {
            let (c, v) = (colidx[k], values[k]);
            if c == i {
                diag = Some(v);
            } else if my_c.contains(&c) || my_f.contains(&c) {
                if c < i {
                    low.push((c, v));
                } else {
                    up.push((c, v));
                }
            } else {
                ext.push((c, v));
            }
        }
        let d = diag.unwrap_or_else(|| panic!("row {i} has no diagonal"));
        assert!(d != 0.0, "zero diagonal in row {i}");
        dinv[i] = 1.0 / d;
        let mut k = r.start;
        colidx[k] = i;
        values[k] = d;
        k += 1;
        for &(c, v) in low.iter().chain(&up).chain(&ext) {
            colidx[k] = c;
            values[k] = v;
            k += 1;
        }
        up_start[i] = r.start + 1 + low.len();
        ext_start[i] = r.start + 1 + low.len() + up.len();
    }
    GsPartition {
        own: own.clone(),
        up_start,
        ext_start,
        dinv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use famg_matgen::laplace2d;
    use famg_sparse::spmv::spmv_seq;

    #[test]
    fn cf_reorder_moves_coarse_first() {
        let a = laplace2d(4, 4);
        let is_coarse: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
        let (ap, ord) = cf_reorder(&a, &is_coarse);
        assert_eq!(ord.nc, 6);
        assert_eq!(ap.nnz(), a.nnz());
        // Diagonal values survive the permutation.
        for i in 0..16 {
            assert_eq!(ap.diag(ord.perm.forward[i]), a.diag(i));
        }
    }

    #[test]
    fn cf_sign_partition_classifies() {
        // Row 0 (diag +2): coarse cols {0, 1}, fine col {2}.
        let mut a = Csr::from_triplets(
            3,
            3,
            vec![
                (0, 0, 2.0),
                (0, 1, -1.0),
                (0, 2, 0.5),
                (1, 1, 1.0),
                (2, 2, 1.0),
            ],
        );
        let p = partition_rows_cf_sign(&mut a, 2);
        // Row 0: same-sign coarse = {(0, 2.0)}, opp = {(1, -1.0)},
        // fine = {(2, 0.5)}.
        assert_eq!(p.opp_start[0], 1);
        assert_eq!(p.fine_start[0], 2);
        assert_eq!(a.row_cols(0), &[0, 1, 2]);
        assert_eq!(a.row_vals(0), &[2.0, -1.0, 0.5]);
    }

    #[test]
    fn cf_sign_partition_preserves_spmv() {
        let mut a = laplace2d(8, 8);
        let before = a.clone();
        let _ = partition_rows_cf_sign(&mut a, 20);
        let x: Vec<f64> = (0..64).map(|i| f64::from(i % 5)).collect();
        let mut y1 = vec![0.0; 64];
        let mut y2 = vec![0.0; 64];
        spmv_seq(&before, &x, &mut y1);
        spmv_seq(&a, &x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn ownership_covers_all_rows() {
        let a = laplace2d(8, 8);
        let nc = 20;
        let own = ThreadOwnership::build(&a, nc, 3);
        assert_eq!(own.nthreads(), 3);
        let mut covered = [false; 64];
        for r in own.coarse.iter().chain(&own.fine) {
            for i in r.clone() {
                assert!(!covered[i], "row {i} double-covered");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        // Coarse ranges stay below nc, fine ranges at/above.
        assert!(own.coarse.iter().all(|r| r.end <= nc));
        assert!(own.fine.iter().all(|r| r.start >= nc));
    }

    #[test]
    fn ownership_edge_cases() {
        let a = laplace2d(4, 4);
        let all_coarse = ThreadOwnership::build(&a, 16, 2);
        assert!(all_coarse.fine.iter().all(std::ops::Range::is_empty));
        let all_fine = ThreadOwnership::build(&a, 0, 2);
        assert!(all_fine.coarse.iter().all(std::ops::Range::is_empty));
        assert_eq!(all_fine.owner_of(0, 0), 0);
    }

    #[test]
    fn gs_partition_segments_correct() {
        let mut a = laplace2d(6, 6);
        let nc = 14;
        let own = ThreadOwnership::build(&a, nc, 3);
        let g = partition_rows_gs(&mut a, nc, &own);
        for i in 0..a.nrows() {
            let r = a.row_range(i);
            // Diagonal first.
            assert_eq!(a.colidx()[r.start], i);
            assert_eq!(g.dinv[i], 1.0 / 4.0);
            let t = own.owner_of(i, nc);
            let mine = |c: usize| own.coarse[t].contains(&c) || own.fine[t].contains(&c);
            for k in r.start + 1..g.up_start[i] {
                let c = a.colidx()[k];
                assert!(mine(c) && c < i, "row {i} lower seg");
            }
            for k in g.up_start[i]..g.ext_start[i] {
                let c = a.colidx()[k];
                assert!(mine(c) && c > i, "row {i} upper seg");
            }
            for k in g.ext_start[i]..r.end {
                let c = a.colidx()[k];
                assert!(!mine(c), "row {i} ext seg");
            }
        }
    }

    #[test]
    fn gs_partition_preserves_spmv() {
        let mut a = laplace2d(7, 5);
        let before = a.clone();
        let own = ThreadOwnership::build(&a, 10, 4);
        let _ = partition_rows_gs(&mut a, 10, &own);
        let x: Vec<f64> = (0..35).map(|i| f64::from(i % 7) - 3.0).collect();
        let mut y1 = vec![0.0; 35];
        let mut y2 = vec![0.0; 35];
        spmv_seq(&before, &x, &mut y1);
        spmv_seq(&a, &x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "no diagonal")]
    fn gs_partition_requires_diagonal() {
        let mut a = Csr::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)]);
        let own = ThreadOwnership::build(&a, 0, 1);
        partition_rows_gs(&mut a, 0, &own);
    }
}

//! PMIS coarsening (De Sterck–Yang–Heys) and its aggressive variant.
//!
//! PMIS selects the coarse grid as a maximal independent set in the
//! symmetrized strength graph, weighted by how many points each point
//! strongly influences plus a random tie-breaker. The paper uses PMIS for
//! its high parallelism (Table 3) and, for the multi-node configurations,
//! *aggressive* coarsening — a second PMIS pass over the distance-two
//! strength graph of the first pass's C-points (Table 4).
//!
//! Random weights come from the counter-based generator in [`crate::rng`],
//! so the C/F splitting is identical for any thread count (the paper's
//! reason for switching to MKL's parallel RNG in §3.3).

use crate::rng::uniform01;
use famg_sparse::transpose::transpose_par;
use famg_sparse::Csr;
use rayon::prelude::*;

/// Result of a coarsening pass.
#[derive(Debug, Clone)]
pub struct Coarsening {
    /// `true` for C-points.
    pub is_coarse: Vec<bool>,
    /// Number of C-points.
    pub ncoarse: usize,
}

impl Coarsening {
    fn from_marker(is_coarse: Vec<bool>) -> Self {
        let ncoarse = is_coarse.iter().filter(|&&c| c).count();
        Coarsening { is_coarse, ncoarse }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    Undecided,
    Coarse,
    Fine,
}

/// PMIS coarsening over strength matrix `s` (row `i` = points `i`
/// strongly depends on).
pub fn pmis(s: &Csr, seed: u64) -> Coarsening {
    let n = s.nrows();
    assert_eq!(n, s.ncols());
    let st = transpose_par(s);

    // measure(i) = |{j : j depends on i}| + rand[0,1).
    let measure: Vec<f64> = (0..n)
        .into_par_iter()
        .with_min_len(512)
        .map(|i| st.row_nnz(i) as f64 + uniform01(seed, i as u64))
        .collect();

    let mut state: Vec<State> = (0..n)
        .into_par_iter()
        .with_min_len(512)
        .map(|i| {
            if st.row_nnz(i) == 0 {
                // Nobody depends on i: it can never be a useful C-point.
                State::Fine
            } else {
                State::Undecided
            }
        })
        .collect();

    // Round-based parallel MIS.
    loop {
        // Selection: i joins C iff its measure beats every undecided
        // neighbour in the symmetrized graph S_i ∪ Sᵀ_i.
        let selected: Vec<usize> = (0..n)
            .into_par_iter()
            .with_min_len(512)
            .filter(|&i| {
                if state[i] != State::Undecided {
                    return false;
                }
                let wins = |j: usize| state[j] != State::Undecided || measure[i] > measure[j];
                s.row_cols(i).iter().all(|&j| wins(j)) && st.row_cols(i).iter().all(|&j| wins(j))
            })
            .collect();
        if selected.is_empty() {
            // No undecided point can win => no undecided points remain
            // (in any component the max-measure point always wins).
            debug_assert!(state.iter().all(|&s| s != State::Undecided));
            break;
        }
        for &i in &selected {
            state[i] = State::Coarse;
        }
        // Demotion: undecided points adjacent to a C-point in the
        // *symmetrized* graph become F. Checking only `s` rows (as
        // early BoomerAMG did) breaks independence on asymmetric
        // strength patterns: a point nobody was demoted for can win a
        // later round while already neighbouring a C-point.
        let demoted: Vec<usize> = (0..n)
            .into_par_iter()
            .with_min_len(512)
            .filter(|&i| {
                state[i] == State::Undecided
                    && (s.row_cols(i).iter().any(|&j| state[j] == State::Coarse)
                        || st.row_cols(i).iter().any(|&j| state[j] == State::Coarse))
            })
            .collect();
        for &i in &demoted {
            state[i] = State::Fine;
        }
    }

    Coarsening::from_marker(state.into_iter().map(|s| s == State::Coarse).collect())
}

/// Aggressive coarsening: a second PMIS pass over the distance-≤2
/// strength graph restricted to the first pass's C-points. Produces a much
/// smaller coarse grid (the paper pairs it with long-range interpolation:
/// multipass or 2-stage extended+i).
pub fn aggressive_pmis(s: &Csr, seed: u64) -> Coarsening {
    aggressive_pmis_stages(s, seed).1
}

/// Aggressive coarsening returning both stages: the first-pass PMIS
/// splitting (needed by 2-stage extended+i interpolation) and the final
/// splitting (a subset of the first-pass C-points).
pub fn aggressive_pmis_stages(s: &Csr, seed: u64) -> (Coarsening, Coarsening) {
    let first = pmis(s, seed);
    let n = s.nrows();
    // Map C-points to compact indices.
    let mut cidx = vec![usize::MAX; n];
    let mut cpts = Vec::with_capacity(first.ncoarse);
    for i in 0..n {
        if first.is_coarse[i] {
            cidx[i] = cpts.len();
            cpts.push(i);
        }
    }
    // Build S2 over C-points: c ~ d iff d reachable from c within two
    // strength edges (c→d or c→x→d).
    let mut trips: Vec<(usize, usize, f64)> = Vec::new();
    for (ci, &i) in cpts.iter().enumerate() {
        let mut push = |j: usize| {
            if j != i && cidx[j] != usize::MAX {
                trips.push((ci, cidx[j], 1.0));
            }
        };
        for &j in s.row_cols(i) {
            push(j);
            for &k in s.row_cols(j) {
                push(k);
            }
        }
    }
    let s2 = Csr::from_triplets(cpts.len(), cpts.len(), trips);
    let second = pmis(&s2, seed.wrapping_add(1));
    let mut is_coarse = vec![false; n];
    for (ci, &i) in cpts.iter().enumerate() {
        if second.is_coarse[ci] {
            is_coarse[i] = true;
        }
    }
    (first, Coarsening::from_marker(is_coarse))
}

/// Validates the PMIS invariants for testing: (1) no two C-points are
/// strength-graph neighbours, and (2) every F-point with strong
/// dependencies has at least one C-point within distance `dist` in the
/// strength graph.
pub fn validate_cf(s: &Csr, c: &Coarsening, dist: usize) -> Result<(), String> {
    let n = s.nrows();
    let st = famg_sparse::transpose::transpose(s);
    // Independence over the symmetrized graph.
    for i in 0..n {
        if !c.is_coarse[i] {
            continue;
        }
        for &j in s.row_cols(i).iter().chain(st.row_cols(i)) {
            if c.is_coarse[j] {
                return Err(format!("C-points {i} and {j} are neighbours"));
            }
        }
    }
    // Coverage within `dist` hops along dependencies.
    for i in 0..n {
        if c.is_coarse[i] || s.row_nnz(i) == 0 {
            continue;
        }
        let mut frontier = vec![i];
        let mut found = false;
        'bfs: for _ in 0..dist {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in s.row_cols(u) {
                    if c.is_coarse[v] {
                        found = true;
                        break 'bfs;
                    }
                    next.push(v);
                }
            }
            frontier = next;
        }
        if !found {
            return Err(format!("F-point {i} has no C-point within {dist} hops"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strength::strength;
    use famg_matgen::{laplace2d, laplace3d_7pt};

    #[test]
    fn pmis_on_laplace2d_is_valid() {
        let a = laplace2d(20, 20);
        let s = strength(&a, 0.25, 0.8);
        let c = pmis(&s, 1);
        assert!(c.ncoarse > 0 && c.ncoarse < a.nrows());
        validate_cf(&s, &c, 1).unwrap();
    }

    #[test]
    fn pmis_coarsening_ratio_reasonable_2d() {
        // 5-point Laplacian: PMIS typically keeps ~1/4 of the points.
        let a = laplace2d(50, 50);
        let s = strength(&a, 0.25, 0.8);
        let c = pmis(&s, 2);
        let ratio = c.ncoarse as f64 / a.nrows() as f64;
        assert!(ratio > 0.1 && ratio < 0.5, "ratio {ratio}");
    }

    #[test]
    fn pmis_deterministic_per_seed() {
        let a = laplace3d_7pt(8, 8, 8);
        let s = strength(&a, 0.25, 0.8);
        let c1 = pmis(&s, 7);
        let c2 = pmis(&s, 7);
        assert_eq!(c1.is_coarse, c2.is_coarse);
        let c3 = pmis(&s, 8);
        assert_ne!(c1.is_coarse, c3.is_coarse);
    }

    #[test]
    fn isolated_points_become_fine() {
        // Empty strength matrix: every point isolated -> all F.
        let s = Csr::zero(5, 5);
        let c = pmis(&s, 1);
        assert_eq!(c.ncoarse, 0);
    }

    #[test]
    fn two_connected_points_one_coarse() {
        let s = Csr::from_triplets(2, 2, vec![(0, 1, -1.0), (1, 0, -1.0)]);
        let c = pmis(&s, 3);
        assert_eq!(c.ncoarse, 1);
    }

    #[test]
    fn aggressive_coarsens_harder() {
        let a = laplace2d(40, 40);
        let s = strength(&a, 0.25, 0.8);
        let std = pmis(&s, 5);
        let agg = aggressive_pmis(&s, 5);
        assert!(agg.ncoarse > 0);
        assert!(
            agg.ncoarse < std.ncoarse / 2,
            "aggressive {} vs standard {}",
            agg.ncoarse,
            std.ncoarse
        );
        // Aggressive C-points are a subset of the first-pass C-points.
        for i in 0..a.nrows() {
            if agg.is_coarse[i] {
                assert!(std.is_coarse[i]);
            }
        }
    }

    #[test]
    fn aggressive_coverage_within_distance_four() {
        // Aggressive PMIS guarantees every F-point reaches a C-point
        // within ~2 first-pass hops each of which is ≤2 strength edges.
        let a = laplace2d(30, 30);
        let s = strength(&a, 0.25, 0.8);
        let agg = aggressive_pmis(&s, 9);
        validate_cf(&s, &agg, 4).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn directed_strength_handled() {
        // Asymmetric strength: 0 depends on 1 but not vice versa.
        let s = Csr::from_triplets(3, 3, vec![(0, 1, -1.0), (2, 1, -1.0)]);
        let c = pmis(&s, 11);
        // Point 1 is depended on by 0 and 2 -> highest measure -> C.
        assert!(c.is_coarse[1]);
        assert!(!c.is_coarse[0]);
        assert!(!c.is_coarse[2]);
    }
}

//! The user-facing standalone AMG solver.
//!
//! Wraps [`Hierarchy`] + V-cycles into an iterate-to-tolerance loop with
//! the paper's stopping criterion (relative residual 2-norm reduction,
//! Table 3: 1e-7) and the Fig. 5 timing breakdown. Also usable as a
//! preconditioner: [`AmgSolver::apply`] runs a single V-cycle from a zero
//! guess, which is how the multi-node evaluation wraps AMG inside
//! flexible GMRES (Table 4).

use crate::cycle::{vcycle, vcycle_batch, BatchCycleWorkspace, CycleWorkspace};
use crate::hierarchy::Hierarchy;
use crate::params::AmgConfig;
use crate::refresh::{FrozenSetup, RefreshError};
use crate::stats::PhaseTimes;
use famg_sparse::counters::flops;
use famg_sparse::multivec::{dot_batch, norm2_batch};
use famg_sparse::spmm::{spmm, spmm_dots};
use famg_sparse::spmv::{residual_norm_sq, residual_norm_sq_unfused};
use famg_sparse::vecops;
use famg_sparse::{Csr, MultiVec};
use parking_lot_free::Mutex;

/// Minimal internal mutex alias so the cycle workspace can be reused
/// behind `&self` without taking a `parking_lot` dependency here.
mod parking_lot_free {
    pub use std::sync::Mutex;
}

/// Typed failure of a public solve entry point.
///
/// Solver-built hierarchies ([`AmgSolver::setup`]) always satisfy the
/// structural invariants, but [`Hierarchy`] has public fields, so a
/// hand-built one can violate them; the `try_` entry points reject such
/// hierarchies with [`SolveError::MalformedHierarchy`] instead of
/// panicking mid-cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// A structural invariant of the multigrid hierarchy is violated
    /// (see [`Hierarchy::check_shape`]).
    MalformedHierarchy {
        /// Level at which the violation was detected (finest = 0).
        level: usize,
        /// The invariant that failed.
        what: &'static str,
    },
    /// A right-hand side or iterate has the wrong length.
    DimensionMismatch {
        /// Expected length (the finest-level row count).
        expected: usize,
        /// Actual length passed in.
        got: usize,
        /// Which vector was mis-sized.
        what: &'static str,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::MalformedHierarchy { level, what } => {
                write!(f, "malformed hierarchy at level {level}: {what}")
            }
            SolveError::DimensionMismatch {
                expected,
                got,
                what,
            } => {
                write!(f, "{what} has length {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Outcome of [`AmgSolver::solve`].
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Number of V-cycles performed.
    pub iterations: usize,
    /// Final relative residual.
    pub final_relres: f64,
    /// Whether the tolerance was reached within the iteration cap.
    pub converged: bool,
    /// Relative residual after every cycle.
    pub history: Vec<f64>,
    /// Solve-phase timing breakdown (Fig. 5 categories), derived from
    /// `profile` — a rollup view, not independent bookkeeping.
    pub times: PhaseTimes,
    /// Full span profile of the solve: per-level V-cycle sub-spans plus
    /// the raw event timeline for chrome://tracing export. Empty when
    /// the `prof` feature is off.
    pub profile: famg_prof::Profile,
}

/// Outcome of [`AmgSolver::solve_batch`]: the per-column view of a
/// k-wide solve.
///
/// Column `j` is bitwise identical to [`AmgSolver::solve`] on that
/// right-hand side alone: iterates of converged columns are snapshotted
/// at their convergence iteration while the remaining columns keep
/// cycling, so the extra cycles never leak into the reported solution.
#[derive(Debug, Clone)]
pub struct BatchSolveResult {
    /// Number of V-cycles each column needed (capped at
    /// `max_iterations` for non-converged columns).
    pub iterations: Vec<usize>,
    /// Final relative residual per column, sampled at each column's own
    /// stopping iteration.
    pub final_relres: Vec<f64>,
    /// Whether each column reached the tolerance within the cap.
    pub converged: Vec<bool>,
    /// Relative residual after every cycle, per column (truncated at
    /// the column's convergence iteration).
    pub history: Vec<Vec<f64>>,
    /// Solve-phase timing breakdown for the whole batch (Fig. 5
    /// categories), derived from `profile`.
    pub times: PhaseTimes,
    /// Full span profile of the batched solve. Empty when the `prof`
    /// feature is off.
    pub profile: famg_prof::Profile,
}

impl BatchSolveResult {
    /// Batch width.
    pub fn k(&self) -> usize {
        self.converged.len()
    }

    /// True when every column reached the tolerance.
    pub fn all_converged(&self) -> bool {
        self.converged.iter().all(|&c| c)
    }
}

/// A ready-to-solve AMG instance (setup already performed).
///
/// ```
/// use famg_core::{AmgConfig, AmgSolver};
/// let a = famg_matgen::laplace2d(32, 32);
/// let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
/// let b = vec![1.0; a.nrows()];
/// let mut x = vec![0.0; a.nrows()];
/// let result = solver.solve(&b, &mut x);
/// assert!(result.converged);
/// assert!(result.final_relres <= 1e-7);
/// ```
#[derive(Debug)]
pub struct AmgSolver {
    hierarchy: Hierarchy,
    frozen: Option<FrozenSetup>,
    ws: Mutex<CycleWorkspace>,
    /// Lazily allocated k-wide workspace, rebuilt when the batch width
    /// changes between [`AmgSolver::solve_batch`] calls.
    batch_ws: Mutex<Option<BatchCycleWorkspace>>,
}

impl AmgSolver {
    /// Runs the setup phase on `a`.
    pub fn setup(a: &Csr, cfg: &AmgConfig) -> Self {
        let hierarchy = Hierarchy::build(a, cfg);
        let ws = Mutex::new(CycleWorkspace::for_hierarchy(&hierarchy));
        AmgSolver {
            hierarchy,
            frozen: None,
            ws,
            batch_ws: Mutex::new(None),
        }
    }

    /// Runs the setup phase and keeps the pattern-derived structure so
    /// later same-pattern operators can be absorbed with
    /// [`AmgSolver::refresh`] instead of a full re-setup.
    pub fn setup_refreshable(a: &Csr, cfg: &AmgConfig) -> Self {
        let (hierarchy, frozen) = Hierarchy::build_frozen(a, cfg);
        let ws = Mutex::new(CycleWorkspace::for_hierarchy(&hierarchy));
        AmgSolver {
            hierarchy,
            frozen: Some(frozen),
            ws,
            batch_ws: Mutex::new(None),
        }
    }

    /// Absorbs a same-pattern operator by re-running only the numeric
    /// setup stages (see [`crate::refresh`]). Errors — including a
    /// mismatched sparsity pattern — leave the solver fully usable with
    /// its previous operator.
    pub fn refresh(&mut self, a: &Csr) -> Result<(), RefreshError> {
        let frozen = self.frozen.as_mut().ok_or(RefreshError::NoFrozenSetup)?;
        self.hierarchy.refresh(a, frozen)
        // Level sizes are unchanged (same patterns), so the cycle
        // workspace stays valid as-is.
    }

    /// Wraps an externally assembled hierarchy, rejecting one that
    /// violates the structural invariants the cycle kernels rely on.
    pub fn from_hierarchy(hierarchy: Hierarchy) -> Result<Self, SolveError> {
        hierarchy.check_shape()?;
        let ws = Mutex::new(CycleWorkspace::for_hierarchy(&hierarchy));
        Ok(AmgSolver {
            hierarchy,
            frozen: None,
            ws,
            batch_ws: Mutex::new(None),
        })
    }

    /// The underlying hierarchy (level sizes, setup times, complexities).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Finest-level unknown count.
    pub fn n(&self) -> usize {
        self.hierarchy.n()
    }

    /// Solves `A x = b` to the configured tolerance, starting from the
    /// initial guess already in `x`.
    ///
    /// The solve records a famg-prof span tree rooted at `"solve"` and
    /// captures it via `famg_prof::take()` on return, so do not call
    /// this inside an open profiler span of your own (the capture would
    /// see the open span and back off, zeroing the returned timings).
    pub fn solve(&self, b: &[f64], x: &mut [f64]) -> SolveResult {
        self.try_solve(b, x)
            .unwrap_or_else(|e| panic!("famg solve: {e}")) // PANIC-FREE: panicking convenience wrapper; reached from `try_*` only via the name-based over-approximation of the coarse `solve` call in `cycle_level` (that callee is `LuFactor::solve`).
    }

    /// Like [`AmgSolver::solve`], but returns a typed error instead of
    /// panicking on a malformed hierarchy or mis-sized vectors.
    pub fn try_solve(&self, b: &[f64], x: &mut [f64]) -> Result<SolveResult, SolveError> {
        let h = &self.hierarchy;
        let cfg = &h.config;
        h.check_shape()?;
        let n = h.n();
        if b.len() != n {
            return Err(SolveError::DimensionMismatch {
                expected: n,
                got: b.len(),
                what: "right-hand side",
            });
        }
        if x.len() != n {
            return Err(SolveError::DimensionMismatch {
                expected: n,
                got: x.len(),
                what: "initial guess",
            });
        }
        let mut ws = self
            .ws
            .lock()
            .expect("solver workspace mutex poisoned by a prior panic"); // PANIC-FREE: poisoning requires a prior panic on another thread.
        let root_span = famg_prof::scope("solve");

        // Move into the stored (possibly CF-permuted) ordering. The
        // buffers live in the workspace so repeated solves allocate
        // nothing here; they are taken out so `ws` stays borrowable.
        let permute_span = famg_prof::scope("permute");
        let perm = h.levels[0].perm.as_ref();
        let mut pb = std::mem::take(&mut ws.fine_b);
        let mut px = std::mem::take(&mut ws.fine_x);
        let mut r = std::mem::take(&mut ws.fine_r);
        match perm {
            Some(q) => q.apply_vec_into(b, &mut pb),
            None => pb.copy_from_slice(b),
        }
        match perm {
            Some(q) => q.apply_vec_into(x, &mut px),
            None => px.copy_from_slice(x),
        }
        drop(permute_span);

        let a = &h.levels[0].a;
        let bnorm = {
            let _s = famg_prof::scope("blas1");
            famg_prof::counter("flops", flops::dot(n));
            vecops::norm2(&pb).max(f64::MIN_POSITIVE)
        };

        let norm_of = |px: &[f64], r: &mut [f64]| {
            let _s = famg_prof::scope("blas1");
            famg_prof::counter("flops", flops::spmv(a.nnz()) + flops::dot(n));
            if cfg.opt.fused_residual_norm {
                residual_norm_sq(a, px, &pb, r).sqrt() / bnorm
            } else {
                residual_norm_sq_unfused(a, px, &pb, r).sqrt() / bnorm
            }
        };

        let mut history = Vec::new(); // ALLOC: per-iteration history is part of the returned result.
        let mut relres = norm_of(&px, &mut r);
        let mut iterations = 0usize;
        while relres > cfg.tolerance && iterations < cfg.max_iterations {
            vcycle(h, &pb, &mut px, &mut ws);
            iterations += 1;
            relres = norm_of(&px, &mut r);
            history.push(relres);
        }

        let permute_span = famg_prof::scope("permute");
        match perm {
            Some(q) => q.unapply_vec_into(&px, x),
            None => x.copy_from_slice(&px),
        }
        ws.fine_b = pb;
        ws.fine_x = px;
        ws.fine_r = r;
        drop(permute_span);

        drop(root_span);
        let profile = famg_prof::take();
        let times = profile
            .find_root("solve")
            .map(PhaseTimes::from_span)
            .unwrap_or_default();

        Ok(SolveResult {
            iterations,
            final_relres: relres,
            converged: relres <= cfg.tolerance,
            history,
            times,
            profile,
        })
    }

    /// Applies one V-cycle from a zero initial guess: `z ≈ A⁻¹ r`.
    /// This is the preconditioner interface used by FGMRES.
    pub fn apply(&self, rin: &[f64], z: &mut [f64]) {
        let h = &self.hierarchy;
        let mut ws = self.ws.lock().unwrap();
        let perm = h.levels[0].perm.as_ref();
        // Workspace-backed buffers: this is the FGMRES preconditioner hot
        // path, called once per Krylov iteration.
        let mut pb = std::mem::take(&mut ws.fine_b);
        let mut px = std::mem::take(&mut ws.fine_x);
        match perm {
            Some(q) => q.apply_vec_into(rin, &mut pb),
            None => pb.copy_from_slice(rin),
        }
        px.fill(0.0);
        vcycle(h, &pb, &mut px, &mut ws);
        match perm {
            Some(q) => q.unapply_vec_into(&px, z),
            None => z.copy_from_slice(&px),
        }
        ws.fine_b = pb;
        ws.fine_x = px;
    }

    /// Solves `A X = B` for all `k` columns of `b` simultaneously,
    /// starting from the initial guesses already in `x`.
    ///
    /// Every V-cycle advances all right-hand sides through each kernel
    /// invocation (SpMM, k-wide smoother sweeps), amortizing matrix
    /// traversals — and, on the distributed path, halo messages — over
    /// the batch. Column `j` of the result is bitwise identical to
    /// [`AmgSolver::solve`] on that column alone: columns that converge
    /// early are snapshotted at their own stopping iteration while the
    /// rest keep cycling.
    ///
    /// # Panics
    /// Panics on a malformed hierarchy or mis-shaped block vectors; see
    /// [`AmgSolver::try_solve_batch`] for the typed-error variant.
    pub fn solve_batch(&self, b: &MultiVec, x: &mut MultiVec) -> BatchSolveResult {
        self.try_solve_batch(b, x)
            .unwrap_or_else(|e| panic!("famg solve_batch: {e}"))
    }

    /// Like [`AmgSolver::solve_batch`], but returns a typed error
    /// instead of panicking on a malformed hierarchy or mis-shaped
    /// block vectors.
    pub fn try_solve_batch(
        &self,
        b: &MultiVec,
        x: &mut MultiVec,
    ) -> Result<BatchSolveResult, SolveError> {
        let h = &self.hierarchy;
        let cfg = &h.config;
        h.check_shape()?;
        let n = h.n();
        if b.n() != n {
            return Err(SolveError::DimensionMismatch {
                expected: n,
                got: b.n(),
                what: "right-hand side block",
            });
        }
        if x.n() != n {
            return Err(SolveError::DimensionMismatch {
                expected: n,
                got: x.n(),
                what: "initial guess block",
            });
        }
        let k = b.k();
        if x.k() != k {
            return Err(SolveError::DimensionMismatch {
                expected: k,
                got: x.k(),
                what: "initial guess block width",
            });
        }
        if k == 0 {
            return Ok(BatchSolveResult {
                iterations: Vec::new(),   // ALLOC: empty Vec, no heap
                final_relres: Vec::new(), // ALLOC: empty Vec, no heap
                converged: Vec::new(),    // ALLOC: empty Vec, no heap
                history: Vec::new(),      // ALLOC: empty Vec, no heap
                times: PhaseTimes::default(),
                profile: famg_prof::Profile::default(),
            });
        }
        let mut guard = self
            .batch_ws
            .lock()
            .expect("batch workspace mutex poisoned by a prior panic"); // PANIC-FREE: poisoning requires a prior panic on another thread.
        if guard.as_ref().is_none_or(|w| w.k() != k) {
            *guard = Some(BatchCycleWorkspace::for_hierarchy(h, k));
        }
        let ws = guard
            .as_mut()
            .expect("batch workspace was populated just above"); // PANIC-FREE: the lazy rebuild above guarantees `Some`.
        let root_span = famg_prof::scope("solve");

        // Move into the stored (possibly CF-permuted) ordering; buffers
        // are taken out of the workspace so `ws` stays borrowable.
        let permute_span = famg_prof::scope("permute");
        let perm = h.levels[0].perm.as_ref();
        let mut pb = std::mem::take(&mut ws.fine_b);
        let mut px = std::mem::take(&mut ws.fine_x);
        let mut r = std::mem::take(&mut ws.fine_r);
        if let Some(q) = perm {
            q.apply_multi_into(b, &mut pb);
            q.apply_multi_into(x, &mut px);
        } else {
            pb.copy_from(b);
            px.copy_from(x);
        }
        drop(permute_span);

        let a = &h.levels[0].a;
        let mut bnorms = vec![0.0; k]; // ALLOC: k-sized bookkeeping, not O(n)
        {
            let _s = famg_prof::scope("blas1");
            famg_prof::counter("flops", flops::dot_batch(n, k));
            norm2_batch(&pb, &mut bnorms);
        }
        for bn in &mut bnorms {
            *bn = bn.max(f64::MIN_POSITIVE);
        }

        // Per-column relative residuals; each column's value is bitwise
        // identical to the scalar `norm_of` closure in `try_solve`.
        let norm_of = |px: &MultiVec, r: &mut MultiVec, out: &mut [f64]| {
            let _s = famg_prof::scope("blas1");
            famg_prof::counter("flops", flops::spmm(a.nnz(), k) + flops::dot_batch(n, k));
            if cfg.opt.fused_residual_norm {
                spmm_dots(a, px, &pb, r, out);
            } else {
                spmm(a, px, r);
                for (ri, bi) in r.data_mut().iter_mut().zip(pb.data()) {
                    *ri = bi - *ri;
                }
                dot_batch(r, r, out);
            }
            for (o, bn) in out.iter_mut().zip(&bnorms) {
                *o = o.sqrt() / bn;
            }
        };

        let mut history: Vec<Vec<f64>> = vec![Vec::new(); k]; // ALLOC: result-owned per-column history
        let mut relres = vec![0.0; k]; // ALLOC: k-sized bookkeeping, not O(n)
        norm_of(&px, &mut r, &mut relres);
        let mut final_relres = relres.clone(); // ALLOC: result-owned copy (k floats)
        let mut col_iterations = vec![0usize; k]; // ALLOC: k-sized bookkeeping, not O(n)
                                                  // Columns that hit the tolerance freeze: their iterate is
                                                  // snapshotted at the convergence iteration (the state the solo
                                                  // solve would have exited with) while the rest keep cycling.
        let mut frozen_cols: Vec<Option<Vec<f64>>> = vec![None; k]; // ALLOC: k slots; cols snapshot only on freeze
        let mut done: Vec<bool> = relres.iter().map(|&rr| rr <= cfg.tolerance).collect(); // ALLOC: k-sized bookkeeping, not O(n)
        for j in 0..k {
            if done[j] {
                frozen_cols[j] = Some(px.col(j));
            }
        }
        let mut iterations = 0usize;
        while done.iter().any(|d| !d) && iterations < cfg.max_iterations {
            vcycle_batch(h, &pb, &mut px, ws);
            iterations += 1;
            norm_of(&px, &mut r, &mut relres);
            for j in 0..k {
                if done[j] {
                    continue;
                }
                history[j].push(relres[j]);
                final_relres[j] = relres[j];
                col_iterations[j] = iterations;
                if relres[j] <= cfg.tolerance {
                    done[j] = true;
                    frozen_cols[j] = Some(px.col(j));
                }
            }
        }
        for (j, frozen) in frozen_cols.iter().enumerate() {
            if let Some(col) = frozen {
                px.set_col(j, col);
            }
        }

        let permute_span = famg_prof::scope("permute");
        match perm {
            Some(q) => q.unapply_multi_into(&px, x),
            None => x.copy_from(&px),
        }
        ws.fine_b = pb;
        ws.fine_x = px;
        ws.fine_r = r;
        drop(permute_span);

        drop(root_span);
        let profile = famg_prof::take();
        let times = profile
            .find_root("solve")
            .map(PhaseTimes::from_span)
            .unwrap_or_default();

        let converged = final_relres.iter().map(|&rr| rr <= cfg.tolerance).collect(); // ALLOC: result-owned convergence flags (k bools)
        Ok(BatchSolveResult {
            iterations: col_iterations,
            final_relres,
            converged,
            history,
            times,
            profile,
        })
    }

    /// Applies one V-cycle from a zero initial guess to all `k` columns:
    /// `Z ≈ A⁻¹ R`. The batched twin of [`AmgSolver::apply`] for
    /// preconditioning a block Krylov iteration; column `j` is bitwise
    /// identical to `apply` on that column alone.
    ///
    /// # Panics
    /// Panics when `rin` and `z` disagree in shape or do not match the
    /// finest-level unknown count.
    pub fn apply_batch(&self, rin: &MultiVec, z: &mut MultiVec) {
        let h = &self.hierarchy;
        let n = h.n();
        let k = rin.k();
        assert_eq!(rin.n(), n, "apply_batch: residual block has wrong n");
        assert_eq!(z.n(), n, "apply_batch: output block has wrong n");
        assert_eq!(z.k(), k, "apply_batch: output block has wrong width");
        if k == 0 {
            return;
        }
        let mut guard = self.batch_ws.lock().unwrap();
        if guard.as_ref().is_none_or(|w| w.k() != k) {
            *guard = Some(BatchCycleWorkspace::for_hierarchy(h, k));
        }
        let ws = guard.as_mut().unwrap();
        let perm = h.levels[0].perm.as_ref();
        let mut pb = std::mem::take(&mut ws.fine_b);
        let mut px = std::mem::take(&mut ws.fine_x);
        match perm {
            Some(q) => q.apply_multi_into(rin, &mut pb),
            None => pb.copy_from(rin),
        }
        px.fill(0.0);
        vcycle_batch(h, &pb, &mut px, ws);
        match perm {
            Some(q) => q.unapply_multi_into(&px, z),
            None => z.copy_from(&px),
        }
        ws.fine_b = pb;
        ws.fine_x = px;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{AmgConfig, SmootherKind};
    use famg_matgen::{amg2013_like, laplace2d, laplace3d_7pt, rhs};

    fn check_solution(a: &Csr, b: &[f64], x: &[f64], tol: f64) {
        let mut r = vec![0.0; b.len()];
        let rn = residual_norm_sq(a, x, b, &mut r).sqrt();
        let bn = vecops::norm2(b);
        assert!(rn / bn <= tol * 1.01, "relres {} > {tol}", rn / bn);
    }

    #[test]
    fn solves_laplace2d_optimized() {
        let a = laplace2d(48, 48);
        let b = rhs::ones(a.nrows());
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged, "relres {}", res.final_relres);
        assert!(res.iterations < 30, "iterations {}", res.iterations);
        check_solution(&a, &b, &x, 1e-7);
    }

    #[test]
    fn solves_laplace2d_baseline() {
        let a = laplace2d(48, 48);
        let b = rhs::ones(a.nrows());
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_baseline());
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged);
        check_solution(&a, &b, &x, 1e-7);
    }

    #[test]
    fn baseline_and_optimized_same_convergence_class() {
        // The paper verifies (with matched RNG) identical iteration
        // counts; our base/opt paths differ only in smoother task
        // geometry, so iteration counts must be very close.
        let a = laplace3d_7pt(12, 12, 12);
        let b = rhs::random(a.nrows(), 3);
        let so = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let sb = AmgSolver::setup(&a, &AmgConfig::single_node_baseline());
        let mut xo = vec![0.0; a.nrows()];
        let mut xb = vec![0.0; a.nrows()];
        let ro = so.solve(&b, &mut xo);
        let rb = sb.solve(&b, &mut xb);
        assert!(ro.converged && rb.converged);
        let diff = ro.iterations.abs_diff(rb.iterations);
        assert!(
            diff <= 2,
            "iterations diverged: opt {} vs base {}",
            ro.iterations,
            rb.iterations
        );
    }

    #[test]
    fn solves_known_solution() {
        let a = laplace2d(30, 30);
        let x_true = rhs::random(a.nrows(), 9);
        let b = rhs::rhs_for_solution(&a, &x_true);
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged);
        // Solution error tracks the residual tolerance (well-conditioned
        // at this size).
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-4, "error {err}");
    }

    #[test]
    fn nonzero_initial_guess_supported() {
        let a = laplace2d(20, 20);
        let b = rhs::ones(a.nrows());
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let mut x = rhs::random(a.nrows(), 17);
        let res = solver.solve(&b, &mut x);
        assert!(res.converged);
        check_solution(&a, &b, &x, 1e-7);
    }

    #[test]
    fn iteration_count_grid_independent() {
        // The multigrid promise: iterations stay O(1) as n grows.
        let mut iters = Vec::new();
        for n in [16usize, 32, 48] {
            let a = laplace2d(n, n);
            let b = rhs::ones(a.nrows());
            let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
            let mut x = vec![0.0; a.nrows()];
            let res = solver.solve(&b, &mut x);
            assert!(res.converged);
            iters.push(res.iterations);
        }
        let max = *iters.iter().max().unwrap();
        let min = *iters.iter().min().unwrap();
        assert!(max <= min + 4, "iterations grew with n: {iters:?}");
    }

    #[test]
    fn history_is_monotone_ish() {
        let a = laplace2d(32, 32);
        let b = rhs::ones(a.nrows());
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        for w in res.history.windows(2) {
            assert!(w[1] < w[0], "residual increased: {:?}", res.history);
        }
    }

    #[test]
    fn apply_is_a_contraction() {
        let a = laplace2d(24, 24);
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let r = rhs::random(a.nrows(), 5);
        let mut z = vec![0.0; a.nrows()];
        solver.apply(&r, &mut z);
        // z should approximately solve A z = r (one V-cycle).
        let mut res = vec![0.0; r.len()];
        let rn = residual_norm_sq(&a, &z, &r, &mut res).sqrt();
        assert!(rn < 0.2 * vecops::norm2(&r));
    }

    #[test]
    fn jumpy_coefficients_converge() {
        let a = amg2013_like(12, 12, 12, 2, 2.0, 7);
        let b = rhs::ones(a.nrows());
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged, "relres {}", res.final_relres);
    }

    #[test]
    fn alternative_smoothers_solve() {
        let a = laplace2d(24, 24);
        let b = rhs::ones(a.nrows());
        for sm in [
            SmootherKind::Jacobi,
            SmootherKind::LexicographicGs,
            SmootherKind::MulticolorGs,
            SmootherKind::L1Jacobi,
            SmootherKind::L1HybridGs,
            SmootherKind::Chebyshev,
        ] {
            let cfg = AmgConfig {
                smoother: sm,
                max_iterations: 400,
                ..AmgConfig::single_node_paper()
            };
            let solver = AmgSolver::setup(&a, &cfg);
            let mut x = vec![0.0; a.nrows()];
            let res = solver.solve(&b, &mut x);
            assert!(res.converged, "{sm:?} did not converge");
        }
    }

    #[test]
    fn try_solve_rejects_mis_sized_vectors() {
        let a = laplace2d(16, 16);
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let b = rhs::ones(a.nrows());
        let mut x_short = vec![0.0; a.nrows() - 1];
        let err = solver.try_solve(&b, &mut x_short).unwrap_err();
        assert!(matches!(err, SolveError::DimensionMismatch { .. }), "{err}");
        let b_short = vec![1.0; 3];
        let mut x = vec![0.0; a.nrows()];
        let err = solver.try_solve(&b_short, &mut x).unwrap_err();
        assert_eq!(
            err,
            SolveError::DimensionMismatch {
                expected: a.nrows(),
                got: 3,
                what: "right-hand side",
            }
        );
    }

    #[test]
    fn from_hierarchy_rejects_hand_built_malformed_hierarchy() {
        let a = laplace2d(16, 16);
        // Knock the mid-hierarchy transfer operators out: the cycle would
        // treat the finest level as coarsest and silently mis-solve (or
        // panic), so the typed check must reject it up front.
        let mut h = Hierarchy::build(&a, &AmgConfig::single_node_paper());
        assert!(h.num_levels() >= 2, "need a multi-level hierarchy");
        h.levels[0].ops = None;
        let err = AmgSolver::from_hierarchy(h).unwrap_err();
        assert_eq!(
            err,
            SolveError::MalformedHierarchy {
                level: 0,
                what: "non-coarsest level is missing its transfer operators",
            }
        );

        // A solver-built hierarchy passes the same check and solves.
        let h = Hierarchy::build(&a, &AmgConfig::single_node_paper());
        let solver = AmgSolver::from_hierarchy(h).expect("well-formed hierarchy");
        let b = rhs::ones(a.nrows());
        let mut x = vec![0.0; a.nrows()];
        assert!(solver.try_solve(&b, &mut x).unwrap().converged);
    }

    #[test]
    fn check_shape_rejects_bad_transfer_dimensions() {
        let a = laplace2d(16, 16);
        let mut h = Hierarchy::build(&a, &AmgConfig::single_node_baseline());
        // Corrupt the stated coarse size on the finest level.
        h.levels[0].nc += 1;
        let err = h.check_shape().unwrap_err();
        assert!(
            matches!(err, SolveError::MalformedHierarchy { level: 0, .. }),
            "{err}"
        );
    }

    /// Batched solve: every column bitwise identical to the solo solve
    /// of that right-hand side, across widths and both residual-norm
    /// paths (fused and unfused).
    #[test]
    fn solve_batch_bitwise_matches_solo_columns() {
        let a = laplace2d(28, 28);
        let n = a.nrows();
        for fused in [true, false] {
            let mut cfg = AmgConfig::single_node_paper();
            cfg.opt.fused_residual_norm = fused;
            let solver = AmgSolver::setup(&a, &cfg);
            for k in [1usize, 3, 4, 8] {
                let cols: Vec<Vec<f64>> = (0..k).map(|j| rhs::random(n, 100 + j as u64)).collect();
                let b = MultiVec::from_columns(&cols);
                let mut x = MultiVec::new(n, k);
                let res = solver.solve_batch(&b, &mut x);
                assert!(res.all_converged());
                assert_eq!(res.k(), k);
                for (j, col) in cols.iter().enumerate() {
                    let mut xs = vec![0.0; n];
                    let solo = solver.solve(col, &mut xs);
                    assert_eq!(
                        res.iterations[j], solo.iterations,
                        "fused={fused} k={k} col {j} iteration count"
                    );
                    assert_eq!(
                        res.final_relres[j].to_bits(),
                        solo.final_relres.to_bits(),
                        "fused={fused} k={k} col {j} final relres"
                    );
                    assert_eq!(res.history[j], solo.history);
                    let xb = x.col(j);
                    for (i, (bv, sv)) in xb.iter().zip(&xs).enumerate() {
                        assert_eq!(
                            bv.to_bits(),
                            sv.to_bits(),
                            "fused={fused} k={k} col {j} row {i}"
                        );
                    }
                }
            }
        }
    }

    /// Early-converged columns are frozen at their own stopping
    /// iteration while slower columns keep cycling to the cap.
    #[test]
    fn solve_batch_masks_converged_columns() {
        let a = laplace2d(24, 24);
        let n = a.nrows();
        // Cap iterations so the rough random column cannot converge.
        let cfg = AmgConfig {
            max_iterations: 3,
            ..AmgConfig::single_node_paper()
        };
        let solver = AmgSolver::setup(&a, &cfg);
        // Column 0 starts converged (zero RHS, zero guess); column 1
        // will not make the tolerance in 3 cycles.
        let cols = vec![vec![0.0; n], rhs::random(n, 7)];
        let b = MultiVec::from_columns(&cols);
        let mut x = MultiVec::new(n, 2);
        let res = solver.solve_batch(&b, &mut x);
        assert!(res.converged[0]);
        assert_eq!(res.iterations[0], 0);
        assert!(res.history[0].is_empty());
        assert!(x.col(0).iter().all(|&v| v == 0.0));
        assert!(!res.converged[1]);
        assert_eq!(res.iterations[1], 3);
        let mut xs = vec![0.0; n];
        let solo = solver.solve(&cols[1], &mut xs);
        assert!(!solo.converged);
        assert_eq!(res.final_relres[1].to_bits(), solo.final_relres.to_bits());
        assert_eq!(x.col(1), xs);
    }

    /// Width-zero batches are a no-op, and mis-shaped blocks are
    /// rejected with typed errors.
    #[test]
    fn solve_batch_edge_shapes() {
        let a = laplace2d(16, 16);
        let n = a.nrows();
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let b = MultiVec::new(n, 0);
        let mut x = MultiVec::new(n, 0);
        let res = solver.solve_batch(&b, &mut x);
        assert_eq!(res.k(), 0);
        assert!(res.all_converged());

        let b = MultiVec::new(n, 2);
        let mut x_short = MultiVec::new(n - 1, 2);
        let err = solver.try_solve_batch(&b, &mut x_short).unwrap_err();
        assert!(matches!(err, SolveError::DimensionMismatch { .. }), "{err}");
        let mut x_narrow = MultiVec::new(n, 1);
        let err = solver.try_solve_batch(&b, &mut x_narrow).unwrap_err();
        assert_eq!(
            err,
            SolveError::DimensionMismatch {
                expected: 2,
                got: 1,
                what: "initial guess block width",
            }
        );
    }

    /// The batched preconditioner application matches per-column
    /// `apply` bitwise, including after a width change re-allocates the
    /// cached workspace.
    #[test]
    fn apply_batch_bitwise_matches_solo_apply() {
        let a = laplace2d(20, 20);
        let n = a.nrows();
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        for k in [4usize, 2] {
            let cols: Vec<Vec<f64>> = (0..k).map(|j| rhs::random(n, 40 + j as u64)).collect();
            let r = MultiVec::from_columns(&cols);
            let mut z = MultiVec::new(n, k);
            solver.apply_batch(&r, &mut z);
            for (j, col) in cols.iter().enumerate() {
                let mut zs = vec![0.0; n];
                solver.apply(col, &mut zs);
                assert_eq!(z.col(j), zs, "k={k} col {j}");
            }
        }
    }

    #[test]
    fn multi_node_presets_solve() {
        let a = laplace2d(40, 40);
        let b = rhs::ones(a.nrows());
        for cfg in [
            AmgConfig::multi_node_ei4(),
            AmgConfig::multi_node_mp(),
            AmgConfig::multi_node_2s_ei444(),
        ] {
            let solver = AmgSolver::setup(&a, &cfg);
            let mut x = vec![0.0; a.nrows()];
            let res = solver.solve(&b, &mut x);
            assert!(
                res.converged,
                "{:?} stalled at {}",
                cfg.interp, res.final_relres
            );
        }
    }
}

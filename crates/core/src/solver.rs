//! The user-facing standalone AMG solver.
//!
//! Wraps [`Hierarchy`] + V-cycles into an iterate-to-tolerance loop with
//! the paper's stopping criterion (relative residual 2-norm reduction,
//! Table 3: 1e-7) and the Fig. 5 timing breakdown. Also usable as a
//! preconditioner: [`AmgSolver::apply`] runs a single V-cycle from a zero
//! guess, which is how the multi-node evaluation wraps AMG inside
//! flexible GMRES (Table 4).

use crate::cycle::{vcycle, CycleWorkspace};
use crate::hierarchy::Hierarchy;
use crate::params::AmgConfig;
use crate::refresh::{FrozenSetup, RefreshError};
use crate::stats::PhaseTimes;
use famg_sparse::spmv::{residual_norm_sq, residual_norm_sq_unfused};
use famg_sparse::vecops;
use famg_sparse::Csr;
use parking_lot_free::Mutex;
use std::time::Instant;

/// Minimal internal mutex alias so the cycle workspace can be reused
/// behind `&self` without taking a `parking_lot` dependency here.
mod parking_lot_free {
    pub use std::sync::Mutex;
}

/// Outcome of [`AmgSolver::solve`].
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Number of V-cycles performed.
    pub iterations: usize,
    /// Final relative residual.
    pub final_relres: f64,
    /// Whether the tolerance was reached within the iteration cap.
    pub converged: bool,
    /// Relative residual after every cycle.
    pub history: Vec<f64>,
    /// Solve-phase timing breakdown.
    pub times: PhaseTimes,
}

/// A ready-to-solve AMG instance (setup already performed).
///
/// ```
/// use famg_core::{AmgConfig, AmgSolver};
/// let a = famg_matgen::laplace2d(32, 32);
/// let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
/// let b = vec![1.0; a.nrows()];
/// let mut x = vec![0.0; a.nrows()];
/// let result = solver.solve(&b, &mut x);
/// assert!(result.converged);
/// assert!(result.final_relres <= 1e-7);
/// ```
#[derive(Debug)]
pub struct AmgSolver {
    hierarchy: Hierarchy,
    frozen: Option<FrozenSetup>,
    ws: Mutex<CycleWorkspace>,
}

impl AmgSolver {
    /// Runs the setup phase on `a`.
    pub fn setup(a: &Csr, cfg: &AmgConfig) -> Self {
        let hierarchy = Hierarchy::build(a, cfg);
        let ws = Mutex::new(CycleWorkspace::for_hierarchy(&hierarchy));
        AmgSolver {
            hierarchy,
            frozen: None,
            ws,
        }
    }

    /// Runs the setup phase and keeps the pattern-derived structure so
    /// later same-pattern operators can be absorbed with
    /// [`AmgSolver::refresh`] instead of a full re-setup.
    pub fn setup_refreshable(a: &Csr, cfg: &AmgConfig) -> Self {
        let (hierarchy, frozen) = Hierarchy::build_frozen(a, cfg);
        let ws = Mutex::new(CycleWorkspace::for_hierarchy(&hierarchy));
        AmgSolver {
            hierarchy,
            frozen: Some(frozen),
            ws,
        }
    }

    /// Absorbs a same-pattern operator by re-running only the numeric
    /// setup stages (see [`crate::refresh`]). Errors — including a
    /// mismatched sparsity pattern — leave the solver fully usable with
    /// its previous operator.
    pub fn refresh(&mut self, a: &Csr) -> Result<(), RefreshError> {
        let frozen = self.frozen.as_mut().ok_or(RefreshError::NoFrozenSetup)?;
        self.hierarchy.refresh(a, frozen)
        // Level sizes are unchanged (same patterns), so the cycle
        // workspace stays valid as-is.
    }

    /// The underlying hierarchy (level sizes, setup times, complexities).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Finest-level unknown count.
    pub fn n(&self) -> usize {
        self.hierarchy.n()
    }

    /// Solves `A x = b` to the configured tolerance, starting from the
    /// initial guess already in `x`.
    pub fn solve(&self, b: &[f64], x: &mut [f64]) -> SolveResult {
        let h = &self.hierarchy;
        let cfg = &h.config;
        let n = h.n();
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        let mut times = PhaseTimes::default();
        let mut ws = self.ws.lock().unwrap();

        // Move into the stored (possibly CF-permuted) ordering. The
        // buffers live in the workspace so repeated solves allocate
        // nothing here; they are taken out so `ws` stays borrowable.
        let t0 = Instant::now();
        let perm = h.levels[0].perm.as_ref();
        let mut pb = std::mem::take(&mut ws.fine_b);
        let mut px = std::mem::take(&mut ws.fine_x);
        let mut r = std::mem::take(&mut ws.fine_r);
        match perm {
            Some(q) => q.apply_vec_into(b, &mut pb),
            None => pb.copy_from_slice(b),
        }
        match perm {
            Some(q) => q.apply_vec_into(x, &mut px),
            None => px.copy_from_slice(x),
        }
        times.solve_etc += t0.elapsed();

        let a = &h.levels[0].a;
        let t0 = Instant::now();
        let bnorm = vecops::norm2(&pb).max(f64::MIN_POSITIVE);
        times.blas1 += t0.elapsed();

        let mut history = Vec::new();
        let mut relres = {
            let t0 = Instant::now();
            let rr = if cfg.opt.fused_residual_norm {
                residual_norm_sq(a, &px, &pb, &mut r).sqrt() / bnorm
            } else {
                residual_norm_sq_unfused(a, &px, &pb, &mut r).sqrt() / bnorm
            };
            times.blas1 += t0.elapsed();
            rr
        };
        let mut iterations = 0usize;
        while relres > cfg.tolerance && iterations < cfg.max_iterations {
            vcycle(h, &pb, &mut px, &mut ws, &mut times);
            iterations += 1;
            let t0 = Instant::now();
            relres = if cfg.opt.fused_residual_norm {
                residual_norm_sq(a, &px, &pb, &mut r).sqrt() / bnorm
            } else {
                residual_norm_sq_unfused(a, &px, &pb, &mut r).sqrt() / bnorm
            };
            times.blas1 += t0.elapsed();
            history.push(relres);
        }

        let t0 = Instant::now();
        match perm {
            Some(q) => q.unapply_vec_into(&px, x),
            None => x.copy_from_slice(&px),
        }
        ws.fine_b = pb;
        ws.fine_x = px;
        ws.fine_r = r;
        times.solve_etc += t0.elapsed();

        SolveResult {
            iterations,
            final_relres: relres,
            converged: relres <= cfg.tolerance,
            history,
            times,
        }
    }

    /// Applies one V-cycle from a zero initial guess: `z ≈ A⁻¹ r`.
    /// This is the preconditioner interface used by FGMRES.
    pub fn apply(&self, rin: &[f64], z: &mut [f64]) {
        let h = &self.hierarchy;
        let mut ws = self.ws.lock().unwrap();
        let mut times = PhaseTimes::default();
        let perm = h.levels[0].perm.as_ref();
        // Workspace-backed buffers: this is the FGMRES preconditioner hot
        // path, called once per Krylov iteration.
        let mut pb = std::mem::take(&mut ws.fine_b);
        let mut px = std::mem::take(&mut ws.fine_x);
        match perm {
            Some(q) => q.apply_vec_into(rin, &mut pb),
            None => pb.copy_from_slice(rin),
        }
        px.fill(0.0);
        vcycle(h, &pb, &mut px, &mut ws, &mut times);
        match perm {
            Some(q) => q.unapply_vec_into(&px, z),
            None => z.copy_from_slice(&px),
        }
        ws.fine_b = pb;
        ws.fine_x = px;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{AmgConfig, SmootherKind};
    use famg_matgen::{amg2013_like, laplace2d, laplace3d_7pt, rhs};

    fn check_solution(a: &Csr, b: &[f64], x: &[f64], tol: f64) {
        let mut r = vec![0.0; b.len()];
        let rn = residual_norm_sq(a, x, b, &mut r).sqrt();
        let bn = vecops::norm2(b);
        assert!(rn / bn <= tol * 1.01, "relres {} > {tol}", rn / bn);
    }

    #[test]
    fn solves_laplace2d_optimized() {
        let a = laplace2d(48, 48);
        let b = rhs::ones(a.nrows());
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged, "relres {}", res.final_relres);
        assert!(res.iterations < 30, "iterations {}", res.iterations);
        check_solution(&a, &b, &x, 1e-7);
    }

    #[test]
    fn solves_laplace2d_baseline() {
        let a = laplace2d(48, 48);
        let b = rhs::ones(a.nrows());
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_baseline());
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged);
        check_solution(&a, &b, &x, 1e-7);
    }

    #[test]
    fn baseline_and_optimized_same_convergence_class() {
        // The paper verifies (with matched RNG) identical iteration
        // counts; our base/opt paths differ only in smoother task
        // geometry, so iteration counts must be very close.
        let a = laplace3d_7pt(12, 12, 12);
        let b = rhs::random(a.nrows(), 3);
        let so = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let sb = AmgSolver::setup(&a, &AmgConfig::single_node_baseline());
        let mut xo = vec![0.0; a.nrows()];
        let mut xb = vec![0.0; a.nrows()];
        let ro = so.solve(&b, &mut xo);
        let rb = sb.solve(&b, &mut xb);
        assert!(ro.converged && rb.converged);
        let diff = ro.iterations.abs_diff(rb.iterations);
        assert!(
            diff <= 2,
            "iterations diverged: opt {} vs base {}",
            ro.iterations,
            rb.iterations
        );
    }

    #[test]
    fn solves_known_solution() {
        let a = laplace2d(30, 30);
        let x_true = rhs::random(a.nrows(), 9);
        let b = rhs::rhs_for_solution(&a, &x_true);
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged);
        // Solution error tracks the residual tolerance (well-conditioned
        // at this size).
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-4, "error {err}");
    }

    #[test]
    fn nonzero_initial_guess_supported() {
        let a = laplace2d(20, 20);
        let b = rhs::ones(a.nrows());
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let mut x = rhs::random(a.nrows(), 17);
        let res = solver.solve(&b, &mut x);
        assert!(res.converged);
        check_solution(&a, &b, &x, 1e-7);
    }

    #[test]
    fn iteration_count_grid_independent() {
        // The multigrid promise: iterations stay O(1) as n grows.
        let mut iters = Vec::new();
        for n in [16usize, 32, 48] {
            let a = laplace2d(n, n);
            let b = rhs::ones(a.nrows());
            let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
            let mut x = vec![0.0; a.nrows()];
            let res = solver.solve(&b, &mut x);
            assert!(res.converged);
            iters.push(res.iterations);
        }
        let max = *iters.iter().max().unwrap();
        let min = *iters.iter().min().unwrap();
        assert!(max <= min + 4, "iterations grew with n: {iters:?}");
    }

    #[test]
    fn history_is_monotone_ish() {
        let a = laplace2d(32, 32);
        let b = rhs::ones(a.nrows());
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        for w in res.history.windows(2) {
            assert!(w[1] < w[0], "residual increased: {:?}", res.history);
        }
    }

    #[test]
    fn apply_is_a_contraction() {
        let a = laplace2d(24, 24);
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let r = rhs::random(a.nrows(), 5);
        let mut z = vec![0.0; a.nrows()];
        solver.apply(&r, &mut z);
        // z should approximately solve A z = r (one V-cycle).
        let mut res = vec![0.0; r.len()];
        let rn = residual_norm_sq(&a, &z, &r, &mut res).sqrt();
        assert!(rn < 0.2 * vecops::norm2(&r));
    }

    #[test]
    fn jumpy_coefficients_converge() {
        let a = amg2013_like(12, 12, 12, 2, 2.0, 7);
        let b = rhs::ones(a.nrows());
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged, "relres {}", res.final_relres);
    }

    #[test]
    fn alternative_smoothers_solve() {
        let a = laplace2d(24, 24);
        let b = rhs::ones(a.nrows());
        for sm in [
            SmootherKind::Jacobi,
            SmootherKind::LexicographicGs,
            SmootherKind::MulticolorGs,
            SmootherKind::L1Jacobi,
            SmootherKind::L1HybridGs,
            SmootherKind::Chebyshev,
        ] {
            let cfg = AmgConfig {
                smoother: sm,
                max_iterations: 400,
                ..AmgConfig::single_node_paper()
            };
            let solver = AmgSolver::setup(&a, &cfg);
            let mut x = vec![0.0; a.nrows()];
            let res = solver.solve(&b, &mut x);
            assert!(res.converged, "{sm:?} did not converge");
        }
    }

    #[test]
    fn multi_node_presets_solve() {
        let a = laplace2d(40, 40);
        let b = rhs::ones(a.nrows());
        for cfg in [
            AmgConfig::multi_node_ei4(),
            AmgConfig::multi_node_mp(),
            AmgConfig::multi_node_2s_ei444(),
        ] {
            let solver = AmgSolver::setup(&a, &cfg);
            let mut x = vec![0.0; a.nrows()];
            let res = solver.solve(&b, &mut x);
            assert!(
                res.converged,
                "{:?} stalled at {}",
                cfg.interp, res.final_relres
            );
        }
    }
}

//! Convergence-factor analysis utilities.
//!
//! The paper's scalability arguments rest on two quantities: the
//! asymptotic convergence factor (how much each cycle shrinks the
//! residual once transients die out) and its independence from the
//! problem size. These helpers extract both from a residual history.

/// Per-cycle reduction factors of a residual history (the history starts
/// after the first cycle; factor `k` is `r[k+1] / r[k]`).
pub fn reduction_factors(history: &[f64]) -> Vec<f64> {
    history
        .windows(2)
        .map(|w| if w[0] > 0.0 { w[1] / w[0] } else { 0.0 })
        .collect()
}

/// Asymptotic convergence factor: the geometric mean of the last
/// `tail` reduction factors (standard practice discards the initial
/// transient).
pub fn asymptotic_factor(history: &[f64], tail: usize) -> Option<f64> {
    let f = reduction_factors(history);
    if f.is_empty() {
        return None;
    }
    let tail = tail.max(1).min(f.len());
    let slice = &f[f.len() - tail..];
    if slice.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = slice.iter().map(|v| v.ln()).sum();
    Some((log_sum / tail as f64).exp())
}

/// Estimated cycles needed to reduce the residual by `target` (e.g.
/// `1e-7`) at the given convergence factor.
pub fn cycles_to_tolerance(factor: f64, target: f64) -> usize {
    assert!(factor > 0.0 && factor < 1.0);
    assert!(target > 0.0 && target < 1.0);
    // Guard against FP dust pushing an exact quotient over the ceiling.
    ((target.ln() / factor.ln()) - 1e-9).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_from_geometric_history() {
        let h = vec![1.0, 0.1, 0.01, 0.001];
        let f = reduction_factors(&h);
        assert_eq!(f.len(), 3);
        for v in f {
            assert!((v - 0.1).abs() < 1e-12);
        }
        let af = asymptotic_factor(&h, 2).unwrap();
        assert!((af - 0.1).abs() < 1e-12);
    }

    #[test]
    fn cycles_estimate() {
        assert_eq!(cycles_to_tolerance(0.1, 1e-7), 7);
        assert_eq!(cycles_to_tolerance(0.25, 1e-7), 12);
    }

    #[test]
    fn empty_and_degenerate() {
        assert!(asymptotic_factor(&[], 3).is_none());
        assert!(asymptotic_factor(&[0.5], 3).is_none());
        assert!(asymptotic_factor(&[0.5, 0.0], 3).is_none());
    }

    #[test]
    fn matches_real_solver_history() {
        use crate::params::AmgConfig;
        use crate::solver::AmgSolver;
        let a = famg_matgen::laplace2d(32, 32);
        let b = famg_matgen::rhs::ones(a.nrows());
        let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        let af = asymptotic_factor(&res.history, 4).unwrap();
        // PMIS + ext+i on the 5-point Laplacian: factor well below 0.5.
        assert!(af > 0.0 && af < 0.5, "factor {af}");
        // The estimate predicts the observed iteration count to within a
        // couple of cycles.
        let predicted = cycles_to_tolerance(af, 1e-7);
        assert!(predicted.abs_diff(res.iterations) <= 4);
    }
}

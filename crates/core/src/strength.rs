//! Classical strength-of-connection matrix.
//!
//! Point `j` *strongly influences* `i` iff
//! `-a_ij >= α · max_{k≠i}(-a_ik)` (§2 of the paper). Row `i` of the
//! strength matrix `S` holds `i`'s strong neighbours — the points `i`
//! *depends* on. Rows whose ratio `|Σ_j a_ij| / |a_ii|` exceeds
//! `max_row_sum` are treated as having no strong connections (they are
//! strongly diagonally dominant and the smoother handles them alone); this
//! mirrors HYPRE's `max_row_sum` parameter used in Table 3.
//!
//! Two implementations: a sequential baseline and the paper's §3.3
//! parallel version (per-row counts, prefix sum, parallel fill).
#![deny(unsafe_op_in_unsafe_fn)]

use famg_sparse::partition::exclusive_prefix_sum;
use famg_sparse::Csr;
use rayon::prelude::*;

/// Decides which entries of row `i` are strong; invokes `emit(k, a_ik)`
/// for each strong neighbour in row order.
#[inline]
fn row_strong(
    a: &Csr,
    i: usize,
    threshold: f64,
    max_row_sum: f64,
    mut emit: impl FnMut(usize, f64),
) {
    let mut max_off = 0.0f64;
    let mut row_sum = 0.0f64;
    let mut diag = 0.0f64;
    for (k, v) in a.row_iter(i) {
        row_sum += v;
        if k == i {
            diag = v;
        } else {
            max_off = max_off.max(-v);
        }
    }
    if max_off <= 0.0 {
        return; // no negative off-diagonals -> nothing is strong
    }
    if diag != 0.0 && (row_sum / diag).abs() > max_row_sum {
        return; // strongly diagonally dominant row: no strong connections
    }
    let cut = threshold * max_off;
    for (k, v) in a.row_iter(i) {
        if k != i && -v >= cut {
            emit(k, v);
        }
    }
}

/// Sequential strength matrix (values carry the originating `a_ij`).
pub fn strength_seq(a: &Csr, threshold: f64, max_row_sum: f64) -> Csr {
    assert_eq!(a.nrows(), a.ncols());
    let n = a.nrows();
    let mut rowptr = Vec::with_capacity(n + 1);
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    rowptr.push(0);
    for i in 0..n {
        row_strong(a, i, threshold, max_row_sum, |k, v| {
            colidx.push(k);
            values.push(v);
        });
        rowptr.push(colidx.len());
    }
    Csr::from_parts_unchecked(n, n, rowptr, colidx, values)
}

/// Parallel strength matrix: count pass → prefix sum → fill pass (§3.3).
/// Bitwise identical to [`strength_seq`].
pub fn strength_par(a: &Csr, threshold: f64, max_row_sum: f64) -> Csr {
    assert_eq!(a.nrows(), a.ncols());
    let n = a.nrows();
    if n < 2048 {
        return strength_seq(a, threshold, max_row_sum);
    }
    // Pass 1: per-row strong counts.
    let mut counts: Vec<usize> = (0..n)
        .into_par_iter()
        .with_min_len(512)
        .map(|i| {
            let mut c = 0usize;
            row_strong(a, i, threshold, max_row_sum, |_, _| c += 1);
            c
        })
        .collect();
    let nnz = exclusive_prefix_sum(&mut counts);
    let mut rowptr = counts;
    rowptr.push(nnz);
    // Pass 2: fill into disjoint row slices.
    let mut colidx = vec![0usize; nnz];
    let mut values = vec![0.0f64; nnz];
    {
        struct Ptr(*mut usize, *mut f64);
        // SAFETY: row i writes only [rowptr[i], rowptr[i+1]), and those
        // slices are disjoint across the parallel iterator.
        unsafe impl Sync for Ptr {}
        let p = Ptr(colidx.as_mut_ptr(), values.as_mut_ptr());
        let p = &p;
        let rowptr_ref = &rowptr;
        (0..n).into_par_iter().with_min_len(512).for_each(|i| {
            let mut dst = rowptr_ref[i];
            row_strong(a, i, threshold, max_row_sum, |k, v| {
                // SAFETY: rows write disjoint [rowptr[i], rowptr[i+1]) slices.
                unsafe {
                    *p.0.add(dst) = k;
                    *p.1.add(dst) = v;
                }
                dst += 1;
            });
            debug_assert_eq!(dst, rowptr_ref[i + 1]);
        });
    }
    Csr::from_parts_unchecked(n, n, rowptr, colidx, values)
}

/// Production entry point.
pub fn strength(a: &Csr, threshold: f64, max_row_sum: f64) -> Csr {
    strength_par(a, threshold, max_row_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use famg_matgen::{laplace2d, laplace2d_aniso};

    #[test]
    fn laplacian_all_neighbours_strong() {
        // Uniform -1 off-diagonals: every neighbour ties the max, so all
        // are strong at any threshold <= 1.
        let a = laplace2d(4, 4);
        let s = strength_seq(&a, 0.25, 0.9);
        for i in 0..a.nrows() {
            assert_eq!(s.row_nnz(i), a.row_nnz(i) - 1); // all but diagonal
        }
    }

    #[test]
    fn anisotropy_filters_weak_direction() {
        // eps = 0.01 << 0.25: y-neighbours are weak, x-neighbours strong.
        let a = laplace2d_aniso(5, 5, 0.01);
        let s = strength_seq(&a, 0.25, 0.9);
        let i = 12; // interior
        assert_eq!(s.row_nnz(i), 2); // left/right only
        assert!(s.row_cols(i).contains(&11));
        assert!(s.row_cols(i).contains(&13));
    }

    #[test]
    fn threshold_zero_keeps_all_negative() {
        let a = laplace2d_aniso(5, 5, 0.01);
        let s = strength_seq(&a, 0.0, 10.0);
        let i = 12;
        assert_eq!(s.row_nnz(i), 4);
    }

    #[test]
    fn positive_offdiagonals_never_strong() {
        let a = Csr::from_triplets(
            2,
            2,
            vec![(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 2.0)],
        );
        let s = strength_seq(&a, 0.25, 0.9);
        assert_eq!(s.nnz(), 0);
    }

    #[test]
    fn max_row_sum_drops_dominant_rows() {
        // Row 0: diag 10, off -1 -> row_sum/diag = 0.9 > 0.8 -> dropped.
        let a = Csr::from_triplets(
            2,
            2,
            vec![(0, 0, 10.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 1.5)],
        );
        let s = strength_seq(&a, 0.25, 0.8);
        assert_eq!(s.row_nnz(0), 0);
        // Row 1: row_sum/diag = 0.5/1.5 = 0.33 <= 0.8 -> kept.
        assert_eq!(s.row_nnz(1), 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = laplace2d(80, 80); // 6400 rows -> parallel path
        let s1 = strength_seq(&a, 0.25, 0.8);
        let s2 = strength_par(&a, 0.25, 0.8);
        assert_eq!(s1, s2);
        let b = laplace2d_aniso(70, 90, 0.05);
        assert_eq!(strength_seq(&b, 0.25, 0.8), strength_par(&b, 0.25, 0.8));
    }

    #[test]
    fn values_carry_matrix_entries() {
        let a = laplace2d(4, 4);
        let s = strength_seq(&a, 0.25, 0.9);
        for i in 0..s.nrows() {
            for (c, v) in s.row_iter(i) {
                assert_eq!(Some(v), a.get(i, c));
            }
        }
    }

    #[test]
    fn no_self_loops() {
        let a = laplace2d(6, 6);
        let s = strength(&a, 0.25, 0.8);
        for i in 0..s.nrows() {
            assert!(!s.row_cols(i).contains(&i));
        }
    }
}
